#include "dblp/xml_loader.h"

#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"
#include "dblp/schema.h"
#include "xml/xml_parser.h"

namespace distinct {
namespace {

/// One publication record accumulated from the XML stream.
struct Record {
  std::vector<std::string> authors;
  std::string title;
  std::string venue;  // booktitle or journal
  int64_t year = -1;
};

bool IsPublicationElement(std::string_view name) {
  return name == "article" || name == "inproceedings" ||
         name == "incollection" || name == "book";
}

class DblpXmlHandler : public XmlHandler {
 public:
  void OnStartElement(std::string_view name,
                      const std::vector<XmlAttribute>& /*attributes*/) override {
    if (IsPublicationElement(name)) {
      in_record_ = true;
      current_ = Record();
      return;
    }
    if (!in_record_) {
      if (name != "dblp") {
        ++skipped_;
      }
      return;
    }
    field_ = name;
    text_.clear();
  }

  void OnEndElement(std::string_view name) override {
    if (IsPublicationElement(name)) {
      if (!current_.authors.empty()) {
        records_.push_back(std::move(current_));
      } else {
        ++skipped_;
      }
      in_record_ = false;
      field_.clear();
      return;
    }
    if (!in_record_) {
      return;
    }
    const std::string value(StripWhitespace(text_));
    if (field_ == "author" || field_ == "editor") {
      if (!value.empty()) {
        current_.authors.push_back(value);
      }
    } else if (field_ == "title") {
      current_.title = value;
    } else if (field_ == "booktitle" ||
               (field_ == "journal" && current_.venue.empty())) {
      current_.venue = value;
    } else if (field_ == "year") {
      if (auto year = ParseInt64(value); year.has_value()) {
        current_.year = *year;
      }
    }
    field_.clear();
    text_.clear();
  }

  void OnText(std::string_view text) override {
    if (in_record_ && !field_.empty()) {
      text_ += text;
    }
  }

  std::vector<Record>& records() { return records_; }
  int64_t skipped() const { return skipped_; }

 private:
  bool in_record_ = false;
  Record current_;
  std::string field_;
  std::string text_;
  std::vector<Record> records_;
  int64_t skipped_ = 0;
};

StatusOr<XmlLoadResult> BuildDatabase(std::vector<Record> records,
                                      int64_t skipped,
                                      const XmlLoadOptions& options) {
  // Reference counts for the min_refs_per_author filter.
  std::unordered_map<std::string, int64_t> refs_per_author;
  for (const Record& record : records) {
    for (const std::string& author : record.authors) {
      ++refs_per_author[author];
    }
  }

  auto db_or = MakeEmptyDblpDatabase();
  DISTINCT_RETURN_IF_ERROR(db_or.status());
  Database db = *std::move(db_or);
  Table* authors = *db.FindMutableTable(kAuthorsTable);
  Table* conferences = *db.FindMutableTable(kConferencesTable);
  Table* proceedings = *db.FindMutableTable(kProceedingsTable);
  Table* publications = *db.FindMutableTable(kPublicationsTable);
  Table* publish = *db.FindMutableTable(kPublishTable);

  Dictionary author_ids;
  Dictionary conference_ids;
  std::unordered_map<int64_t, int64_t> proc_ids;  // (conf<<16|year) -> proc
  int64_t next_proc = 0;
  int64_t next_pub = 0;
  XmlLoadResult result;

  for (size_t r = 0; r < records.size(); ++r) {
    const Record& record = records[r];
    const std::string venue =
        record.venue.empty() ? std::string("unknown-venue") : record.venue;

    const int64_t conf_before = conference_ids.size();
    const int64_t conf_id = conference_ids.Intern(venue);
    if (conf_id == conf_before) {
      DISTINCT_RETURN_IF_ERROR(
          conferences
              ->AppendRow({Value::Int(conf_id), Value::Str(venue),
                           Value::Str("unknown-publisher")})
              .status());
    }

    const int64_t year = record.year >= 0 ? record.year : 0;
    const int64_t proc_key = (conf_id << 16) | (year & 0xffff);
    auto [it, inserted] = proc_ids.emplace(proc_key, next_proc);
    if (inserted) {
      DISTINCT_RETURN_IF_ERROR(
          proceedings
              ->AppendRow({Value::Int(next_proc), Value::Int(conf_id),
                           Value::Int(year), Value::Null()})
              .status());
      ++next_proc;
    }
    const int64_t proc_id = it->second;

    const int64_t paper_id = static_cast<int64_t>(r);
    DISTINCT_RETURN_IF_ERROR(
        publications
            ->AppendRow({Value::Int(paper_id), Value::Str(record.title),
                         Value::Int(proc_id)})
            .status());

    for (const std::string& author : record.authors) {
      if (options.min_refs_per_author > 0 &&
          refs_per_author[author] < options.min_refs_per_author) {
        continue;
      }
      const int64_t author_before = author_ids.size();
      const int64_t author_id = author_ids.Intern(author);
      if (author_id == author_before) {
        DISTINCT_RETURN_IF_ERROR(
            authors->AppendRow({Value::Int(author_id), Value::Str(author)})
                .status());
      }
      DISTINCT_RETURN_IF_ERROR(
          publish
              ->AppendRow({Value::Int(next_pub++), Value::Int(author_id),
                           Value::Int(paper_id)})
              .status());
    }
  }

  result.db = std::move(db);
  result.records_loaded = static_cast<int64_t>(records.size());
  result.records_skipped = skipped;
  return result;
}

}  // namespace

StatusOr<XmlLoadResult> LoadDblpXml(const std::string& content,
                                    const XmlLoadOptions& options) {
  DblpXmlHandler handler;
  DISTINCT_RETURN_IF_ERROR(XmlParser::Parse(content, handler));
  return BuildDatabase(std::move(handler.records()), handler.skipped(),
                       options);
}

StatusOr<XmlLoadResult> LoadDblpXmlFile(const std::string& path,
                                        const XmlLoadOptions& options) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::string content;
  char buffer[1 << 16];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    content.append(buffer, read);
  }
  return LoadDblpXml(content, options);
}

}  // namespace distinct
