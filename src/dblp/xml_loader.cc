#include "dblp/xml_loader.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/io_util.h"
#include "common/string_util.h"
#include "dblp/dblp_records.h"
#include "dblp/schema.h"
#include "xml/xml_parser.h"

namespace distinct {
namespace {

StatusOr<XmlLoadResult> BuildDatabase(std::vector<DblpRecord> records,
                                      int64_t skipped,
                                      const XmlLoadOptions& options) {
  // Reference counts for the min_refs_per_author filter.
  std::unordered_map<std::string, int64_t> refs_per_author;
  for (const DblpRecord& record : records) {
    for (const std::string& author : record.authors) {
      ++refs_per_author[author];
    }
  }

  auto db_or = MakeEmptyDblpDatabase();
  DISTINCT_RETURN_IF_ERROR(db_or.status());
  Database db = *std::move(db_or);
  Table* authors = *db.FindMutableTable(kAuthorsTable);
  Table* conferences = *db.FindMutableTable(kConferencesTable);
  Table* proceedings = *db.FindMutableTable(kProceedingsTable);
  Table* publications = *db.FindMutableTable(kPublicationsTable);
  Table* publish = *db.FindMutableTable(kPublishTable);

  Dictionary author_ids;
  Dictionary conference_ids;
  std::unordered_map<int64_t, int64_t> proc_ids;  // (conf<<16|year) -> proc
  int64_t next_proc = 0;
  int64_t next_pub = 0;
  XmlLoadResult result;

  for (size_t r = 0; r < records.size(); ++r) {
    const DblpRecord& record = records[r];
    const std::string venue =
        record.venue.empty() ? std::string("unknown-venue") : record.venue;

    const int64_t conf_before = conference_ids.size();
    const int64_t conf_id = conference_ids.Intern(venue);
    if (conf_id == conf_before) {
      DISTINCT_RETURN_IF_ERROR(
          conferences
              ->AppendRow({Value::Int(conf_id), Value::Str(venue),
                           Value::Str("unknown-publisher")})
              .status());
    }

    const int64_t year = record.year >= 0 ? record.year : 0;
    const int64_t proc_key = (conf_id << 16) | (year & 0xffff);
    auto [it, inserted] = proc_ids.emplace(proc_key, next_proc);
    if (inserted) {
      DISTINCT_RETURN_IF_ERROR(
          proceedings
              ->AppendRow({Value::Int(next_proc), Value::Int(conf_id),
                           Value::Int(year), Value::Null()})
              .status());
      ++next_proc;
    }
    const int64_t proc_id = it->second;

    const int64_t paper_id = static_cast<int64_t>(r);
    DISTINCT_RETURN_IF_ERROR(
        publications
            ->AppendRow({Value::Int(paper_id), Value::Str(record.title),
                         Value::Int(proc_id)})
            .status());

    for (const std::string& author : record.authors) {
      if (options.min_refs_per_author > 0 &&
          refs_per_author[author] < options.min_refs_per_author) {
        continue;
      }
      const int64_t author_before = author_ids.size();
      const int64_t author_id = author_ids.Intern(author);
      if (author_id == author_before) {
        DISTINCT_RETURN_IF_ERROR(
            authors->AppendRow({Value::Int(author_id), Value::Str(author)})
                .status());
      }
      DISTINCT_RETURN_IF_ERROR(
          publish
              ->AppendRow({Value::Int(next_pub++), Value::Int(author_id),
                           Value::Int(paper_id)})
              .status());
    }
  }

  result.db = std::move(db);
  result.records_loaded = static_cast<int64_t>(records.size());
  result.records_skipped = skipped;
  return result;
}

}  // namespace

StatusOr<XmlLoadResult> LoadDblpXml(const std::string& content,
                                    const XmlLoadOptions& options) {
  std::vector<DblpRecord> records;
  DblpRecordHandler handler([&records](DblpRecord&& record) {
    records.push_back(std::move(record));
    return Status::Ok();
  });
  DISTINCT_RETURN_IF_ERROR(XmlParser::Parse(content, handler));
  return BuildDatabase(std::move(records), handler.skipped(), options);
}

StatusOr<XmlLoadResult> LoadDblpXmlFile(const std::string& path,
                                        const XmlLoadOptions& options) {
  // EINTR/short-read-safe whole-file read: an I/O error surfaces as a
  // Status instead of passing a truncated document to the parser (the raw
  // fread loop this replaces treated any error as EOF).
  auto content = ReadFileToString(path, "xml_loader");
  if (!content.ok()) {
    return content.status();
  }
  return LoadDblpXml(*content, options);
}

}  // namespace distinct
