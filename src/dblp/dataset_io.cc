#include "dblp/dataset_io.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "dblp/schema.h"
#include "relational/csv.h"

namespace distinct {
namespace {

/// Schema of cases.csv, expressed as a Table for CSV reuse.
StatusOr<Table> MakeCasesTable() {
  return Table::Create(
      "cases", {ColumnSpec{"row_id", ColumnType::kInt64, true, ""},
                ColumnSpec{"name", ColumnType::kString, false, ""},
                ColumnSpec{"entity_index", ColumnType::kInt64, false, ""},
                ColumnSpec{"entity_label", ColumnType::kString, false, ""},
                ColumnSpec{"publish_row", ColumnType::kInt64, false, ""}});
}

}  // namespace

Status SaveDataset(const DblpDataset& dataset,
                   const std::string& directory) {
  DISTINCT_RETURN_IF_ERROR(SaveDatabaseCsv(dataset.db, directory));

  auto cases_table = MakeCasesTable();
  DISTINCT_RETURN_IF_ERROR(cases_table.status());
  int64_t row_id = 0;
  for (const AmbiguousCase& c : dataset.cases) {
    for (size_t i = 0; i < c.publish_rows.size(); ++i) {
      const int entity = c.truth[i];
      const std::string label =
          static_cast<size_t>(entity) < c.entity_names.size()
              ? c.entity_names[static_cast<size_t>(entity)]
              : "";
      DISTINCT_RETURN_IF_ERROR(
          cases_table
              ->AppendRow({Value::Int(row_id++), Value::Str(c.name),
                           Value::Int(entity), Value::Str(label),
                           Value::Int(c.publish_rows[i])})
              .status());
    }
  }
  return SaveTableCsv(*cases_table, directory + "/cases.csv");
}

StatusOr<Database> LoadDblpDatabaseCsv(const std::string& directory) {
  auto db = MakeEmptyDblpDatabase();
  DISTINCT_RETURN_IF_ERROR(db.status());
  DISTINCT_RETURN_IF_ERROR(LoadDatabaseCsv(*db, directory));
  DISTINCT_RETURN_IF_ERROR(db->ValidateIntegrity());
  return db;
}

StatusOr<std::vector<AmbiguousCase>> LoadCasesCsv(
    const std::string& directory) {
  auto cases_table = MakeCasesTable();
  DISTINCT_RETURN_IF_ERROR(cases_table.status());
  DISTINCT_RETURN_IF_ERROR(
      LoadTableCsv(directory + "/cases.csv", *cases_table).status());

  // Group rows by name, preserving first-seen order.
  std::vector<AmbiguousCase> cases;
  std::map<std::string, size_t> case_of_name;
  for (int64_t row = 0; row < cases_table->num_rows(); ++row) {
    const std::string& name = cases_table->GetString(row, 1);
    const int entity = static_cast<int>(cases_table->GetInt(row, 2));
    const std::string& label = cases_table->GetString(row, 3);
    const int32_t publish_row =
        static_cast<int32_t>(cases_table->GetInt(row, 4));

    auto [it, inserted] = case_of_name.emplace(name, cases.size());
    if (inserted) {
      AmbiguousCase c;
      c.name = name;
      cases.push_back(std::move(c));
    }
    AmbiguousCase& c = cases[it->second];
    c.publish_rows.push_back(publish_row);
    c.truth.push_back(entity);
    if (entity >= static_cast<int>(c.entity_names.size())) {
      c.entity_names.resize(static_cast<size_t>(entity) + 1);
    }
    if (!label.empty()) {
      c.entity_names[static_cast<size_t>(entity)] = label;
    }
  }
  for (AmbiguousCase& c : cases) {
    c.num_entities = static_cast<int>(c.entity_names.size());
    // Entities without labels still count; num_entities is the max index+1
    // observed in the truth column.
    for (const int entity : c.truth) {
      c.num_entities = std::max(c.num_entities, entity + 1);
    }
    c.entity_names.resize(static_cast<size_t>(c.num_entities));
  }
  return cases;
}

StatusOr<DblpDataset> LoadDataset(const std::string& directory) {
  auto db = LoadDblpDatabaseCsv(directory);
  DISTINCT_RETURN_IF_ERROR(db.status());
  auto cases = LoadCasesCsv(directory);
  DISTINCT_RETURN_IF_ERROR(cases.status());

  DblpDataset dataset;
  dataset.db = *std::move(db);
  dataset.cases = *std::move(cases);

  const Table& publish = **dataset.db.FindTable(kPublishTable);
  dataset.entity_of_publish_row.assign(
      static_cast<size_t>(publish.num_rows()), -1);
  int next_entity = 0;
  for (const AmbiguousCase& c : dataset.cases) {
    for (size_t i = 0; i < c.publish_rows.size(); ++i) {
      const size_t row = static_cast<size_t>(c.publish_rows[i]);
      if (row < dataset.entity_of_publish_row.size()) {
        dataset.entity_of_publish_row[row] = next_entity + c.truth[i];
      }
    }
    next_entity += c.num_entities;
  }
  dataset.num_entities = next_entity;
  return dataset;
}

}  // namespace distinct
