#include "dblp/generator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "dblp/name_pool.h"
#include "dblp/schema.h"

namespace distinct {
namespace {

/// A person in the generated world (regular or planted-ambiguous).
struct Entity {
  std::string name;
  int home_community = -1;
  int second_community = -1;  // -1: never migrates
  int switch_year = 0;
  double prolificness = 1.0;
  bool is_ambiguous = false;
  int case_index = -1;
  int case_entity_index = -1;
  int target_refs = 0;     // ambiguous only
  int active_from = 0;
  int active_to = 0;
  /// Recurring collaborators (entity indices), per affiliation era.
  std::vector<int> preferred_home;
  std::vector<int> preferred_second;
  /// Preferred conference ids, per affiliation era.
  std::vector<int> venues_home;
  std::vector<int> venues_second;
};

/// A generated paper before table construction.
struct Paper {
  std::vector<int> authors;  // entity indices, lead first
  int64_t proc_id = -1;
};

int CommunityAt(const Entity& entity, int year) {
  if (entity.second_community >= 0 && year >= entity.switch_year) {
    return entity.second_community;
  }
  return entity.home_community;
}

/// Splits `total` over `parts` with Zipf-like skew, each part >= 1.
std::vector<int> SkewedSplit(int total, int parts) {
  DISTINCT_CHECK(parts >= 1 && total >= parts);
  std::vector<double> weights(static_cast<size_t>(parts));
  double weight_sum = 0.0;
  for (int i = 0; i < parts; ++i) {
    weights[static_cast<size_t>(i)] = 1.0 / static_cast<double>(i + 1);
    weight_sum += weights[static_cast<size_t>(i)];
  }
  std::vector<int> counts(static_cast<size_t>(parts), 1);
  int remaining = total - parts;
  for (int i = 0; i < parts && remaining > 0; ++i) {
    const int share = static_cast<int>(
        static_cast<double>(total - parts) * weights[static_cast<size_t>(i)] /
        weight_sum);
    const int grant = std::min(share, remaining);
    counts[static_cast<size_t>(i)] += grant;
    remaining -= grant;
  }
  counts[0] += remaining;  // leftovers to the most prolific entity
  return counts;
}

}  // namespace

std::vector<AmbiguousNameSpec> PaperTable1Specs() {
  // Counts from the paper's Table 1; the two entries the supplied text
  // corrupted (Joseph Hellerstein, Lei Wang) and Wei Wang's totals follow
  // the authors' extended version (see EXPERIMENTS.md).
  return {
      {"Hui Fang", 3, 9},           {"Ajay Gupta", 4, 16},
      {"Joseph Hellerstein", 2, 151}, {"Rakesh Kumar", 2, 36},
      {"Michael Wagner", 5, 29},    {"Bing Liu", 6, 89},
      {"Jim Smith", 3, 19},         {"Lei Wang", 13, 55},
      {"Wei Wang", 14, 141},        {"Bin Yu", 5, 44},
  };
}

StatusOr<DblpDataset> GenerateDblpDataset(const GeneratorConfig& config) {
  if (config.num_communities < 1 || config.authors_per_community < 1) {
    return InvalidArgumentError("generator: need at least one community");
  }
  if (config.end_year < config.start_year) {
    return InvalidArgumentError("generator: end_year < start_year");
  }
  const std::vector<AmbiguousNameSpec> specs =
      config.ambiguous.empty() ? PaperTable1Specs() : config.ambiguous;
  for (const AmbiguousNameSpec& spec : specs) {
    if (spec.num_entities < 1 || spec.num_refs < spec.num_entities) {
      return InvalidArgumentError("generator: ambiguous spec '" + spec.name +
                                  "' needs refs >= entities >= 1");
    }
  }

  Rng rng(config.seed);
  NamePool names(config.first_name_pool, config.last_name_pool,
                 config.name_zipf_exponent);
  const int num_years = config.end_year - config.start_year + 1;
  const int num_areas =
      (config.num_communities + config.communities_per_area - 1) /
      config.communities_per_area;
  auto area_of = [&](int community) {
    return community / config.communities_per_area;
  };

  // ---- Entities -----------------------------------------------------
  std::vector<Entity> entities;
  std::vector<std::vector<int>> community_members(
      static_cast<size_t>(config.num_communities));

  for (int c = 0; c < config.num_communities; ++c) {
    for (int a = 0; a < config.authors_per_community; ++a) {
      Entity entity;
      entity.name = names.SampleFullName(rng);
      entity.home_community = c;
      entity.prolificness = 1.0 / std::pow(static_cast<double>(a + 1), 0.8);
      entity.active_from = config.start_year;
      entity.active_to = config.end_year;
      if (rng.Bernoulli(config.migration_prob) &&
          config.num_communities > 1) {
        entity.second_community = static_cast<int>(
            rng.UniformInt(0, config.num_communities - 2));
        if (entity.second_community >= c) {
          ++entity.second_community;
        }
        entity.switch_year = config.start_year + num_years / 3 +
                             static_cast<int>(rng.UniformInt(0, std::max(
                                 1, num_years / 3)));
      }
      community_members[static_cast<size_t>(c)].push_back(
          static_cast<int>(entities.size()));
      entities.push_back(std::move(entity));
    }
  }

  // Part decoys: regular authors sharing a name part with each planted
  // ambiguous name, so "Wei" and "Wang" are common parts as they are in the
  // real DBLP and the rare-name heuristic correctly skips "Wei Wang".
  for (const AmbiguousNameSpec& spec : specs) {
    const std::string first(FirstNameOf(spec.name));
    const std::string last(LastNameOf(spec.name));
    for (int d = 0; d < config.part_decoys_per_ambiguous_name; ++d) {
      Entity entity;
      if (d % 2 == 0) {
        entity.name =
            first + " " + names.LastName(names.SampleLastRank(rng));
      } else {
        entity.name =
            names.FirstName(names.SampleFirstRank(rng)) + " " + last;
      }
      const int community = static_cast<int>(
          rng.UniformInt(0, config.num_communities - 1));
      entity.home_community = community;
      entity.prolificness = 0.6;
      entity.active_from = config.start_year;
      entity.active_to = config.end_year;
      community_members[static_cast<size_t>(community)].push_back(
          static_cast<int>(entities.size()));
      entities.push_back(std::move(entity));
    }
  }

  // Planted ambiguous entities. Same-name entities land preferentially in
  // the same research area (shared venues) and occasionally in the very
  // same community, which is what makes the problem hard.
  std::vector<AmbiguousCase> cases(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    const AmbiguousNameSpec& spec = specs[s];
    cases[s].name = spec.name;
    cases[s].num_entities = spec.num_entities;
    const std::vector<int> ref_counts =
        SkewedSplit(spec.num_refs, spec.num_entities);

    std::vector<int> used_communities;
    for (int e = 0; e < spec.num_entities; ++e) {
      Entity entity;
      entity.name = spec.name;
      entity.is_ambiguous = true;
      entity.case_index = static_cast<int>(s);
      entity.case_entity_index = e;
      entity.target_refs = ref_counts[static_cast<size_t>(e)];

      int community;
      if (used_communities.empty() || rng.Bernoulli(0.4)) {
        community = static_cast<int>(
            rng.UniformInt(0, config.num_communities - 1));
      } else if (rng.Bernoulli(0.08)) {
        // Hard case: share a community with a previous same-name entity.
        community = used_communities[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(used_communities.size()) - 1))];
      } else {
        // Same area, different community.
        const int previous = used_communities[static_cast<size_t>(
            rng.UniformInt(0,
                           static_cast<int64_t>(used_communities.size()) - 1))];
        const int area = area_of(previous);
        const int base = area * config.communities_per_area;
        const int span = std::min(config.communities_per_area,
                                  config.num_communities - base);
        community = base + static_cast<int>(rng.UniformInt(0, span - 1));
      }
      used_communities.push_back(community);
      entity.home_community = community;

      // Active span: enough years to hold the papers, placed randomly.
      const int span = std::min(
          num_years,
          std::max(4, entity.target_refs / 3 +
                          static_cast<int>(rng.UniformInt(2, 5))));
      const int offset =
          static_cast<int>(rng.UniformInt(0, num_years - span));
      entity.active_from = config.start_year + offset;
      entity.active_to = entity.active_from + span - 1;

      // Migration is more likely than for regular authors (the paper's
      // Michael Wagner effect: one person, weakly linked partitions).
      if (rng.Bernoulli(std::min(1.0, config.migration_prob * 1.5)) &&
          config.num_communities > 1 && entity.target_refs >= 6) {
        entity.second_community = static_cast<int>(
            rng.UniformInt(0, config.num_communities - 2));
        if (entity.second_community >= community) {
          ++entity.second_community;
        }
        entity.switch_year =
            entity.active_from + span / 2;
      }

      cases[s].entity_names.push_back(
          spec.name + " @ " + NamePool::InstitutionName(
                                  static_cast<size_t>(community)));
      entities.push_back(std::move(entity));
    }
  }

  // Recurring collaborators, sampled from the community of each era (the
  // ambiguous entities' collaborators are regular authors, so reference
  // counts stay exact).
  auto assign_preferred = [&](size_t self, int community) {
    std::vector<int> preferred;
    const std::vector<int>& members =
        community_members[static_cast<size_t>(community)];
    if (members.empty()) {
      return preferred;
    }
    const size_t k = std::min<size_t>(
        static_cast<size_t>(std::max(config.preferred_collaborators, 0)),
        members.size());
    for (const size_t idx : rng.SampleWithoutReplacement(members.size(), k)) {
      if (static_cast<size_t>(members[idx]) != self) {
        preferred.push_back(members[idx]);
      }
    }
    return preferred;
  };
  // Preferred venues: a personal subset of the era's area conferences.
  auto assign_venues = [&](int community) {
    const int area = area_of(community);
    const int base = area * config.conferences_per_area;
    const size_t k = std::min<size_t>(
        static_cast<size_t>(std::max(config.venues_per_author, 1)),
        static_cast<size_t>(config.conferences_per_area));
    std::vector<int> venues;
    for (const size_t idx : rng.SampleWithoutReplacement(
             static_cast<size_t>(config.conferences_per_area), k)) {
      venues.push_back(base + static_cast<int>(idx));
    }
    return venues;
  };
  for (size_t e = 0; e < entities.size(); ++e) {
    entities[e].preferred_home = assign_preferred(e, entities[e].home_community);
    entities[e].venues_home = assign_venues(entities[e].home_community);
    if (entities[e].second_community >= 0) {
      entities[e].preferred_second =
          assign_preferred(e, entities[e].second_community);
      entities[e].venues_second = assign_venues(entities[e].second_community);
    }
  }

  // ---- Conferences and proceedings ----------------------------------
  auto db_or = MakeEmptyDblpDatabase();
  DISTINCT_RETURN_IF_ERROR(db_or.status());
  Database db = *std::move(db_or);

  Table* conferences = *db.FindMutableTable(kConferencesTable);
  Table* proceedings = *db.FindMutableTable(kProceedingsTable);
  Table* publications = *db.FindMutableTable(kPublicationsTable);
  Table* publish = *db.FindMutableTable(kPublishTable);
  Table* authors = *db.FindMutableTable(kAuthorsTable);

  const int num_conferences = num_areas * config.conferences_per_area;
  for (int conf = 0; conf < num_conferences; ++conf) {
    const int area = conf / config.conferences_per_area;
    const std::string name =
        StrFormat("CONF-%c%d", static_cast<char>('A' + area % 26),
                  conf % config.conferences_per_area + 1);
    const std::string publisher = StrFormat(
        "Publisher%02d",
        static_cast<int>(rng.UniformInt(1, config.num_publishers)));
    auto row = conferences->AppendRow(
        {Value::Int(conf), Value::Str(name), Value::Str(publisher)});
    DISTINCT_RETURN_IF_ERROR(row.status());
  }

  // (conference, year) -> proc_id
  std::vector<int64_t> proc_of(
      static_cast<size_t>(num_conferences) * static_cast<size_t>(num_years),
      -1);
  int64_t next_proc = 0;
  for (int conf = 0; conf < num_conferences; ++conf) {
    for (int y = 0; y < num_years; ++y) {
      const std::string location = StrFormat(
          "City%02d",
          static_cast<int>(rng.UniformInt(1, config.num_locations)));
      auto row = proceedings->AppendRow(
          {Value::Int(next_proc), Value::Int(conf),
           Value::Int(config.start_year + y), Value::Str(location)});
      DISTINCT_RETURN_IF_ERROR(row.status());
      proc_of[static_cast<size_t>(conf) * static_cast<size_t>(num_years) +
              static_cast<size_t>(y)] = next_proc;
      ++next_proc;
    }
  }

  auto conference_for = [&](int community, Rng& r) {
    const int area = area_of(community);
    const int base = area * config.conferences_per_area;
    return base + static_cast<int>(
                      r.UniformInt(0, config.conferences_per_area - 1));
  };

  // A paper's venue follows the lead author's preferred venues for the
  // paper's era with probability venue_loyalty, else any area conference.
  auto venue_for = [&](const Entity& lead, int community, Rng& r) {
    const std::vector<int>& venues = community == lead.home_community
                                         ? lead.venues_home
                                         : lead.venues_second;
    if (!venues.empty() && r.Bernoulli(config.venue_loyalty)) {
      return venues[static_cast<size_t>(
          r.UniformInt(0, static_cast<int64_t>(venues.size()) - 1))];
    }
    return conference_for(community, r);
  };

  // ---- Papers --------------------------------------------------------
  std::vector<Paper> papers;

  auto sample_member = [&](int community, int year, Rng& r) -> int {
    const std::vector<int>& members =
        community_members[static_cast<size_t>(community)];
    std::vector<double> weights;
    weights.reserve(members.size());
    for (const int m : members) {
      const Entity& entity = entities[static_cast<size_t>(m)];
      weights.push_back(CommunityAt(entity, year) == community
                            ? entity.prolificness
                            : 0.0);
    }
    bool any = false;
    for (const double w : weights) {
      if (w > 0.0) {
        any = true;
        break;
      }
    }
    if (!any) {
      // Everyone migrated away this year; fall back to home members.
      return members[static_cast<size_t>(
          r.UniformInt(0, static_cast<int64_t>(members.size()) - 1))];
    }
    return members[r.WeightedIndex(weights)];
  };

  // Regular community papers.
  for (int c = 0; c < config.num_communities; ++c) {
    for (int y = 0; y < num_years; ++y) {
      const int year = config.start_year + y;
      const int count = rng.Poisson(config.papers_per_community_year);
      for (int p = 0; p < count; ++p) {
        Paper paper;
        paper.authors.push_back(sample_member(c, year, rng));
        const Entity& lead =
            entities[static_cast<size_t>(paper.authors[0])];
        const std::vector<int>& lead_preferred =
            CommunityAt(lead, year) == lead.home_community
                ? lead.preferred_home
                : lead.preferred_second;
        // Advisor effect (see the ambiguous-paper loop below).
        if (!lead_preferred.empty() && rng.Bernoulli(0.7)) {
          paper.authors.push_back(lead_preferred.front());
        }
        const int extra = rng.Poisson(config.mean_coauthors_per_paper);
        const bool lead_in_second_era =
            CommunityAt(lead, year) != lead.home_community;
        for (int k = 0; k < extra; ++k) {
          int coauthor;
          if (lead_in_second_era && !lead.preferred_home.empty() &&
              rng.Bernoulli(config.old_collaborator_prob)) {
            coauthor = lead.preferred_home[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(lead.preferred_home.size()) - 1))];
          } else if (!lead_preferred.empty() &&
              rng.Bernoulli(config.collaborator_affinity)) {
            coauthor = lead_preferred[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(lead_preferred.size()) - 1))];
          } else if (rng.Bernoulli(config.cross_community_coauthor_prob) &&
                     config.num_communities > 1) {
            int other = static_cast<int>(
                rng.UniformInt(0, config.num_communities - 2));
            if (other >= c) ++other;
            coauthor = sample_member(other, year, rng);
          } else {
            coauthor = sample_member(c, year, rng);
          }
          if (std::find(paper.authors.begin(), paper.authors.end(),
                        coauthor) == paper.authors.end()) {
            paper.authors.push_back(coauthor);
          }
        }
        const int conf = venue_for(lead, c, rng);
        paper.proc_id =
            proc_of[static_cast<size_t>(conf) * static_cast<size_t>(num_years) +
                    static_cast<size_t>(y)];
        papers.push_back(std::move(paper));
      }
    }
  }

  // Papers of the planted ambiguous entities (exactly target_refs each).
  for (size_t e = 0; e < entities.size(); ++e) {
    const Entity& entity = entities[e];
    if (!entity.is_ambiguous) {
      continue;
    }
    const int span_years = entity.active_to - entity.active_from + 1;
    for (int p = 0; p < entity.target_refs; ++p) {
      const int year =
          entity.active_from +
          (span_years <= 1
               ? 0
               : static_cast<int>(rng.UniformInt(0, span_years - 1)));
      const int community = CommunityAt(entity, year);

      Paper paper;
      paper.authors.push_back(static_cast<int>(e));
      const std::vector<int>& entity_preferred =
          community == entity.home_community ? entity.preferred_home
                                             : entity.preferred_second;
      // Advisor effect: the first preferred collaborator of the era joins
      // most papers — authors with few papers publish with a constant
      // partner (student/advisor), which is what lets DISTINCT group the
      // short cases (Hui Fang, Jim Smith) in the real DBLP.
      if (!entity_preferred.empty() && rng.Bernoulli(0.7)) {
        paper.authors.push_back(entity_preferred.front());
      }
      const int extra =
          1 + rng.Poisson(std::max(0.5, config.mean_coauthors_per_paper - 1));
      const bool in_second_era = community != entity.home_community;
      for (int k = 0; k < extra; ++k) {
        int coauthor;
        if (in_second_era && !entity.preferred_home.empty() &&
            rng.Bernoulli(config.old_collaborator_prob)) {
          coauthor = entity.preferred_home[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(entity.preferred_home.size()) - 1))];
        } else if (!entity_preferred.empty() &&
            rng.Bernoulli(config.collaborator_affinity)) {
          coauthor = entity_preferred[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(entity_preferred.size()) - 1))];
        } else if (rng.Bernoulli(config.cross_community_coauthor_prob) &&
                   config.num_communities > 1) {
          int other = static_cast<int>(
              rng.UniformInt(0, config.num_communities - 2));
          if (other >= community) ++other;
          coauthor = sample_member(other, year, rng);
        } else {
          coauthor = sample_member(community, year, rng);
        }
        if (std::find(paper.authors.begin(), paper.authors.end(),
                      coauthor) == paper.authors.end()) {
          paper.authors.push_back(coauthor);
        }
      }
      const int conf = venue_for(entity, community, rng);
      const int y = year - config.start_year;
      paper.proc_id =
          proc_of[static_cast<size_t>(conf) * static_cast<size_t>(num_years) +
                  static_cast<size_t>(y)];
      papers.push_back(std::move(paper));
    }
  }

  // ---- Tables ----------------------------------------------------------
  // One Authors row per distinct name string: identically named entities
  // share the row, which is precisely the ambiguity DISTINCT must resolve.
  Dictionary name_ids;
  std::vector<int64_t> author_row_of_entity(entities.size(), -1);
  for (size_t e = 0; e < entities.size(); ++e) {
    const int64_t before = name_ids.size();
    const int64_t name_id = name_ids.Intern(entities[e].name);
    if (name_id == before) {  // first time this name is seen
      auto row = authors->AppendRow(
          {Value::Int(name_id), Value::Str(entities[e].name)});
      DISTINCT_RETURN_IF_ERROR(row.status());
    }
    author_row_of_entity[e] = name_id;
  }

  DblpDataset dataset;
  dataset.num_entities = static_cast<int>(entities.size());

  int64_t next_pub_id = 0;
  for (size_t p = 0; p < papers.size(); ++p) {
    const Paper& paper = papers[p];
    const int64_t paper_id = static_cast<int64_t>(p);
    auto row = publications->AppendRow(
        {Value::Int(paper_id),
         Value::Str(StrFormat("Paper %zu", p)),
         Value::Int(paper.proc_id)});
    DISTINCT_RETURN_IF_ERROR(row.status());
    for (const int author_entity : paper.authors) {
      auto pub_row = publish->AppendRow(
          {Value::Int(next_pub_id++),
           Value::Int(author_row_of_entity[static_cast<size_t>(
               author_entity)]),
           Value::Int(paper_id)});
      DISTINCT_RETURN_IF_ERROR(pub_row.status());
      dataset.entity_of_publish_row.push_back(author_entity);

      const Entity& entity = entities[static_cast<size_t>(author_entity)];
      if (entity.is_ambiguous) {
        AmbiguousCase& c = cases[static_cast<size_t>(entity.case_index)];
        c.publish_rows.push_back(static_cast<int32_t>(*pub_row));
        c.truth.push_back(entity.case_entity_index);
      }
    }
  }

  dataset.db = std::move(db);
  dataset.cases = std::move(cases);
  return dataset;
}

}  // namespace distinct
