// The DBLP schema of the paper's Fig. 2, expressed in this library's
// relational engine.
//
//   Authors(author_id PK, name)
//   Publish(pub_id PK, author_id -> Authors, paper_id -> Publications)
//   Publications(paper_id PK, title, proc_id -> Proceedings)
//   Proceedings(proc_id PK, conf_id -> Conferences, year, location)
//   Conferences(conf_id PK, name, publisher)
//
// Natural keys from the figure (author name, conference name) are replaced
// by surrogate int64 keys; the promoted attributes (year, location,
// publisher) carry the figure's non-key attribute linkage.

#ifndef DISTINCT_DBLP_SCHEMA_H_
#define DISTINCT_DBLP_SCHEMA_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "relational/reference_spec.h"

namespace distinct {

/// Table name constants.
inline constexpr char kAuthorsTable[] = "Authors";
inline constexpr char kPublishTable[] = "Publish";
inline constexpr char kPublicationsTable[] = "Publications";
inline constexpr char kProceedingsTable[] = "Proceedings";
inline constexpr char kConferencesTable[] = "Conferences";

/// An empty database with the five DBLP tables.
StatusOr<Database> MakeEmptyDblpDatabase();

/// References are Publish rows; names live in Authors.name.
ReferenceSpec DblpReferenceSpec();

/// The non-key attributes DISTINCT promotes to tuples on this schema:
/// Proceedings.year, Proceedings.location, Conferences.publisher.
std::vector<std::pair<std::string, std::string>> DblpDefaultPromotions();

}  // namespace distinct

#endif  // DISTINCT_DBLP_SCHEMA_H_
