// Synthetic DBLP generator with exact ground truth.
//
// Substitutes for the 2006 DBLP snapshot the paper evaluates on (see
// DESIGN.md §5). The generator reproduces the structural properties
// DISTINCT exploits:
//   - authors belong to collaboration communities (affiliation eras) and
//     co-publish inside them, so references of one person share coauthors;
//   - communities publish in the conferences of their research area, so
//     references of one person share venues;
//   - some authors migrate between communities, producing the weakly linked
//     reference partitions that motivate the collective random walk (§4.1);
//   - ambiguous names are planted by assigning one full name to several
//     distinct entities placed in different communities, with reference
//     counts split by a heavy-tailed distribution as in the paper's Wei
//     Wang case (57/31/19/5/...).
// Ground truth (Publish row -> entity) is emitted by construction.

#ifndef DISTINCT_DBLP_GENERATOR_H_
#define DISTINCT_DBLP_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/database.h"

namespace distinct {

/// One planted ambiguous name: `num_entities` distinct people who all carry
/// `name` and together account for `num_refs` Publish rows.
struct AmbiguousNameSpec {
  std::string name;
  int num_entities = 0;
  int num_refs = 0;
};

/// The ten names of the paper's Table 1 with their (#authors, #refs).
std::vector<AmbiguousNameSpec> PaperTable1Specs();

/// Generator parameters. Defaults produce a database of roughly 1,000
/// regular authors, 8,000 papers, and 25,000 references in well under a
/// second — about 20x smaller than the paper's DBLP snapshot but with the
/// same shape.
struct GeneratorConfig {
  uint64_t seed = 42;

  // Community structure.
  int num_communities = 40;
  int authors_per_community = 25;
  /// Communities per research area; communities in one area share venues.
  int communities_per_area = 4;
  int conferences_per_area = 8;
  /// Each author mostly publishes in a personal subset of the area's
  /// conferences; this keeps venue overlap high within one person's papers
  /// and moderate between same-area strangers, as in the real DBLP.
  int venues_per_author = 2;
  double venue_loyalty = 0.75;

  // Publication volume.
  int start_year = 1991;
  int end_year = 2006;
  double papers_per_community_year = 13.0;  // Poisson mean
  double mean_coauthors_per_paper = 2.2;    // beyond the lead author

  // Linkage structure.
  /// Probability a regular author has a second community (migration).
  double migration_prob = 0.15;
  /// Probability a coauthor slot is filled from a random other community.
  double cross_community_coauthor_prob = 0.08;
  /// Probability a coauthor slot is filled from the lead author's recurring
  /// collaborators rather than the whole community. Recurring collaborators
  /// are what make references of one person link through shared coauthors
  /// — the signal DISTINCT exploits (paper §1).
  double collaborator_affinity = 0.75;
  /// Recurring collaborators per author (per affiliation era).
  int preferred_collaborators = 2;
  /// After migrating, authors still occasionally publish with their old
  /// group: probability a coauthor slot in the second era is filled from
  /// the home-era collaborators. These few cross-era links are what the
  /// collective random walk can exploit but Average-Link dilutes away
  /// (paper §4.1).
  double old_collaborator_prob = 0.15;

  // Vocabulary sizes.
  int num_publishers = 8;
  int num_locations = 48;
  size_t first_name_pool = 400;
  size_t last_name_pool = 800;
  double name_zipf_exponent = 0.75;

  /// Planted ambiguous names; empty means PaperTable1Specs().
  std::vector<AmbiguousNameSpec> ambiguous;

  /// Regular authors created per ambiguous name who share its first or last
  /// name part (e.g. "Wei Kelvaris", "Bramor Wang"). Real bibliographies
  /// contain many such part-mates; without them the rare-name heuristic
  /// would wrongly consider the planted names unique and poison the
  /// training set with cross-entity positives.
  int part_decoys_per_ambiguous_name = 8;
};

/// Ground truth for one planted ambiguous name.
struct AmbiguousCase {
  std::string name;
  int num_entities = 0;
  /// The Publish rows carrying this name, parallel to `truth`.
  std::vector<int32_t> publish_rows;
  /// truth[i]: dense entity index (0..num_entities-1) of publish_rows[i].
  std::vector<int> truth;
  /// Display name per entity, e.g. "Wei Wang @ University of Velmar".
  std::vector<std::string> entity_names;
};

/// A generated database plus its ground truth.
struct DblpDataset {
  Database db;
  std::vector<AmbiguousCase> cases;
  /// Global entity id of every Publish row (covers regular authors too;
  /// regular entities never share ids even when names collide by chance).
  std::vector<int> entity_of_publish_row;
  int num_entities = 0;
};

/// Generates a dataset. Deterministic in `config.seed`.
StatusOr<DblpDataset> GenerateDblpDataset(const GeneratorConfig& config);

}  // namespace distinct

#endif  // DISTINCT_DBLP_GENERATOR_H_
