#include "dblp/stats.h"

#include <unordered_map>

#include "common/string_util.h"
#include "dblp/schema.h"

namespace distinct {

std::string DblpStats::DebugString() const {
  std::string out = StrFormat(
      "authors(names)=%lld papers=%lld references=%lld conferences=%lld "
      "proceedings=%lld refs/paper=%.2f refs/name=%.2f\n",
      static_cast<long long>(num_author_names),
      static_cast<long long>(num_papers),
      static_cast<long long>(num_references),
      static_cast<long long>(num_conferences),
      static_cast<long long>(num_proceedings), refs_per_paper,
      refs_per_name);
  out += StrFormat(
      "names by ref count: 1:%lld 2:%lld 3-5:%lld 6-10:%lld 11+:%lld",
      static_cast<long long>(name_count_by_refs[0]),
      static_cast<long long>(name_count_by_refs[1]),
      static_cast<long long>(name_count_by_refs[2]),
      static_cast<long long>(name_count_by_refs[3]),
      static_cast<long long>(name_count_by_refs[4]));
  return out;
}

StatusOr<DblpStats> ComputeDblpStats(const Database& db) {
  DblpStats stats;
  auto authors = db.FindTable(kAuthorsTable);
  DISTINCT_RETURN_IF_ERROR(authors.status());
  auto publications = db.FindTable(kPublicationsTable);
  DISTINCT_RETURN_IF_ERROR(publications.status());
  auto publish = db.FindTable(kPublishTable);
  DISTINCT_RETURN_IF_ERROR(publish.status());
  auto conferences = db.FindTable(kConferencesTable);
  DISTINCT_RETURN_IF_ERROR(conferences.status());
  auto proceedings = db.FindTable(kProceedingsTable);
  DISTINCT_RETURN_IF_ERROR(proceedings.status());

  stats.num_author_names = (*authors)->num_rows();
  stats.num_papers = (*publications)->num_rows();
  stats.num_references = (*publish)->num_rows();
  stats.num_conferences = (*conferences)->num_rows();
  stats.num_proceedings = (*proceedings)->num_rows();
  if (stats.num_papers > 0) {
    stats.refs_per_paper = static_cast<double>(stats.num_references) /
                           static_cast<double>(stats.num_papers);
  }
  if (stats.num_author_names > 0) {
    stats.refs_per_name = static_cast<double>(stats.num_references) /
                          static_cast<double>(stats.num_author_names);
  }

  auto author_col = (*publish)->ColumnIndex("author_id");
  DISTINCT_RETURN_IF_ERROR(author_col.status());
  std::unordered_map<int64_t, int64_t> refs_per_author;
  for (int64_t row = 0; row < (*publish)->num_rows(); ++row) {
    ++refs_per_author[(*publish)->GetInt(row, *author_col)];
  }
  for (const auto& [author, count] : refs_per_author) {
    if (count == 1) {
      ++stats.name_count_by_refs[0];
    } else if (count == 2) {
      ++stats.name_count_by_refs[1];
    } else if (count <= 5) {
      ++stats.name_count_by_refs[2];
    } else if (count <= 10) {
      ++stats.name_count_by_refs[3];
    } else {
      ++stats.name_count_by_refs[4];
    }
  }
  return stats;
}

StatusOr<int64_t> CountReferencesForName(const Database& db,
                                         const ReferenceSpec& spec,
                                         const std::string& name) {
  auto resolved = ResolveReferenceSpec(db, spec);
  DISTINCT_RETURN_IF_ERROR(resolved.status());
  const Table& name_table = db.table(resolved->name_table_id);
  const Table& ref_table = db.table(resolved->reference_table_id);

  // Find the name row.
  int64_t name_pk = -1;
  for (int64_t row = 0; row < name_table.num_rows(); ++row) {
    if (name_table.GetString(row, resolved->name_column) == name) {
      name_pk = name_table.GetInt(row, name_table.primary_key_column());
      break;
    }
  }
  if (name_pk < 0) {
    return static_cast<int64_t>(0);
  }
  int64_t count = 0;
  for (int64_t row = 0; row < ref_table.num_rows(); ++row) {
    if (!ref_table.IsNull(row, resolved->identity_column) &&
        ref_table.GetInt(row, resolved->identity_column) == name_pk) {
      ++count;
    }
  }
  return count;
}

}  // namespace distinct
