// Loads a dblp.xml-shaped document into the DBLP relational schema.
//
// The paper evaluates on the real DBLP dump; this loader lets the pipeline
// run unchanged on that dump when available (the synthetic generator stands
// in for it offline — see DESIGN.md §5). Publication records (<article>,
// <inproceedings>, <incollection>, <book>) become Publications rows, their
// <author> children become Publish references, and venue/year pairs become
// Conferences/Proceedings rows.

#ifndef DISTINCT_DBLP_XML_LOADER_H_
#define DISTINCT_DBLP_XML_LOADER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "relational/database.h"

namespace distinct {

struct XmlLoadOptions {
  /// Drop authors with fewer references than this after loading (the paper
  /// removes authors with no more than 2 papers). 0 keeps everyone.
  int min_refs_per_author = 0;
};

struct XmlLoadResult {
  Database db;
  int64_t records_loaded = 0;
  int64_t records_skipped = 0;  // unsupported element kinds
};

/// Parses `content` as DBLP XML and builds the database.
StatusOr<XmlLoadResult> LoadDblpXml(const std::string& content,
                                    const XmlLoadOptions& options = {});

/// Reads and parses `path`.
StatusOr<XmlLoadResult> LoadDblpXmlFile(const std::string& path,
                                        const XmlLoadOptions& options = {});

}  // namespace distinct

#endif  // DISTINCT_DBLP_XML_LOADER_H_
