#include "dblp/name_pool.h"

#include <array>

#include "common/logging.h"

namespace distinct {
namespace {

// Onsets and codas chosen so compounds read as plausible names while being
// disjoint from real English given names.
constexpr std::array<const char*, 20> kOnsets = {
    "bra", "kel", "vor", "mi",  "tor", "sa",  "len", "dro", "fa",  "gri",
    "hol", "jun", "pel", "qua", "ras", "sol", "tam", "ulv", "wes", "zan"};
constexpr std::array<const char*, 18> kMiddles = {
    "",    "la", "ri", "no", "ve", "di", "mo", "su", "ka",
    "lin", "ta", "re", "bo", "ni", "ga", "lu", "pe", "sha"};
constexpr std::array<const char*, 16> kEndings = {
    "n",   "ris", "mar", "dal", "vik", "sen", "tov", "lin",
    "der", "mos", "nak", "rel", "gan", "bert", "win", "dor"};

void CapitalizeInPlace(std::string& word) {
  if (!word.empty() && word[0] >= 'a' && word[0] <= 'z') {
    word[0] = static_cast<char>(word[0] - 'a' + 'A');
  }
}

/// Deterministic syllable compound for `index`; distinct for distinct
/// indices below kOnsets * kMiddles * kEndings = 5760.
std::string CompoundName(size_t index, size_t salt) {
  const size_t mixed = index * 2654435761u + salt * 40503u;
  const size_t onset = mixed % kOnsets.size();
  const size_t middle = (mixed / kOnsets.size()) % kMiddles.size();
  const size_t ending =
      (mixed / (kOnsets.size() * kMiddles.size())) % kEndings.size();
  std::string name = kOnsets[onset];
  name += kMiddles[middle];
  name += kEndings[ending];
  // Guarantee distinctness beyond the combinatorial space.
  const size_t cycle = index / (kOnsets.size() * kMiddles.size() *
                                kEndings.size());
  if (cycle > 0) {
    name += static_cast<char>('a' + static_cast<int>(cycle % 26));
  }
  CapitalizeInPlace(name);
  return name;
}

}  // namespace

NamePool::NamePool(size_t num_first, size_t num_last, double zipf_s)
    : num_first_(num_first),
      num_last_(num_last),
      first_zipf_(num_first, zipf_s),
      last_zipf_(num_last, zipf_s) {
  DISTINCT_CHECK(num_first >= 1 && num_last >= 1);
}

std::string NamePool::FirstName(size_t rank) const {
  DISTINCT_CHECK(rank < num_first_);
  return CompoundName(rank, /*salt=*/1);
}

std::string NamePool::LastName(size_t rank) const {
  DISTINCT_CHECK(rank < num_last_);
  return CompoundName(rank, /*salt=*/2);
}

std::string NamePool::SampleFullName(Rng& rng) const {
  return FirstName(SampleFirstRank(rng)) + " " + LastName(SampleLastRank(rng));
}

std::string NamePool::InstitutionName(size_t index) {
  static constexpr std::array<const char*, 4> kKinds = {
      "University of ", "Institute of ", "Polytechnic of ", "College of "};
  return std::string(kKinds[index % kKinds.size()]) +
         CompoundName(index, /*salt=*/3);
}

}  // namespace distinct
