// Persisting generated datasets: the five DBLP tables as CSV plus a
// cases.csv carrying the planted ground truth, so experiments can be run
// from files (and by external tools) instead of regenerating in-process.
//
// cases.csv columns: name, entity_index, entity_label, publish_row — one
// row per ambiguous reference.

#ifndef DISTINCT_DBLP_DATASET_IO_H_
#define DISTINCT_DBLP_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "dblp/generator.h"

namespace distinct {

/// Writes `<dir>/<Table>.csv` for the five tables and `<dir>/cases.csv`.
/// The directory must exist.
Status SaveDataset(const DblpDataset& dataset, const std::string& directory);

/// Reads the five table CSVs into a fresh DBLP database.
StatusOr<Database> LoadDblpDatabaseCsv(const std::string& directory);

/// Reads `<dir>/cases.csv` (may legitimately be empty of data rows).
StatusOr<std::vector<AmbiguousCase>> LoadCasesCsv(
    const std::string& directory);

/// Loads database + cases. `entity_of_publish_row` covers only the
/// ambiguous rows after a reload (regular rows carry -1); `num_entities`
/// counts only case entities.
StatusOr<DblpDataset> LoadDataset(const std::string& directory);

}  // namespace distinct

#endif  // DISTINCT_DBLP_DATASET_IO_H_
