#include "dblp/xml_corpus.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/io_util.h"
#include "common/rng.h"
#include "dblp/name_pool.h"

namespace distinct {
namespace {

constexpr size_t kFlushBytes = 1 << 20;

/// Escapes the three characters XML text cannot carry raw. The generator's
/// vocabulary is alphanumeric, so this only fires for the titles that
/// deliberately embed '&'.
void AppendEscaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
}

class CorpusWriter {
 public:
  CorpusWriter(int fd, const std::string& path)
      : fd_(fd), path_(path) {
    buffer_.reserve(kFlushBytes + (64 << 10));
  }

  std::string& buffer() { return buffer_; }

  Status MaybeFlush() {
    if (buffer_.size() < kFlushBytes) {
      return Status::Ok();
    }
    return Flush();
  }

  Status Flush() {
    DISTINCT_RETURN_IF_ERROR(WriteFdAll(fd_, buffer_, "xml_corpus"));
    bytes_ += static_cast<int64_t>(buffer_.size());
    buffer_.clear();
    return Status::Ok();
  }

  int64_t bytes() const { return bytes_; }

 private:
  int fd_;
  std::string path_;
  std::string buffer_;
  int64_t bytes_ = 0;
};

}  // namespace

StatusOr<XmlCorpusStats> WriteSyntheticDblpXml(const std::string& path,
                                               const XmlCorpusConfig& config) {
  if (config.target_refs <= 0) {
    return InvalidArgumentError("xml_corpus: target_refs must be positive");
  }
  if (config.num_venues <= 0 || config.end_year < config.start_year) {
    return InvalidArgumentError("xml_corpus: malformed config");
  }
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return InternalError("xml_corpus: cannot open '" + path +
                         "': " + std::strerror(errno));
  }

  Rng rng(config.seed);
  NamePool names(config.first_name_pool, config.last_name_pool,
                 config.name_zipf_exponent);
  ZipfSampler venue_zipf(static_cast<size_t>(config.num_venues),
                         config.venue_zipf_exponent);
  std::vector<std::string> venues;
  venues.reserve(static_cast<size_t>(config.num_venues));
  for (int v = 0; v < config.num_venues; ++v) {
    venues.push_back(
        "Symposium on " +
        names.LastName(static_cast<size_t>(v) % names.num_last()) +
        " Systems");
  }

  CorpusWriter writer(fd, path);
  std::string& out = writer.buffer();
  out += "<?xml version=\"1.0\" encoding=\"ISO-8859-1\"?>\n<dblp>\n";

  XmlCorpusStats stats;
  Status status = Status::Ok();
  std::vector<std::string> paper_authors;
  while (stats.refs < config.target_refs && status.ok()) {
    const int64_t paper = stats.papers;
    const bool journal = rng.Bernoulli(config.journal_prob);
    const int year = static_cast<int>(
        rng.UniformInt(config.start_year, config.end_year));
    const std::string& venue = venues[venue_zipf.Sample(rng)];

    paper_authors.clear();
    const int num_authors = 1 + rng.Poisson(config.mean_coauthors);
    for (int a = 0; a < num_authors; ++a) {
      std::string name = names.SampleFullName(rng);
      bool duplicate = false;
      for (const std::string& existing : paper_authors) {
        duplicate = duplicate || existing == name;
      }
      if (!duplicate) {
        paper_authors.push_back(std::move(name));
      }
    }

    const char* element = journal ? "article" : "inproceedings";
    out += "<";
    out += element;
    out += " mdate=\"2006-0";
    out += static_cast<char>('1' + paper % 9);
    out += "-0";
    out += static_cast<char>('1' + paper % 7);
    // A few records carry a literal CRLF inside an attribute value, which
    // XML attribute-value normalization must fold to a single space.
    if (paper % 97 == 0) {
      out += "\r\n";
    }
    out += "\" key=\"";
    out += journal ? "journals/" : "conf/";
    out += std::to_string(paper);
    out += "\">\n";
    for (const std::string& author : paper_authors) {
      out += "  <author>";
      AppendEscaped(out, author);
      out += "</author>\n";
    }
    out += "  <title>";
    if (rng.Bernoulli(config.entity_title_prob)) {
      out += "Analysis &amp; Synthesis of ";
      AppendEscaped(out, names.LastName(static_cast<size_t>(
                             rng.UniformInt(0, 63))));
      out += " Structures &lt;rev. ";
      out += std::to_string(paper);
      out += "&gt;";
    } else {
      out += "On the ";
      out += names.FirstName(static_cast<size_t>(rng.UniformInt(0, 127)));
      out += " Properties of ";
      out += names.LastName(static_cast<size_t>(rng.UniformInt(0, 127)));
      out += " Systems (";
      out += std::to_string(paper);
      out += ")";
    }
    out += "</title>\n";
    out += journal ? "  <journal>" : "  <booktitle>";
    AppendEscaped(out, venue);
    out += journal ? "</journal>\n" : "</booktitle>\n";
    out += "  <year>";
    out += std::to_string(year);
    out += "</year>\n</";
    out += element;
    out += ">\n";

    stats.papers += 1;
    stats.refs += static_cast<int64_t>(paper_authors.size());

    if (rng.Bernoulli(config.noise_element_prob)) {
      out += "<www key=\"homepages/";
      out += std::to_string(paper);
      out += "\"><author>";
      AppendEscaped(out, paper_authors.front());
      out += "</author><url>https://example.org/";
      out += std::to_string(paper);
      out += "</url></www>\n";
    }
    status = writer.MaybeFlush();
  }

  if (status.ok()) {
    out += "</dblp>\n";
    status = writer.Flush();
  }
  if (status.ok() && ::fsync(fd) != 0) {
    status = InternalError("xml_corpus: fsync of '" + path +
                           "' failed: " + std::strerror(errno));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = InternalError("xml_corpus: close of '" + path +
                           "' failed: " + std::strerror(errno));
  }
  DISTINCT_RETURN_IF_ERROR(status);
  stats.bytes = writer.bytes();
  return stats;
}

}  // namespace distinct
