#include "dblp/schema.h"

namespace distinct {

StatusOr<Database> MakeEmptyDblpDatabase() {
  Database db;

  auto authors = Table::Create(
      kAuthorsTable,
      {ColumnSpec{"author_id", ColumnType::kInt64, /*is_primary_key=*/true,
                  ""},
       ColumnSpec{"name", ColumnType::kString, false, ""}});
  DISTINCT_RETURN_IF_ERROR(authors.status());

  auto conferences = Table::Create(
      kConferencesTable,
      {ColumnSpec{"conf_id", ColumnType::kInt64, true, ""},
       ColumnSpec{"name", ColumnType::kString, false, ""},
       ColumnSpec{"publisher", ColumnType::kString, false, ""}});
  DISTINCT_RETURN_IF_ERROR(conferences.status());

  auto proceedings = Table::Create(
      kProceedingsTable,
      {ColumnSpec{"proc_id", ColumnType::kInt64, true, ""},
       ColumnSpec{"conf_id", ColumnType::kInt64, false, kConferencesTable},
       ColumnSpec{"year", ColumnType::kInt64, false, ""},
       ColumnSpec{"location", ColumnType::kString, false, ""}});
  DISTINCT_RETURN_IF_ERROR(proceedings.status());

  auto publications = Table::Create(
      kPublicationsTable,
      {ColumnSpec{"paper_id", ColumnType::kInt64, true, ""},
       ColumnSpec{"title", ColumnType::kString, false, ""},
       ColumnSpec{"proc_id", ColumnType::kInt64, false, kProceedingsTable}});
  DISTINCT_RETURN_IF_ERROR(publications.status());

  auto publish = Table::Create(
      kPublishTable,
      {ColumnSpec{"pub_id", ColumnType::kInt64, true, ""},
       ColumnSpec{"author_id", ColumnType::kInt64, false, kAuthorsTable},
       ColumnSpec{"paper_id", ColumnType::kInt64, false,
                  kPublicationsTable}});
  DISTINCT_RETURN_IF_ERROR(publish.status());

  for (auto* table : {&authors, &conferences, &proceedings, &publications,
                      &publish}) {
    auto id = db.AddTable(*std::move(*table));
    DISTINCT_RETURN_IF_ERROR(id.status());
  }
  return db;
}

ReferenceSpec DblpReferenceSpec() {
  ReferenceSpec spec;
  spec.reference_table = kPublishTable;
  spec.identity_column = "author_id";
  spec.name_table = kAuthorsTable;
  spec.name_column = "name";
  return spec;
}

std::vector<std::pair<std::string, std::string>> DblpDefaultPromotions() {
  return {
      {kProceedingsTable, "year"},
      {kProceedingsTable, "location"},
      {kConferencesTable, "publisher"},
  };
}

}  // namespace distinct
