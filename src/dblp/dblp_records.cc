#include "dblp/dblp_records.h"

#include <utility>

#include "common/string_util.h"

namespace distinct {

bool IsDblpPublicationElement(std::string_view name) {
  return name == "article" || name == "inproceedings" ||
         name == "incollection" || name == "book";
}

void DblpRecordHandler::OnStartElement(
    std::string_view name, const std::vector<XmlAttribute>& /*attributes*/) {
  if (!status_.ok()) {
    return;
  }
  if (IsDblpPublicationElement(name)) {
    in_record_ = true;
    current_ = DblpRecord();
    return;
  }
  if (!in_record_) {
    if (name != "dblp") {
      ++skipped_;
    }
    return;
  }
  field_ = name;
  text_.clear();
}

void DblpRecordHandler::OnEndElement(std::string_view name) {
  if (!status_.ok()) {
    return;
  }
  if (IsDblpPublicationElement(name)) {
    if (!current_.authors.empty()) {
      ++records_;
      status_ = on_record_(std::move(current_));
    } else {
      ++skipped_;
    }
    in_record_ = false;
    field_.clear();
    return;
  }
  if (!in_record_) {
    return;
  }
  const std::string value(StripWhitespace(text_));
  if (field_ == "author" || field_ == "editor") {
    if (!value.empty()) {
      current_.authors.push_back(value);
    }
  } else if (field_ == "title") {
    current_.title = value;
  } else if (field_ == "booktitle" ||
             (field_ == "journal" && current_.venue.empty())) {
    current_.venue = value;
  } else if (field_ == "year") {
    if (auto year = ParseInt64(value); year.has_value()) {
      current_.year = *year;
    }
  }
  field_.clear();
  text_.clear();
}

void DblpRecordHandler::OnText(std::string_view text) {
  if (status_.ok() && in_record_ && !field_.empty()) {
    text_ += text;
  }
}

}  // namespace distinct
