// Synthetic person-name pools with Zipfian frequency.
//
// The automatic training-set construction (paper §3) depends on real
// bibliographies containing many rare (first, last) combinations; sampling
// first and last names independently from Zipf-distributed pools reproduces
// that: a few names dominate while a long tail of combinations occurs once
// or twice. Names are deterministic syllable compounds ("Bramor Kelvaris"),
// so they never collide with the paper's planted ambiguous names.

#ifndef DISTINCT_DBLP_NAME_POOL_H_
#define DISTINCT_DBLP_NAME_POOL_H_

#include <cstdint>
#include <string>

#include "common/rng.h"

namespace distinct {

/// Deterministic pools of `num_first` first and `num_last` last names.
class NamePool {
 public:
  /// `zipf_s` is the Zipf exponent for both pools (> 0).
  NamePool(size_t num_first, size_t num_last, double zipf_s);

  size_t num_first() const { return num_first_; }
  size_t num_last() const { return num_last_; }

  /// The i-th first/last name by popularity rank (0 = most common).
  std::string FirstName(size_t rank) const;
  std::string LastName(size_t rank) const;

  /// Samples rank indices from the Zipf distributions.
  size_t SampleFirstRank(Rng& rng) const { return first_zipf_.Sample(rng); }
  size_t SampleLastRank(Rng& rng) const { return last_zipf_.Sample(rng); }

  /// "First Last" with both parts Zipf-sampled.
  std::string SampleFullName(Rng& rng) const;

  /// Deterministic institution-style name for community labeling,
  /// e.g. "University of Velmar".
  static std::string InstitutionName(size_t index);

 private:
  size_t num_first_;
  size_t num_last_;
  ZipfSampler first_zipf_;
  ZipfSampler last_zipf_;
};

}  // namespace distinct

#endif  // DISTINCT_DBLP_NAME_POOL_H_
