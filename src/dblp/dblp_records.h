// Record assembly over the dblp.xml SAX event stream, shared by the
// in-memory loader (dblp/xml_loader) and the streaming catalog ingester
// (catalog/ingest).
//
// Both consumers must agree byte-for-byte on what a publication record is —
// which elements count, how author/editor children fold in, how whitespace
// and missing fields are treated — because the differential contract of the
// columnar catalog is that resolver output over an ingested catalog is
// bit-identical to the in-memory path. Keeping the assembly logic in one
// class makes that agreement structural instead of a convention.

#ifndef DISTINCT_DBLP_DBLP_RECORDS_H_
#define DISTINCT_DBLP_DBLP_RECORDS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/xml_parser.h"

namespace distinct {

/// One publication record accumulated from the XML stream.
struct DblpRecord {
  std::vector<std::string> authors;  // <author> and <editor>, stripped
  std::string title;
  std::string venue;  // booktitle, else journal; may be empty
  int64_t year = -1;  // -1 when absent or unparsable
};

/// <article>, <inproceedings>, <incollection>, <book>.
bool IsDblpPublicationElement(std::string_view name);

/// SAX handler that assembles DblpRecords and hands each completed record
/// (in document order) to `on_record`. Records without any author are
/// counted as skipped, like unsupported top-level elements. A non-OK
/// status returned by the sink is sticky: assembly stops consuming events
/// and the failure is reported by status() — the streaming driver checks
/// it between Feed() calls and aborts the parse.
class DblpRecordHandler : public XmlHandler {
 public:
  using RecordSink = std::function<Status(DblpRecord&&)>;

  explicit DblpRecordHandler(RecordSink on_record)
      : on_record_(std::move(on_record)) {}

  void OnStartElement(std::string_view name,
                      const std::vector<XmlAttribute>& attributes) override;
  void OnEndElement(std::string_view name) override;
  void OnText(std::string_view text) override;

  /// First non-OK status returned by the sink (assembly already stopped).
  const Status& status() const { return status_; }
  int64_t records() const { return records_; }
  int64_t skipped() const { return skipped_; }

 private:
  RecordSink on_record_;
  bool in_record_ = false;
  DblpRecord current_;
  std::string field_;
  std::string text_;
  Status status_ = Status::Ok();
  int64_t records_ = 0;
  int64_t skipped_ = 0;
};

}  // namespace distinct

#endif  // DISTINCT_DBLP_DBLP_RECORDS_H_
