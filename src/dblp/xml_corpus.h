// Scaled synthetic dblp.xml corpus generator.
//
// src/dblp/generator.cc builds an in-memory Database with planted ground
// truth; this generator targets the other end of the pipeline — the XML
// surface itself — so the streaming ingester can be exercised at DBLP
// scale without the real dump. It writes a dblp.xml-shaped document of any
// requested size in streaming fashion (constant memory, buffered writes),
// deterministic in the seed: CI generates ~100k references in well under a
// second, an overnight run can emit millions.
//
// The output deliberately exercises the parser's hard paths: entity
// references in titles, CRLF line breaks inside attribute values, and
// non-publication elements (<www>, <phdthesis>) the record assembler must
// skip-count.

#ifndef DISTINCT_DBLP_XML_CORPUS_H_
#define DISTINCT_DBLP_XML_CORPUS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace distinct {

struct XmlCorpusConfig {
  uint64_t seed = 42;
  /// Papers are emitted until at least this many author references exist.
  int64_t target_refs = 100000;

  // Vocabulary shape (Zipf-skewed like the real DBLP).
  int num_venues = 64;
  double venue_zipf_exponent = 0.8;
  size_t first_name_pool = 400;
  size_t last_name_pool = 800;
  double name_zipf_exponent = 0.75;

  // Per-paper shape.
  double mean_coauthors = 1.2;  // beyond the lead author (Poisson)
  int start_year = 1991;
  int end_year = 2006;
  /// Fraction of records emitted as <article><journal> instead of
  /// <inproceedings><booktitle>.
  double journal_prob = 0.25;
  /// Fraction of titles carrying entity references (&amp; and friends).
  double entity_title_prob = 0.05;
  /// Fraction of records followed by a non-publication element the loader
  /// must skip (<www>, <phdthesis>).
  double noise_element_prob = 0.01;
};

struct XmlCorpusStats {
  int64_t papers = 0;
  int64_t refs = 0;
  int64_t bytes = 0;
};

/// Writes the corpus to `path` (overwriting). Deterministic in
/// `config.seed`: equal configs produce byte-identical files.
StatusOr<XmlCorpusStats> WriteSyntheticDblpXml(const std::string& path,
                                               const XmlCorpusConfig& config);

}  // namespace distinct

#endif  // DISTINCT_DBLP_XML_CORPUS_H_
