// Dataset statistics for the Table 1 harness and diagnostics.

#ifndef DISTINCT_DBLP_STATS_H_
#define DISTINCT_DBLP_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dblp/generator.h"
#include "relational/database.h"
#include "relational/reference_spec.h"

namespace distinct {

/// Global counts over a DBLP-shaped database.
struct DblpStats {
  int64_t num_author_names = 0;
  int64_t num_papers = 0;
  int64_t num_references = 0;
  int64_t num_conferences = 0;
  int64_t num_proceedings = 0;
  double refs_per_paper = 0.0;
  double refs_per_name = 0.0;
  /// Names carried by k references, for k buckets 1,2,3-5,6-10,11+.
  int64_t name_count_by_refs[5] = {0, 0, 0, 0, 0};

  std::string DebugString() const;
};

/// Computes counts. The database must follow the DBLP table names.
StatusOr<DblpStats> ComputeDblpStats(const Database& db);

/// Number of references carrying `name` (0 when the name is absent).
StatusOr<int64_t> CountReferencesForName(const Database& db,
                                         const ReferenceSpec& spec,
                                         const std::string& name);

}  // namespace distinct

#endif  // DISTINCT_DBLP_STATS_H_
