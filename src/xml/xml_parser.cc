#include "xml/xml_parser.h"

#include <cstdio>
#include <memory>

#include "common/string_util.h"

namespace distinct {
namespace {

struct NamedEntity {
  const char* name;
  const char* utf8;
};

// Predefined XML entities plus the latin-1 names DBLP author strings use.
constexpr NamedEntity kNamedEntities[] = {
    {"amp", "&"},      {"lt", "<"},       {"gt", ">"},
    {"quot", "\""},    {"apos", "'"},     {"nbsp", " "},
    {"auml", "ä"}, {"ouml", "ö"}, {"uuml", "ü"},
    {"Auml", "Ä"}, {"Ouml", "Ö"}, {"Uuml", "Ü"},
    {"szlig", "ß"}, {"eacute", "é"}, {"egrave", "è"},
    {"aacute", "á"}, {"agrave", "à"}, {"iacute", "í"},
    {"oacute", "ó"}, {"uacute", "ú"}, {"ccedil", "ç"},
    {"ntilde", "ñ"}, {"atilde", "ã"}, {"otilde", "õ"},
    {"acirc", "â"}, {"ecirc", "ê"}, {"icirc", "î"},
    {"ocirc", "ô"}, {"ucirc", "û"}, {"aring", "å"},
    {"oslash", "ø"}, {"aelig", "æ"},
};

void AppendUtf8(std::string& out, uint32_t codepoint) {
  if (codepoint <= 0x7f) {
    out += static_cast<char>(codepoint);
  } else if (codepoint <= 0x7ff) {
    out += static_cast<char>(0xc0 | (codepoint >> 6));
    out += static_cast<char>(0x80 | (codepoint & 0x3f));
  } else if (codepoint <= 0xffff) {
    out += static_cast<char>(0xe0 | (codepoint >> 12));
    out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (codepoint & 0x3f));
  } else {
    out += static_cast<char>(0xf0 | (codepoint >> 18));
    out += static_cast<char>(0x80 | ((codepoint >> 12) & 0x3f));
    out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (codepoint & 0x3f));
  }
}

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsXmlSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Cursor over the document with error reporting by byte offset.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  size_t pos() const { return pos_; }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < text_.size() ? text_[pos_ + offset] : '\0';
  }
  void Advance(size_t n = 1) { pos_ += n; }

  bool ConsumePrefix(std::string_view prefix) {
    if (text_.substr(pos_, prefix.size()) == prefix) {
      pos_ += prefix.size();
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (!AtEnd() && IsXmlSpace(Peek())) {
      Advance();
    }
  }

  /// Advances past `terminator`, returning false if it never occurs.
  bool SkipPast(std::string_view terminator) {
    const size_t found = text_.find(terminator, pos_);
    if (found == std::string_view::npos) {
      return false;
    }
    pos_ = found + terminator.size();
    return true;
  }

  std::string_view Slice(size_t begin, size_t end) const {
    return text_.substr(begin, end - begin);
  }

  Status Error(const std::string& what) const {
    return DataLossError(StrFormat("XML parse error at byte %zu: %s", pos_,
                                   what.c_str()));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<std::string> ReadName(Cursor& cursor) {
  if (cursor.AtEnd() || !IsNameStartChar(cursor.Peek())) {
    return cursor.Error("expected a name");
  }
  const size_t begin = cursor.pos();
  while (!cursor.AtEnd() && IsNameChar(cursor.Peek())) {
    cursor.Advance();
  }
  return std::string(cursor.Slice(begin, cursor.pos()));
}

StatusOr<std::vector<XmlAttribute>> ReadAttributes(Cursor& cursor) {
  std::vector<XmlAttribute> attributes;
  while (true) {
    cursor.SkipSpace();
    if (cursor.AtEnd()) {
      return cursor.Error("unterminated start tag");
    }
    const char c = cursor.Peek();
    if (c == '>' || c == '/' || c == '?') {
      return attributes;
    }
    auto name = ReadName(cursor);
    if (!name.ok()) {
      return name.status();
    }
    cursor.SkipSpace();
    if (cursor.AtEnd() || cursor.Peek() != '=') {
      return cursor.Error("expected '=' after attribute name");
    }
    cursor.Advance();
    cursor.SkipSpace();
    if (cursor.AtEnd() || (cursor.Peek() != '"' && cursor.Peek() != '\'')) {
      return cursor.Error("expected quoted attribute value");
    }
    const char quote = cursor.Peek();
    cursor.Advance();
    const size_t begin = cursor.pos();
    while (!cursor.AtEnd() && cursor.Peek() != quote) {
      cursor.Advance();
    }
    if (cursor.AtEnd()) {
      return cursor.Error("unterminated attribute value");
    }
    attributes.push_back(XmlAttribute{
        *std::move(name),
        DecodeXmlEntities(cursor.Slice(begin, cursor.pos()))});
    cursor.Advance();  // closing quote
  }
}

}  // namespace

void XmlHandler::OnStartElement(std::string_view /*name*/,
                                const std::vector<XmlAttribute>& /*attrs*/) {}
void XmlHandler::OnEndElement(std::string_view /*name*/) {}
void XmlHandler::OnText(std::string_view /*text*/) {}

std::string DecodeXmlEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c != '&') {
      out += c;
      ++i;
      continue;
    }
    const size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      out += c;  // Not a reference; keep the ampersand literally.
      ++i;
      continue;
    }
    const std::string_view body = text.substr(i + 1, semi - i - 1);
    if (!body.empty() && body[0] == '#') {
      uint32_t codepoint = 0;
      bool valid = body.size() > 1;
      if (body.size() > 2 && (body[1] == 'x' || body[1] == 'X')) {
        for (size_t k = 2; k < body.size() && valid; ++k) {
          const char h = body[k];
          codepoint <<= 4;
          if (h >= '0' && h <= '9') {
            codepoint |= static_cast<uint32_t>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            codepoint |= static_cast<uint32_t>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            codepoint |= static_cast<uint32_t>(h - 'A' + 10);
          } else {
            valid = false;
          }
        }
        valid = valid && body.size() > 2;
      } else {
        for (size_t k = 1; k < body.size() && valid; ++k) {
          if (body[k] < '0' || body[k] > '9') {
            valid = false;
          } else {
            codepoint = codepoint * 10 + static_cast<uint32_t>(body[k] - '0');
          }
        }
      }
      if (valid && codepoint > 0 && codepoint <= 0x10ffff) {
        AppendUtf8(out, codepoint);
        i = semi + 1;
        continue;
      }
    } else {
      bool matched = false;
      for (const NamedEntity& entity : kNamedEntities) {
        if (body == entity.name) {
          out += entity.utf8;
          matched = true;
          break;
        }
      }
      if (matched) {
        i = semi + 1;
        continue;
      }
    }
    out += c;  // Unknown reference: preserve literally.
    ++i;
  }
  return out;
}

Status XmlParser::Parse(std::string_view content, XmlHandler& handler) {
  Cursor cursor(content);
  std::vector<std::string> open_elements;

  while (!cursor.AtEnd()) {
    if (cursor.Peek() != '<') {
      // Character data up to the next tag.
      const size_t begin = cursor.pos();
      while (!cursor.AtEnd() && cursor.Peek() != '<') {
        cursor.Advance();
      }
      if (!open_elements.empty()) {
        const std::string decoded =
            DecodeXmlEntities(cursor.Slice(begin, cursor.pos()));
        if (!decoded.empty()) {
          handler.OnText(decoded);
        }
      }
      continue;
    }

    if (cursor.ConsumePrefix("<!--")) {
      if (!cursor.SkipPast("-->")) {
        return cursor.Error("unterminated comment");
      }
      continue;
    }
    if (cursor.ConsumePrefix("<![CDATA[")) {
      const size_t begin = cursor.pos();
      if (!cursor.SkipPast("]]>")) {
        return cursor.Error("unterminated CDATA section");
      }
      if (!open_elements.empty()) {
        handler.OnText(cursor.Slice(begin, cursor.pos() - 3));
      }
      continue;
    }
    if (cursor.ConsumePrefix("<!DOCTYPE")) {
      // Skip, honoring an optional internal subset in brackets.
      int depth = 0;
      while (!cursor.AtEnd()) {
        const char c = cursor.Peek();
        cursor.Advance();
        if (c == '[') {
          ++depth;
        } else if (c == ']') {
          --depth;
        } else if (c == '>' && depth <= 0) {
          break;
        }
      }
      continue;
    }
    if (cursor.ConsumePrefix("<?")) {
      if (!cursor.SkipPast("?>")) {
        return cursor.Error("unterminated processing instruction");
      }
      continue;
    }
    if (cursor.ConsumePrefix("</")) {
      cursor.SkipSpace();
      auto name = ReadName(cursor);
      if (!name.ok()) {
        return name.status();
      }
      cursor.SkipSpace();
      if (cursor.AtEnd() || cursor.Peek() != '>') {
        return cursor.Error("malformed end tag");
      }
      cursor.Advance();
      if (open_elements.empty() || open_elements.back() != *name) {
        return cursor.Error("mismatched end tag </" + *name + ">");
      }
      handler.OnEndElement(*name);
      open_elements.pop_back();
      continue;
    }

    // Start tag.
    cursor.Advance();  // '<'
    auto name = ReadName(cursor);
    if (!name.ok()) {
      return name.status();
    }
    auto attributes = ReadAttributes(cursor);
    if (!attributes.ok()) {
      return attributes.status();
    }
    if (cursor.ConsumePrefix("/>")) {
      handler.OnStartElement(*name, *attributes);
      handler.OnEndElement(*name);
      continue;
    }
    if (cursor.AtEnd() || cursor.Peek() != '>') {
      return cursor.Error("malformed start tag <" + *name + ">");
    }
    cursor.Advance();
    handler.OnStartElement(*name, *attributes);
    open_elements.push_back(*std::move(name));
  }

  if (!open_elements.empty()) {
    return DataLossError("XML parse error: unclosed element <" +
                         open_elements.back() + ">");
  }
  return Status::Ok();
}

Status XmlParser::ParseFile(const std::string& path, XmlHandler& handler) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return NotFoundError("cannot open file '" + path + "'");
  }
  std::string content;
  char buffer[1 << 16];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    content.append(buffer, read);
  }
  return Parse(content, handler);
}

}  // namespace distinct
