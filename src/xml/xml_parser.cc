#include "xml/xml_parser.h"

#include <fcntl.h>
#include <unistd.h>

#include <utility>

#include "common/io_util.h"
#include "common/string_util.h"

namespace distinct {
namespace {

struct NamedEntity {
  const char* name;
  const char* utf8;
};

// Predefined XML entities plus the latin-1 names DBLP author strings use.
constexpr NamedEntity kNamedEntities[] = {
    {"amp", "&"},      {"lt", "<"},       {"gt", ">"},
    {"quot", "\""},    {"apos", "'"},     {"nbsp", " "},
    {"auml", "ä"}, {"ouml", "ö"}, {"uuml", "ü"},
    {"Auml", "Ä"}, {"Ouml", "Ö"}, {"Uuml", "Ü"},
    {"szlig", "ß"}, {"eacute", "é"}, {"egrave", "è"},
    {"aacute", "á"}, {"agrave", "à"}, {"iacute", "í"},
    {"oacute", "ó"}, {"uacute", "ú"}, {"ccedil", "ç"},
    {"ntilde", "ñ"}, {"atilde", "ã"}, {"otilde", "õ"},
    {"acirc", "â"}, {"ecirc", "ê"}, {"icirc", "î"},
    {"ocirc", "ô"}, {"ucirc", "û"}, {"aring", "å"},
    {"oslash", "ø"}, {"aelig", "æ"},
};

/// An entity reference body never exceeds this many bytes between '&' and
/// ';' (DecodeXmlEntities treats longer runs as a literal ampersand). The
/// streaming parser holds back at most this much text at a chunk boundary.
constexpr size_t kMaxEntityBody = 12;

void AppendUtf8(std::string& out, uint32_t codepoint) {
  if (codepoint <= 0x7f) {
    out += static_cast<char>(codepoint);
  } else if (codepoint <= 0x7ff) {
    out += static_cast<char>(0xc0 | (codepoint >> 6));
    out += static_cast<char>(0x80 | (codepoint & 0x3f));
  } else if (codepoint <= 0xffff) {
    out += static_cast<char>(0xe0 | (codepoint >> 12));
    out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (codepoint & 0x3f));
  } else {
    out += static_cast<char>(0xf0 | (codepoint >> 18));
    out += static_cast<char>(0x80 | ((codepoint >> 12) & 0x3f));
    out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (codepoint & 0x3f));
  }
}

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsXmlSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// XML attribute-value normalization (spec §3.3.3, the non-validating
/// subset): CRLF and lone CR/LF/TAB become a single space each. Real DBLP
/// dumps carry hard-wrapped attribute values; without this a mdate/key
/// split across lines keeps a raw \r that corrupts downstream keys.
std::string NormalizeAttributeWhitespace(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (c == '\r') {
      if (i + 1 < raw.size() && raw[i + 1] == '\n') {
        ++i;  // CRLF collapses to one space
      }
      out += ' ';
    } else if (c == '\n' || c == '\t') {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

/// Cursor over one complete construct, reporting errors at global stream
/// offsets (`base` is the stream position of text[0]).
class Cursor {
 public:
  Cursor(std::string_view text, size_t base) : text_(text), base_(base) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  size_t pos() const { return pos_; }
  char Peek() const { return text_[pos_]; }
  void Advance(size_t n = 1) { pos_ += n; }

  bool ConsumePrefix(std::string_view prefix) {
    if (text_.substr(pos_, prefix.size()) == prefix) {
      pos_ += prefix.size();
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (!AtEnd() && IsXmlSpace(Peek())) {
      Advance();
    }
  }

  std::string_view Slice(size_t begin, size_t end) const {
    return text_.substr(begin, end - begin);
  }

  Status Error(const std::string& what) const {
    return DataLossError(StrFormat("XML parse error at byte %zu: %s",
                                   base_ + pos_, what.c_str()));
  }

 private:
  std::string_view text_;
  size_t base_ = 0;
  size_t pos_ = 0;
};

StatusOr<std::string> ReadName(Cursor& cursor) {
  if (cursor.AtEnd() || !IsNameStartChar(cursor.Peek())) {
    return cursor.Error("expected a name");
  }
  const size_t begin = cursor.pos();
  while (!cursor.AtEnd() && IsNameChar(cursor.Peek())) {
    cursor.Advance();
  }
  return std::string(cursor.Slice(begin, cursor.pos()));
}

StatusOr<std::vector<XmlAttribute>> ReadAttributes(Cursor& cursor) {
  std::vector<XmlAttribute> attributes;
  while (true) {
    cursor.SkipSpace();
    if (cursor.AtEnd()) {
      return cursor.Error("unterminated start tag");
    }
    const char c = cursor.Peek();
    if (c == '>' || c == '/' || c == '?') {
      return attributes;
    }
    auto name = ReadName(cursor);
    if (!name.ok()) {
      return name.status();
    }
    cursor.SkipSpace();
    if (cursor.AtEnd() || cursor.Peek() != '=') {
      return cursor.Error("expected '=' after attribute name");
    }
    cursor.Advance();
    cursor.SkipSpace();
    if (cursor.AtEnd() || (cursor.Peek() != '"' && cursor.Peek() != '\'')) {
      return cursor.Error("expected quoted attribute value");
    }
    const char quote = cursor.Peek();
    cursor.Advance();
    const size_t begin = cursor.pos();
    while (!cursor.AtEnd() && cursor.Peek() != quote) {
      cursor.Advance();
    }
    if (cursor.AtEnd()) {
      return cursor.Error("unterminated attribute value");
    }
    attributes.push_back(XmlAttribute{
        *std::move(name),
        DecodeXmlEntities(NormalizeAttributeWhitespace(
            cursor.Slice(begin, cursor.pos())))});
    cursor.Advance();  // closing quote
  }
}

/// True when `text` could still grow into `full` ("<!DOC" vs "<!DOCTYPE").
bool IsProperPrefix(std::string_view text, std::string_view full) {
  return text.size() < full.size() && full.substr(0, text.size()) == text;
}

}  // namespace

void XmlHandler::OnStartElement(std::string_view /*name*/,
                                const std::vector<XmlAttribute>& /*attrs*/) {}
void XmlHandler::OnEndElement(std::string_view /*name*/) {}
void XmlHandler::OnText(std::string_view /*text*/) {}

std::string DecodeXmlEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c != '&') {
      out += c;
      ++i;
      continue;
    }
    const size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > kMaxEntityBody) {
      out += c;  // Not a reference; keep the ampersand literally.
      ++i;
      continue;
    }
    const std::string_view body = text.substr(i + 1, semi - i - 1);
    if (!body.empty() && body[0] == '#') {
      uint32_t codepoint = 0;
      bool valid = body.size() > 1;
      if (body.size() > 2 && (body[1] == 'x' || body[1] == 'X')) {
        for (size_t k = 2; k < body.size() && valid; ++k) {
          const char h = body[k];
          codepoint <<= 4;
          if (h >= '0' && h <= '9') {
            codepoint |= static_cast<uint32_t>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            codepoint |= static_cast<uint32_t>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            codepoint |= static_cast<uint32_t>(h - 'A' + 10);
          } else {
            valid = false;
          }
        }
        valid = valid && body.size() > 2;
      } else {
        for (size_t k = 1; k < body.size() && valid; ++k) {
          if (body[k] < '0' || body[k] > '9') {
            valid = false;
          } else {
            codepoint = codepoint * 10 + static_cast<uint32_t>(body[k] - '0');
          }
        }
      }
      if (valid && codepoint > 0 && codepoint <= 0x10ffff) {
        AppendUtf8(out, codepoint);
        i = semi + 1;
        continue;
      }
    } else {
      bool matched = false;
      for (const NamedEntity& entity : kNamedEntities) {
        if (body == entity.name) {
          out += entity.utf8;
          matched = true;
          break;
        }
      }
      if (matched) {
        i = semi + 1;
        continue;
      }
    }
    out += c;  // Unknown reference: preserve literally.
    ++i;
  }
  return out;
}

XmlStreamParser::XmlStreamParser(XmlHandler& handler, XmlStreamOptions options)
    : handler_(&handler), options_(options) {}

Status XmlStreamParser::Pump(bool at_eof) {
  // `start` walks buffer_ over complete constructs; the consumed prefix is
  // erased once on exit so the carry-over allocation stays bounded.
  size_t start = 0;
  Status status = Status::Ok();

  auto error_at = [&](size_t offset, const std::string& what) {
    return DataLossError(StrFormat("XML parse error at byte %zu: %s",
                                   consumed_ + offset, what.c_str()));
  };

  while (start < buffer_.size() && status.ok()) {
    const std::string_view rest =
        std::string_view(buffer_).substr(start);

    if (rest[0] != '<') {
      // Character data up to the next tag.
      size_t lt = rest.find('<');
      size_t emit_end = lt == std::string_view::npos ? rest.size() : lt;
      if (lt == std::string_view::npos && !at_eof) {
        // Hold back a possible partial entity reference at the tail: a
        // '&' with no ';' yet could complete in the next chunk. Runs
        // longer than an entity body can't, and stay literal.
        const size_t amp = rest.rfind('&');
        if (amp != std::string_view::npos &&
            rest.find(';', amp) == std::string_view::npos &&
            rest.size() - amp <= kMaxEntityBody + 1) {
          emit_end = amp;
        }
        if (emit_end == 0) {
          break;  // need more bytes
        }
      }
      if (!open_elements_.empty()) {
        const std::string decoded =
            DecodeXmlEntities(rest.substr(0, emit_end));
        if (!decoded.empty()) {
          handler_->OnText(decoded);
        }
      }
      start += emit_end;
      continue;
    }

    // A markup construct. Classification needs up to 9 bytes
    // ("<![CDATA["); wait for them when the prefix is still ambiguous.
    if (!at_eof && (IsProperPrefix(rest, "<!--") ||
                    IsProperPrefix(rest, "<![CDATA[") ||
                    IsProperPrefix(rest, "<!DOCTYPE"))) {
      break;  // need more bytes
    }
    const size_t pending = buffer_.size() - start;
    const bool over_budget = pending > options_.max_token_bytes;

    if (rest.rfind("<!--", 0) == 0) {
      const size_t end = rest.find("-->", 4);
      if (end == std::string_view::npos) {
        if (over_budget) {
          status = OutOfRangeError(StrFormat(
              "XML parse error at byte %zu: comment exceeds the %zu-byte "
              "token buffer", consumed_ + start, options_.max_token_bytes));
        } else if (at_eof) {
          status = error_at(start + 4, "unterminated comment");
        }
        break;
      }
      start += end + 3;
      continue;
    }

    if (rest.rfind("<![CDATA[", 0) == 0) {
      const size_t end = rest.find("]]>", 9);
      if (end == std::string_view::npos) {
        if (over_budget) {
          status = OutOfRangeError(StrFormat(
              "XML parse error at byte %zu: CDATA section exceeds the "
              "%zu-byte token buffer", consumed_ + start,
              options_.max_token_bytes));
        } else if (at_eof) {
          status = error_at(start + 9, "unterminated CDATA section");
        }
        break;
      }
      if (!open_elements_.empty()) {
        handler_->OnText(rest.substr(9, end - 9));
      }
      start += end + 3;
      continue;
    }

    if (rest.rfind("<!DOCTYPE", 0) == 0) {
      // Skip, honoring an optional internal subset in brackets.
      int depth = 0;
      size_t end = std::string_view::npos;
      for (size_t i = 9; i < rest.size(); ++i) {
        const char c = rest[i];
        if (c == '[') {
          ++depth;
        } else if (c == ']') {
          --depth;
        } else if (c == '>' && depth <= 0) {
          end = i;
          break;
        }
      }
      if (end == std::string_view::npos) {
        if (over_budget) {
          status = OutOfRangeError(StrFormat(
              "XML parse error at byte %zu: DOCTYPE exceeds the %zu-byte "
              "token buffer", consumed_ + start, options_.max_token_bytes));
        } else if (at_eof) {
          status = error_at(start + 9, "unterminated DOCTYPE");
        }
        break;
      }
      start += end + 1;
      continue;
    }

    if (rest.rfind("<?", 0) == 0) {
      const size_t end = rest.find("?>", 2);
      if (end == std::string_view::npos) {
        if (over_budget) {
          status = OutOfRangeError(StrFormat(
              "XML parse error at byte %zu: processing instruction exceeds "
              "the %zu-byte token buffer", consumed_ + start,
              options_.max_token_bytes));
        } else if (at_eof) {
          status = error_at(start + 2, "unterminated processing instruction");
        }
        break;
      }
      start += end + 2;
      continue;
    }

    if (rest.rfind("</", 0) == 0) {
      const size_t end = rest.find('>', 2);
      if (end == std::string_view::npos) {
        if (over_budget) {
          status = OutOfRangeError(StrFormat(
              "XML parse error at byte %zu: end tag exceeds the %zu-byte "
              "token buffer", consumed_ + start, options_.max_token_bytes));
        } else if (at_eof) {
          status = error_at(start + 2, "malformed end tag");
        }
        break;
      }
      Cursor cursor(rest.substr(0, end + 1), consumed_ + start);
      cursor.Advance(2);
      cursor.SkipSpace();
      auto name = ReadName(cursor);
      if (!name.ok()) {
        status = name.status();
        break;
      }
      cursor.SkipSpace();
      if (cursor.AtEnd() || cursor.Peek() != '>') {
        status = cursor.Error("malformed end tag");
        break;
      }
      if (open_elements_.empty() || open_elements_.back() != *name) {
        status = cursor.Error("mismatched end tag </" + *name + ">");
        break;
      }
      handler_->OnEndElement(*name);
      open_elements_.pop_back();
      start += end + 1;
      continue;
    }

    // Start tag. Find its closing '>' outside quoted attribute values
    // (XML allows a literal '>' inside quotes).
    {
      size_t end = std::string_view::npos;
      char quote = '\0';
      for (size_t i = 1; i < rest.size(); ++i) {
        const char c = rest[i];
        if (quote != '\0') {
          if (c == quote) {
            quote = '\0';
          }
        } else if (c == '"' || c == '\'') {
          quote = c;
        } else if (c == '>') {
          end = i;
          break;
        }
      }
      if (end == std::string_view::npos) {
        if (over_budget) {
          status = OutOfRangeError(StrFormat(
              "XML parse error at byte %zu: start tag exceeds the %zu-byte "
              "token buffer", consumed_ + start, options_.max_token_bytes));
        } else if (at_eof) {
          // Distinguish "<" + garbage from a genuinely truncated tag so
          // the message names what was being parsed.
          Cursor cursor(rest, consumed_ + start);
          cursor.Advance(1);
          auto name = ReadName(cursor);
          if (!name.ok()) {
            status = name.status();
          } else {
            auto attributes = ReadAttributes(cursor);
            status = attributes.ok()
                         ? cursor.Error("unterminated start tag")
                         : attributes.status();
          }
        }
        break;
      }
      Cursor cursor(rest.substr(0, end + 1), consumed_ + start);
      cursor.Advance(1);  // '<'
      auto name = ReadName(cursor);
      if (!name.ok()) {
        status = name.status();
        break;
      }
      auto attributes = ReadAttributes(cursor);
      if (!attributes.ok()) {
        status = attributes.status();
        break;
      }
      if (cursor.ConsumePrefix("/>")) {
        handler_->OnStartElement(*name, *attributes);
        handler_->OnEndElement(*name);
      } else if (!cursor.AtEnd() && cursor.Peek() == '>') {
        handler_->OnStartElement(*name, *attributes);
        open_elements_.push_back(*std::move(name));
      } else {
        status = cursor.Error("malformed start tag <" + *name + ">");
        break;
      }
      start += end + 1;
      continue;
    }
  }

  consumed_ += start;
  buffer_.erase(0, start);
  if (status.ok() && buffer_.size() > options_.max_token_bytes) {
    status = OutOfRangeError(StrFormat(
        "XML parse error at byte %zu: construct exceeds the %zu-byte token "
        "buffer", consumed_, options_.max_token_bytes));
  }
  return status;
}

Status XmlStreamParser::Feed(std::string_view chunk) {
  if (!failed_.ok()) {
    return failed_;
  }
  if (finished_) {
    failed_ = FailedPreconditionError("XmlStreamParser: Feed after Finish");
    return failed_;
  }
  buffer_.append(chunk.data(), chunk.size());
  failed_ = Pump(/*at_eof=*/false);
  return failed_;
}

Status XmlStreamParser::Finish() {
  if (!failed_.ok()) {
    return failed_;
  }
  if (finished_) {
    failed_ = FailedPreconditionError("XmlStreamParser: Finish called twice");
    return failed_;
  }
  finished_ = true;
  failed_ = Pump(/*at_eof=*/true);
  if (!failed_.ok()) {
    return failed_;
  }
  if (!open_elements_.empty()) {
    failed_ = DataLossError("XML parse error: unclosed element <" +
                            open_elements_.back() + ">");
  }
  return failed_;
}

Status XmlParser::Parse(std::string_view content, XmlHandler& handler) {
  XmlStreamParser parser(handler);
  if (Status status = parser.Feed(content); !status.ok()) {
    return status;
  }
  return parser.Finish();
}

Status XmlParser::ParseFile(const std::string& path, XmlHandler& handler) {
  auto content = ReadFileToString(path, "xml");
  if (!content.ok()) {
    return content.status();
  }
  return Parse(*content, handler);
}

Status XmlParser::ParseFileStreaming(const std::string& path,
                                     XmlHandler& handler,
                                     XmlStreamOptions options) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return NotFoundError("cannot open file '" + path + "'");
  }
  XmlStreamParser parser(handler, options);
  char buffer[1 << 18];
  Status status = Status::Ok();
  for (;;) {
    auto n = ReadFdSome(fd, buffer, sizeof(buffer), "xml");
    if (!n.ok()) {
      status = n.status();
      break;
    }
    if (*n == 0) {
      status = parser.Finish();
      break;
    }
    if (status = parser.Feed(std::string_view(buffer, *n)); !status.ok()) {
      break;
    }
  }
  ::close(fd);
  return status;
}

}  // namespace distinct
