// A small SAX-style XML parser.
//
// Scope: enough of XML 1.0 to stream `dblp.xml`-shaped documents — elements,
// attributes, character data, comments, CDATA, processing instructions, a
// skipped DOCTYPE, numeric character references, the predefined entities,
// and the ISO latin named entities DBLP uses for author names. It is not a
// validating parser.

#ifndef DISTINCT_XML_XML_PARSER_H_
#define DISTINCT_XML_XML_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace distinct {

struct XmlAttribute {
  std::string name;
  std::string value;  // entity-decoded
};

/// Receives parse events. Default implementations ignore everything, so
/// handlers override only what they consume.
class XmlHandler {
 public:
  virtual ~XmlHandler() = default;

  /// `<name attr="v">` or `<name/>` (the latter also fires OnEndElement).
  virtual void OnStartElement(std::string_view name,
                              const std::vector<XmlAttribute>& attributes);

  virtual void OnEndElement(std::string_view name);

  /// Entity-decoded character data; may arrive in multiple chunks.
  virtual void OnText(std::string_view text);
};

/// Streaming parser over an in-memory document.
class XmlParser {
 public:
  /// Parses `content`, firing events on `handler`. Returns the first
  /// syntax error (with byte offset) or OK. Checks that tags balance.
  static Status Parse(std::string_view content, XmlHandler& handler);

  /// Convenience: reads `path` fully and parses it.
  static Status ParseFile(const std::string& path, XmlHandler& handler);
};

/// Decodes entity and character references in `text` ("&amp;" -> "&").
/// Unknown entities are preserved literally. Exposed for tests.
std::string DecodeXmlEntities(std::string_view text);

}  // namespace distinct

#endif  // DISTINCT_XML_XML_PARSER_H_
