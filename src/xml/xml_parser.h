// A small SAX-style XML parser.
//
// Scope: enough of XML 1.0 to stream `dblp.xml`-shaped documents — elements,
// attributes, character data, comments, CDATA, processing instructions, a
// skipped DOCTYPE, numeric character references, the predefined entities,
// and the ISO latin named entities DBLP uses for author names. It is not a
// validating parser.
//
// Two entry points share one implementation:
//   * XmlParser::Parse / ParseFile — whole document in one call.
//   * XmlStreamParser — push chunks of any size with Feed(); the parser
//     holds only the bytes of the one construct currently straddling a
//     chunk boundary (a tag, comment, CDATA section, or a possible partial
//     entity reference at the tail of a text run), so a multi-GB document
//     parses in O(max_token_bytes) memory. A single construct larger than
//     the bound is rejected with OutOfRange instead of being truncated.

#ifndef DISTINCT_XML_XML_PARSER_H_
#define DISTINCT_XML_XML_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace distinct {

struct XmlAttribute {
  std::string name;
  std::string value;  // entity-decoded, whitespace-normalized
};

/// Receives parse events. Default implementations ignore everything, so
/// handlers override only what they consume.
class XmlHandler {
 public:
  virtual ~XmlHandler() = default;

  /// `<name attr="v">` or `<name/>` (the latter also fires OnEndElement).
  virtual void OnStartElement(std::string_view name,
                              const std::vector<XmlAttribute>& attributes);

  virtual void OnEndElement(std::string_view name);

  /// Entity-decoded character data; may arrive in multiple chunks.
  virtual void OnText(std::string_view text);
};

struct XmlStreamOptions {
  /// Upper bound on the bytes of ONE construct (start tag with all its
  /// attributes, comment, CDATA section, DOCTYPE, or processing
  /// instruction). A construct still unterminated past this bound fails
  /// with OutOfRange — the guard that keeps the carry-over buffer bounded
  /// on hostile or corrupt input.
  size_t max_token_bytes = 1 << 20;
};

/// Incremental push parser: call Feed() with consecutive chunks of the
/// document (any sizes, including splitting tags/entities anywhere), then
/// Finish() exactly once. Errors are sticky — after a non-OK return every
/// later call returns the same status. Events fire during Feed/Finish in
/// document order; OnText may deliver one text run in several pieces.
class XmlStreamParser {
 public:
  explicit XmlStreamParser(XmlHandler& handler, XmlStreamOptions options = {});

  Status Feed(std::string_view chunk);

  /// Signals end of input: flushes trailing text and checks that no
  /// element, comment, CDATA section, DOCTYPE, or entity-bearing tag is
  /// left open.
  Status Finish();

  /// Bytes of the document fully consumed so far (error offsets refer to
  /// this stream position).
  size_t bytes_consumed() const { return consumed_; }

 private:
  /// Parses every complete construct available in buffer_; leaves an
  /// incomplete tail (if any) for the next Feed. `at_eof` turns
  /// "need more bytes" into the matching unterminated-construct error.
  Status Pump(bool at_eof);

  XmlHandler* handler_;
  XmlStreamOptions options_;
  std::string buffer_;  // unconsumed tail; bounded by max_token_bytes
  size_t consumed_ = 0;  // global offset of buffer_[0]
  std::vector<std::string> open_elements_;
  Status failed_ = Status::Ok();  // sticky error
  bool finished_ = false;
};

/// Streaming parser over an in-memory document.
class XmlParser {
 public:
  /// Parses `content`, firing events on `handler`. Returns the first
  /// syntax error (with byte offset) or OK. Checks that tags balance.
  static Status Parse(std::string_view content, XmlHandler& handler);

  /// Convenience: reads `path` fully and parses it.
  static Status ParseFile(const std::string& path, XmlHandler& handler);

  /// Streams `path` through a bounded buffer (never materialising the
  /// document) — the entry point for multi-GB dblp.xml inputs.
  static Status ParseFileStreaming(const std::string& path,
                                   XmlHandler& handler,
                                   XmlStreamOptions options = {});
};

/// Decodes entity and character references in `text` ("&amp;" -> "&").
/// Unknown entities are preserved literally. Exposed for tests.
std::string DecodeXmlEntities(std::string_view text);

}  // namespace distinct

#endif  // DISTINCT_XML_XML_PARSER_H_
