#include "relational/join_path.h"

#include <algorithm>

namespace distinct {

int JoinPath::EndNode(const SchemaGraph& graph) const {
  int node = start_node;
  for (const JoinStep& step : steps) {
    node = graph.Traverse(node, IncidentEdge{step.edge_id, step.forward});
  }
  return node;
}

std::string JoinPath::Describe(const SchemaGraph& graph) const {
  std::string out = graph.node(start_node).name;
  int node = start_node;
  for (const JoinStep& step : steps) {
    const SchemaEdge& edge = graph.edge(step.edge_id);
    const Table& table = graph.db().table(edge.table_id);
    const std::string& col = table.column(edge.column).name;
    node = graph.Traverse(node, IncidentEdge{step.edge_id, step.forward});
    if (step.forward) {
      out += " -" + col + "-> ";
    } else {
      out += " <-" + col + "- ";
    }
    out += graph.node(node).name;
  }
  return out;
}

std::vector<JoinPath> EnumerateJoinPaths(
    const SchemaGraph& graph, int start_node,
    const PathEnumerationOptions& options) {
  std::vector<JoinPath> result;
  // Frontier of partial walks, extended one step per round so the output is
  // ordered by length, then lexicographically by edge ids.
  std::vector<JoinPath> frontier;
  frontier.push_back(JoinPath{start_node, {}});

  for (int length = 1; length <= options.max_length; ++length) {
    std::vector<JoinPath> next;
    for (const JoinPath& prefix : frontier) {
      const int at = prefix.EndNode(graph);
      for (const IncidentEdge& incident : graph.incident(at)) {
        const JoinStep step{incident.edge_id, incident.forward};
        if (length == 1) {
          const auto& forbidden = options.forbidden_first_steps;
          if (std::find(forbidden.begin(), forbidden.end(), step) !=
              forbidden.end()) {
            continue;
          }
        }
        JoinPath extended = prefix;
        extended.steps.push_back(step);
        next.push_back(std::move(extended));
      }
    }
    result.insert(result.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  return result;
}

}  // namespace distinct
