#include "relational/database.h"

#include "common/string_util.h"

namespace distinct {

StatusOr<int> Database::AddTable(Table table) {
  if (by_name_.contains(table.name())) {
    return AlreadyExistsError("table '" + table.name() + "' already exists");
  }
  const int id = num_tables();
  by_name_.emplace(table.name(), id);
  tables_.push_back(std::make_unique<Table>(std::move(table)));
  return id;
}

const Table& Database::table(int id) const {
  DISTINCT_CHECK(id >= 0 && id < num_tables());
  return *tables_[static_cast<size_t>(id)];
}

Table& Database::mutable_table(int id) {
  DISTINCT_CHECK(id >= 0 && id < num_tables());
  return *tables_[static_cast<size_t>(id)];
}

StatusOr<int> Database::TableId(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return NotFoundError("no table named '" + name + "'");
  }
  return it->second;
}

StatusOr<const Table*> Database::FindTable(const std::string& name) const {
  auto id = TableId(name);
  if (!id.ok()) {
    return id.status();
  }
  return &table(*id);
}

StatusOr<Table*> Database::FindMutableTable(const std::string& name) {
  auto id = TableId(name);
  if (!id.ok()) {
    return id.status();
  }
  return &mutable_table(*id);
}

Status Database::ValidateIntegrity() const {
  for (const auto& table_ptr : tables_) {
    const Table& table = *table_ptr;
    for (int col = 0; col < table.num_columns(); ++col) {
      const ColumnSpec& spec = table.column(col);
      if (spec.fk_table.empty()) {
        continue;
      }
      auto target = FindTable(spec.fk_table);
      if (!target.ok()) {
        return FailedPreconditionError(
            "table '" + table.name() + "' column '" + spec.name +
            "' references missing table '" + spec.fk_table + "'");
      }
      if ((*target)->primary_key_column() < 0) {
        return FailedPreconditionError(
            "table '" + table.name() + "' column '" + spec.name +
            "' references table '" + spec.fk_table +
            "' which has no primary key");
      }
      for (int64_t row = 0; row < table.num_rows(); ++row) {
        if (table.IsNull(row, col)) {
          continue;
        }
        const int64_t pk = table.GetInt(row, col);
        if (!(*target)->RowForPrimaryKey(pk).ok()) {
          return FailedPreconditionError(StrFormat(
              "table '%s' row %lld column '%s': dangling FK %lld into '%s'",
              table.name().c_str(), static_cast<long long>(row),
              spec.name.c_str(), static_cast<long long>(pk),
              spec.fk_table.c_str()));
        }
      }
    }
  }
  return Status::Ok();
}

int64_t Database::TotalRows() const {
  int64_t total = 0;
  for (const auto& table_ptr : tables_) {
    total += table_ptr->num_rows();
  }
  return total;
}

std::string Database::DebugString() const {
  std::string out = StrFormat("Database with %d tables:\n", num_tables());
  for (const auto& table_ptr : tables_) {
    out += "  " + table_ptr->DebugString() + "\n";
  }
  return out;
}

}  // namespace distinct
