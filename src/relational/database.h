// A catalog of tables with foreign-key integrity validation.

#ifndef DISTINCT_RELATIONAL_DATABASE_H_
#define DISTINCT_RELATIONAL_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace distinct {

/// Owns a set of tables; table ids are dense and stable.
class Database {
 public:
  Database() = default;

  // Movable, not copyable (tables can be large).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Adds a table; its name must be unique. Returns the table id.
  StatusOr<int> AddTable(Table table);

  int num_tables() const { return static_cast<int>(tables_.size()); }

  const Table& table(int id) const;
  Table& mutable_table(int id);

  /// Table id by name, or NotFound.
  StatusOr<int> TableId(const std::string& name) const;

  /// Table reference by name, or NotFound.
  StatusOr<const Table*> FindTable(const std::string& name) const;
  StatusOr<Table*> FindMutableTable(const std::string& name);

  /// Checks that every FK column references an existing table with a primary
  /// key and that every non-NULL FK value resolves. Expensive; intended for
  /// loaders and tests.
  Status ValidateIntegrity() const;

  /// Total rows across all tables.
  int64_t TotalRows() const;

  std::string DebugString() const;

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace distinct

#endif  // DISTINCT_RELATIONAL_DATABASE_H_
