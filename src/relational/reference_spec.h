// Identifies which rows of a database are the "references" DISTINCT
// resolves, and where their (ambiguous) names live.
//
// For DBLP: references are Publish rows; Publish.author_id points into
// Authors, whose `name` column holds the textual author name. One Authors
// row exists per distinct name string — the database cannot tell same-named
// people apart, which is exactly the problem.

#ifndef DISTINCT_RELATIONAL_REFERENCE_SPEC_H_
#define DISTINCT_RELATIONAL_REFERENCE_SPEC_H_

#include <string>

#include "common/status.h"
#include "relational/database.h"

namespace distinct {

/// Names of the tables/columns that define the reference universe.
struct ReferenceSpec {
  std::string reference_table;  // table whose rows are references
  std::string identity_column;  // FK column -> name_table's primary key
  std::string name_table;       // table of distinct names
  std::string name_column;      // string column holding the name
};

/// The spec resolved against a concrete database (ids instead of names).
struct ResolvedReferenceSpec {
  int reference_table_id = -1;
  int identity_column = -1;
  int name_table_id = -1;
  int name_column = -1;
};

/// Resolves and validates `spec` against `db`: the tables must exist, the
/// identity column must be an FK to `name_table`, and the name column must
/// be a string column.
StatusOr<ResolvedReferenceSpec> ResolveReferenceSpec(const Database& db,
                                                     const ReferenceSpec& spec);

}  // namespace distinct

#endif  // DISTINCT_RELATIONAL_REFERENCE_SPEC_H_
