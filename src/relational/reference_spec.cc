#include "relational/reference_spec.h"

namespace distinct {

StatusOr<ResolvedReferenceSpec> ResolveReferenceSpec(
    const Database& db, const ReferenceSpec& spec) {
  ResolvedReferenceSpec resolved;

  auto ref_table_id = db.TableId(spec.reference_table);
  if (!ref_table_id.ok()) {
    return ref_table_id.status();
  }
  resolved.reference_table_id = *ref_table_id;

  auto name_table_id = db.TableId(spec.name_table);
  if (!name_table_id.ok()) {
    return name_table_id.status();
  }
  resolved.name_table_id = *name_table_id;

  const Table& ref_table = db.table(resolved.reference_table_id);
  auto identity_col = ref_table.ColumnIndex(spec.identity_column);
  if (!identity_col.ok()) {
    return identity_col.status();
  }
  resolved.identity_column = *identity_col;
  if (ref_table.column(resolved.identity_column).fk_table !=
      spec.name_table) {
    return InvalidArgumentError(
        "reference spec: '" + spec.reference_table + "." +
        spec.identity_column + "' is not a foreign key to '" +
        spec.name_table + "'");
  }

  const Table& name_table = db.table(resolved.name_table_id);
  auto name_col = name_table.ColumnIndex(spec.name_column);
  if (!name_col.ok()) {
    return name_col.status();
  }
  resolved.name_column = *name_col;
  if (name_table.column(resolved.name_column).type != ColumnType::kString) {
    return InvalidArgumentError("reference spec: '" + spec.name_table + "." +
                                spec.name_column +
                                "' is not a string column");
  }
  if (name_table.primary_key_column() < 0) {
    return InvalidArgumentError("reference spec: '" + spec.name_table +
                                "' has no primary key");
  }
  return resolved;
}

}  // namespace distinct
