// CSV import/export for tables.
//
// Format: RFC-4180-style quoting (fields containing the separator, quotes,
// or newlines are wrapped in double quotes; embedded quotes doubled). The
// first line is the header; on import it must match the table schema's
// column names. NULL cells round-trip as completely empty unquoted fields;
// an empty *quoted* field ("") is an empty string.

#ifndef DISTINCT_RELATIONAL_CSV_H_
#define DISTINCT_RELATIONAL_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "relational/table.h"

namespace distinct {

struct CsvOptions {
  char separator = ',';
};

/// Renders the table (header + rows) as CSV text.
std::string TableToCsv(const Table& table, const CsvOptions& options = {});

/// Appends the rows of `text` (header line required) to `table`. The header
/// must name exactly the table's columns in order. Returns the number of
/// rows appended; fails atomically per row (rows before the failure stay).
StatusOr<int64_t> AppendCsvToTable(const std::string& text, Table& table,
                                   const CsvOptions& options = {});

/// Writes/reads a CSV file.
Status SaveTableCsv(const Table& table, const std::string& path,
                    const CsvOptions& options = {});
StatusOr<int64_t> LoadTableCsv(const std::string& path, Table& table,
                               const CsvOptions& options = {});

/// Writes every table of `db` as `<directory>/<table>.csv`.
Status SaveDatabaseCsv(const Database& db, const std::string& directory,
                       const CsvOptions& options = {});

/// Loads `<directory>/<table>.csv` into every (empty) table of `db`; the
/// database supplies the schema. Missing files are an error.
Status LoadDatabaseCsv(Database& db, const std::string& directory,
                       const CsvOptions& options = {});

/// One parsed CSV field. `quoted` distinguishes NULL (empty, unquoted)
/// from the empty string (`""`).
struct CsvField {
  std::string value;
  bool quoted = false;

  bool operator==(const CsvField& other) const {
    return value == other.value && quoted == other.quoted;
  }
};

/// Splits one CSV document into records of fields (exposed for tests).
/// Handles quoted fields with embedded separators, quotes, and newlines.
StatusOr<std::vector<std::vector<CsvField>>> ParseCsv(
    const std::string& text, const CsvOptions& options = {});

}  // namespace distinct

#endif  // DISTINCT_RELATIONAL_CSV_H_
