// Join paths: walks in the schema graph, and their enumeration.
//
// Each join path starting at the reference relation induces a distinct
// similarity feature (paper §2.1). Enumeration visits every walk up to a
// length bound; immediate back-tracking over the same edge is deliberately
// allowed because it is how sibling tuples are reached (Publish ->
// Publications -> Publish is the coauthorship path).

#ifndef DISTINCT_RELATIONAL_JOIN_PATH_H_
#define DISTINCT_RELATIONAL_JOIN_PATH_H_

#include <string>
#include <vector>

#include "relational/schema_graph.h"

namespace distinct {

/// One traversal step: an edge and the direction it is walked.
struct JoinStep {
  int edge_id = -1;
  bool forward = true;

  bool operator==(const JoinStep& other) const {
    return edge_id == other.edge_id && forward == other.forward;
  }
};

/// A walk from `start_node` through `steps`.
struct JoinPath {
  int start_node = -1;
  std::vector<JoinStep> steps;

  int length() const { return static_cast<int>(steps.size()); }

  /// Node reached after walking every step.
  int EndNode(const SchemaGraph& graph) const;

  /// Human-readable form, e.g.
  /// "Publish -paper-> Publications <-paper- Publish -author-> Authors".
  std::string Describe(const SchemaGraph& graph) const;

  bool operator==(const JoinPath& other) const {
    return start_node == other.start_node && steps == other.steps;
  }
};

/// Controls for EnumerateJoinPaths.
struct PathEnumerationOptions {
  /// Maximum number of steps per path (inclusive).
  int max_length = 4;
  /// First steps to skip, e.g. the reference's own name edge — every
  /// resembling reference trivially shares that neighbor.
  std::vector<JoinStep> forbidden_first_steps;
};

/// All walks from `start_node` of length 1..max_length, in deterministic
/// (BFS-by-length, edge-ordered) order.
std::vector<JoinPath> EnumerateJoinPaths(const SchemaGraph& graph,
                                         int start_node,
                                         const PathEnumerationOptions& options);

}  // namespace distinct

#endif  // DISTINCT_RELATIONAL_JOIN_PATH_H_
