// The schema graph: relations (and promoted attributes) as nodes, foreign
// keys as edges.
//
// DISTINCT's join paths are walks in this graph. Following the paper (§2.1),
// non-key attribute values can be promoted to first-class tuples: promoting
// `Conferences.publisher` adds an attribute node whose "tuples" are the
// distinct publisher values and an edge from Conferences to it, so shared
// attribute values and joined tuples are handled by one mechanism.

#ifndef DISTINCT_RELATIONAL_SCHEMA_GRAPH_H_
#define DISTINCT_RELATIONAL_SCHEMA_GRAPH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/database.h"

namespace distinct {

/// A node: either a real table or a promoted-attribute value domain.
struct SchemaNode {
  int id = -1;
  bool is_attribute = false;
  /// Real node: the table id. Attribute node: the table owning the column.
  int table_id = -1;
  /// Attribute node only: the promoted column index in `table_id`.
  int column = -1;
  /// "Publish" for tables, "Proceedings.year" for attribute nodes.
  std::string name;
};

/// A directed schema edge from the relation holding the reference
/// (FK column / promoted column) to the referenced node. Traversals may walk
/// it in either direction.
struct SchemaEdge {
  int id = -1;
  int from_node = -1;
  int to_node = -1;
  /// Table and column holding the FK (or promoted attribute) cells.
  int table_id = -1;
  int column = -1;
  bool is_attribute_edge = false;
  /// "Publish.author_id->Authors" or "Proceedings.year".
  std::string name;
};

/// One traversable direction of an edge at a node.
struct IncidentEdge {
  int edge_id = -1;
  bool forward = true;  // true: from_node -> to_node
};

/// Immutable after construction + promotions. Borrows the Database, which
/// must outlive the graph.
class SchemaGraph {
 public:
  /// Builds nodes for every table and edges for every FK column.
  static StatusOr<SchemaGraph> Build(const Database& db);

  /// Promotes `table`.`column` (must exist, not be a PK or FK) to an
  /// attribute node with a connecting edge. Idempotent per column.
  Status PromoteAttribute(const std::string& table_name,
                          const std::string& column_name);

  const Database& db() const { return *db_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const SchemaNode& node(int id) const;
  const SchemaEdge& edge(int id) const;

  /// Node id of the table `name`, or NotFound (table node ids == table ids).
  StatusOr<int> NodeForTable(const std::string& name) const;

  /// Directions leaving `node_id`.
  const std::vector<IncidentEdge>& incident(int node_id) const;

  /// The node reached when standing at `at_node` and taking `step`.
  int Traverse(int at_node, const IncidentEdge& step) const;

  std::string DebugString() const;

 private:
  explicit SchemaGraph(const Database& db) : db_(&db) {}

  int AddNode(SchemaNode node);
  void AddEdge(SchemaEdge edge);

  const Database* db_;
  std::vector<SchemaNode> nodes_;
  std::vector<SchemaEdge> edges_;
  std::vector<std::vector<IncidentEdge>> incident_;
};

}  // namespace distinct

#endif  // DISTINCT_RELATIONAL_SCHEMA_GRAPH_H_
