#include "relational/schema_graph.h"

namespace distinct {

StatusOr<SchemaGraph> SchemaGraph::Build(const Database& db) {
  SchemaGraph graph(db);
  for (int t = 0; t < db.num_tables(); ++t) {
    SchemaNode node;
    node.id = t;
    node.table_id = t;
    node.name = db.table(t).name();
    graph.AddNode(node);
  }
  for (int t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    for (int col = 0; col < table.num_columns(); ++col) {
      const ColumnSpec& spec = table.column(col);
      if (spec.fk_table.empty()) {
        continue;
      }
      auto target = db.TableId(spec.fk_table);
      if (!target.ok()) {
        return target.status();
      }
      if (db.table(*target).primary_key_column() < 0) {
        return FailedPreconditionError(
            "FK '" + table.name() + "." + spec.name + "' references '" +
            spec.fk_table + "' which has no primary key");
      }
      SchemaEdge edge;
      edge.from_node = t;
      edge.to_node = *target;
      edge.table_id = t;
      edge.column = col;
      edge.name = table.name() + "." + spec.name + "->" + spec.fk_table;
      graph.AddEdge(edge);
    }
  }
  return graph;
}

Status SchemaGraph::PromoteAttribute(const std::string& table_name,
                                     const std::string& column_name) {
  auto table_id = db_->TableId(table_name);
  if (!table_id.ok()) {
    return table_id.status();
  }
  const Table& table = db_->table(*table_id);
  auto col = table.ColumnIndex(column_name);
  if (!col.ok()) {
    return col.status();
  }
  const ColumnSpec& spec = table.column(*col);
  if (spec.is_primary_key || !spec.fk_table.empty()) {
    return InvalidArgumentError("cannot promote key column '" + table_name +
                                "." + column_name + "'");
  }
  const std::string node_name = table_name + "." + column_name;
  for (const SchemaNode& node : nodes_) {
    if (node.is_attribute && node.name == node_name) {
      return Status::Ok();  // Already promoted.
    }
  }

  SchemaNode node;
  node.is_attribute = true;
  node.table_id = *table_id;
  node.column = *col;
  node.name = node_name;
  const int node_id = AddNode(node);

  SchemaEdge edge;
  edge.from_node = *table_id;
  edge.to_node = node_id;
  edge.table_id = *table_id;
  edge.column = *col;
  edge.is_attribute_edge = true;
  edge.name = node_name;
  AddEdge(edge);
  return Status::Ok();
}

const SchemaNode& SchemaGraph::node(int id) const {
  DISTINCT_CHECK(id >= 0 && id < num_nodes());
  return nodes_[static_cast<size_t>(id)];
}

const SchemaEdge& SchemaGraph::edge(int id) const {
  DISTINCT_CHECK(id >= 0 && id < num_edges());
  return edges_[static_cast<size_t>(id)];
}

StatusOr<int> SchemaGraph::NodeForTable(const std::string& name) const {
  return db_->TableId(name);
}

const std::vector<IncidentEdge>& SchemaGraph::incident(int node_id) const {
  DISTINCT_CHECK(node_id >= 0 && node_id < num_nodes());
  return incident_[static_cast<size_t>(node_id)];
}

int SchemaGraph::Traverse([[maybe_unused]] int at_node,
                          const IncidentEdge& step) const {
  const SchemaEdge& e = edge(step.edge_id);
  if (step.forward) {
    DISTINCT_DCHECK(e.from_node == at_node);
    return e.to_node;
  }
  DISTINCT_DCHECK(e.to_node == at_node);
  return e.from_node;
}

int SchemaGraph::AddNode(SchemaNode node) {
  node.id = num_nodes();
  nodes_.push_back(node);
  incident_.emplace_back();
  return node.id;
}

void SchemaGraph::AddEdge(SchemaEdge edge) {
  edge.id = num_edges();
  edges_.push_back(edge);
  incident_[static_cast<size_t>(edge.from_node)].push_back(
      IncidentEdge{edge.id, /*forward=*/true});
  incident_[static_cast<size_t>(edge.to_node)].push_back(
      IncidentEdge{edge.id, /*forward=*/false});
}

std::string SchemaGraph::DebugString() const {
  std::string out = "SchemaGraph nodes:\n";
  for (const SchemaNode& node : nodes_) {
    out += "  [" + std::to_string(node.id) + "] " + node.name +
           (node.is_attribute ? " (attribute)" : "") + "\n";
  }
  out += "edges:\n";
  for (const SchemaEdge& edge : edges_) {
    out += "  [" + std::to_string(edge.id) + "] " + edge.name + "\n";
  }
  return out;
}

}  // namespace distinct
