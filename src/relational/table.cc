#include "relational/table.h"

#include <unordered_set>

#include "common/string_util.h"

namespace distinct {

Table::Table(std::string name, std::vector<ColumnSpec> columns)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      dictionaries_(columns_.size()) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].is_primary_key) {
      pk_column_ = static_cast<int>(i);
    }
  }
}

StatusOr<Table> Table::Create(std::string name,
                              std::vector<ColumnSpec> columns) {
  if (name.empty()) {
    return InvalidArgumentError("table name must not be empty");
  }
  if (columns.empty()) {
    return InvalidArgumentError("table '" + name + "' has no columns");
  }
  std::unordered_set<std::string> seen;
  int pk_count = 0;
  for (const ColumnSpec& spec : columns) {
    if (spec.name.empty()) {
      return InvalidArgumentError("table '" + name + "': empty column name");
    }
    if (!seen.insert(spec.name).second) {
      return InvalidArgumentError("table '" + name + "': duplicate column '" +
                                  spec.name + "'");
    }
    if (spec.is_primary_key) {
      ++pk_count;
      if (spec.type != ColumnType::kInt64) {
        return InvalidArgumentError("table '" + name + "': primary key '" +
                                    spec.name + "' must be int64");
      }
    }
    if (!spec.fk_table.empty() && spec.type != ColumnType::kInt64) {
      return InvalidArgumentError("table '" + name + "': foreign key '" +
                                  spec.name + "' must be int64");
    }
  }
  if (pk_count > 1) {
    return InvalidArgumentError("table '" + name +
                                "' declares more than one primary key");
  }
  return Table(std::move(name), std::move(columns));
}

const ColumnSpec& Table::column(int index) const {
  DISTINCT_CHECK(index >= 0 && index < num_columns());
  return columns_[static_cast<size_t>(index)];
}

StatusOr<int> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return NotFoundError("table '" + name_ + "' has no column '" + name + "'");
}

StatusOr<int64_t> Table::AppendRow(const std::vector<Value>& values) {
  if (static_cast<int>(values.size()) != num_columns()) {
    return InvalidArgumentError(StrFormat(
        "table '%s': row arity %zu != schema arity %d", name_.c_str(),
        values.size(), num_columns()));
  }
  std::vector<int64_t> raw_row(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const ColumnSpec& spec = columns_[i];
    const Value& value = values[i];
    if (value.is_null()) {
      if (spec.is_primary_key) {
        return InvalidArgumentError("table '" + name_ +
                                    "': NULL primary key");
      }
      raw_row[i] = kNullCell;
      continue;
    }
    if (value.type() != spec.type) {
      return InvalidArgumentError(StrFormat(
          "table '%s' column '%s': expected %s, got %s", name_.c_str(),
          spec.name.c_str(), ColumnTypeToString(spec.type),
          ColumnTypeToString(value.type())));
    }
    if (spec.type == ColumnType::kInt64) {
      if (value.AsInt() == kNullCell) {
        return InvalidArgumentError("table '" + name_ +
                                    "': INT64_MIN is reserved for NULL");
      }
      raw_row[i] = value.AsInt();
    } else {
      raw_row[i] = dictionaries_[i].Intern(value.AsString());
    }
  }

  const int64_t row = num_rows();
  if (pk_column_ >= 0) {
    const int64_t pk = raw_row[static_cast<size_t>(pk_column_)];
    if (!pk_index_.emplace(pk, row).second) {
      return AlreadyExistsError(StrFormat(
          "table '%s': duplicate primary key %lld", name_.c_str(),
          static_cast<long long>(pk)));
    }
  }
  rows_.push_back(std::move(raw_row));
  return row;
}

int64_t Table::raw(int64_t row, int col) const {
  DISTINCT_DCHECK(row >= 0 && row < num_rows());
  DISTINCT_DCHECK(col >= 0 && col < num_columns());
  return rows_[static_cast<size_t>(row)][static_cast<size_t>(col)];
}

int64_t Table::GetInt(int64_t row, int col) const {
  DISTINCT_DCHECK(column(col).type == ColumnType::kInt64);
  const int64_t cell = raw(row, col);
  DISTINCT_CHECK(cell != kNullCell);
  return cell;
}

const std::string& Table::GetString(int64_t row, int col) const {
  DISTINCT_DCHECK(column(col).type == ColumnType::kString);
  const int64_t cell = raw(row, col);
  DISTINCT_CHECK(cell != kNullCell);
  return dictionaries_[static_cast<size_t>(col)].Lookup(cell);
}

Value Table::GetValue(int64_t row, int col) const {
  const int64_t cell = raw(row, col);
  if (cell == kNullCell) {
    return Value::Null();
  }
  if (column(col).type == ColumnType::kInt64) {
    return Value::Int(cell);
  }
  return Value::Str(dictionaries_[static_cast<size_t>(col)].Lookup(cell));
}

StatusOr<int64_t> Table::RowForPrimaryKey(int64_t pk) const {
  if (pk_column_ < 0) {
    return FailedPreconditionError("table '" + name_ +
                                   "' has no primary key");
  }
  auto it = pk_index_.find(pk);
  if (it == pk_index_.end()) {
    return NotFoundError(StrFormat("table '%s': no row with pk %lld",
                                   name_.c_str(),
                                   static_cast<long long>(pk)));
  }
  return it->second;
}

const Dictionary& Table::dictionary(int col) const {
  DISTINCT_CHECK(col >= 0 && col < num_columns());
  DISTINCT_CHECK(columns_[static_cast<size_t>(col)].type ==
                 ColumnType::kString);
  return dictionaries_[static_cast<size_t>(col)];
}

int64_t Table::InternString(int col, std::string_view text) {
  DISTINCT_CHECK(col >= 0 && col < num_columns());
  DISTINCT_CHECK(columns_[static_cast<size_t>(col)].type ==
                 ColumnType::kString);
  return dictionaries_[static_cast<size_t>(col)].Intern(text);
}

std::optional<int64_t> Table::FindString(int col, std::string_view text) const {
  DISTINCT_CHECK(col >= 0 && col < num_columns());
  DISTINCT_CHECK(columns_[static_cast<size_t>(col)].type ==
                 ColumnType::kString);
  return dictionaries_[static_cast<size_t>(col)].Find(text);
}

std::string Table::DebugString() const {
  std::string out = name_ + "(";
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    const ColumnSpec& spec = columns_[static_cast<size_t>(i)];
    out += spec.name;
    out += ':';
    out += ColumnTypeToString(spec.type);
    if (spec.is_primary_key) out += " PK";
    if (!spec.fk_table.empty()) out += " -> " + spec.fk_table;
  }
  out += StrFormat("), %lld rows", static_cast<long long>(num_rows()));
  return out;
}

}  // namespace distinct
