// In-memory relational table with dictionary-encoded string columns.
//
// Rows are stored columnar-free as int64 vectors: int64 cells hold their
// value, string cells hold a per-column dictionary id, NULL cells hold
// `kNullCell`. A table may declare one int64 primary-key column (unique,
// hash-indexed) and any number of foreign-key columns referencing other
// tables' primary keys.

#ifndef DISTINCT_RELATIONAL_TABLE_H_
#define DISTINCT_RELATIONAL_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/dictionary.h"
#include "common/status.h"
#include "relational/value.h"

namespace distinct {

/// Declaration of one table column.
struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  /// At most one column per table; must be kInt64; values must be unique.
  bool is_primary_key = false;
  /// Non-empty marks this column a foreign key to `fk_table`'s primary key.
  /// FK columns must be kInt64.
  std::string fk_table;
};

/// Raw cell payload used for NULL cells.
inline constexpr int64_t kNullCell = INT64_MIN;

/// A named table: schema plus rows.
class Table {
 public:
  /// Validates the specs (non-empty unique names, at most one PK, PK/FK are
  /// int64) and constructs an empty table.
  static StatusOr<Table> Create(std::string name,
                                std::vector<ColumnSpec> columns);

  const std::string& name() const { return name_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const ColumnSpec& column(int index) const;

  /// Index of the column called `name`, or NotFound.
  StatusOr<int> ColumnIndex(const std::string& name) const;

  /// Index of the primary-key column, or -1 when the table has none.
  int primary_key_column() const { return pk_column_; }

  /// Appends a row. `values` must match the schema arity and types
  /// (NULL allowed anywhere except the primary key). Duplicate primary keys
  /// are rejected. Returns the new row index.
  StatusOr<int64_t> AppendRow(const std::vector<Value>& values);

  /// Raw cell payload (int64 value, dictionary id, or kNullCell).
  int64_t raw(int64_t row, int col) const;

  bool IsNull(int64_t row, int col) const { return raw(row, col) == kNullCell; }

  /// Typed accessors. Require the matching column type and non-NULL cell.
  int64_t GetInt(int64_t row, int col) const;
  const std::string& GetString(int64_t row, int col) const;

  /// Typed read with NULL propagation.
  Value GetValue(int64_t row, int col) const;

  /// Row index of the row whose primary key equals `pk`, or NotFound.
  /// Requires the table to have a primary key.
  StatusOr<int64_t> RowForPrimaryKey(int64_t pk) const;

  /// Per-column dictionary (only for string columns).
  const Dictionary& dictionary(int col) const;

  /// Interns `text` into `col`'s dictionary without adding a row; useful for
  /// lookups before insertion. Requires a string column.
  int64_t InternString(int col, std::string_view text);

  /// Dictionary id of `text` in `col`, or std::nullopt.
  std::optional<int64_t> FindString(int col, std::string_view text) const;

  /// "name(col:type, ...), N rows".
  std::string DebugString() const;

 private:
  Table(std::string name, std::vector<ColumnSpec> columns);

  std::string name_;
  std::vector<ColumnSpec> columns_;
  std::vector<std::vector<int64_t>> rows_;
  std::vector<Dictionary> dictionaries_;  // one per column; unused for ints
  int pk_column_ = -1;
  std::unordered_map<int64_t, int64_t> pk_index_;  // pk value -> row
};

}  // namespace distinct

#endif  // DISTINCT_RELATIONAL_TABLE_H_
