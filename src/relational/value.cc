#include "relational/value.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace distinct {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kString:
      return "string";
  }
  return "unknown";
}

Value Value::Int(int64_t v) {
  Value value;
  value.type_ = ColumnType::kInt64;
  value.int_value_ = v;
  return value;
}

Value Value::Str(std::string v) {
  Value value;
  value.type_ = ColumnType::kString;
  value.string_value_ = std::move(v);
  return value;
}

Value Value::Null() {
  Value value;
  value.is_null_ = true;
  return value;
}

int64_t Value::AsInt() const {
  DISTINCT_CHECK(!is_null_ && type_ == ColumnType::kInt64);
  return int_value_;
}

const std::string& Value::AsString() const {
  DISTINCT_CHECK(!is_null_ && type_ == ColumnType::kString);
  return string_value_;
}

std::string Value::DebugString() const {
  if (is_null_) {
    return "NULL";
  }
  if (type_ == ColumnType::kInt64) {
    return StrFormat("%lld", static_cast<long long>(int_value_));
  }
  return "\"" + string_value_ + "\"";
}

bool Value::operator==(const Value& other) const {
  if (is_null_ != other.is_null_) return false;
  if (is_null_) return true;
  if (type_ != other.type_) return false;
  if (type_ == ColumnType::kInt64) return int_value_ == other.int_value_;
  return string_value_ == other.string_value_;
}

}  // namespace distinct
