#include "relational/csv.h"

#include "relational/database.h"

#include <cstdio>
#include <memory>

#include "common/string_util.h"

namespace distinct {
namespace {

bool NeedsQuoting(const std::string& field, char separator) {
  if (field.empty()) {
    return false;  // NULL encoding; empty strings are quoted explicitly
  }
  return field.find(separator) != std::string::npos ||
         field.find('"') != std::string::npos ||
         field.find('\n') != std::string::npos ||
         field.find('\r') != std::string::npos;
}

void AppendField(std::string& out, const std::string& field, bool quote) {
  if (!quote) {
    out += field;
    return;
  }
  out += '"';
  for (const char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
}

}  // namespace

StatusOr<std::vector<std::vector<CsvField>>> ParseCsv(
    const std::string& text, const CsvOptions& options) {
  std::vector<std::vector<CsvField>> records;
  std::vector<CsvField> record;
  CsvField field;
  enum class State { kStartOfField, kUnquoted, kQuoted, kAfterQuote };
  State state = State::kStartOfField;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field = CsvField{};
    state = State::kStartOfField;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  // '\r' terminates a record only as part of CRLF or at end of input;
  // anywhere else it is field data (RFC 4180 keeps it literal). The old
  // swallow-every-CR rule silently dropped lone CRs from unquoted fields,
  // which broke round-trips of values containing them.
  auto crlf_at = [&](size_t i) {
    return i + 1 == text.size() || text[i + 1] == '\n';
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    switch (state) {
      case State::kStartOfField:
        if (c == '"') {
          field.quoted = true;
          state = State::kQuoted;
        } else if (c == options.separator) {
          end_field();
        } else if (c == '\n') {
          end_record();
        } else if (c == '\r' && crlf_at(i)) {
          end_record();
          ++i;  // consume the '\n' of the CRLF pair
        } else {
          field.value += c;
          state = State::kUnquoted;
        }
        break;
      case State::kUnquoted:
        if (c == options.separator) {
          end_field();
        } else if (c == '\n') {
          end_record();
        } else if (c == '\r' && crlf_at(i)) {
          end_record();
          ++i;
        } else if (c == '"') {
          return DataLossError(StrFormat(
              "CSV parse error at byte %zu: quote inside unquoted field",
              i));
        } else {
          field.value += c;
        }
        break;
      case State::kQuoted:
        if (c == '"') {
          state = State::kAfterQuote;
        } else {
          field.value += c;  // embedded separators, \n, \r all literal
        }
        break;
      case State::kAfterQuote:
        if (c == '"') {
          field.value += '"';  // escaped quote
          state = State::kQuoted;
        } else if (c == options.separator) {
          end_field();
        } else if (c == '\n') {
          end_record();
        } else if (c == '\r' && crlf_at(i)) {
          end_record();
          ++i;
        } else {
          return DataLossError(StrFormat(
              "CSV parse error at byte %zu: content after closing quote",
              i));
        }
        break;
    }
  }
  if (state == State::kQuoted) {
    return DataLossError("CSV parse error: unterminated quoted field");
  }
  // Flush a final record without trailing newline.
  if (state != State::kStartOfField || !record.empty() ||
      field.quoted) {
    end_record();
  }
  return records;
}

std::string TableToCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) {
      out += options.separator;
    }
    const std::string& name = table.column(c).name;
    AppendField(out, name, NeedsQuoting(name, options.separator));
  }
  out += '\n';

  for (int64_t row = 0; row < table.num_rows(); ++row) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) {
        out += options.separator;
      }
      if (table.IsNull(row, c)) {
        continue;  // NULL: empty unquoted field
      }
      if (table.column(c).type == ColumnType::kInt64) {
        out += StrFormat("%lld",
                         static_cast<long long>(table.GetInt(row, c)));
      } else {
        const std::string& value = table.GetString(row, c);
        AppendField(out, value,
                    value.empty() || NeedsQuoting(value, options.separator));
      }
    }
    out += '\n';
  }
  return out;
}

StatusOr<int64_t> AppendCsvToTable(const std::string& text, Table& table,
                                   const CsvOptions& options) {
  auto records = ParseCsv(text, options);
  DISTINCT_RETURN_IF_ERROR(records.status());
  if (records->empty()) {
    return DataLossError("CSV: missing header line");
  }
  const std::vector<CsvField>& header = records->front();
  if (static_cast<int>(header.size()) != table.num_columns()) {
    return InvalidArgumentError(StrFormat(
        "CSV header has %zu columns; table '%s' has %d", header.size(),
        table.name().c_str(), table.num_columns()));
  }
  for (int c = 0; c < table.num_columns(); ++c) {
    if (header[static_cast<size_t>(c)].value != table.column(c).name) {
      return InvalidArgumentError(
          "CSV header column '" + header[static_cast<size_t>(c)].value +
          "' does not match table column '" + table.column(c).name + "'");
    }
  }

  int64_t appended = 0;
  for (size_t r = 1; r < records->size(); ++r) {
    const std::vector<CsvField>& fields = (*records)[r];
    if (static_cast<int>(fields.size()) != table.num_columns()) {
      return InvalidArgumentError(StrFormat(
          "CSV record %zu has %zu fields, expected %d", r, fields.size(),
          table.num_columns()));
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (int c = 0; c < table.num_columns(); ++c) {
      const CsvField& f = fields[static_cast<size_t>(c)];
      if (f.value.empty() && !f.quoted) {
        row.push_back(Value::Null());
        continue;
      }
      if (table.column(c).type == ColumnType::kInt64) {
        auto parsed = ParseInt64(f.value);
        if (!parsed.has_value()) {
          return InvalidArgumentError(StrFormat(
              "CSV record %zu column '%s': '%s' is not an integer", r,
              table.column(c).name.c_str(), f.value.c_str()));
        }
        row.push_back(Value::Int(*parsed));
      } else {
        row.push_back(Value::Str(f.value));
      }
    }
    DISTINCT_RETURN_IF_ERROR(table.AppendRow(row).status());
    ++appended;
  }
  return appended;
}

Status SaveDatabaseCsv(const Database& db, const std::string& directory,
                       const CsvOptions& options) {
  for (int t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    DISTINCT_RETURN_IF_ERROR(
        SaveTableCsv(table, directory + "/" + table.name() + ".csv",
                     options));
  }
  return Status::Ok();
}

Status LoadDatabaseCsv(Database& db, const std::string& directory,
                       const CsvOptions& options) {
  for (int t = 0; t < db.num_tables(); ++t) {
    Table& table = db.mutable_table(t);
    DISTINCT_RETURN_IF_ERROR(
        LoadTableCsv(directory + "/" + table.name() + ".csv", table,
                     options)
            .status());
  }
  return Status::Ok();
}

Status SaveTableCsv(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (file == nullptr) {
    return InvalidArgumentError("cannot open '" + path + "' for writing");
  }
  const std::string text = TableToCsv(table, options);
  if (std::fwrite(text.data(), 1, text.size(), file.get()) != text.size()) {
    return DataLossError("short write to '" + path + "'");
  }
  return Status::Ok();
}

StatusOr<int64_t> LoadTableCsv(const std::string& path, Table& table,
                               const CsvOptions& options) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::string text;
  char buffer[1 << 14];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    text.append(buffer, read);
  }
  return AppendCsvToTable(text, table, options);
}

}  // namespace distinct
