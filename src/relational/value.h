// Typed cell values used at the Table API boundary.
//
// Internally tables store every cell as int64 (string cells are
// dictionary-encoded per column); `Value` is the typed wrapper rows are
// inserted and read with.

#ifndef DISTINCT_RELATIONAL_VALUE_H_
#define DISTINCT_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>

namespace distinct {

/// Column types supported by the engine.
enum class ColumnType {
  kInt64,
  kString,
};

const char* ColumnTypeToString(ColumnType type);

/// A tagged int64-or-string cell value.
class Value {
 public:
  static Value Int(int64_t v);
  static Value Str(std::string v);

  /// Sentinel for a NULL foreign key / missing cell.
  static Value Null();

  ColumnType type() const { return type_; }
  bool is_null() const { return is_null_; }

  /// Requires type() == kInt64 and !is_null().
  int64_t AsInt() const;

  /// Requires type() == kString and !is_null().
  const std::string& AsString() const;

  std::string DebugString() const;

  bool operator==(const Value& other) const;

 private:
  Value() = default;

  ColumnType type_ = ColumnType::kInt64;
  bool is_null_ = false;
  int64_t int_value_ = 0;
  std::string string_value_;
};

}  // namespace distinct

#endif  // DISTINCT_RELATIONAL_VALUE_H_
