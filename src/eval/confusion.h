// Error analysis: which entities were merged together, which entities were
// split apart, and how much each mistake costs in pairwise terms.
//
// The paper's Fig. 5 annotates its Wei Wang diagram with arrows marking
// the mistakes; this module computes the underlying list.

#ifndef DISTINCT_EVAL_CONFUSION_H_
#define DISTINCT_EVAL_CONFUSION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace distinct {

/// Two entities whose references share a predicted cluster: a precision
/// mistake. `pair_cost` is the number of false-positive reference pairs
/// they contribute.
struct MergeError {
  int entity1 = -1;
  int entity2 = -1;
  int64_t pair_cost = 0;
};

/// One entity spread over several predicted clusters: a recall mistake.
/// `pair_cost` is the number of false-negative reference pairs.
struct SplitError {
  int entity = -1;
  int num_fragments = 0;
  int64_t pair_cost = 0;
};

/// The full mistake inventory of one clustering.
struct ConfusionReport {
  std::vector<MergeError> merges;  // ordered by descending pair cost
  std::vector<SplitError> splits;  // ordered by descending pair cost
  int64_t false_positive_pairs = 0;
  int64_t false_negative_pairs = 0;

  /// Multi-line rendering with optional entity names.
  std::string Render(const std::vector<std::string>& entity_names = {},
                     size_t max_rows = 10) const;
};

/// Computes the inventory for dense assignments of equal length.
ConfusionReport AnalyzeConfusion(const std::vector<int>& truth,
                                 const std::vector<int>& predicted);

}  // namespace distinct

#endif  // DISTINCT_EVAL_CONFUSION_H_
