// Fig. 5-style textual visualization of a clustering against ground truth.
//
// For each true entity, shows how its references were distributed over
// predicted clusters, then lists the two mistake types: splits (one entity,
// several clusters) and merges (one cluster, several entities).

#ifndef DISTINCT_EVAL_VISUALIZE_H_
#define DISTINCT_EVAL_VISUALIZE_H_

#include <string>
#include <vector>

namespace distinct {

/// Inputs for one reference.
struct ReferenceDisplay {
  std::string label;  // e.g. paper title or "paper 17 @ VLDB 1997"
  int truth = -1;     // true entity id
  int predicted = -1; // predicted cluster id
};

/// Optional names for the true entities (e.g. affiliations).
std::string RenderClusterDiagram(const std::vector<ReferenceDisplay>& refs,
                                 const std::vector<std::string>& entity_names,
                                 bool show_references = false);

}  // namespace distinct

#endif  // DISTINCT_EVAL_VISUALIZE_H_
