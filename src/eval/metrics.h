// Clustering accuracy metrics (paper §5).
//
// Pairwise precision/recall/f-measure: TP counts reference pairs co-clustered
// in both the prediction and the truth, FP pairs co-clustered only in the
// prediction, FN pairs co-clustered only in the truth. B-cubed metrics are
// provided as an extension (they weight by reference, not by pair).

#ifndef DISTINCT_EVAL_METRICS_H_
#define DISTINCT_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace distinct {

/// Pairwise counts and derived scores.
struct PairwiseScores {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;
  int64_t total_pairs = 0;  // C(n, 2)
  double precision = 1.0;   // 1.0 when no predicted pairs exist
  double recall = 1.0;      // 1.0 when no true pairs exist
  double f1 = 1.0;
  /// Fraction of reference pairs whose co-membership decision is correct:
  /// (TP + TN) / C(n, 2).
  double accuracy = 1.0;

  std::string DebugString() const;
};

/// Computes pairwise scores of `predicted` against `truth`. Both are dense
/// cluster assignments over the same references (equal length). Cluster id
/// values need not align between the two; only co-membership matters.
PairwiseScores PairwisePrecisionRecall(const std::vector<int>& truth,
                                       const std::vector<int>& predicted);

/// B-cubed precision/recall/F1.
struct BCubedScores {
  double precision = 1.0;
  double recall = 1.0;
  double f1 = 1.0;
};

BCubedScores BCubed(const std::vector<int>& truth,
                    const std::vector<int>& predicted);

/// Adjusted Rand Index: pair-counting agreement corrected for chance.
/// 1 for identical clusterings, ~0 for random ones, negative for worse
/// than chance. Hubert & Arabie's formulation over the contingency table.
double AdjustedRandIndex(const std::vector<int>& truth,
                         const std::vector<int>& predicted);

/// Harmonic mean helper; 0 when either input is 0.
double HarmonicMean(double a, double b);

}  // namespace distinct

#endif  // DISTINCT_EVAL_METRICS_H_
