#include "eval/confusion.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace distinct {

ConfusionReport AnalyzeConfusion(const std::vector<int>& truth,
                                 const std::vector<int>& predicted) {
  DISTINCT_CHECK(truth.size() == predicted.size());
  ConfusionReport report;

  // Contingency counts: (entity, cluster) -> refs.
  std::map<std::pair<int, int>, int64_t> cells;
  std::map<int, std::vector<std::pair<int, int64_t>>> clusters_of_entity;
  std::map<int, std::vector<std::pair<int, int64_t>>> entities_of_cluster;
  for (size_t i = 0; i < truth.size(); ++i) {
    ++cells[{truth[i], predicted[i]}];
  }
  for (const auto& [key, count] : cells) {
    clusters_of_entity[key.first].emplace_back(key.second, count);
    entities_of_cluster[key.second].emplace_back(key.first, count);
  }

  // Merge errors: within each predicted cluster, every pair of entities
  // contributes cell1 * cell2 false-positive pairs. Accumulated per entity
  // pair across clusters.
  std::map<std::pair<int, int>, int64_t> merge_cost;
  for (const auto& [cluster, entities] : entities_of_cluster) {
    for (size_t a = 0; a < entities.size(); ++a) {
      for (size_t b = a + 1; b < entities.size(); ++b) {
        const auto key = std::minmax(entities[a].first, entities[b].first);
        const int64_t cost = entities[a].second * entities[b].second;
        merge_cost[{key.first, key.second}] += cost;
        report.false_positive_pairs += cost;
      }
    }
  }
  for (const auto& [pair, cost] : merge_cost) {
    report.merges.push_back(MergeError{pair.first, pair.second, cost});
  }
  std::stable_sort(report.merges.begin(), report.merges.end(),
                   [](const MergeError& a, const MergeError& b) {
                     return a.pair_cost > b.pair_cost;
                   });

  // Split errors: within each entity, every pair of fragments contributes
  // cell1 * cell2 false-negative pairs.
  for (const auto& [entity, fragments] : clusters_of_entity) {
    if (fragments.size() < 2) {
      continue;
    }
    int64_t cost = 0;
    for (size_t a = 0; a < fragments.size(); ++a) {
      for (size_t b = a + 1; b < fragments.size(); ++b) {
        cost += fragments[a].second * fragments[b].second;
      }
    }
    report.splits.push_back(
        SplitError{entity, static_cast<int>(fragments.size()), cost});
    report.false_negative_pairs += cost;
  }
  std::stable_sort(report.splits.begin(), report.splits.end(),
                   [](const SplitError& a, const SplitError& b) {
                     return a.pair_cost > b.pair_cost;
                   });
  return report;
}

std::string ConfusionReport::Render(
    const std::vector<std::string>& entity_names, size_t max_rows) const {
  auto name_of = [&](int entity) {
    if (entity >= 0 &&
        static_cast<size_t>(entity) < entity_names.size() &&
        !entity_names[static_cast<size_t>(entity)].empty()) {
      return entity_names[static_cast<size_t>(entity)];
    }
    return StrFormat("entity %d", entity);
  };

  std::string out = StrFormat(
      "confusion: %lld false-positive pairs, %lld false-negative pairs\n",
      static_cast<long long>(false_positive_pairs),
      static_cast<long long>(false_negative_pairs));
  if (!merges.empty()) {
    out += "top merge mistakes (two people in one cluster):\n";
    for (size_t m = 0; m < merges.size() && m < max_rows; ++m) {
      out += StrFormat("  %s  +  %s   (%lld pairs)\n",
                       name_of(merges[m].entity1).c_str(),
                       name_of(merges[m].entity2).c_str(),
                       static_cast<long long>(merges[m].pair_cost));
    }
  }
  if (!splits.empty()) {
    out += "top split mistakes (one person, several clusters):\n";
    for (size_t s = 0; s < splits.size() && s < max_rows; ++s) {
      out += StrFormat("  %s   in %d fragments (%lld pairs)\n",
                       name_of(splits[s].entity).c_str(),
                       splits[s].num_fragments,
                       static_cast<long long>(splits[s].pair_cost));
    }
  }
  if (merges.empty() && splits.empty()) {
    out += "no mistakes.\n";
  }
  return out;
}

}  // namespace distinct
