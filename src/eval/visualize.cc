#include "eval/visualize.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace distinct {

std::string RenderClusterDiagram(const std::vector<ReferenceDisplay>& refs,
                                 const std::vector<std::string>& entity_names,
                                 bool show_references) {
  // entity -> predicted cluster -> count (and reference labels).
  std::map<int, std::map<int, std::vector<const ReferenceDisplay*>>> groups;
  std::map<int, std::set<int>> entities_in_cluster;
  for (const ReferenceDisplay& ref : refs) {
    groups[ref.truth][ref.predicted].push_back(&ref);
    entities_in_cluster[ref.predicted].insert(ref.truth);
  }

  auto entity_name = [&](int entity) {
    if (entity >= 0 && static_cast<size_t>(entity) < entity_names.size() &&
        !entity_names[static_cast<size_t>(entity)].empty()) {
      return entity_names[static_cast<size_t>(entity)];
    }
    return StrFormat("entity %d", entity);
  };

  std::string out;
  int split_entities = 0;
  int merged_clusters = 0;
  for (const auto& [entity, clusters] : groups) {
    size_t total = 0;
    for (const auto& [cluster, members] : clusters) {
      total += members.size();
    }
    out += StrFormat("%s  (%zu refs)\n", entity_name(entity).c_str(), total);
    if (clusters.size() > 1) {
      ++split_entities;
    }
    for (const auto& [cluster, members] : clusters) {
      const bool merged = entities_in_cluster[cluster].size() > 1;
      out += StrFormat("  cluster %-3d : %3zu refs%s%s\n", cluster,
                       members.size(),
                       clusters.size() > 1 ? "  [SPLIT]" : "",
                       merged ? "  [MERGED with other entity]" : "");
      if (show_references) {
        for (const ReferenceDisplay* ref : members) {
          out += "      - " + ref->label + "\n";
        }
      }
    }
  }
  for (const auto& [cluster, entities] : entities_in_cluster) {
    if (entities.size() > 1) {
      ++merged_clusters;
    }
  }
  out += StrFormat(
      "summary: %zu entities, %zu predicted clusters, "
      "%d split entities, %d merged clusters\n",
      groups.size(), entities_in_cluster.size(), split_entities,
      merged_clusters);
  return out;
}

}  // namespace distinct
