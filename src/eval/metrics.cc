#include "eval/metrics.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace distinct {

double HarmonicMean(double a, double b) {
  if (a <= 0.0 || b <= 0.0) {
    return 0.0;
  }
  return 2.0 * a * b / (a + b);
}

std::string PairwiseScores::DebugString() const {
  return StrFormat(
      "precision=%.4f recall=%.4f f1=%.4f (tp=%lld fp=%lld fn=%lld)",
      precision, recall, f1, static_cast<long long>(true_positives),
      static_cast<long long>(false_positives),
      static_cast<long long>(false_negatives));
}

PairwiseScores PairwisePrecisionRecall(const std::vector<int>& truth,
                                       const std::vector<int>& predicted) {
  DISTINCT_CHECK(truth.size() == predicted.size());
  const size_t n = truth.size();

  // Count co-membership via contingency table instead of O(n^2) pairs.
  // tp = Σ_cells C(n_ij, 2); predicted pairs = Σ_pred C(n_j, 2); etc.
  auto choose2 = [](int64_t m) { return m * (m - 1) / 2; };

  std::unordered_map<int64_t, int64_t> cell_counts;
  std::unordered_map<int, int64_t> truth_counts;
  std::unordered_map<int, int64_t> pred_counts;
  for (size_t i = 0; i < n; ++i) {
    const int64_t key =
        (static_cast<int64_t>(truth[i]) << 32) ^
        static_cast<int64_t>(static_cast<uint32_t>(predicted[i]));
    ++cell_counts[key];
    ++truth_counts[truth[i]];
    ++pred_counts[predicted[i]];
  }

  int64_t tp = 0;
  for (const auto& [key, count] : cell_counts) {
    tp += choose2(count);
  }
  int64_t predicted_pairs = 0;
  for (const auto& [id, count] : pred_counts) {
    predicted_pairs += choose2(count);
  }
  int64_t truth_pairs = 0;
  for (const auto& [id, count] : truth_counts) {
    truth_pairs += choose2(count);
  }

  PairwiseScores scores;
  scores.true_positives = tp;
  scores.false_positives = predicted_pairs - tp;
  scores.false_negatives = truth_pairs - tp;
  scores.precision =
      predicted_pairs == 0
          ? 1.0
          : static_cast<double>(tp) / static_cast<double>(predicted_pairs);
  scores.recall = truth_pairs == 0 ? 1.0
                                   : static_cast<double>(tp) /
                                         static_cast<double>(truth_pairs);
  scores.f1 = HarmonicMean(scores.precision, scores.recall);
  scores.total_pairs = choose2(static_cast<int64_t>(n));
  if (scores.total_pairs > 0) {
    const int64_t wrong = scores.false_positives + scores.false_negatives;
    scores.accuracy = 1.0 - static_cast<double>(wrong) /
                                static_cast<double>(scores.total_pairs);
  }
  return scores;
}

BCubedScores BCubed(const std::vector<int>& truth,
                    const std::vector<int>& predicted) {
  DISTINCT_CHECK(truth.size() == predicted.size());
  const size_t n = truth.size();
  BCubedScores scores;
  if (n == 0) {
    return scores;
  }

  std::unordered_map<int64_t, int64_t> cell_counts;
  std::unordered_map<int, int64_t> truth_counts;
  std::unordered_map<int, int64_t> pred_counts;
  for (size_t i = 0; i < n; ++i) {
    const int64_t key =
        (static_cast<int64_t>(truth[i]) << 32) ^
        static_cast<int64_t>(static_cast<uint32_t>(predicted[i]));
    ++cell_counts[key];
    ++truth_counts[truth[i]];
    ++pred_counts[predicted[i]];
  }

  double precision_sum = 0.0;
  double recall_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const int64_t key =
        (static_cast<int64_t>(truth[i]) << 32) ^
        static_cast<int64_t>(static_cast<uint32_t>(predicted[i]));
    const double cell = static_cast<double>(cell_counts[key]);
    precision_sum += cell / static_cast<double>(pred_counts[predicted[i]]);
    recall_sum += cell / static_cast<double>(truth_counts[truth[i]]);
  }
  scores.precision = precision_sum / static_cast<double>(n);
  scores.recall = recall_sum / static_cast<double>(n);
  scores.f1 = HarmonicMean(scores.precision, scores.recall);
  return scores;
}

double AdjustedRandIndex(const std::vector<int>& truth,
                         const std::vector<int>& predicted) {
  DISTINCT_CHECK(truth.size() == predicted.size());
  const size_t n = truth.size();
  if (n < 2) {
    return 1.0;
  }
  auto choose2 = [](int64_t m) {
    return static_cast<double>(m) * static_cast<double>(m - 1) / 2.0;
  };

  std::unordered_map<int64_t, int64_t> cell_counts;
  std::unordered_map<int, int64_t> truth_counts;
  std::unordered_map<int, int64_t> pred_counts;
  for (size_t i = 0; i < n; ++i) {
    const int64_t key =
        (static_cast<int64_t>(truth[i]) << 32) ^
        static_cast<int64_t>(static_cast<uint32_t>(predicted[i]));
    ++cell_counts[key];
    ++truth_counts[truth[i]];
    ++pred_counts[predicted[i]];
  }
  double index = 0.0;
  for (const auto& [key, count] : cell_counts) {
    index += choose2(count);
  }
  double sum_truth = 0.0;
  for (const auto& [id, count] : truth_counts) {
    sum_truth += choose2(count);
  }
  double sum_pred = 0.0;
  for (const auto& [id, count] : pred_counts) {
    sum_pred += choose2(count);
  }
  const double total = choose2(static_cast<int64_t>(n));
  const double expected = sum_truth * sum_pred / total;
  const double maximum = 0.5 * (sum_truth + sum_pred);
  if (maximum == expected) {
    return 1.0;  // degenerate: both clusterings trivial
  }
  return (index - expected) / (maximum - expected);
}

}  // namespace distinct
