#include "catalog/reader.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "catalog/format.h"
#include "common/crc32.h"
#include "common/io_util.h"
#include "dblp/schema.h"
#include "obs/json_reader.h"

namespace distinct {
namespace catalog {

namespace {

uint32_t LoadU32(const char* bytes) {
  uint32_t value;
  std::memcpy(&value, bytes, 4);
  return value;
}

uint64_t LoadU64(const char* bytes) {
  uint64_t value;
  std::memcpy(&value, bytes, 8);
  return value;
}

/// Validates the (magic, version) header and the CRC-32C trailer shared by
/// every catalog file, and cross-checks the CRC recorded in the manifest.
Status CheckFraming(std::string_view data, const std::string& file,
                    uint32_t expected_magic, uint32_t expected_crc) {
  if (data.size() < 12) {
    return DataLossError("catalog: '" + file + "' is truncated (" +
                         std::to_string(data.size()) + " bytes)");
  }
  if (LoadU32(data.data()) != expected_magic) {
    return DataLossError("catalog: '" + file + "' has a foreign magic");
  }
  const uint32_t version = LoadU32(data.data() + 4);
  if (version != kCatalogFormatVersion) {
    return FailedPreconditionError(
        "catalog: '" + file + "' is format version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(kCatalogFormatVersion));
  }
  const uint32_t stored = LoadU32(data.data() + data.size() - 4);
  const uint32_t actual = Crc32c(data.data(), data.size() - 4);
  if (stored != actual || stored != expected_crc) {
    return DataLossError("catalog: CRC mismatch in '" + file +
                         "' (stored " + std::to_string(stored) +
                         ", computed " + std::to_string(actual) +
                         ", manifest " + std::to_string(expected_crc) + ")");
  }
  return Status::Ok();
}

StatusOr<int64_t> ManifestInt(const obs::JsonValue& object, const char* key) {
  return obs::RequireInt(object, key, "catalog manifest");
}

StatusOr<std::string> ManifestString(const obs::JsonValue& object,
                                     const char* key) {
  const obs::JsonValue* value = object.Find(key);
  if (value == nullptr ||
      value->kind != obs::JsonValue::Kind::kString) {
    return DataLossError(std::string("catalog manifest: missing string '") +
                         key + "'");
  }
  return value->string_value;
}

}  // namespace

std::string_view DictView::At(uint32_t id) const {
  const uint64_t begin = offsets_[id];
  const uint64_t end = offsets_[id + 1];
  return std::string_view(blob_ + begin, end - begin);
}

std::optional<uint32_t> DictView::Find(std::string_view text) const {
  size_t lo = 0;
  size_t hi = count_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (At(sorted_ids_[mid]) < text) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < count_ && At(sorted_ids_[lo]) == text) {
    return sorted_ids_[lo];
  }
  return std::nullopt;
}

Status CatalogReader::OpenDictionary(const std::string& dir,
                                     const std::string& file,
                                     int64_t expected_count,
                                     uint32_t expected_crc, DictView* view) {
  auto mapped = MappedFile::Open(dir + "/" + file, "catalog");
  DISTINCT_RETURN_IF_ERROR(mapped.status());
  const std::string_view data = mapped->view();
  DISTINCT_RETURN_IF_ERROR(
      CheckFraming(data, file, kDictMagic, expected_crc));
  const uint64_t count = LoadU64(data.data() + 8);
  if (static_cast<int64_t>(count) != expected_count) {
    return DataLossError("catalog: '" + file + "' holds " +
                         std::to_string(count) + " strings, manifest says " +
                         std::to_string(expected_count));
  }
  const size_t offsets_pos = 16;
  const size_t offsets_bytes = (count + 1) * 8;
  if (data.size() < offsets_pos + offsets_bytes + 4) {
    return DataLossError("catalog: '" + file + "' is truncated");
  }
  const uint64_t* offsets =
      reinterpret_cast<const uint64_t*>(data.data() + offsets_pos);
  const uint64_t blob_bytes = offsets[count];
  size_t sorted_pos = offsets_pos + offsets_bytes + blob_bytes;
  sorted_pos += (8 - sorted_pos % 8) % 8;
  if (data.size() != sorted_pos + count * 4 + 4) {
    return DataLossError("catalog: '" + file + "' has inconsistent framing");
  }
  view->count_ = count;
  view->offsets_ = offsets;
  view->blob_ = data.data() + offsets_pos + offsets_bytes;
  view->sorted_ids_ =
      reinterpret_cast<const uint32_t*>(data.data() + sorted_pos);
  mapped_bytes_ += static_cast<int64_t>(data.size());
  mappings_.push_back(*std::move(mapped));
  return Status::Ok();
}

Status CatalogReader::OpenSegment(const std::string& dir,
                                  const std::string& file, int64_t paper_base,
                                  int64_t papers, int64_t refs,
                                  uint32_t expected_crc) {
  auto mapped = MappedFile::Open(dir + "/" + file, "catalog");
  DISTINCT_RETURN_IF_ERROR(mapped.status());
  const std::string_view data = mapped->view();
  DISTINCT_RETURN_IF_ERROR(
      CheckFraming(data, file, kSegmentMagic, expected_crc));
  if (data.size() < 32 + 4) {
    return DataLossError("catalog: '" + file + "' is truncated");
  }
  const int64_t stored_base = static_cast<int64_t>(LoadU64(data.data() + 8));
  const int64_t stored_papers =
      static_cast<int64_t>(LoadU64(data.data() + 16));
  const int64_t stored_refs = static_cast<int64_t>(LoadU64(data.data() + 24));
  if (stored_base != paper_base || stored_papers != papers ||
      stored_refs != refs) {
    return DataLossError("catalog: '" + file +
                         "' header disagrees with the manifest");
  }
  const size_t expected_size = 32 + static_cast<size_t>(papers) * 8 +
                               (static_cast<size_t>(papers) * 2 +
                                static_cast<size_t>(papers) + 1 +
                                static_cast<size_t>(refs)) *
                                   4 +
                               4;
  if (data.size() != expected_size) {
    return DataLossError("catalog: '" + file + "' has inconsistent framing");
  }

  SegmentView view;
  view.paper_base = paper_base;
  view.num_papers = papers;
  view.num_refs = refs;
  const char* cursor = data.data() + 32;
  view.year = std::span<const int64_t>(
      reinterpret_cast<const int64_t*>(cursor), papers);
  cursor += papers * 8;
  view.title_id = std::span<const uint32_t>(
      reinterpret_cast<const uint32_t*>(cursor), papers);
  cursor += papers * 4;
  view.venue_id = std::span<const uint32_t>(
      reinterpret_cast<const uint32_t*>(cursor), papers);
  cursor += papers * 4;
  view.ref_begin = std::span<const uint32_t>(
      reinterpret_cast<const uint32_t*>(cursor), papers + 1);
  cursor += (papers + 1) * 4;
  view.author_id = std::span<const uint32_t>(
      reinterpret_cast<const uint32_t*>(cursor), refs);
  if (view.ref_begin[papers] != static_cast<uint32_t>(refs)) {
    return DataLossError("catalog: '" + file + "' ref ranges are torn");
  }
  segments_.push_back(view);
  mapped_bytes_ += static_cast<int64_t>(data.size());
  mappings_.push_back(*std::move(mapped));
  return Status::Ok();
}

StatusOr<std::unique_ptr<CatalogReader>> CatalogReader::Open(
    const std::string& dir) {
  auto manifest_text =
      ReadFileToString(dir + "/" + kManifestFile, "catalog");
  if (!manifest_text.ok()) {
    if (manifest_text.status().code() == StatusCode::kNotFound) {
      return NotFoundError("catalog: no manifest in '" + dir +
                           "' (never ingested, or ingest was interrupted "
                           "before commit)");
    }
    return manifest_text.status();
  }
  obs::JsonReader json_reader(*manifest_text, "catalog manifest");
  auto root_or = json_reader.Parse();
  DISTINCT_RETURN_IF_ERROR(root_or.status());
  const obs::JsonValue root = *std::move(root_or);

  auto format_version = ManifestInt(root, "format_version");
  DISTINCT_RETURN_IF_ERROR(format_version.status());
  if (*format_version != kCatalogFormatVersion) {
    return FailedPreconditionError(
        "catalog: manifest is format version " +
        std::to_string(*format_version) + ", this build reads version " +
        std::to_string(kCatalogFormatVersion));
  }

  std::unique_ptr<CatalogReader> reader(new CatalogReader());
  auto generation = ManifestInt(root, "generation");
  auto num_papers = ManifestInt(root, "num_papers");
  auto num_refs = ManifestInt(root, "num_refs");
  auto skipped = ManifestInt(root, "records_skipped");
  DISTINCT_RETURN_IF_ERROR(generation.status());
  DISTINCT_RETURN_IF_ERROR(num_papers.status());
  DISTINCT_RETURN_IF_ERROR(num_refs.status());
  DISTINCT_RETURN_IF_ERROR(skipped.status());
  reader->generation_ = *generation;
  reader->num_papers_ = *num_papers;
  reader->num_refs_ = *num_refs;
  reader->records_skipped_ = *skipped;

  const obs::JsonValue* dicts = root.Find("dictionaries");
  if (dicts == nullptr || dicts->kind != obs::JsonValue::Kind::kObject) {
    return DataLossError("catalog manifest: missing 'dictionaries'");
  }
  struct DictSlot {
    const char* key;
    DictView* view;
  };
  const DictSlot slots[3] = {{"authors", &reader->authors_},
                             {"venues", &reader->venues_},
                             {"titles", &reader->titles_}};
  for (const DictSlot& slot : slots) {
    const obs::JsonValue* entry = dicts->Find(slot.key);
    if (entry == nullptr) {
      return DataLossError(std::string("catalog manifest: missing '") +
                           slot.key + "' dictionary");
    }
    auto file = ManifestString(*entry, "file");
    auto count = ManifestInt(*entry, "count");
    auto crc = ManifestInt(*entry, "crc");
    DISTINCT_RETURN_IF_ERROR(file.status());
    DISTINCT_RETURN_IF_ERROR(count.status());
    DISTINCT_RETURN_IF_ERROR(crc.status());
    DISTINCT_RETURN_IF_ERROR(reader->OpenDictionary(
        dir, *file, *count, static_cast<uint32_t>(*crc), slot.view));
  }

  const obs::JsonValue* segments = root.Find("segments");
  if (segments == nullptr ||
      segments->kind != obs::JsonValue::Kind::kArray) {
    return DataLossError("catalog manifest: missing 'segments'");
  }
  int64_t seen_papers = 0;
  int64_t seen_refs = 0;
  for (const obs::JsonValue& entry : segments->items) {
    auto file = ManifestString(entry, "file");
    auto paper_base = ManifestInt(entry, "paper_base");
    auto papers = ManifestInt(entry, "num_papers");
    auto refs = ManifestInt(entry, "num_refs");
    auto crc = ManifestInt(entry, "crc");
    DISTINCT_RETURN_IF_ERROR(file.status());
    DISTINCT_RETURN_IF_ERROR(paper_base.status());
    DISTINCT_RETURN_IF_ERROR(papers.status());
    DISTINCT_RETURN_IF_ERROR(refs.status());
    DISTINCT_RETURN_IF_ERROR(crc.status());
    if (*paper_base != seen_papers) {
      return DataLossError("catalog manifest: segment '" + *file +
                           "' is out of order");
    }
    DISTINCT_RETURN_IF_ERROR(reader->OpenSegment(
        dir, *file, *paper_base, *papers, *refs,
        static_cast<uint32_t>(*crc)));
    seen_papers += *papers;
    seen_refs += *refs;
  }
  if (seen_papers != reader->num_papers_ || seen_refs != reader->num_refs_) {
    return DataLossError(
        "catalog manifest: segment totals disagree with the header counts");
  }
  return reader;
}

StatusOr<XmlLoadResult> CatalogReader::MaterializeDatabase(
    const XmlLoadOptions& options) const {
  // Pass 1 of dblp/xml_loader.cc's BuildDatabase: reference counts for the
  // min_refs_per_author filter, here a flat histogram over catalog ids.
  std::vector<int64_t> refs_per_author(authors_.size(), 0);
  for (const SegmentView& segment : segments_) {
    for (uint32_t author : segment.author_id) {
      ++refs_per_author[author];
    }
  }

  auto db_or = MakeEmptyDblpDatabase();
  DISTINCT_RETURN_IF_ERROR(db_or.status());
  Database db = *std::move(db_or);
  Table* authors = *db.FindMutableTable(kAuthorsTable);
  Table* conferences = *db.FindMutableTable(kConferencesTable);
  Table* proceedings = *db.FindMutableTable(kProceedingsTable);
  Table* publications = *db.FindMutableTable(kPublicationsTable);
  Table* publish = *db.FindMutableTable(kPublishTable);

  // The venue dictionary's id order IS the loader's conference-interning
  // order (first appearance in the record stream), so catalog venue ids can
  // be used as conference surrogate keys directly. Author ids need the
  // remap below because the filter changes which names get table rows.
  std::vector<int64_t> author_row(authors_.size(), -1);
  std::vector<bool> venue_seen(venues_.size(), false);
  std::unordered_map<int64_t, int64_t> proc_ids;  // (conf<<16|year) -> proc
  int64_t next_proc = 0;
  int64_t next_pub = 0;
  int64_t next_author = 0;

  for (const SegmentView& segment : segments_) {
    for (int64_t p = 0; p < segment.num_papers; ++p) {
      const uint32_t conf_id = segment.venue_id[p];
      if (!venue_seen[conf_id]) {
        venue_seen[conf_id] = true;
        DISTINCT_RETURN_IF_ERROR(
            conferences
                ->AppendRow({Value::Int(conf_id),
                             Value::Str(std::string(venues_.At(conf_id))),
                             Value::Str("unknown-publisher")})
                .status());
      }

      const int64_t raw_year = segment.year[p];
      const int64_t year = raw_year >= 0 ? raw_year : 0;
      const int64_t proc_key =
          (static_cast<int64_t>(conf_id) << 16) | (year & 0xffff);
      auto [it, inserted] = proc_ids.emplace(proc_key, next_proc);
      if (inserted) {
        DISTINCT_RETURN_IF_ERROR(
            proceedings
                ->AppendRow({Value::Int(next_proc), Value::Int(conf_id),
                             Value::Int(year), Value::Null()})
                .status());
        ++next_proc;
      }
      const int64_t proc_id = it->second;

      const int64_t paper_id = segment.paper_base + p;
      DISTINCT_RETURN_IF_ERROR(
          publications
              ->AppendRow({Value::Int(paper_id),
                           Value::Str(std::string(
                               titles_.At(segment.title_id[p]))),
                           Value::Int(proc_id)})
              .status());

      for (uint32_t r = segment.ref_begin[p]; r < segment.ref_begin[p + 1];
           ++r) {
        const uint32_t author = segment.author_id[r];
        if (options.min_refs_per_author > 0 &&
            refs_per_author[author] < options.min_refs_per_author) {
          continue;
        }
        if (author_row[author] < 0) {
          author_row[author] = next_author++;
          DISTINCT_RETURN_IF_ERROR(
              authors
                  ->AppendRow({Value::Int(author_row[author]),
                               Value::Str(std::string(authors_.At(author)))})
                  .status());
        }
        DISTINCT_RETURN_IF_ERROR(
            publish
                ->AppendRow({Value::Int(next_pub++),
                             Value::Int(author_row[author]),
                             Value::Int(paper_id)})
                .status());
      }
    }
  }

  XmlLoadResult result;
  result.db = std::move(db);
  result.records_loaded = num_papers_;
  result.records_skipped = records_skipped_;
  return result;
}

}  // namespace catalog
}  // namespace distinct
