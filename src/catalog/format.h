// On-disk layout of the columnar DBLP catalog (DESIGN.md §16).
//
// A catalog is a directory:
//
//   MANIFEST.json       committed last; its presence marks a complete,
//                       consistent catalog generation
//   authors.dict        dictionary files: all distinct strings of one
//   venues.dict         column, id order = first appearance in the record
//   titles.dict         stream, plus a sorted permutation for lookups
//   segment-000000.bin  append-only column segments of fixed-width ids
//   segment-000001.bin  ...
//
// Every binary file is little-endian, begins with (magic, version), and
// ends with a CRC-32C of everything before the trailer. Files are written
// to `<name>.tmp`, fsync'd, renamed into place, and the directory is
// fsync'd — the same protocol core/checkpoint.cc uses — so a crash
// mid-ingest leaves either a complete previous generation or no MANIFEST
// at all, never a torn catalog.
//
// Dictionary file:
//   u32 magic = kDictMagic        u32 version = kCatalogFormatVersion
//   u64 count
//   u64 offsets[count + 1]        byte offsets into the blob, id order
//   u8  blob[offsets[count]]      concatenated string bytes
//   u8  pad[]                     zeros up to an 8-byte boundary
//   u32 sorted_ids[count]         ids ordered by string ascending
//   u32 crc                       CRC-32C of all preceding bytes
//
// Segment file (fixed-width columns over `num_papers` records carrying
// `num_refs` author references; all ids index the dictionaries above):
//   u32 magic = kSegmentMagic     u32 version = kCatalogFormatVersion
//   u64 paper_base                global id of the first paper
//   u64 num_papers
//   u64 num_refs
//   i64 year[num_papers]          raw record year, -1 when absent
//   u32 title_id[num_papers]
//   u32 venue_id[num_papers]
//   u32 ref_begin[num_papers+1]   per-paper ranges into author_id
//   u32 author_id[num_refs]       in record order
//   u32 crc                       CRC-32C of all preceding bytes
//
// The header block is 32 bytes and every column width divides its offset,
// so a reader can overlay spans on the mapping without copying.

#ifndef DISTINCT_CATALOG_FORMAT_H_
#define DISTINCT_CATALOG_FORMAT_H_

#include <cstdint>
#include <string>

namespace distinct {
namespace catalog {

inline constexpr uint32_t kCatalogFormatVersion = 1;
inline constexpr uint32_t kDictMagic = 0x44544344;     // "DCTD"
inline constexpr uint32_t kSegmentMagic = 0x47534344;  // "DCSG"

inline constexpr char kManifestFile[] = "MANIFEST.json";
inline constexpr char kAuthorsDictFile[] = "authors.dict";
inline constexpr char kVenuesDictFile[] = "venues.dict";
inline constexpr char kTitlesDictFile[] = "titles.dict";

/// "segment-000042.bin".
std::string SegmentFileName(int64_t index);

/// The empty-venue replacement. Interned by the catalog writer exactly
/// where dblp/xml_loader.cc would intern it, so the venue dictionary's ids
/// coincide with the in-memory loader's conference surrogate keys — the
/// keystone of the bit-identity contract.
inline constexpr char kUnknownVenue[] = "unknown-venue";

}  // namespace catalog
}  // namespace distinct

#endif  // DISTINCT_CATALOG_FORMAT_H_
