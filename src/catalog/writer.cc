#include "catalog/writer.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "catalog/format.h"
#include "common/crc32.h"
#include "common/io_util.h"
#include "common/rng.h"
#include "obs/json_writer.h"

namespace distinct {
namespace catalog {

namespace {

void AppendU32(std::string& out, uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, 4);
  out.append(bytes, 4);
}

void AppendU64(std::string& out, uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, 8);
  out.append(bytes, 8);
}

void AppendI64(std::string& out, int64_t value) {
  AppendU64(out, static_cast<uint64_t>(value));
}

/// A generation id that differs between any two ingests: wall-clock
/// nanoseconds xor pid, whitened through SplitMix64 so even back-to-back
/// ingests in one process diverge in every bit.
int64_t NewGeneration() {
  uint64_t state = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  state ^= static_cast<uint64_t>(::getpid()) << 32;
  static std::atomic<uint64_t> counter{0};
  state += counter.fetch_add(1, std::memory_order_relaxed) * 0x9e3779b9u;
  uint64_t generation =
      SplitMix64Next(state) & 0x7fffffffffffffffull;
  if (generation == 0) {
    generation = 1;
  }
  return static_cast<int64_t>(generation);
}

struct StringViewHash {
  using is_transparent = void;
  size_t operator()(std::string_view text) const {
    return std::hash<std::string_view>()(text);
  }
};

}  // namespace

struct CatalogWriter::SegmentManifest {
  std::string file;
  int64_t paper_base = 0;
  int64_t num_papers = 0;
  int64_t num_refs = 0;
  int64_t bytes = 0;
  uint32_t crc = 0;
};

/// Arena-backed intern table: ids are first-appearance order, strings live
/// in stable 1 MiB blocks so the index can key on string_view without
/// copies. For a DBLP-scale title column this halves resident bytes versus
/// the map<string> + vector<string> layout common/dictionary.h uses.
class CatalogWriter::InternTable {
 public:
  explicit InternTable(obs::MemoryTracker::Component component)
      : tracked_(component) {}

  uint32_t Intern(std::string_view text) {
    auto it = index_.find(text);
    if (it != index_.end()) {
      return it->second;
    }
    const std::string_view stored = Store(text);
    const uint32_t id = static_cast<uint32_t>(views_.size());
    views_.push_back(stored);
    index_.emplace(stored, id);
    Account();
    return id;
  }

  size_t size() const { return views_.size(); }
  std::string_view At(uint32_t id) const { return views_[id]; }
  int64_t tracked_bytes() const { return tracked_.bytes(); }

  /// Total string bytes (the serialized blob size).
  int64_t blob_bytes() const { return blob_bytes_; }

  /// Ids ordered by string ascending — the lookup permutation the
  /// dictionary file carries.
  std::vector<uint32_t> SortedIds() const {
    std::vector<uint32_t> ids(views_.size());
    for (uint32_t i = 0; i < ids.size(); ++i) {
      ids[i] = i;
    }
    std::sort(ids.begin(), ids.end(), [this](uint32_t a, uint32_t b) {
      return views_[a] < views_[b];
    });
    return ids;
  }

 private:
  static constexpr size_t kBlockBytes = 1 << 20;

  std::string_view Store(std::string_view text) {
    if (blocks_.empty() ||
        block_used_ + text.size() > blocks_.back().size()) {
      blocks_.emplace_back();
      blocks_.back().resize(std::max(kBlockBytes, text.size()));
      block_used_ = 0;
    }
    char* dest = blocks_.back().data() + block_used_;
    std::memcpy(dest, text.data(), text.size());
    block_used_ += text.size();
    blob_bytes_ += static_cast<int64_t>(text.size());
    return std::string_view(dest, text.size());
  }

  void Account() {
    // Arena blocks + the id vector + an estimate of the index's node and
    // bucket payload (string_view key, u32 value, hash bookkeeping).
    constexpr int64_t kIndexEntryBytes = 48;
    int64_t bytes = 0;
    for (const std::string& block : blocks_) {
      bytes += static_cast<int64_t>(block.size());
    }
    bytes += static_cast<int64_t>(views_.capacity() * sizeof(std::string_view));
    bytes += static_cast<int64_t>(index_.size()) * kIndexEntryBytes;
    tracked_.Set(bytes);
  }

  std::vector<std::string> blocks_;  // stable: never resized after fill
  size_t block_used_ = 0;
  int64_t blob_bytes_ = 0;
  std::vector<std::string_view> views_;  // id -> string
  std::unordered_map<std::string_view, uint32_t, StringViewHash,
                     std::equal_to<>>
      index_;
  obs::TrackedBytes tracked_;
};

std::string SegmentFileName(int64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "segment-%06lld.bin",
                static_cast<long long>(index));
  return name;
}

CatalogWriter::CatalogWriter(CatalogWriterOptions options)
    : options_(std::move(options)),
      generation_(NewGeneration()),
      authors_(std::make_unique<InternTable>(
          obs::MemoryTracker::kIngestDictionary)),
      venues_(std::make_unique<InternTable>(
          obs::MemoryTracker::kIngestDictionary)),
      titles_(std::make_unique<InternTable>(
          obs::MemoryTracker::kIngestDictionary)),
      segment_bytes_(obs::MemoryTracker::kCatalogSegment) {}

CatalogWriter::~CatalogWriter() = default;

StatusOr<std::unique_ptr<CatalogWriter>> CatalogWriter::Create(
    CatalogWriterOptions options) {
  if (options.dir.empty()) {
    return InvalidArgumentError("catalog: output directory is empty");
  }
  if (options.segment_papers <= 0) {
    return InvalidArgumentError("catalog: segment_papers must be positive");
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return InternalError("catalog: cannot create directory '" + options.dir +
                         "': " + ec.message());
  }
  // Sweep debris: the previous generation's files and any .tmp left by a
  // killed ingest. A catalog directory holds exactly one generation.
  for (const auto& entry : fs::directory_iterator(options.dir, ec)) {
    const std::string name = entry.path().filename().string();
    const bool stale =
        name == kManifestFile || name.ends_with(".tmp") ||
        name.ends_with(".dict") ||
        (name.starts_with("segment-") && name.ends_with(".bin"));
    if (stale) {
      fs::remove(entry.path(), ec);
      if (ec) {
        return InternalError("catalog: cannot remove stale '" + name +
                             "': " + ec.message());
      }
    }
  }
  return std::unique_ptr<CatalogWriter>(new CatalogWriter(std::move(options)));
}

Status CatalogWriter::CheckBudget() const {
  if (options_.memory_budget_bytes <= 0) {
    return Status::Ok();
  }
  const int64_t resident = authors_->tracked_bytes() +
                           venues_->tracked_bytes() +
                           titles_->tracked_bytes() + segment_bytes_.bytes();
  if (resident > options_.memory_budget_bytes) {
    return ResourceExhaustedError(
        "catalog ingest: dictionary+segment working set " +
        std::to_string(resident >> 20) + " MiB exceeds the " +
        std::to_string(options_.memory_budget_bytes >> 20) +
        " MiB scan memory budget");
  }
  return Status::Ok();
}

Status CatalogWriter::Add(const DblpRecord& record) {
  if (finished_) {
    return FailedPreconditionError("catalog: writer already finished");
  }
  const std::string_view venue =
      record.venue.empty() ? std::string_view(kUnknownVenue)
                           : std::string_view(record.venue);
  if (ref_begin_.empty()) {
    ref_begin_.push_back(0);
  }
  venue_id_.push_back(venues_->Intern(venue));
  title_id_.push_back(titles_->Intern(record.title));
  year_.push_back(record.year);
  for (const std::string& author : record.authors) {
    author_id_.push_back(authors_->Intern(author));
  }
  ref_begin_.push_back(static_cast<uint32_t>(author_id_.size()));
  ++num_papers_;
  num_refs_ += static_cast<int64_t>(record.authors.size());

  segment_bytes_.Set(static_cast<int64_t>(
      year_.capacity() * sizeof(int64_t) +
      (title_id_.capacity() + venue_id_.capacity() + ref_begin_.capacity() +
       author_id_.capacity()) *
          sizeof(uint32_t)));
  DISTINCT_RETURN_IF_ERROR(CheckBudget());

  if (static_cast<int64_t>(year_.size()) >= options_.segment_papers) {
    return FlushSegment();
  }
  return Status::Ok();
}

Status CatalogWriter::WriteCatalogFile(const std::string& file_name,
                                       std::string payload, uint32_t* crc_out,
                                       int64_t* bytes_out) {
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  AppendU32(payload, crc);
  const std::string path = options_.dir + "/" + file_name;
  const std::string tmp = path + ".tmp";
  DISTINCT_RETURN_IF_ERROR(WriteFileDurable(tmp, payload, "catalog"));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return InternalError("catalog: rename of '" + tmp +
                         "' failed: " + std::strerror(errno));
  }
  DISTINCT_RETURN_IF_ERROR(FsyncDir(options_.dir, "catalog"));
  if (crc_out != nullptr) {
    *crc_out = crc;
  }
  if (bytes_out != nullptr) {
    *bytes_out = static_cast<int64_t>(payload.size());
  }
  bytes_written_ += static_cast<int64_t>(payload.size());
  return Status::Ok();
}

Status CatalogWriter::FlushSegment() {
  const int64_t papers = static_cast<int64_t>(year_.size());
  if (papers == 0) {
    return Status::Ok();
  }
  const int64_t refs = static_cast<int64_t>(author_id_.size());

  std::string payload;
  payload.reserve(32 + year_.size() * 8 +
                  (title_id_.size() + venue_id_.size() + ref_begin_.size() +
                   author_id_.size()) *
                      4 +
                  4);
  AppendU32(payload, kSegmentMagic);
  AppendU32(payload, kCatalogFormatVersion);
  AppendU64(payload, static_cast<uint64_t>(segment_paper_base_));
  AppendU64(payload, static_cast<uint64_t>(papers));
  AppendU64(payload, static_cast<uint64_t>(refs));
  for (int64_t year : year_) {
    AppendI64(payload, year);
  }
  const auto append_u32s = [&payload](const std::vector<uint32_t>& column) {
    payload.append(reinterpret_cast<const char*>(column.data()),
                   column.size() * sizeof(uint32_t));
  };
  append_u32s(title_id_);
  append_u32s(venue_id_);
  append_u32s(ref_begin_);
  append_u32s(author_id_);

  SegmentManifest manifest;
  manifest.file = SegmentFileName(static_cast<int64_t>(segments_.size()));
  manifest.paper_base = segment_paper_base_;
  manifest.num_papers = papers;
  manifest.num_refs = refs;
  DISTINCT_RETURN_IF_ERROR(WriteCatalogFile(manifest.file, std::move(payload),
                                            &manifest.crc, &manifest.bytes));
  segments_.push_back(std::move(manifest));

  segment_paper_base_ += papers;
  year_.clear();
  title_id_.clear();
  venue_id_.clear();
  ref_begin_.clear();
  author_id_.clear();
  return Status::Ok();
}

Status CatalogWriter::WriteDictionary(const std::string& file_name,
                                      const InternTable& table,
                                      uint32_t* crc_out, int64_t* bytes_out) {
  const size_t count = table.size();
  std::string payload;
  payload.reserve(16 + (count + 1) * 8 +
                  static_cast<size_t>(table.blob_bytes()) + 8 + count * 4 + 4);
  AppendU32(payload, kDictMagic);
  AppendU32(payload, kCatalogFormatVersion);
  AppendU64(payload, count);
  uint64_t offset = 0;
  for (size_t id = 0; id < count; ++id) {
    AppendU64(payload, offset);
    offset += table.At(static_cast<uint32_t>(id)).size();
  }
  AppendU64(payload, offset);
  for (size_t id = 0; id < count; ++id) {
    const std::string_view text = table.At(static_cast<uint32_t>(id));
    payload.append(text.data(), text.size());
  }
  payload.append((8 - payload.size() % 8) % 8, '\0');
  const std::vector<uint32_t> sorted = table.SortedIds();
  payload.append(reinterpret_cast<const char*>(sorted.data()),
                 sorted.size() * sizeof(uint32_t));
  return WriteCatalogFile(file_name, std::move(payload), crc_out, bytes_out);
}

StatusOr<CatalogSummary> CatalogWriter::Finish(int64_t records_skipped) {
  if (finished_) {
    return FailedPreconditionError("catalog: writer already finished");
  }
  DISTINCT_RETURN_IF_ERROR(FlushSegment());

  struct DictManifest {
    const char* file;
    uint32_t crc = 0;
    int64_t bytes = 0;
    int64_t count = 0;
  };
  DictManifest dicts[3] = {{kAuthorsDictFile}, {kVenuesDictFile},
                           {kTitlesDictFile}};
  const InternTable* tables[3] = {authors_.get(), venues_.get(),
                                  titles_.get()};
  for (int i = 0; i < 3; ++i) {
    dicts[i].count = static_cast<int64_t>(tables[i]->size());
    DISTINCT_RETURN_IF_ERROR(WriteDictionary(dicts[i].file, *tables[i],
                                             &dicts[i].crc, &dicts[i].bytes));
  }

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("format_version").Value(static_cast<int64_t>(kCatalogFormatVersion));
  json.Key("generation").Value(generation_);
  json.Key("num_papers").Value(num_papers_);
  json.Key("num_refs").Value(num_refs_);
  json.Key("records_skipped").Value(records_skipped);
  json.Key("dictionaries").BeginObject();
  const char* dict_keys[3] = {"authors", "venues", "titles"};
  for (int i = 0; i < 3; ++i) {
    json.Key(dict_keys[i]).BeginObject();
    json.Key("file").Value(dicts[i].file);
    json.Key("count").Value(dicts[i].count);
    json.Key("bytes").Value(dicts[i].bytes);
    json.Key("crc").Value(static_cast<int64_t>(dicts[i].crc));
    json.EndObject();
  }
  json.EndObject();
  json.Key("segments").BeginArray();
  for (const SegmentManifest& segment : segments_) {
    json.BeginObject();
    json.Key("file").Value(segment.file);
    json.Key("paper_base").Value(segment.paper_base);
    json.Key("num_papers").Value(segment.num_papers);
    json.Key("num_refs").Value(segment.num_refs);
    json.Key("bytes").Value(segment.bytes);
    json.Key("crc").Value(static_cast<int64_t>(segment.crc));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  // The manifest commits the generation: readers refuse a directory
  // without one, so a crash before this rename leaves no catalog rather
  // than a partial one.
  const std::string manifest_path =
      std::string(options_.dir) + "/" + kManifestFile;
  const std::string tmp = manifest_path + ".tmp";
  DISTINCT_RETURN_IF_ERROR(WriteFileDurable(tmp, json.str(), "catalog"));
  if (::rename(tmp.c_str(), manifest_path.c_str()) != 0) {
    return InternalError("catalog: rename of '" + tmp +
                         "' failed: " + std::strerror(errno));
  }
  DISTINCT_RETURN_IF_ERROR(FsyncDir(options_.dir, "catalog"));
  bytes_written_ += static_cast<int64_t>(json.str().size());
  finished_ = true;

  CatalogSummary summary;
  summary.generation = generation_;
  summary.num_papers = num_papers_;
  summary.num_refs = num_refs_;
  summary.num_segments = static_cast<int64_t>(segments_.size());
  summary.num_authors = static_cast<int64_t>(authors_->size());
  summary.num_venues = static_cast<int64_t>(venues_->size());
  summary.num_titles = static_cast<int64_t>(titles_->size());
  summary.records_skipped = records_skipped;
  summary.bytes_written = bytes_written_;
  return summary;
}

}  // namespace catalog
}  // namespace distinct
