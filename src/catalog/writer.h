// Streaming writer for the on-disk columnar catalog (catalog/format.h).
//
// Records arrive one at a time from the SAX pipeline; the writer
// dictionary-encodes the string fields into arena-backed intern tables,
// buffers fixed-width columns for one segment, and flushes each full
// segment with the durable tmp+fsync+rename protocol. Nothing about the
// document is ever materialised: peak memory is the dictionaries (which
// must stay resident for encoding) plus one segment buffer, and both are
// registered with the MemoryTracker and checked against an optional byte
// budget on every Add.

#ifndef DISTINCT_CATALOG_WRITER_H_
#define DISTINCT_CATALOG_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dblp/dblp_records.h"
#include "obs/memory.h"

namespace distinct {
namespace catalog {

struct CatalogWriterOptions {
  std::string dir;
  /// Papers per column segment. Smaller segments bound the flush buffer;
  /// larger ones reduce file count and per-segment overhead.
  int64_t segment_papers = 1 << 16;
  /// Admission budget for the resident working set (dictionaries + the
  /// open segment buffer). 0 disables the check.
  int64_t memory_budget_bytes = 0;
};

/// What one finished ingest produced; mirrored into MANIFEST.json.
struct CatalogSummary {
  int64_t generation = 0;  // stamps checkpoints taken over this catalog
  int64_t num_papers = 0;
  int64_t num_refs = 0;
  int64_t num_segments = 0;
  int64_t num_authors = 0;
  int64_t num_venues = 0;
  int64_t num_titles = 0;
  int64_t records_skipped = 0;
  int64_t bytes_written = 0;
};

class CatalogWriter {
 public:
  /// Creates `options.dir` if needed and removes any stale catalog files
  /// in it (a previous generation, or debris from a killed ingest).
  static StatusOr<std::unique_ptr<CatalogWriter>> Create(
      CatalogWriterOptions options);

  ~CatalogWriter();
  CatalogWriter(const CatalogWriter&) = delete;
  CatalogWriter& operator=(const CatalogWriter&) = delete;

  /// Encodes one record into the open segment, flushing it to disk when
  /// full. ResourceExhausted when the working set exceeds the budget.
  Status Add(const DblpRecord& record);

  /// Flushes the tail segment and dictionaries, then commits the catalog
  /// by renaming MANIFEST.json into place. The writer is unusable after.
  StatusOr<CatalogSummary> Finish(int64_t records_skipped);

  int64_t papers() const { return num_papers_; }
  int64_t refs() const { return num_refs_; }

 private:
  class InternTable;
  struct SegmentManifest;

  explicit CatalogWriter(CatalogWriterOptions options);

  Status CheckBudget() const;
  Status FlushSegment();
  Status WriteCatalogFile(const std::string& file_name,
                          std::string payload, uint32_t* crc_out,
                          int64_t* bytes_out);
  Status WriteDictionary(const std::string& file_name,
                         const InternTable& table, uint32_t* crc_out,
                         int64_t* bytes_out);

  CatalogWriterOptions options_;
  int64_t generation_ = 0;
  bool finished_ = false;

  std::unique_ptr<InternTable> authors_;
  std::unique_ptr<InternTable> venues_;
  std::unique_ptr<InternTable> titles_;

  // Open-segment column buffers.
  std::vector<int64_t> year_;
  std::vector<uint32_t> title_id_;
  std::vector<uint32_t> venue_id_;
  std::vector<uint32_t> ref_begin_;
  std::vector<uint32_t> author_id_;
  obs::TrackedBytes segment_bytes_;

  int64_t segment_paper_base_ = 0;
  int64_t num_papers_ = 0;
  int64_t num_refs_ = 0;
  int64_t bytes_written_ = 0;
  std::vector<SegmentManifest> segments_;
};

}  // namespace catalog
}  // namespace distinct

#endif  // DISTINCT_CATALOG_WRITER_H_
