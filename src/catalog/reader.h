// mmap-backed reader for the columnar catalog (catalog/format.h).
//
// Open() maps the dictionaries and segments, validates magics, format
// versions, and CRC-32C trailers against the manifest, and exposes
// zero-copy views: dictionary strings as string_views into the mapping,
// columns as spans over the mapped fixed-width arrays. Nothing is decoded
// until asked for; opening a multi-GB catalog touches only headers and the
// one sequential CRC pass.
//
// MaterializeDatabase replays dblp/xml_loader.cc's BuildDatabase over the
// mapped columns and must produce a bit-identical Database — same surrogate
// keys, same row order, same dictionary ids — which the differential test
// holds it to.

#ifndef DISTINCT_CATALOG_READER_H_
#define DISTINCT_CATALOG_READER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/mmap_file.h"
#include "common/status.h"
#include "dblp/xml_loader.h"

namespace distinct {
namespace catalog {

/// Zero-copy dictionary view: id -> string_view into the mapping, plus
/// binary-search lookup through the sorted permutation.
class DictView {
 public:
  size_t size() const { return count_; }
  std::string_view At(uint32_t id) const;
  std::optional<uint32_t> Find(std::string_view text) const;

 private:
  friend class CatalogReader;
  size_t count_ = 0;
  const uint64_t* offsets_ = nullptr;  // count_ + 1 entries
  const char* blob_ = nullptr;
  const uint32_t* sorted_ids_ = nullptr;
};

/// Zero-copy column views over one mapped segment. Ids index the catalog
/// dictionaries; `ref_begin[p] .. ref_begin[p+1]` is paper p's slice of
/// `author_id` (p relative to `paper_base`).
struct SegmentView {
  int64_t paper_base = 0;
  int64_t num_papers = 0;
  int64_t num_refs = 0;
  std::span<const int64_t> year;
  std::span<const uint32_t> title_id;
  std::span<const uint32_t> venue_id;
  std::span<const uint32_t> ref_begin;  // num_papers + 1
  std::span<const uint32_t> author_id;
};

class CatalogReader {
 public:
  /// Opens and validates a catalog directory. NotFound when no manifest
  /// exists (never ingested, or killed before commit), FailedPrecondition
  /// on a format-version mismatch, DataLoss on CRC/shape corruption.
  static StatusOr<std::unique_ptr<CatalogReader>> Open(
      const std::string& dir);

  int64_t generation() const { return generation_; }
  int64_t num_papers() const { return num_papers_; }
  int64_t num_refs() const { return num_refs_; }
  int64_t records_skipped() const { return records_skipped_; }
  /// Bytes of file currently mapped (columns + dictionaries).
  int64_t mapped_bytes() const { return mapped_bytes_; }

  const DictView& authors() const { return authors_; }
  const DictView& venues() const { return venues_; }
  const DictView& titles() const { return titles_; }
  const std::vector<SegmentView>& segments() const { return segments_; }

  /// Rebuilds the in-memory Database exactly as LoadDblpXmlFile would have
  /// from the original document (same options semantics, including
  /// min_refs_per_author). The result is bit-identical: every table, row,
  /// and dictionary id matches the in-memory loader's output.
  StatusOr<XmlLoadResult> MaterializeDatabase(
      const XmlLoadOptions& options = {}) const;

 private:
  CatalogReader() = default;

  Status OpenDictionary(const std::string& dir, const std::string& file,
                        int64_t expected_count, uint32_t expected_crc,
                        DictView* view);
  Status OpenSegment(const std::string& dir, const std::string& file,
                     int64_t paper_base, int64_t papers, int64_t refs,
                     uint32_t expected_crc);

  int64_t generation_ = 0;
  int64_t num_papers_ = 0;
  int64_t num_refs_ = 0;
  int64_t records_skipped_ = 0;
  int64_t mapped_bytes_ = 0;

  std::vector<MappedFile> mappings_;  // keeps every view alive
  DictView authors_;
  DictView venues_;
  DictView titles_;
  std::vector<SegmentView> segments_;
};

}  // namespace catalog
}  // namespace distinct

#endif  // DISTINCT_CATALOG_READER_H_
