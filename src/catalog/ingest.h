// Streaming ingest: dblp.xml file -> columnar catalog directory.
//
// Drives the push parser (xml/XmlStreamParser) with fixed-size reads
// through common/io_util's ReadFdSome, assembles records with the same
// DblpRecordHandler the in-memory loader uses, and hands each record to
// the CatalogWriter. Peak memory is the read chunk, the parser's bounded
// carry-over buffer, the dictionaries, and one open segment — independent
// of document size, which is the point: a multi-GB dblp.xml ingests under
// the same scan_memory_mb budget the resolver runs with.

#ifndef DISTINCT_CATALOG_INGEST_H_
#define DISTINCT_CATALOG_INGEST_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "catalog/writer.h"
#include "common/status.h"

namespace distinct {
namespace catalog {

struct IngestOptions {
  /// Papers per column segment (CatalogWriterOptions::segment_papers).
  int64_t segment_papers = 1 << 16;
  /// Working-set budget in MiB (dictionaries + open segment); 0 = none.
  /// Wired to --scan-memory-mb by the CLI so ingest admission follows the
  /// same budget as the scan.
  int64_t memory_budget_mb = 0;
  /// Bytes per read(2) into the parser.
  size_t read_chunk_bytes = 256 * 1024;
  /// Largest single XML construct the parser will buffer.
  size_t max_token_bytes = 1 << 20;
};

struct IngestStats {
  int64_t bytes_read = 0;
  int64_t records = 0;
  int64_t skipped = 0;
  CatalogSummary summary;
};

/// Streams `xml_path` into a fresh catalog generation at `catalog_dir`.
/// Any failure (I/O, malformed XML, budget, disk) leaves the directory
/// without a manifest, so a later Open refuses it.
StatusOr<IngestStats> IngestDblpXml(const std::string& xml_path,
                                    const std::string& catalog_dir,
                                    const IngestOptions& options = {});

}  // namespace catalog
}  // namespace distinct

#endif  // DISTINCT_CATALOG_INGEST_H_
