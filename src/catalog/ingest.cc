#include "catalog/ingest.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/io_util.h"
#include "dblp/dblp_records.h"
#include "xml/xml_parser.h"

namespace distinct {
namespace catalog {

StatusOr<IngestStats> IngestDblpXml(const std::string& xml_path,
                                    const std::string& catalog_dir,
                                    const IngestOptions& options) {
  if (options.read_chunk_bytes == 0) {
    return InvalidArgumentError("ingest: read_chunk_bytes must be positive");
  }
  CatalogWriterOptions writer_options;
  writer_options.dir = catalog_dir;
  writer_options.segment_papers = options.segment_papers;
  writer_options.memory_budget_bytes = options.memory_budget_mb << 20;
  auto writer_or = CatalogWriter::Create(std::move(writer_options));
  DISTINCT_RETURN_IF_ERROR(writer_or.status());
  CatalogWriter& writer = **writer_or;

  const int fd = ::open(xml_path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return NotFoundError("ingest: no file '" + xml_path + "'");
    }
    return InternalError("ingest: cannot open '" + xml_path +
                         "': " + std::strerror(errno));
  }

  DblpRecordHandler handler(
      [&writer](DblpRecord&& record) { return writer.Add(record); });
  XmlStreamOptions stream_options;
  stream_options.max_token_bytes = options.max_token_bytes;
  XmlStreamParser parser(handler, stream_options);

  IngestStats stats;
  std::vector<char> chunk(options.read_chunk_bytes);
  Status status = Status::Ok();
  for (;;) {
    auto n = ReadFdSome(fd, chunk.data(), chunk.size(), "ingest");
    if (!n.ok()) {
      status = n.status();
      break;
    }
    if (*n == 0) {
      status = parser.Finish();
      break;
    }
    stats.bytes_read += static_cast<int64_t>(*n);
    status = parser.Feed(std::string_view(chunk.data(), *n));
    // A sink failure (budget, disk) surfaces through the handler, not the
    // parser: the handler goes quiet and records why.
    if (status.ok() && !handler.status().ok()) {
      status = handler.status();
    }
    if (!status.ok()) {
      break;
    }
  }
  ::close(fd);
  if (status.ok() && !handler.status().ok()) {
    status = handler.status();
  }
  DISTINCT_RETURN_IF_ERROR(status);

  auto summary = writer.Finish(handler.skipped());
  DISTINCT_RETURN_IF_ERROR(summary.status());
  stats.records = handler.records();
  stats.skipped = handler.skipped();
  stats.summary = *summary;
  return stats;
}

}  // namespace catalog
}  // namespace distinct
