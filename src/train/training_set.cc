#include "train/training_set.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"

namespace distinct {

StatusOr<std::vector<TrainingPair>> BuildTrainingSet(
    const Database& db, const ReferenceSpec& spec,
    const TrainingSetOptions& options) {
  auto index = RareNameIndex::Build(db, spec, options.rare);
  DISTINCT_RETURN_IF_ERROR(index.status());
  const std::vector<UniqueAuthor>& authors = index->unique_authors();
  if (authors.size() < 2) {
    return FailedPreconditionError(StrFormat(
        "training set: only %zu likely-unique authors found",
        authors.size()));
  }

  Rng rng(options.seed);
  std::vector<TrainingPair> pairs;
  pairs.reserve(static_cast<size_t>(options.num_positive) +
                static_cast<size_t>(options.num_negative));

  // Positives: round-robin over shuffled authors, a few pairs each.
  std::vector<size_t> author_order(authors.size());
  for (size_t i = 0; i < authors.size(); ++i) {
    author_order[i] = i;
  }
  rng.Shuffle(author_order);

  int positives = 0;
  for (int round = 0; round < options.max_pairs_per_author &&
                      positives < options.num_positive;
       ++round) {
    for (const size_t a : author_order) {
      if (positives >= options.num_positive) {
        break;
      }
      const auto& refs = authors[a].publish_rows;
      const int64_t possible =
          static_cast<int64_t>(refs.size()) *
          (static_cast<int64_t>(refs.size()) - 1) / 2;
      if (possible <= round) {
        continue;
      }
      // A fresh random pair; collisions across rounds are acceptable noise.
      const size_t i = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(refs.size()) - 1));
      size_t j = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(refs.size()) - 2));
      if (j >= i) {
        ++j;
      }
      pairs.push_back(TrainingPair{refs[i], refs[j], +1});
      ++positives;
    }
  }
  if (positives < options.num_positive) {
    return FailedPreconditionError(StrFormat(
        "training set: could only sample %d of %d positive pairs", positives,
        options.num_positive));
  }

  // Negatives: two distinct likely-unique authors, one reference each.
  for (int n = 0; n < options.num_negative; ++n) {
    const size_t a = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(authors.size()) - 1));
    size_t b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(authors.size()) - 2));
    if (b >= a) {
      ++b;
    }
    const auto& refs_a = authors[a].publish_rows;
    const auto& refs_b = authors[b].publish_rows;
    const int32_t ref1 = refs_a[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(refs_a.size()) - 1))];
    const int32_t ref2 = refs_b[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(refs_b.size()) - 1))];
    pairs.push_back(TrainingPair{ref1, ref2, -1});
  }
  return pairs;
}

}  // namespace distinct
