// Rare-name detection for automatic training-set construction (paper §3).
//
// Most entities have distinct names; a full name whose first AND last parts
// are both rare across the database is very likely unique, so its
// references can be assumed equivalent (positives) and references of two
// different rare names distinct (negatives) — no manual labeling needed.

#ifndef DISTINCT_TRAIN_RARE_NAMES_H_
#define DISTINCT_TRAIN_RARE_NAMES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "relational/reference_spec.h"

namespace distinct {

struct RareNameOptions {
  /// A name part is rare when it occurs on at most this many distinct
  /// author names.
  int max_first_name_count = 3;
  int max_last_name_count = 3;
  /// Likely-unique authors need at least this many references to yield
  /// positive pairs.
  int min_refs = 2;
  /// Authors with huge reference lists are skipped: a "rare" name with very
  /// many papers is suspicious, and pairs from one author would dominate.
  int max_refs = 60;
};

/// A likely-unique author and its references.
struct UniqueAuthor {
  int64_t name_row = -1;  // row in the name table
  std::string name;
  std::vector<int32_t> publish_rows;
};

/// Scans the database for likely-unique authors.
class RareNameIndex {
 public:
  static StatusOr<RareNameIndex> Build(const Database& db,
                                       const ReferenceSpec& spec,
                                       const RareNameOptions& options = {});

  const std::vector<UniqueAuthor>& unique_authors() const {
    return unique_authors_;
  }

  /// Diagnostics: how many names were examined / passed the rarity test.
  int64_t names_scanned() const { return names_scanned_; }

 private:
  std::vector<UniqueAuthor> unique_authors_;
  int64_t names_scanned_ = 0;
};

}  // namespace distinct

#endif  // DISTINCT_TRAIN_RARE_NAMES_H_
