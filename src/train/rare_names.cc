#include "train/rare_names.h"

#include <unordered_map>

#include "common/string_util.h"

namespace distinct {

StatusOr<RareNameIndex> RareNameIndex::Build(const Database& db,
                                             const ReferenceSpec& spec,
                                             const RareNameOptions& options) {
  auto resolved = ResolveReferenceSpec(db, spec);
  DISTINCT_RETURN_IF_ERROR(resolved.status());
  const Table& name_table = db.table(resolved->name_table_id);
  const Table& ref_table = db.table(resolved->reference_table_id);

  // Frequency of each first/last part over distinct names.
  std::unordered_map<std::string, int> first_counts;
  std::unordered_map<std::string, int> last_counts;
  for (int64_t row = 0; row < name_table.num_rows(); ++row) {
    const std::string& name = name_table.GetString(row, resolved->name_column);
    if (StripWhitespace(name).empty()) {
      continue;  // nameless rows are not evidence of part frequency
    }
    // A single-token name contributes once to each map (its only token is
    // both first and last part); it is excluded from selection below.
    ++first_counts[std::string(FirstNameOf(name))];
    ++last_counts[std::string(LastNameOf(name))];
  }

  // References grouped by name row (via the name table's primary key).
  std::unordered_map<int64_t, std::vector<int32_t>> refs_by_pk;
  for (int64_t row = 0; row < ref_table.num_rows(); ++row) {
    if (ref_table.IsNull(row, resolved->identity_column)) {
      continue;
    }
    refs_by_pk[ref_table.GetInt(row, resolved->identity_column)].push_back(
        static_cast<int32_t>(row));
  }

  RareNameIndex index;
  index.names_scanned_ = name_table.num_rows();
  const int pk_col = name_table.primary_key_column();
  for (int64_t row = 0; row < name_table.num_rows(); ++row) {
    const std::string& name = name_table.GetString(row, resolved->name_column);
    const std::string first(FirstNameOf(name));
    const std::string last(LastNameOf(name));
    if (first == last) {
      continue;  // single-token name: rarity heuristic does not apply
    }
    if (first_counts[first] > options.max_first_name_count ||
        last_counts[last] > options.max_last_name_count) {
      continue;
    }
    auto it = refs_by_pk.find(name_table.GetInt(row, pk_col));
    if (it == refs_by_pk.end()) {
      continue;
    }
    const auto& refs = it->second;
    if (static_cast<int>(refs.size()) < options.min_refs ||
        static_cast<int>(refs.size()) > options.max_refs) {
      continue;
    }
    UniqueAuthor author;
    author.name_row = row;
    author.name = name;
    author.publish_rows = refs;
    index.unique_authors_.push_back(std::move(author));
  }
  return index;
}

}  // namespace distinct
