// Automatic training-pair sampling (paper §3).
//
// Positive examples: two references of one likely-unique author.
// Negative examples: references of two different likely-unique authors.
// The paper uses 1000 of each; both counts are configurable.

#ifndef DISTINCT_TRAIN_TRAINING_SET_H_
#define DISTINCT_TRAIN_TRAINING_SET_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "train/rare_names.h"

namespace distinct {

/// One labeled reference pair.
struct TrainingPair {
  int32_t ref1 = -1;  // Publish rows
  int32_t ref2 = -1;
  int label = 0;  // +1 equivalent, -1 distinct
};

struct TrainingSetOptions {
  int num_positive = 1000;
  int num_negative = 1000;
  uint64_t seed = 7;
  RareNameOptions rare;
  /// At most this many positive pairs may come from one author, so a few
  /// prolific rare-name authors cannot dominate the training set.
  int max_pairs_per_author = 8;
};

/// Samples pairs from the likely-unique authors of `db`. Fails when the
/// database has too few rare names to fill the requested counts.
StatusOr<std::vector<TrainingPair>> BuildTrainingSet(
    const Database& db, const ReferenceSpec& spec,
    const TrainingSetOptions& options = {});

}  // namespace distinct

#endif  // DISTINCT_TRAIN_TRAINING_SET_H_
