// Per-feature max-abs scaling.
//
// Walk probabilities are orders of magnitude smaller than resemblances;
// scaling each feature by its maximum absolute training value keeps the SVM
// well conditioned. `UnscaleWeights` maps learned weights back to raw
// feature space so the similarity model can consume unscaled features.

#ifndef DISTINCT_SVM_SCALER_H_
#define DISTINCT_SVM_SCALER_H_

#include <vector>

namespace distinct {

/// Fits on training rows, transforms rows, and back-transforms weights.
class MaxAbsScaler {
 public:
  MaxAbsScaler() = default;

  /// Records max |x| per feature. Features that are identically zero get
  /// scale 1 (transform leaves them zero).
  void Fit(const std::vector<std::vector<double>>& rows);

  /// x[f] / scale[f], element-wise. Requires Fit() first.
  std::vector<double> Transform(const std::vector<double>& row) const;
  std::vector<std::vector<double>> TransformAll(
      const std::vector<std::vector<double>>& rows) const;

  /// Maps weights learned on scaled features to raw feature space:
  /// w_raw[f] = w_scaled[f] / scale[f].
  std::vector<double> UnscaleWeights(
      const std::vector<double>& weights) const;

  const std::vector<double>& scales() const { return scales_; }
  bool fitted() const { return !scales_.empty(); }

 private:
  std::vector<double> scales_;
};

}  // namespace distinct

#endif  // DISTINCT_SVM_SCALER_H_
