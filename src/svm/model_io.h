// Text (de)serialization of trained SVM models.
//
// Format (line oriented, '#' comments allowed):
//   distinct-svm-model v1
//   bias <double>
//   weights <n>
//   <w0>
//   ...
// Doubles round-trip exactly via %.17g.

#ifndef DISTINCT_SVM_MODEL_IO_H_
#define DISTINCT_SVM_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "svm/linear_svm.h"

namespace distinct {

/// Serializes `model` to the text format above.
std::string SerializeSvmModel(const LinearSvmModel& model);

/// Parses a model; rejects version/shape mismatches and malformed numbers.
StatusOr<LinearSvmModel> ParseSvmModel(const std::string& text);

/// File convenience wrappers.
Status SaveSvmModel(const LinearSvmModel& model, const std::string& path);
StatusOr<LinearSvmModel> LoadSvmModel(const std::string& path);

}  // namespace distinct

#endif  // DISTINCT_SVM_MODEL_IO_H_
