// Linear support vector machine trained by dual coordinate descent.
//
// The paper weighs join paths with an SVM with linear kernel (§3). For
// linear kernels the dual coordinate-descent solver of Hsieh et al. (ICML
// 2008) — the algorithm inside LIBLINEAR — reaches the same optimum as a
// kernel SVM at a fraction of the cost, so the library implements it
// directly instead of depending on libsvm.
//
// Solves:  min_w  1/2 ||w||^2 + C Σ_i max(0, 1 - y_i w·x_i)
// (L1 hinge loss, L2 regularization). The bias is handled by augmenting
// every example with a constant feature, which regularizes the bias — the
// standard LIBLINEAR treatment.

#ifndef DISTINCT_SVM_LINEAR_SVM_H_
#define DISTINCT_SVM_LINEAR_SVM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace distinct {

/// A labeled training set: dense feature rows and ±1 labels.
struct SvmProblem {
  std::vector<std::vector<double>> x;
  std::vector<int> y;  // each entry +1 or -1

  size_t num_examples() const { return x.size(); }
  size_t num_features() const { return x.empty() ? 0 : x.front().size(); }
};

/// Loss functions supported by the dual coordinate-descent solver.
enum class SvmLoss {
  kHinge,         // L1-SVM: max(0, 1 - y w.x); alpha in [0, C]
  kSquaredHinge,  // L2-SVM: max(0, 1 - y w.x)^2; alpha in [0, inf)
};

/// Solver hyper-parameters.
struct SvmParams {
  SvmLoss loss = SvmLoss::kHinge;
  double c = 1.0;            // misclassification cost
  int max_epochs = 1000;     // passes over the data
  double epsilon = 1e-4;     // stop when max projected-gradient violation < ε
  bool fit_bias = true;      // learn an intercept via feature augmentation
  uint64_t seed = 1;         // coordinate-permutation seed
};

/// The trained separating hyperplane.
class LinearSvmModel {
 public:
  LinearSvmModel() = default;
  LinearSvmModel(std::vector<double> weights, double bias)
      : weights_(std::move(weights)), bias_(bias) {}

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  /// w·x + b.
  double Decision(const std::vector<double>& x) const;

  /// +1 or -1 (ties go to +1).
  int Predict(const std::vector<double>& x) const;

  /// Fraction of `problem` classified correctly.
  double Accuracy(const SvmProblem& problem) const;

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Trains on `problem`. Fails on empty input, inconsistent row widths,
/// labels outside {+1,-1}, or a single-class problem.
StatusOr<LinearSvmModel> TrainLinearSvm(const SvmProblem& problem,
                                        const SvmParams& params);

/// Stratified k-fold cross-validated accuracy. Requires k >= 2 and at least
/// k examples of each class.
StatusOr<double> CrossValidateAccuracy(const SvmProblem& problem,
                                       const SvmParams& params, int k);

}  // namespace distinct

#endif  // DISTINCT_SVM_LINEAR_SVM_H_
