#include "svm/model_io.h"

#include <cstdio>
#include <memory>

#include "common/string_util.h"

namespace distinct {
namespace {

constexpr char kMagic[] = "distinct-svm-model v1";

}  // namespace

std::string SerializeSvmModel(const LinearSvmModel& model) {
  std::string out = kMagic;
  out += '\n';
  out += StrFormat("bias %.17g\n", model.bias());
  out += StrFormat("weights %zu\n", model.weights().size());
  for (const double w : model.weights()) {
    out += StrFormat("%.17g\n", w);
  }
  return out;
}

StatusOr<LinearSvmModel> ParseSvmModel(const std::string& text) {
  std::vector<std::string> lines;
  for (std::string& line : Split(text, '\n')) {
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    lines.emplace_back(stripped);
  }
  if (lines.empty() || lines[0] != kMagic) {
    return DataLossError("SVM model: missing or unknown header");
  }
  if (lines.size() < 3) {
    return DataLossError("SVM model: truncated");
  }

  if (!StartsWith(lines[1], "bias ")) {
    return DataLossError("SVM model: expected 'bias' line");
  }
  auto bias = ParseDouble(std::string_view(lines[1]).substr(5));
  if (!bias.has_value()) {
    return DataLossError("SVM model: malformed bias");
  }

  if (!StartsWith(lines[2], "weights ")) {
    return DataLossError("SVM model: expected 'weights' line");
  }
  auto count = ParseInt64(std::string_view(lines[2]).substr(8));
  if (!count.has_value() || *count < 0) {
    return DataLossError("SVM model: malformed weight count");
  }
  if (lines.size() != 3 + static_cast<size_t>(*count)) {
    return DataLossError(StrFormat(
        "SVM model: expected %lld weights, found %zu lines",
        static_cast<long long>(*count), lines.size() - 3));
  }

  std::vector<double> weights;
  weights.reserve(static_cast<size_t>(*count));
  for (int64_t i = 0; i < *count; ++i) {
    auto w = ParseDouble(lines[3 + static_cast<size_t>(i)]);
    if (!w.has_value()) {
      return DataLossError(StrFormat(
          "SVM model: malformed weight at index %lld",
          static_cast<long long>(i)));
    }
    weights.push_back(*w);
  }
  return LinearSvmModel(std::move(weights), *bias);
}

Status SaveSvmModel(const LinearSvmModel& model, const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (file == nullptr) {
    return InvalidArgumentError("cannot open '" + path + "' for writing");
  }
  const std::string text = SerializeSvmModel(model);
  if (std::fwrite(text.data(), 1, text.size(), file.get()) != text.size()) {
    return DataLossError("short write to '" + path + "'");
  }
  return Status::Ok();
}

StatusOr<LinearSvmModel> LoadSvmModel(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::string text;
  char buffer[1 << 14];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    text.append(buffer, read);
  }
  return ParseSvmModel(text);
}

}  // namespace distinct
