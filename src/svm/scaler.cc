#include "svm/scaler.h"

#include <cmath>

#include "common/logging.h"

namespace distinct {

void MaxAbsScaler::Fit(const std::vector<std::vector<double>>& rows) {
  DISTINCT_CHECK(!rows.empty());
  scales_.assign(rows.front().size(), 0.0);
  for (const std::vector<double>& row : rows) {
    DISTINCT_CHECK(row.size() == scales_.size());
    for (size_t f = 0; f < row.size(); ++f) {
      scales_[f] = std::max(scales_[f], std::fabs(row[f]));
    }
  }
  for (double& scale : scales_) {
    if (scale <= 0.0) {
      scale = 1.0;
    }
  }
}

std::vector<double> MaxAbsScaler::Transform(
    const std::vector<double>& row) const {
  DISTINCT_CHECK(fitted());
  DISTINCT_CHECK(row.size() == scales_.size());
  std::vector<double> out(row.size());
  for (size_t f = 0; f < row.size(); ++f) {
    out[f] = row[f] / scales_[f];
  }
  return out;
}

std::vector<std::vector<double>> MaxAbsScaler::TransformAll(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const std::vector<double>& row : rows) {
    out.push_back(Transform(row));
  }
  return out;
}

std::vector<double> MaxAbsScaler::UnscaleWeights(
    const std::vector<double>& weights) const {
  DISTINCT_CHECK(fitted());
  DISTINCT_CHECK(weights.size() == scales_.size());
  std::vector<double> out(weights.size());
  for (size_t f = 0; f < weights.size(); ++f) {
    out[f] = weights[f] / scales_[f];
  }
  return out;
}

}  // namespace distinct
