#include "svm/linear_svm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace distinct {
namespace {

Status ValidateProblem(const SvmProblem& problem) {
  if (problem.x.empty()) {
    return InvalidArgumentError("SVM: empty training set");
  }
  if (problem.x.size() != problem.y.size()) {
    return InvalidArgumentError(StrFormat(
        "SVM: %zu feature rows but %zu labels", problem.x.size(),
        problem.y.size()));
  }
  const size_t width = problem.x.front().size();
  if (width == 0) {
    return InvalidArgumentError("SVM: zero-width feature rows");
  }
  bool has_positive = false;
  bool has_negative = false;
  for (size_t i = 0; i < problem.x.size(); ++i) {
    if (problem.x[i].size() != width) {
      return InvalidArgumentError(
          StrFormat("SVM: row %zu has width %zu, expected %zu", i,
                    problem.x[i].size(), width));
    }
    if (problem.y[i] == 1) {
      has_positive = true;
    } else if (problem.y[i] == -1) {
      has_negative = true;
    } else {
      return InvalidArgumentError(
          StrFormat("SVM: label %d at row %zu is not +1/-1", problem.y[i], i));
    }
  }
  if (!has_positive || !has_negative) {
    return InvalidArgumentError("SVM: training set has only one class");
  }
  return Status::Ok();
}

}  // namespace

double LinearSvmModel::Decision(const std::vector<double>& x) const {
  DISTINCT_CHECK(x.size() == weights_.size());
  double value = bias_;
  for (size_t i = 0; i < x.size(); ++i) {
    value += weights_[i] * x[i];
  }
  return value;
}

int LinearSvmModel::Predict(const std::vector<double>& x) const {
  return Decision(x) >= 0.0 ? 1 : -1;
}

double LinearSvmModel::Accuracy(const SvmProblem& problem) const {
  if (problem.x.empty()) {
    return 0.0;
  }
  int64_t correct = 0;
  for (size_t i = 0; i < problem.x.size(); ++i) {
    if (Predict(problem.x[i]) == problem.y[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(problem.x.size());
}

StatusOr<LinearSvmModel> TrainLinearSvm(const SvmProblem& problem,
                                        const SvmParams& params) {
  DISTINCT_RETURN_IF_ERROR(ValidateProblem(problem));
  if (params.c <= 0.0) {
    return InvalidArgumentError("SVM: C must be positive");
  }

  Stopwatch watch;
  const size_t n = problem.num_examples();
  const size_t raw_dim = problem.num_features();
  const size_t dim = raw_dim + (params.fit_bias ? 1 : 0);

  // L2-loss runs the same coordinate updates with a diagonal shift
  // D_ii = 1/(2C) and an unbounded upper box (Hsieh et al., ICML 2008).
  const bool squared = params.loss == SvmLoss::kSquaredHinge;
  const double diagonal_shift = squared ? 1.0 / (2.0 * params.c) : 0.0;
  const double upper_bound =
      squared ? std::numeric_limits<double>::infinity() : params.c;

  // Augmented rows (bias feature == 1) and their squared norms Q_ii.
  auto feature = [&](size_t i, size_t f) -> double {
    return f < raw_dim ? problem.x[i][f] : 1.0;
  };
  std::vector<double> q_diag(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double q = diagonal_shift;
    for (size_t f = 0; f < dim; ++f) {
      const double v = feature(i, f);
      q += v * v;
    }
    q_diag[i] = q;
  }

  std::vector<double> w(dim, 0.0);
  std::vector<double> alpha(n, 0.0);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  Rng rng(params.seed);

  int epochs_run = 0;
  bool converged = false;
  for (int epoch = 0; epoch < params.max_epochs; ++epoch) {
    ++epochs_run;
    rng.Shuffle(order);
    double max_violation = 0.0;

    for (const size_t i : order) {
      if (q_diag[i] <= 0.0) {
        continue;  // all-zero row carries no information
      }
      const double yi = static_cast<double>(problem.y[i]);
      double wx = 0.0;
      for (size_t f = 0; f < dim; ++f) {
        wx += w[f] * feature(i, f);
      }
      const double gradient = yi * wx - 1.0 + diagonal_shift * alpha[i];

      // Projected gradient for the box constraint 0 <= alpha_i <= U.
      double projected = gradient;
      if (alpha[i] <= 0.0) {
        projected = std::min(gradient, 0.0);
      } else if (alpha[i] >= upper_bound) {
        projected = std::max(gradient, 0.0);
      }
      max_violation = std::max(max_violation, std::fabs(projected));
      if (std::fabs(projected) < 1e-12) {
        continue;
      }

      const double old_alpha = alpha[i];
      alpha[i] =
          std::clamp(old_alpha - gradient / q_diag[i], 0.0, upper_bound);
      const double delta = (alpha[i] - old_alpha) * yi;
      if (delta != 0.0) {
        for (size_t f = 0; f < dim; ++f) {
          w[f] += delta * feature(i, f);
        }
      }
    }

    if (max_violation < params.epsilon) {
      converged = true;
      break;
    }
  }
  DISTINCT_COUNTER_ADD("svm.trainings", 1);
  DISTINCT_COUNTER_ADD("svm.epochs", epochs_run);
  DISTINCT_COUNTER_ADD("svm.converged", converged ? 1 : 0);
  DISTINCT_HISTOGRAM_RECORD("svm.train_nanos", watch.ElapsedNanos());

  double bias = 0.0;
  if (params.fit_bias) {
    bias = w.back();
    w.pop_back();
  }
  return LinearSvmModel(std::move(w), bias);
}

StatusOr<double> CrossValidateAccuracy(const SvmProblem& problem,
                                       const SvmParams& params, int k) {
  DISTINCT_RETURN_IF_ERROR(ValidateProblem(problem));
  if (k < 2) {
    return InvalidArgumentError("cross-validation requires k >= 2");
  }

  // Stratified fold assignment: shuffle each class, deal round-robin.
  const size_t n = problem.num_examples();
  std::vector<int> fold_of(n, -1);
  Rng rng(params.seed ^ 0x9e3779b97f4a7c15ULL);
  for (const int label : {1, -1}) {
    std::vector<size_t> members;
    for (size_t i = 0; i < n; ++i) {
      if (problem.y[i] == label) {
        members.push_back(i);
      }
    }
    if (members.size() < static_cast<size_t>(k)) {
      return InvalidArgumentError(StrFormat(
          "cross-validation: class %+d has %zu examples, need >= %d", label,
          members.size(), k));
    }
    rng.Shuffle(members);
    for (size_t j = 0; j < members.size(); ++j) {
      fold_of[members[j]] = static_cast<int>(j % static_cast<size_t>(k));
    }
  }

  int64_t correct = 0;
  for (int fold = 0; fold < k; ++fold) {
    SvmProblem train;
    SvmProblem test;
    for (size_t i = 0; i < n; ++i) {
      SvmProblem& target = (fold_of[i] == fold) ? test : train;
      target.x.push_back(problem.x[i]);
      target.y.push_back(problem.y[i]);
    }
    auto model = TrainLinearSvm(train, params);
    if (!model.ok()) {
      return model.status();
    }
    for (size_t i = 0; i < test.x.size(); ++i) {
      if (model->Predict(test.x[i]) == test.y[i]) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace distinct
