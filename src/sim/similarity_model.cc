#include "sim/similarity_model.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace distinct {

SimilarityModel::SimilarityModel(std::vector<double> resem_weights,
                                 std::vector<double> walk_weights,
                                 std::vector<std::string> path_names)
    : resem_weights_(std::move(resem_weights)),
      walk_weights_(std::move(walk_weights)),
      path_names_(std::move(path_names)) {
  DISTINCT_CHECK(resem_weights_.size() == walk_weights_.size());
  DISTINCT_CHECK(path_names_.empty() ||
                 path_names_.size() == resem_weights_.size());
}

SimilarityModel SimilarityModel::Uniform(
    size_t num_paths, std::vector<std::string> path_names) {
  DISTINCT_CHECK(num_paths > 0);
  const double w = 1.0 / static_cast<double>(num_paths);
  return SimilarityModel(std::vector<double>(num_paths, w),
                         std::vector<double>(num_paths, w),
                         std::move(path_names));
}

double SimilarityModel::Resemblance(const PairFeatures& features) const {
  DISTINCT_DCHECK(features.resemblance.size() == resem_weights_.size());
  double sim = 0.0;
  for (size_t i = 0; i < resem_weights_.size(); ++i) {
    sim += resem_weights_[i] * features.resemblance[i];
  }
  return std::max(sim, 0.0);
}

double SimilarityModel::Walk(const PairFeatures& features) const {
  DISTINCT_DCHECK(features.walk.size() == walk_weights_.size());
  double sim = 0.0;
  for (size_t i = 0; i < walk_weights_.size(); ++i) {
    sim += walk_weights_[i] * features.walk[i];
  }
  return std::max(sim, 0.0);
}

void SimilarityModel::ClampAndNormalize() {
  auto clamp_and_normalize = [](std::vector<double>& weights) {
    for (double& w : weights) {
      w = std::max(w, 0.0);
    }
    const double total =
        std::accumulate(weights.begin(), weights.end(), 0.0);
    if (total > 0.0) {
      for (double& w : weights) {
        w /= total;
      }
    } else {
      // Degenerate model (nothing positive): fall back to uniform.
      const double uniform = 1.0 / static_cast<double>(weights.size());
      std::fill(weights.begin(), weights.end(), uniform);
    }
  };
  clamp_and_normalize(resem_weights_);
  clamp_and_normalize(walk_weights_);
}

std::string SimilarityModel::DebugString() const {
  std::vector<size_t> order(resem_weights_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return resem_weights_[a] > resem_weights_[b];
  });
  std::string out = "path weights (resem, walk):\n";
  for (const size_t i : order) {
    const std::string name =
        path_names_.empty() ? StrFormat("path %zu", i) : path_names_[i];
    out += StrFormat("  %-70s %8.5f %8.5f\n", name.c_str(),
                     resem_weights_[i], walk_weights_[i]);
  }
  return out;
}

}  // namespace distinct
