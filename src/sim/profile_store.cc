#include "sim/profile_store.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace distinct {

std::unique_ptr<PropagationWorkspace> WorkspacePool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      auto workspace = std::move(free_.back());
      free_.pop_back();
      return workspace;
    }
    ++created_;
  }
  return std::make_unique<PropagationWorkspace>(*link_);
}

void WorkspacePool::Release(std::unique_ptr<PropagationWorkspace> workspace) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(workspace));
}

int64_t WorkspacePool::num_created() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return created_;
}

ProfileStore ProfileStore::Build(const PropagationEngine& engine,
                                 const std::vector<JoinPath>& paths,
                                 const PropagationOptions& options,
                                 std::vector<int32_t> refs,
                                 ThreadPool* pool,
                                 size_t min_parallel_refs,
                                 SubtreeCache* shared_cache,
                                 WorkspacePool* shared_workspaces) {
  Stopwatch watch;
  ProfileStore store;
  store.refs_ = std::move(refs);
  store.num_paths_ = paths.size();
  store.profiles_.resize(store.refs_.size());
  store.index_.reserve(store.refs_.size());
  for (size_t i = 0; i < store.refs_.size(); ++i) {
    store.index_.emplace_back(store.refs_[i], i);
  }
  // Stable sort by ref only: duplicates keep their first position, like
  // the hash map this replaces.
  std::stable_sort(store.index_.begin(), store.index_.end(),
                   [](const std::pair<int32_t, size_t>& a,
                      const std::pair<int32_t, size_t>& b) {
                     return a.first < b.first;
                   });

  const bool dense =
      options.algorithm == PropagationAlgorithm::kWorkspace;
  WorkspacePool local_workspaces(engine.link());
  WorkspacePool& workspaces =
      shared_workspaces != nullptr ? *shared_workspaces : local_workspaces;
  std::unique_ptr<SubtreeCache> owned_cache;
  SubtreeCache* cache = shared_cache;
  if (dense && cache == nullptr) {
    owned_cache = std::make_unique<SubtreeCache>(options.cache_bytes);
    cache = owned_cache.get();
  }

  const auto compute_one = [&](int64_t i) {
    std::unique_ptr<PropagationWorkspace> workspace;
    if (dense) {
      workspace = workspaces.Acquire();
    }
    std::vector<NeighborProfile> profiles;
    profiles.reserve(paths.size());
    for (size_t p = 0; p < paths.size(); ++p) {
      if (dense) {
        profiles.push_back(engine.Compute(paths[p], store.refs_[i], options,
                                          *workspace, cache,
                                          static_cast<int>(p)));
      } else {
        profiles.push_back(engine.Compute(paths[p], store.refs_[i], options));
      }
    }
    store.profiles_[static_cast<size_t>(i)] = std::move(profiles);
    if (workspace != nullptr) {
      workspaces.Release(std::move(workspace));
    }
  };

  if (pool != nullptr && store.refs_.size() >= min_parallel_refs) {
    ParallelForShared(*pool, static_cast<int64_t>(store.refs_.size()),
                      compute_one);
  } else {
    for (size_t i = 0; i < store.refs_.size(); ++i) {
      compute_one(static_cast<int64_t>(i));
    }
  }
  DISTINCT_COUNTER_ADD("sim.profile_store_builds", 1);
  DISTINCT_COUNTER_ADD("prop.profiles_built",
                       static_cast<int64_t>(store.refs_.size()));
  DISTINCT_HISTOGRAM_RECORD("sim.profile_build_nanos", watch.ElapsedNanos());
  return store;
}

void ProfileStore::Update(const PropagationEngine& engine,
                          const std::vector<JoinPath>& paths,
                          const PropagationOptions& options,
                          const std::vector<size_t>& positions,
                          std::vector<int32_t> new_refs,
                          ThreadPool* pool,
                          size_t min_parallel_refs,
                          SubtreeCache* shared_cache,
                          WorkspacePool* shared_workspaces,
                          const std::vector<uint64_t>* position_path_masks) {
  Stopwatch watch;
  num_paths_ = paths.size();
  std::vector<size_t> work(positions);
  for (int32_t ref : new_refs) {
    work.push_back(refs_.size());
    refs_.push_back(ref);
    profiles_.emplace_back();
  }
  // Rebuilt whole with Build()'s exact construction (stable sort, first
  // position wins for duplicates).
  index_.clear();
  index_.reserve(refs_.size());
  for (size_t i = 0; i < refs_.size(); ++i) {
    index_.emplace_back(refs_[i], i);
  }
  std::stable_sort(index_.begin(), index_.end(),
                   [](const std::pair<int32_t, size_t>& a,
                      const std::pair<int32_t, size_t>& b) {
                     return a.first < b.first;
                   });

  const bool dense = options.algorithm == PropagationAlgorithm::kWorkspace;
  WorkspacePool local_workspaces(engine.link());
  WorkspacePool& workspaces =
      shared_workspaces != nullptr ? *shared_workspaces : local_workspaces;
  std::unique_ptr<SubtreeCache> owned_cache;
  SubtreeCache* cache = shared_cache;
  if (dense && cache == nullptr) {
    owned_cache = std::make_unique<SubtreeCache>(options.cache_bytes);
    cache = owned_cache.get();
  }

  // The exact per-reference loop of Build(); only the work list differs.
  // A position's path mask (when masks are given) limits the recompute to
  // the dirtied paths — untouched path profiles are kept verbatim, which
  // is exact because propagation is independent per (reference, path).
  // Paths past bit 63 are always recomputed (conservative).
  const auto compute_one = [&](int64_t i) {
    const size_t position = work[static_cast<size_t>(i)];
    const uint64_t mask =
        (position_path_masks != nullptr &&
         static_cast<size_t>(i) < positions.size())
            ? (*position_path_masks)[static_cast<size_t>(i)]
            : ~uint64_t{0};
    std::unique_ptr<PropagationWorkspace> workspace;
    if (dense) {
      workspace = workspaces.Acquire();
    }
    std::vector<NeighborProfile>& profiles = profiles_[position];
    profiles.resize(paths.size());
    for (size_t p = 0; p < paths.size(); ++p) {
      if (p < 64 && ((mask >> p) & 1) == 0) {
        continue;
      }
      if (dense) {
        profiles[p] = engine.Compute(paths[p], refs_[position], options,
                                     *workspace, cache, static_cast<int>(p));
      } else {
        profiles[p] = engine.Compute(paths[p], refs_[position], options);
      }
    }
    if (workspace != nullptr) {
      workspaces.Release(std::move(workspace));
    }
  };

  if (pool != nullptr && work.size() >= min_parallel_refs) {
    ParallelForShared(*pool, static_cast<int64_t>(work.size()), compute_one);
  } else {
    for (size_t i = 0; i < work.size(); ++i) {
      compute_one(static_cast<int64_t>(i));
    }
  }
  DISTINCT_COUNTER_ADD("sim.profile_store_updates", 1);
  DISTINCT_COUNTER_ADD("prop.profiles_built",
                       static_cast<int64_t>(work.size()));
  DISTINCT_HISTOGRAM_RECORD("sim.profile_build_nanos", watch.ElapsedNanos());
}

int64_t ProfileStore::IndexOf(int32_t ref) const {
  auto it = std::lower_bound(index_.begin(), index_.end(), ref,
                             [](const std::pair<int32_t, size_t>& entry,
                                int32_t value) {
                               return entry.first < value;
                             });
  if (it == index_.end() || it->first != ref) {
    return -1;
  }
  return static_cast<int64_t>(it->second);
}

}  // namespace distinct
