#include "sim/profile_store.h"

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace distinct {

ProfileStore ProfileStore::Build(const PropagationEngine& engine,
                                 const std::vector<JoinPath>& paths,
                                 const PropagationOptions& options,
                                 std::vector<int32_t> refs,
                                 ThreadPool* pool,
                                 size_t min_parallel_refs) {
  Stopwatch watch;
  ProfileStore store;
  store.refs_ = std::move(refs);
  store.num_paths_ = paths.size();
  store.profiles_.resize(store.refs_.size());
  store.index_.reserve(store.refs_.size());
  for (size_t i = 0; i < store.refs_.size(); ++i) {
    store.index_.emplace(store.refs_[i], i);
  }

  const auto compute_one = [&](int64_t i) {
    std::vector<NeighborProfile> profiles;
    profiles.reserve(paths.size());
    for (const JoinPath& path : paths) {
      profiles.push_back(engine.Compute(path, store.refs_[i], options));
    }
    store.profiles_[static_cast<size_t>(i)] = std::move(profiles);
  };

  if (pool != nullptr && store.refs_.size() >= min_parallel_refs) {
    ParallelForShared(*pool, static_cast<int64_t>(store.refs_.size()),
                      compute_one);
  } else {
    for (size_t i = 0; i < store.refs_.size(); ++i) {
      compute_one(static_cast<int64_t>(i));
    }
  }
  DISTINCT_COUNTER_ADD("sim.profile_store_builds", 1);
  DISTINCT_COUNTER_ADD("prop.profiles_built",
                       static_cast<int64_t>(store.refs_.size()));
  DISTINCT_HISTOGRAM_RECORD("sim.profile_build_nanos", watch.ElapsedNanos());
  return store;
}

int64_t ProfileStore::IndexOf(int32_t ref) const {
  auto it = index_.find(ref);
  return it == index_.end() ? -1 : static_cast<int64_t>(it->second);
}

}  // namespace distinct
