#include "sim/parallel_kernel.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace distinct {

std::pair<PairMatrix, PairMatrix> ComputePairMatrices(
    const ProfileStore& store, const SimilarityModel& model,
    ThreadPool* pool, const PairKernelOptions& options) {
  // Metrics are aggregated per fill (and per tile below), never per cell,
  // so the instrumented hot loop is byte-for-byte the uninstrumented one.
  Stopwatch watch;
  const size_t n = store.num_refs();
  PairMatrix resem(n);
  PairMatrix walk(n);

  const auto fill_cell = [&](size_t i, size_t j) {
    const PairFeatures features = store.Features(i, j);
    resem.set(i, j, model.Resemblance(features));
    walk.set(i, j, model.Walk(features));
  };

  if (pool == nullptr ||
      n < static_cast<size_t>(std::max(options.min_parallel_refs, 0))) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < i; ++j) {
        fill_cell(i, j);
      }
    }
    DISTINCT_COUNTER_ADD("sim.matrix_fills", 1);
    DISTINCT_COUNTER_ADD("sim.pairs_computed",
                         static_cast<int64_t>(n * (n - 1) / 2));
    DISTINCT_HISTOGRAM_RECORD("sim.pair_matrix_nanos", watch.ElapsedNanos());
    return std::make_pair(std::move(resem), std::move(walk));
  }

  const size_t tile = static_cast<size_t>(std::max(options.tile_size, 1));
  const size_t blocks = (n + tile - 1) / tile;
  std::vector<std::pair<uint32_t, uint32_t>> tiles;
  tiles.reserve(blocks * (blocks + 1) / 2);
  for (size_t bi = 0; bi < blocks; ++bi) {
    for (size_t bj = 0; bj <= bi; ++bj) {
      tiles.emplace_back(static_cast<uint32_t>(bi),
                         static_cast<uint32_t>(bj));
    }
  }
  ParallelForShared(*pool, static_cast<int64_t>(tiles.size()),
                    [&](int64_t t) {
                      const auto [bi, bj] = tiles[static_cast<size_t>(t)];
                      const size_t i_end = std::min(n, (bi + 1) * tile);
                      const size_t j_begin = bj * tile;
                      for (size_t i = bi * tile; i < i_end; ++i) {
                        const size_t j_end =
                            std::min<size_t>((bj + 1) * tile, i);
                        for (size_t j = j_begin; j < j_end; ++j) {
                          fill_cell(i, j);
                        }
                      }
                      DISTINCT_COUNTER_ADD("sim.tiles_filled", 1);
                    });
  DISTINCT_COUNTER_ADD("sim.matrix_fills", 1);
  DISTINCT_COUNTER_ADD("sim.pairs_computed",
                       static_cast<int64_t>(n * (n - 1) / 2));
  DISTINCT_HISTOGRAM_RECORD("sim.pair_matrix_nanos", watch.ElapsedNanos());
  return std::make_pair(std::move(resem), std::move(walk));
}

}  // namespace distinct
