#include "sim/parallel_kernel.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "sim/fused_kernel.h"
#include "sim/profile_arena.h"

namespace distinct {

namespace {

/// Runs `fill_cell(i, j, &tile_stats)` over every strict-lower-triangle
/// cell — serially, or tiled over the pool — in an order-independent way.
/// `tile_stats` accumulates per-tile pruned-pair counts so the hot loop
/// never touches a shared counter.
template <typename FillCell>
void ForEachCell(size_t n, ThreadPool* pool, const PairKernelOptions& options,
                 const FillCell& fill_cell) {
  const CancelToken* cancel = options.cancel;
  if (pool == nullptr ||
      n < static_cast<size_t>(std::max(options.min_parallel_refs, 0))) {
    int64_t pruned = 0;
    for (size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->CheckAbort()) {
        break;
      }
      for (size_t j = 0; j < i; ++j) {
        fill_cell(i, j, &pruned);
      }
    }
    if (pruned > 0) {
      DISTINCT_COUNTER_ADD("sim.pairs_pruned", pruned);
    }
    return;
  }

  const size_t tile = static_cast<size_t>(std::max(options.tile_size, 1));
  const size_t blocks = (n + tile - 1) / tile;
  std::vector<std::pair<uint32_t, uint32_t>> tiles;
  tiles.reserve(blocks * (blocks + 1) / 2);
  for (size_t bi = 0; bi < blocks; ++bi) {
    for (size_t bj = 0; bj <= bi; ++bj) {
      tiles.emplace_back(static_cast<uint32_t>(bi),
                         static_cast<uint32_t>(bj));
    }
  }
  ParallelForShared(*pool, static_cast<int64_t>(tiles.size()),
                    [&](int64_t t) {
                      if (cancel != nullptr && cancel->CheckAbort()) {
                        return;
                      }
                      const auto [bi, bj] = tiles[static_cast<size_t>(t)];
                      const size_t i_end = std::min(n, (bi + 1) * tile);
                      const size_t j_begin = bj * tile;
                      int64_t pruned = 0;
                      for (size_t i = bi * tile; i < i_end; ++i) {
                        const size_t j_end =
                            std::min<size_t>((bj + 1) * tile, i);
                        for (size_t j = j_begin; j < j_end; ++j) {
                          fill_cell(i, j, &pruned);
                        }
                      }
                      DISTINCT_COUNTER_ADD("sim.tiles_filled", 1);
                      if (pruned > 0) {
                        DISTINCT_COUNTER_ADD("sim.pairs_pruned", pruned);
                      }
                    });
}

/// When `recompute` is non-null, only cells with at least one endpoint
/// marked in it are (re)filled; the caller has copied every clean-pair
/// cell verbatim (UpdatePairMatrices). Each cell depends only on its two
/// profiles and the model, so the partial fill is bit-identical to a full
/// one on the marked cells.
void FillReference(const ProfileStore& store, const SimilarityModel& model,
                   ThreadPool* pool, const PairKernelOptions& options,
                   PairMatrix* resem, PairMatrix* walk,
                   const std::vector<char>* recompute = nullptr) {
  ForEachCell(store.num_refs(), pool, options,
              [&](size_t i, size_t j, int64_t* /*pruned*/) {
                if (recompute != nullptr &&
                    !((*recompute)[i] | (*recompute)[j])) {
                  return;
                }
                const PairFeatures features = store.Features(i, j);
                resem->set(i, j, model.Resemblance(features));
                walk->set(i, j, model.Walk(features));
              });
}

void FillFused(const ProfileStore& store, const ProfileArena& arena,
               const SimilarityModel& model, ThreadPool* pool,
               const PairKernelOptions& options, PairMatrix* resem,
               PairMatrix* walk,
               const std::vector<char>* recompute = nullptr) {
  Stopwatch kernel_watch;
  // A full fill builds the complete candidate set; the partial fill builds
  // the dirty-restricted one — full Build costs O(members^2) per tuple
  // group, which on a mega-name outweighs the joins a few dirty rows save.
  // Either way a pair outside the set shares no neighbor tuple, its
  // merge-joins are all-zero, and max(0, 0) writes back exactly the 0.0
  // the skip leaves, so the cells are bit-identical with or without it.
  // No trace span here: FillFused runs inside parallel-scan worker
  // lambdas, which must record only commutative counters (scan.cc pins
  // "one span per bulk run" at any thread count).
  const bool full_fill = recompute == nullptr;
  const CandidateSet candidates =
      full_fill ? CandidateSet::Build(arena, options.candidates)
                : CandidateSet::BuildPartial(arena, *recompute);
  const bool prune = options.pruning && options.prune_min_sim > 0.0;
  const PrunePolicy policy{options.prune_min_sim, options.measure,
                           options.combine};
  // Weighted per-path accumulation in path order — the same floating-point
  // op sequence as SimilarityModel::Resemblance/Walk over a PairFeatures
  // vector, without materializing one per pair. The merge-join variant is
  // resolved once per fill, never per cell.
  const KernelIsa isa = ResolveKernelIsa(options.isa);
  const std::vector<double>& resem_weights = model.resem_weights();
  const std::vector<double>& walk_weights = model.walk_weights();
  const size_t num_paths = arena.num_paths();
  const size_t n = store.num_refs();

  // Per-reference nonempty-path bitmasks: a path where either slice is
  // empty contributes exactly-zero features, and weight · 0.0 only ever
  // adds a signed zero to the running sums — so iterating just the set
  // bits of mask_i & mask_j (ascending, preserving path order) leaves
  // every cell value unchanged. Join paths are few (the schema walk is
  // depth-bounded), so one word almost always covers them; a >64-path
  // arena falls back to visiting every path.
  std::vector<uint64_t> path_mask;
  const bool use_masks = num_paths > 0 && num_paths <= 64;
  if (use_masks) {
    path_mask.assign(n, 0);
    for (size_t p = 0; p < num_paths; ++p) {
      const ProfileArena::Path& path = arena.path(p);
      const uint64_t bit = uint64_t{1} << p;
      for (size_t r = 0; r < n; ++r) {
        if (path.offsets[r + 1] != path.offsets[r]) {
          path_mask[r] |= bit;
        }
      }
    }
  }

  // Generic over the join callable so the scalar instantiation inlines
  // FusedMergeJoin (header-inline) straight into the cell loop — the
  // innermost call of the whole fill — while gallop/AVX2 instantiations
  // pay one direct call per (pair, path).
  const auto run_cells = [&](auto join) {
    ForEachCell(
        n, pool, options,
        [&, join](size_t i, size_t j, int64_t* pruned) {
          if (recompute != nullptr && !((*recompute)[i] | (*recompute)[j])) {
            return;
          }
          // No shared tuple on any path: every feature is exactly 0, so
          // the model-combined cell is the 0.0 the matrix was initialized
          // with.
          if (!candidates.contains(i, j)) {
            return;
          }
          if (prune &&
              PairSimilarityUpperBound(arena, model, policy, i, j) <
                  policy.min_sim) {
            ++*pruned;
            return;
          }
          double resem_sim = 0.0;
          double walk_sim = 0.0;
          if (use_masks) {
            for (uint64_t m = path_mask[i] & path_mask[j]; m != 0;
                 m &= m - 1) {
              const auto p = static_cast<size_t>(std::countr_zero(m));
              const uint64_t rest = m & (m - 1);
              if (rest != 0) {
                // Overlap the next path's slice loads with this join.
                const auto np = static_cast<size_t>(std::countr_zero(rest));
                const ProfileArena::Path& next = arena.path(np);
                __builtin_prefetch(next.tuples.data() + next.offsets[i]);
                __builtin_prefetch(next.tuples.data() + next.offsets[j]);
              }
              const FusedPathFeatures features = join(arena.path(p), i, j);
              resem_sim += resem_weights[p] * features.resemblance;
              walk_sim += walk_weights[p] * features.walk;
            }
          } else {
            for (size_t p = 0; p < num_paths; ++p) {
              const FusedPathFeatures features = join(arena.path(p), i, j);
              resem_sim += resem_weights[p] * features.resemblance;
              walk_sim += walk_weights[p] * features.walk;
            }
          }
          resem->set(i, j, std::max(resem_sim, 0.0));
          walk->set(i, j, std::max(walk_sim, 0.0));
        });
  };
  switch (isa) {
    case KernelIsa::kGallop:
      run_cells([](const ProfileArena::Path& path, size_t i, size_t j) {
        return FusedMergeJoinGallop(path, i, j);
      });
      break;
    case KernelIsa::kAvx2:
      run_cells([](const ProfileArena::Path& path, size_t i, size_t j) {
        return FusedMergeJoinAvx2(path, i, j);
      });
      break;
    case KernelIsa::kAuto:  // ResolveKernelIsa never returns kAuto
    case KernelIsa::kScalar:
      run_cells([](const ProfileArena::Path& path, size_t i, size_t j) {
        return FusedMergeJoin(path, i, j);
      });
      break;
  }

  if (full_fill) {
    DISTINCT_COUNTER_ADD("sim.candidate_pairs", candidates.count());
  }
  DISTINCT_HISTOGRAM_RECORD("sim.kernel_ns", kernel_watch.ElapsedNanos());
}

}  // namespace

std::pair<PairMatrix, PairMatrix> ComputePairMatrices(
    const ProfileStore& store, const SimilarityModel& model,
    ThreadPool* pool, const PairKernelOptions& options) {
  if (options.kernel == PairKernelType::kFused) {
    return ComputePairMatrices(store, ProfileArena::FromStore(store), model,
                               pool, options);
  }
  // Metrics are aggregated per fill (and per tile above), never per cell,
  // so the instrumented hot loop is byte-for-byte the uninstrumented one.
  Stopwatch watch;
  const size_t n = store.num_refs();
  PairMatrix resem(n);
  PairMatrix walk(n);
  FillReference(store, model, pool, options, &resem, &walk);
  DISTINCT_COUNTER_ADD("sim.matrix_fills", 1);
  DISTINCT_COUNTER_ADD("sim.pairs_computed",
                       static_cast<int64_t>(n < 2 ? 0 : n * (n - 1) / 2));
  DISTINCT_HISTOGRAM_RECORD("sim.pair_matrix_nanos", watch.ElapsedNanos());
  return std::make_pair(std::move(resem), std::move(walk));
}

std::pair<PairMatrix, PairMatrix> ComputePairMatrices(
    const ProfileStore& store, const ProfileArena& arena,
    const SimilarityModel& model, ThreadPool* pool,
    const PairKernelOptions& options) {
  Stopwatch watch;
  const size_t n = store.num_refs();
  PairMatrix resem(n);
  PairMatrix walk(n);
  if (options.kernel == PairKernelType::kFused) {
    FillFused(store, arena, model, pool, options, &resem, &walk);
  } else {
    FillReference(store, model, pool, options, &resem, &walk);
  }
  DISTINCT_COUNTER_ADD("sim.matrix_fills", 1);
  DISTINCT_COUNTER_ADD("sim.pairs_computed",
                       static_cast<int64_t>(n < 2 ? 0 : n * (n - 1) / 2));
  DISTINCT_HISTOGRAM_RECORD("sim.pair_matrix_nanos", watch.ElapsedNanos());
  return std::make_pair(std::move(resem), std::move(walk));
}

std::pair<PairMatrix, PairMatrix> UpdatePairMatrices(
    const ProfileStore& store, const ProfileArena& arena,
    const SimilarityModel& model, const std::vector<char>& dirty,
    const PairMatrix& old_resem, const PairMatrix& old_walk,
    ThreadPool* pool, const PairKernelOptions& options) {
  Stopwatch watch;
  const size_t n = store.num_refs();
  const size_t old_n = old_resem.size();
  PairMatrix resem(n);
  PairMatrix walk(n);

  // Clean-pair cells are carried over verbatim: neither profile changed,
  // and a cell is a pure function of its two profiles and the model.
  // Every other cell starts at the 0.0 init and is recomputed below —
  // copying dirty cells too would leave stale values wherever the fill
  // legitimately skips (a dirty pair whose tuple overlap vanished).
  int64_t copied = 0;
  for (size_t i = 1; i < old_n; ++i) {
    if (dirty[i]) {
      continue;
    }
    for (size_t j = 0; j < i; ++j) {
      if (dirty[j]) {
        continue;
      }
      resem.set(i, j, old_resem.at(i, j));
      walk.set(i, j, old_walk.at(i, j));
      ++copied;
    }
  }

  if (options.kernel == PairKernelType::kFused) {
    FillFused(store, arena, model, pool, options, &resem, &walk, &dirty);
  } else {
    FillReference(store, model, pool, options, &resem, &walk, &dirty);
  }

  DISTINCT_COUNTER_ADD("sim.matrix_updates", 1);
  DISTINCT_COUNTER_ADD("sim.pairs_carried_over", copied);
  DISTINCT_HISTOGRAM_RECORD("sim.pair_matrix_nanos", watch.ElapsedNanos());
  return std::make_pair(std::move(resem), std::move(walk));
}

}  // namespace distinct
