#include "sim/profile_arena.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "obs/metrics.h"

namespace distinct {

namespace {

/// The u32 offset packing caps a path slab at 2^32-1 entries.
constexpr size_t kMaxPathEntries =
    std::numeric_limits<uint32_t>::max();

/// Shared flattening loop; `profiles_of(ref)` returns the per-path profile
/// vector of one reference.
template <typename ProfilesOf>
ProfileArena::Path BuildPath(size_t num_refs, size_t path_index,
                             const ProfilesOf& profiles_of) {
  ProfileArena::Path path;
  path.offsets.resize(num_refs + 1);
  path.mass.resize(num_refs);
  path.reverse_sum.resize(num_refs);
  path.forward_max.resize(num_refs);
  path.reverse_max.resize(num_refs);

  size_t total = 0;
  for (size_t r = 0; r < num_refs; ++r) {
    total += profiles_of(r)[path_index].size();
  }
  DISTINCT_CHECK(total <= kMaxPathEntries);
  path.tuples.reserve(total);
  path.forward.reserve(total);
  path.reverse.reserve(total);

  for (size_t r = 0; r < num_refs; ++r) {
    path.offsets[r] = static_cast<uint32_t>(path.tuples.size());
    double mass = 0.0;
    double reverse_sum = 0.0;
    double forward_max = 0.0;
    double reverse_max = 0.0;
    for (const ProfileEntry& entry :
         profiles_of(r)[path_index].entries()) {
      path.tuples.push_back(entry.tuple);
      path.forward.push_back(entry.forward);
      path.reverse.push_back(entry.reverse);
      mass += entry.forward;
      reverse_sum += entry.reverse;
      forward_max = std::max(forward_max, entry.forward);
      reverse_max = std::max(reverse_max, entry.reverse);
    }
    path.mass[r] = mass;
    path.reverse_sum[r] = reverse_sum;
    path.forward_max[r] = forward_max;
    path.reverse_max[r] = reverse_max;
  }
  path.offsets[num_refs] = static_cast<uint32_t>(path.tuples.size());
  return path;
}

/// Bytes the u32 offset packing saves over the size_t layout it replaced,
/// recorded so run reports can attribute the smaller arena footprint.
int64_t PackedOffsetSavings(const std::vector<ProfileArena::Path>& paths) {
  size_t saved = 0;
  for (const ProfileArena::Path& path : paths) {
    saved += path.offsets.capacity() * (sizeof(size_t) - sizeof(uint32_t));
  }
  return static_cast<int64_t>(saved);
}

}  // namespace

int64_t ProfileArena::FlattenedBytes() const {
  size_t bytes = paths_.capacity() * sizeof(Path);
  for (const Path& path : paths_) {
    bytes += path.offsets.capacity() * sizeof(uint32_t);
    bytes += path.tuples.capacity() * sizeof(int32_t);
    bytes += (path.forward.capacity() + path.reverse.capacity() +
              path.mass.capacity() + path.reverse_sum.capacity() +
              path.forward_max.capacity() + path.reverse_max.capacity()) *
             sizeof(double);
  }
  return static_cast<int64_t>(bytes);
}

ProfileArena ProfileArena::FromStore(const ProfileStore& store) {
  ProfileArena arena;
  arena.num_refs_ = store.num_refs();
  arena.paths_.reserve(store.num_paths());
  for (size_t p = 0; p < store.num_paths(); ++p) {
    arena.paths_.push_back(BuildPath(
        store.num_refs(), p,
        [&store](size_t r) -> const std::vector<NeighborProfile>& {
          return store.profiles(r);
        }));
  }
  arena.tracked_.Set(arena.FlattenedBytes());
  DISTINCT_COUNTER_ADD("sim.arena_packed_bytes_saved",
                       PackedOffsetSavings(arena.paths_));
  return arena;
}

void ProfileArena::PatchFromStore(
    const ProfileStore& store, const std::vector<size_t>& changed_positions) {
  DISTINCT_CHECK(paths_.size() == store.num_paths());
  DISTINCT_CHECK(num_refs_ <= store.num_refs());
  const size_t new_num_refs = store.num_refs();
  std::vector<char> is_changed(new_num_refs, 0);
  for (const size_t position : changed_positions) {
    DISTINCT_CHECK(position < new_num_refs);
    is_changed[position] = 1;
  }
  for (size_t r = num_refs_; r < new_num_refs; ++r) {
    is_changed[r] = 1;  // appended references always need flattening
  }

  for (size_t p = 0; p < paths_.size(); ++p) {
    const Path& old_path = paths_[p];
    Path next;
    next.offsets.resize(new_num_refs + 1);
    next.mass.resize(new_num_refs);
    next.reverse_sum.resize(new_num_refs);
    next.forward_max.resize(new_num_refs);
    next.reverse_max.resize(new_num_refs);

    size_t total = 0;
    for (size_t r = 0; r < new_num_refs; ++r) {
      total += is_changed[r] ? store.profiles(r)[p].size() : old_path.size(r);
    }
    DISTINCT_CHECK(total <= kMaxPathEntries);
    next.tuples.reserve(total);
    next.forward.reserve(total);
    next.reverse.reserve(total);

    for (size_t r = 0; r < new_num_refs; ++r) {
      next.offsets[r] = static_cast<uint32_t>(next.tuples.size());
      if (!is_changed[r]) {
        // Unchanged profile: slice and aggregates copied verbatim — they
        // were produced by the same loop over the identical entries.
        const size_t begin = old_path.offsets[r];
        const size_t end = old_path.offsets[r + 1];
        next.tuples.insert(next.tuples.end(), old_path.tuples.begin() + begin,
                           old_path.tuples.begin() + end);
        next.forward.insert(next.forward.end(),
                            old_path.forward.begin() + begin,
                            old_path.forward.begin() + end);
        next.reverse.insert(next.reverse.end(),
                            old_path.reverse.begin() + begin,
                            old_path.reverse.begin() + end);
        next.mass[r] = old_path.mass[r];
        next.reverse_sum[r] = old_path.reverse_sum[r];
        next.forward_max[r] = old_path.forward_max[r];
        next.reverse_max[r] = old_path.reverse_max[r];
        continue;
      }
      // BuildPath's per-entry loop, applied to the recomputed profile.
      double mass = 0.0;
      double reverse_sum = 0.0;
      double forward_max = 0.0;
      double reverse_max = 0.0;
      for (const ProfileEntry& entry : store.profiles(r)[p].entries()) {
        next.tuples.push_back(entry.tuple);
        next.forward.push_back(entry.forward);
        next.reverse.push_back(entry.reverse);
        mass += entry.forward;
        reverse_sum += entry.reverse;
        forward_max = std::max(forward_max, entry.forward);
        reverse_max = std::max(reverse_max, entry.reverse);
      }
      next.mass[r] = mass;
      next.reverse_sum[r] = reverse_sum;
      next.forward_max[r] = forward_max;
      next.reverse_max[r] = reverse_max;
    }
    next.offsets[new_num_refs] = static_cast<uint32_t>(next.tuples.size());
    paths_[p] = std::move(next);
  }
  num_refs_ = new_num_refs;
  tracked_.Set(FlattenedBytes());
}

ProfileArena ProfileArena::FromProfiles(
    const std::vector<std::vector<NeighborProfile>>& profiles) {
  ProfileArena arena;
  arena.num_refs_ = profiles.size();
  const size_t num_paths = profiles.empty() ? 0 : profiles.front().size();
  for (const std::vector<NeighborProfile>& per_ref : profiles) {
    DISTINCT_CHECK(per_ref.size() == num_paths);
  }
  arena.paths_.reserve(num_paths);
  for (size_t p = 0; p < num_paths; ++p) {
    arena.paths_.push_back(BuildPath(
        profiles.size(), p,
        [&profiles](size_t r) -> const std::vector<NeighborProfile>& {
          return profiles[r];
        }));
  }
  arena.tracked_.Set(arena.FlattenedBytes());
  DISTINCT_COUNTER_ADD("sim.arena_packed_bytes_saved",
                       PackedOffsetSavings(arena.paths_));
  return arena;
}

size_t ProfileArena::num_entries() const {
  size_t total = 0;
  for (const Path& path : paths_) {
    total += path.tuples.size();
  }
  return total;
}

}  // namespace distinct
