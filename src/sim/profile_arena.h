// Flat structure-of-arrays profile arena — the similarity inputs of
// §2.3/§2.4 re-laid-out for the fused sparse pair kernel.
//
// ProfileStore keeps each (reference, path) profile as its own
// NeighborProfile (an array-of-structs vector), so the O(n^2) pair phase
// chases n·P separate heap blocks and loads a 24-byte ProfileEntry to read
// one double. The arena flattens every path's profiles into one contiguous
// CSR block — tuple[], forward[], reverse[] plus per-reference offsets —
// so merge-joins stream over adjacent same-typed memory, and precomputes
// the per-profile aggregates (forward mass, reverse sum, per-entry maxima)
// that the mass-bound prune of fused_kernel.h consumes without touching
// the entry arrays at all.

#ifndef DISTINCT_SIM_PROFILE_ARENA_H_
#define DISTINCT_SIM_PROFILE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/memory.h"
#include "prop/profile.h"
#include "sim/profile_store.h"

namespace distinct {

/// Read-only flattened profiles: one CSR slab per join path.
class ProfileArena {
 public:
  /// One path's profiles, concatenated in reference order. The slice of
  /// reference i is [offsets[i], offsets[i + 1]); tuples are strictly
  /// increasing within a slice (NeighborProfile guarantees sorted,
  /// duplicate-free entries).
  ///
  /// Offsets are packed to uint32_t — half the index bytes of the size_t
  /// they replaced, so the offset table of a mega-name stays in cache
  /// while the merge-joins stream the entry arrays. A path is capped at
  /// 2^32-1 entries (checked at build time); at 20 bytes per entry that
  /// is an ~80 GiB slab, far past the per-shard memory budget.
  struct Path {
    std::vector<uint32_t> offsets;  // num_refs + 1 entries
    std::vector<int32_t> tuples;
    std::vector<double> forward;   // Prob_P(r -> tuple)
    std::vector<double> reverse;   // Prob_P(tuple -> r)
    // Per-reference aggregates for the mass-bound prune.
    std::vector<double> mass;         // Σ forward over the slice
    std::vector<double> reverse_sum;  // Σ reverse
    std::vector<double> forward_max;  // max forward (0 when empty)
    std::vector<double> reverse_max;  // max reverse (0 when empty)

    size_t size(size_t ref) const {
      return offsets[ref + 1] - offsets[ref];
    }
  };

  /// Flattens a built store. O(total entries); no profile values change.
  static ProfileArena FromStore(const ProfileStore& store);

  /// Splice-update counterpart of ProfileStore::Update: re-flattens only
  /// the slices of `changed_positions` (and of references the store
  /// appended past this arena's num_refs()) from `store`, copying every
  /// other slice and its aggregates verbatim. The arena must have been
  /// built from the same store lineage (same path count, no reordering of
  /// the common prefix). Result is bit-identical to FromStore(store).
  void PatchFromStore(const ProfileStore& store,
                      const std::vector<size_t>& changed_positions);

  /// Flattens raw per-reference profile vectors (profiles[ref][path]) —
  /// the test seam: differential suites build arenas without an engine.
  /// Every inner vector must have the same number of paths.
  static ProfileArena FromProfiles(
      const std::vector<std::vector<NeighborProfile>>& profiles);

  size_t num_refs() const { return num_refs_; }
  size_t num_paths() const { return paths_.size(); }
  const Path& path(size_t p) const { return paths_[p]; }

  /// Total flattened entries across all paths (diagnostics).
  size_t num_entries() const;

 private:
  ProfileArena() : tracked_(obs::MemoryTracker::kProfileArena) {}

  /// Capacity bytes of every slab vector, for the kProfileArena gauge.
  int64_t FlattenedBytes() const;

  size_t num_refs_ = 0;
  std::vector<Path> paths_;
  obs::TrackedBytes tracked_;  // kProfileArena gauge (obs/memory.h)
};

}  // namespace distinct

#endif  // DISTINCT_SIM_PROFILE_ARENA_H_
