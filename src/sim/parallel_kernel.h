// Phase 2 of the parallel intra-name similarity kernel: fill the
// model-combined resemblance and walk PairMatrix over the strict lower
// triangle from a ProfileStore.
//
// The triangle is cut into square tiles and the tiles are enumerated in a
// fixed order (tile t covers block row t_i, block column t_j <= t_i), so
// every (i, j) slot belongs to exactly one tile — the fill is race-free by
// construction. Each cell depends only on the two profiles and the model,
// never on neighbouring cells or on scheduling, so the parallel result is
// bit-identical to the serial loop at any thread count.
//
// Two kernels fill the cells (fused_kernel.h documents the fused one):
//  - kFused (default): flattens the store into a ProfileArena, skips
//    non-candidate pairs via the inverted-index candidate set (their cells
//    stay at the 0.0 init, which is exactly their value), and computes each
//    remaining cell with one merge-join per path. Bit-identical to the
//    reference kernel; optionally prunes candidates whose mass-bound
//    similarity upper bound falls below `prune_min_sim`.
//  - kReference: three sorted merges per (pair, path) over the
//    array-of-structs profiles — the exactness baseline.

#ifndef DISTINCT_SIM_PARALLEL_KERNEL_H_
#define DISTINCT_SIM_PARALLEL_KERNEL_H_

#include <utility>

#include "cluster/agglomerative.h"
#include "cluster/pair_matrix.h"
#include "common/cancel.h"
#include "common/thread_pool.h"
#include "sim/fused_kernel.h"
#include "sim/intersect.h"
#include "sim/profile_store.h"
#include "sim/similarity_model.h"

namespace distinct {

/// Which pair kernel fills the matrices.
enum class PairKernelType {
  kFused,      // arena + single merge-join + candidate skipping
  kReference,  // three-pass merges over NeighborProfile vectors
};

struct PairKernelOptions {
  /// Side length of the square tiles the lower triangle is cut into. One
  /// tile is one task: big enough to amortize scheduling, small enough
  /// that a mega-name yields many more tiles than threads.
  int tile_size = 64;
  /// Below this many references the fill runs inline even when a pool is
  /// supplied.
  int min_parallel_refs = 32;
  PairKernelType kernel = PairKernelType::kFused;
  /// Merge-join variant for the fused kernel (sim/intersect.h). Resolved
  /// once per fill — kAuto picks the best the host supports. Every ISA is
  /// bit-identical, so this is purely a speed knob.
  KernelIsa isa = KernelIsa::kAuto;
  /// Sparse-vs-bitset thresholds for CandidateSet::Build (kFused only).
  CandidateBuildOptions candidates;
  /// Mass-bound candidate pruning (kFused only): skip candidate pairs whose
  /// combined-similarity upper bound is below `prune_min_sim`, leaving
  /// their cells 0.0. Heuristic — pruned cells lose their (sub-floor) true
  /// values — so exactness tests and threshold sweeps must keep it off.
  bool pruning = false;
  double prune_min_sim = 0.0;
  /// Shape of the combined-similarity bound; must mirror the clusterer
  /// options the matrices will be consumed with.
  ClusterMeasure measure = ClusterMeasure::kComposite;
  CombineRule combine = CombineRule::kGeometricMean;
  /// Cooperative cancellation, checked per row on the serial path and per
  /// tile on the parallel one (never per cell — the hot loop stays
  /// branch-identical between a null and a live-but-unfired token). When
  /// the token fires mid-fill the remaining rows/tiles are skipped and
  /// `cancel->aborted()` reads true; the half-filled matrices must then be
  /// discarded. A null or never-fired token leaves results bit-identical.
  const CancelToken* cancel = nullptr;
};

/// Computes (resemblance, walk) matrices for the store's references. With a
/// non-null `pool`, tiles are filled in parallel; safe to call from inside
/// a pool task (nested parallelism via ParallelForShared).
std::pair<PairMatrix, PairMatrix> ComputePairMatrices(
    const ProfileStore& store, const SimilarityModel& model,
    ThreadPool* pool = nullptr, const PairKernelOptions& options = {});

class ProfileArena;

/// As above, with a caller-supplied arena over the same store (the fused
/// kernel skips its internal flatten). Callers that keep artifacts
/// resident build the arena once and patch it across deltas.
std::pair<PairMatrix, PairMatrix> ComputePairMatrices(
    const ProfileStore& store, const ProfileArena& arena,
    const SimilarityModel& model, ThreadPool* pool = nullptr,
    const PairKernelOptions& options = {});

/// Patches cached matrices after a database delta instead of refilling
/// the whole triangle. `store` is the spliced-updated store (see
/// ProfileStore::Update) and `arena` its flattened counterpart (FromStore
/// or PatchFromStore — callers that cache artifacts patch instead of
/// re-flattening); `dirty[i]` marks the positions whose profiles were
/// recomputed — appended references (positions >= old_resem.size()) must
/// all be marked. Cells whose endpoints are both clean are copied from
/// the old matrices (their profiles are unchanged and a cell depends only
/// on its two profiles and the model); cells with a dirty endpoint are
/// recomputed by the same per-cell kernel as ComputePairMatrices. The
/// result is bit-identical to a full ComputePairMatrices over `store`,
/// for both kernels, with or without the mass-bound prune.
std::pair<PairMatrix, PairMatrix> UpdatePairMatrices(
    const ProfileStore& store, const ProfileArena& arena,
    const SimilarityModel& model, const std::vector<char>& dirty,
    const PairMatrix& old_resem, const PairMatrix& old_walk,
    ThreadPool* pool = nullptr, const PairKernelOptions& options = {});

}  // namespace distinct

#endif  // DISTINCT_SIM_PARALLEL_KERNEL_H_
