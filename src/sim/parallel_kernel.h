// Phase 2 of the parallel intra-name similarity kernel: fill the
// model-combined resemblance and walk PairMatrix over the strict lower
// triangle from a ProfileStore.
//
// The triangle is cut into square tiles and the tiles are enumerated in a
// fixed order (tile t covers block row t_i, block column t_j <= t_i), so
// every (i, j) slot belongs to exactly one tile — the fill is race-free by
// construction. Each cell depends only on the two profiles and the model,
// never on neighbouring cells or on scheduling, so the parallel result is
// bit-identical to the serial loop at any thread count.

#ifndef DISTINCT_SIM_PARALLEL_KERNEL_H_
#define DISTINCT_SIM_PARALLEL_KERNEL_H_

#include <utility>

#include "cluster/pair_matrix.h"
#include "common/thread_pool.h"
#include "sim/profile_store.h"
#include "sim/similarity_model.h"

namespace distinct {

struct PairKernelOptions {
  /// Side length of the square tiles the lower triangle is cut into. One
  /// tile is one task: big enough to amortize scheduling, small enough
  /// that a mega-name yields many more tiles than threads.
  int tile_size = 64;
  /// Below this many references the fill runs inline even when a pool is
  /// supplied.
  int min_parallel_refs = 32;
};

/// Computes (resemblance, walk) matrices for the store's references. With a
/// non-null `pool`, tiles are filled in parallel; safe to call from inside
/// a pool task (nested parallelism via ParallelForShared).
std::pair<PairMatrix, PairMatrix> ComputePairMatrices(
    const ProfileStore& store, const SimilarityModel& model,
    ThreadPool* pool = nullptr, const PairKernelOptions& options = {});

}  // namespace distinct

#endif  // DISTINCT_SIM_PARALLEL_KERNEL_H_
