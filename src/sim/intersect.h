// Runtime-dispatched sorted-set intersection family for the fused pair
// kernel: scalar merge, galloping binary-probe for skewed list-length
// ratios, and an AVX2 run-skipping merge behind a CPU-feature dispatch
// shim.
//
// Every variant computes FusedMergeJoin's four accumulators (resemblance
// numerator/denominator and both directed walk sums) with the *identical*
// floating-point operation sequence: one denominator add per union element
// in increasing tuple order, numerator/walk contributions per match in
// match order. The variants differ only in how they *find* run boundaries
// and matches — galloping replaces per-element comparisons with an
// exponential probe when one list dwarfs the other, AVX2 compares eight
// tuples per instruction to locate the end of a same-side run — never in
// how they accumulate. Bit-identity with the three-pass reference
// (SetResemblance / SymmetricWalkProbability) therefore holds for every
// ISA by construction, and the differential suite pins it.
//
// The ISA is resolved once per engine (DistinctConfig::kernel_isa /
// --kernel-isa, default auto): auto picks AVX2 when the CPU and build
// support it and galloping otherwise; requesting AVX2 on an unsupported
// host falls back to scalar. -DDISTINCT_DISABLE_SIMD=ON compiles the
// vector path out entirely (the portable-path CI job builds this way);
// non-x86 targets get the same scalar fallback (a NEON twin of the AVX2
// run detector would slot into the same dispatch table).

#ifndef DISTINCT_SIM_INTERSECT_H_
#define DISTINCT_SIM_INTERSECT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/profile_arena.h"

namespace distinct {

/// One path's pair features out of a single merge-join.
struct FusedPathFeatures {
  double resemblance = 0.0;
  double walk = 0.0;  // symmetric: mean of both directions
};

/// Which sorted-set intersection implementation the fused kernel joins
/// with. kAuto resolves once per engine via ResolveKernelIsa.
enum class KernelIsa {
  kAuto = 0,  // best supported: avx2 when available, else gallop
  kScalar,    // two-pointer merge — the canonical accumulation order
  kGallop,    // exponential binary probe on the longer list when skewed
  kAvx2,      // 8-wide run detection (x86 AVX2; scalar fallback elsewhere)
};

/// Lower-case name for logs, reports, and BENCH provenance ("auto" never
/// escapes: callers name the *resolved* ISA).
const char* KernelIsaName(KernelIsa isa);

/// Parses "auto" / "scalar" / "gallop" / "avx2". Returns false (and leaves
/// `out` untouched) on anything else.
bool ParseKernelIsa(const std::string& text, KernelIsa* out);

/// Resolves a requested ISA to one this binary and CPU can execute:
/// kAuto -> kAvx2 when compiled in and supported by the CPU, else kGallop;
/// kAvx2 on an unsupported host -> kScalar (the documented portable
/// fallback); concrete supported requests pass through. Never returns
/// kAuto. The CPU probe runs once per process.
KernelIsa ResolveKernelIsa(KernelIsa requested);

/// True when ResolveKernelIsa(kAvx2) == kAvx2 (build + CPU support).
bool KernelIsaAvx2Available();

/// Single-pass resemblance + both walk directions for the pair (i, j) of
/// one path slab — the scalar variant, whose accumulation order is the
/// bit-identity contract every other variant reproduces. Defined inline:
/// it is the fused fill's innermost call, and keeping the body visible
/// lets the per-cell loop inline it instead of paying a cross-TU call per
/// (pair, path).
inline FusedPathFeatures FusedMergeJoin(const ProfileArena::Path& path,
                                        size_t i, size_t j) {
  FusedPathFeatures features;
  size_t x = path.offsets[i];
  const size_t x_end = path.offsets[i + 1];
  size_t y = path.offsets[j];
  const size_t y_end = path.offsets[j + 1];
  // SetResemblance defines an empty side as 0 before any accumulation; the
  // walk sums have no matches to visit either way.
  if (x == x_end || y == y_end) {
    return features;
  }

  double numerator = 0.0;
  double denominator = 0.0;
  double walk_ij = 0.0;  // Walk_P(i -> j): forward_i · reverse_j
  double walk_ji = 0.0;  // Walk_P(j -> i): forward_j · reverse_i
  while (x < x_end && y < y_end) {
    const int32_t tx = path.tuples[x];
    const int32_t ty = path.tuples[y];
    if (tx < ty) {
      denominator += path.forward[x];
      ++x;
    } else if (ty < tx) {
      denominator += path.forward[y];
      ++y;
    } else {
      numerator += std::min(path.forward[x], path.forward[y]);
      denominator += std::max(path.forward[x], path.forward[y]);
      walk_ij += path.forward[x] * path.reverse[y];
      walk_ji += path.forward[y] * path.reverse[x];
      ++x;
      ++y;
    }
  }
  for (; x < x_end; ++x) {
    denominator += path.forward[x];
  }
  for (; y < y_end; ++y) {
    denominator += path.forward[y];
  }
  if (denominator > 0.0) {
    features.resemblance = numerator / denominator;
  }
  // Same addition order as 0.5 * (Walk(i, j) + Walk(j, i)).
  features.walk = 0.5 * (walk_ij + walk_ji);
  return features;
}

/// Galloping variant: when one slice is >= 8x the other, runs of the long
/// slice are located with an exponential + binary probe and their forward
/// probabilities accumulated in a tight dependence-only loop; balanced
/// slices fall through to the scalar merge.
FusedPathFeatures FusedMergeJoinGallop(const ProfileArena::Path& path,
                                       size_t i, size_t j);

/// AVX2 variant: on skewed pairs (same >= 8x ratio as the gallop trigger)
/// same-side runs are detected eight tuples per compare — sorted slices
/// make the comparison mask a prefix, so the run length is a trailing-ones
/// count — with accumulation staying scalar and in order. Balanced pairs,
/// unsupported hosts, and -DDISTINCT_DISABLE_SIMD builds take the scalar
/// merge (short interleaved runs lose money on vector loads).
FusedPathFeatures FusedMergeJoinAvx2(const ProfileArena::Path& path,
                                     size_t i, size_t j);

/// The merge-join a resolved ISA dispatches to. `isa` must not be kAuto
/// (resolve first); the returned pointer is valid for the process
/// lifetime, so the fused fill hoists one load out of its hot loop.
using MergeJoinFn = FusedPathFeatures (*)(const ProfileArena::Path&, size_t,
                                          size_t);
MergeJoinFn MergeJoinForIsa(KernelIsa isa);

}  // namespace distinct

#endif  // DISTINCT_SIM_INTERSECT_H_
