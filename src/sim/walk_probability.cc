#include "sim/walk_probability.h"

namespace distinct {

double WalkProbability(const NeighborProfile& a, const NeighborProfile& b) {
  double total = 0.0;
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  size_t i = 0;
  size_t j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].tuple < eb[j].tuple) {
      ++i;
    } else if (eb[j].tuple < ea[i].tuple) {
      ++j;
    } else {
      total += ea[i].forward * eb[j].reverse;
      ++i;
      ++j;
    }
  }
  return total;
}

double SymmetricWalkProbability(const NeighborProfile& a,
                                const NeighborProfile& b) {
  return 0.5 * (WalkProbability(a, b) + WalkProbability(b, a));
}

}  // namespace distinct
