#include "sim/walk_probability.h"

namespace distinct {

double WalkProbability(const NeighborProfile& a, const NeighborProfile& b) {
  double total = 0.0;
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  size_t i = 0;
  size_t j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].tuple < eb[j].tuple) {
      ++i;
    } else if (eb[j].tuple < ea[i].tuple) {
      ++j;
    } else {
      total += ea[i].forward * eb[j].reverse;
      ++i;
      ++j;
    }
  }
  return total;
}

double SymmetricWalkProbability(const NeighborProfile& a,
                                const NeighborProfile& b) {
  // Both directions share the same matched tuples, so one merge with two
  // accumulators replaces two full merge-joins. Each accumulator sums its
  // products in the order the directed loop would, and the final mean adds
  // them a->b first, so the result is bit-identical to
  // 0.5 * (WalkProbability(a, b) + WalkProbability(b, a)).
  double total_ab = 0.0;
  double total_ba = 0.0;
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  size_t i = 0;
  size_t j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].tuple < eb[j].tuple) {
      ++i;
    } else if (eb[j].tuple < ea[i].tuple) {
      ++j;
    } else {
      total_ab += ea[i].forward * eb[j].reverse;
      total_ba += eb[j].forward * ea[i].reverse;
      ++i;
      ++j;
    }
  }
  return 0.5 * (total_ab + total_ba);
}

}  // namespace distinct
