// Random walk probability between references along one join path
// (paper §2.4).
//
// The probability of walking from r1 out along P and back to r2 along the
// reverse path factorizes through the shared neighbor tuples:
//   Walk_P(r1 -> r2) = Σ_{t ∈ NB_P(r1) ∩ NB_P(r2)} Prob_P(r1->t) · Prob_P(t->r2)
// Both factors were already computed during propagation, so this is a
// linear merge of the two sorted profiles.

#ifndef DISTINCT_SIM_WALK_PROBABILITY_H_
#define DISTINCT_SIM_WALK_PROBABILITY_H_

#include "prop/profile.h"

namespace distinct {

/// Directed walk probability r_a -> ... -> r_b via the shared neighbors.
double WalkProbability(const NeighborProfile& a, const NeighborProfile& b);

/// Symmetrized walk probability: mean of both directions, computed in one
/// merge-join with a per-direction accumulator (bit-identical to averaging
/// two WalkProbability calls). This is the linkage-strength measure
/// DISTINCT pairs with set resemblance.
double SymmetricWalkProbability(const NeighborProfile& a,
                                const NeighborProfile& b);

}  // namespace distinct

#endif  // DISTINCT_SIM_WALK_PROBABILITY_H_
