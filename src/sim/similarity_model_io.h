// Text (de)serialization of a trained SimilarityModel, so the offline
// phase (training-set construction + SVM fit) can run once and its result
// be reused across processes.
//
// Format (line oriented, '#' comments allowed):
//   distinct-similarity-model v1
//   paths <n>
//   <resem_weight> <walk_weight>\t<path description>
//   ...
// Weights round-trip exactly (%.17g); the path description is free text
// used to detect schema drift at load time.

#ifndef DISTINCT_SIM_SIMILARITY_MODEL_IO_H_
#define DISTINCT_SIM_SIMILARITY_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "sim/similarity_model.h"

namespace distinct {

std::string SerializeSimilarityModel(const SimilarityModel& model);

StatusOr<SimilarityModel> ParseSimilarityModel(const std::string& text);

Status SaveSimilarityModel(const SimilarityModel& model,
                           const std::string& path);
StatusOr<SimilarityModel> LoadSimilarityModel(const std::string& path);

}  // namespace distinct

#endif  // DISTINCT_SIM_SIMILARITY_MODEL_IO_H_
