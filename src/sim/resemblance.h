// Set resemblance between neighbor profiles (paper §2.3).
//
// The connection-strength-weighted Jaccard coefficient:
//   Resem_P(r1, r2) = Σ_{t ∈ NB∩} min(p1(t), p2(t))
//                   / Σ_{t ∈ NB∪} max(p1(t), p2(t))
// where p_i(t) = Prob_P(r_i -> t). Both profiles must be over the same join
// path (same end-node tuple universe).

#ifndef DISTINCT_SIM_RESEMBLANCE_H_
#define DISTINCT_SIM_RESEMBLANCE_H_

#include "prop/profile.h"

namespace distinct {

/// Weighted Jaccard of two profiles; 0 when either is empty.
/// Always in [0, 1]; 1 iff the profiles are identical as weighted sets.
double SetResemblance(const NeighborProfile& a, const NeighborProfile& b);

}  // namespace distinct

#endif  // DISTINCT_SIM_RESEMBLANCE_H_
