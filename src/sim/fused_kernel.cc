#include "sim/fused_kernel.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

namespace distinct {

FusedPathFeatures FusedMergeJoin(const ProfileArena::Path& path, size_t i,
                                 size_t j) {
  FusedPathFeatures features;
  size_t x = path.offsets[i];
  const size_t x_end = path.offsets[i + 1];
  size_t y = path.offsets[j];
  const size_t y_end = path.offsets[j + 1];
  // SetResemblance defines an empty side as 0 before any accumulation; the
  // walk sums have no matches to visit either way.
  if (x == x_end || y == y_end) {
    return features;
  }

  double numerator = 0.0;
  double denominator = 0.0;
  double walk_ij = 0.0;  // Walk_P(i -> j): forward_i · reverse_j
  double walk_ji = 0.0;  // Walk_P(j -> i): forward_j · reverse_i
  while (x < x_end && y < y_end) {
    const int32_t tx = path.tuples[x];
    const int32_t ty = path.tuples[y];
    if (tx < ty) {
      denominator += path.forward[x];
      ++x;
    } else if (ty < tx) {
      denominator += path.forward[y];
      ++y;
    } else {
      numerator += std::min(path.forward[x], path.forward[y]);
      denominator += std::max(path.forward[x], path.forward[y]);
      walk_ij += path.forward[x] * path.reverse[y];
      walk_ji += path.forward[y] * path.reverse[x];
      ++x;
      ++y;
    }
  }
  for (; x < x_end; ++x) {
    denominator += path.forward[x];
  }
  for (; y < y_end; ++y) {
    denominator += path.forward[y];
  }
  if (denominator > 0.0) {
    features.resemblance = numerator / denominator;
  }
  // Same addition order as 0.5 * (Walk(i, j) + Walk(j, i)).
  features.walk = 0.5 * (walk_ij + walk_ji);
  return features;
}

PairFeatures FusedFeatures(const ProfileArena& arena, size_t i, size_t j) {
  PairFeatures features;
  features.resemblance.resize(arena.num_paths());
  features.walk.resize(arena.num_paths());
  for (size_t p = 0; p < arena.num_paths(); ++p) {
    const FusedPathFeatures fused = FusedMergeJoin(arena.path(p), i, j);
    features.resemblance[p] = fused.resemblance;
    features.walk[p] = fused.walk;
  }
  return features;
}

CandidateSet CandidateSet::Build(const ProfileArena& arena) {
  CandidateSet set;
  const size_t n = arena.num_refs();
  set.num_refs_ = n;
  const size_t cells = n < 2 ? 0 : n * (n - 1) / 2;
  set.bits_.assign((cells + 63) / 64, 0);

  // Inverted index per path: every arena entry is one (tuple, reference)
  // posting; sorting groups each tuple's references together, ascending
  // (profiles are duplicate-free, so a reference appears at most once per
  // tuple group). All pairs within a group share that tuple.
  std::vector<std::pair<int32_t, int32_t>> postings;
  for (size_t p = 0; p < arena.num_paths(); ++p) {
    const ProfileArena::Path& path = arena.path(p);
    postings.clear();
    postings.reserve(path.tuples.size());
    for (size_t r = 0; r < n; ++r) {
      for (size_t e = path.offsets[r]; e < path.offsets[r + 1]; ++e) {
        postings.emplace_back(path.tuples[e], static_cast<int32_t>(r));
      }
    }
    std::sort(postings.begin(), postings.end());
    for (size_t begin = 0; begin < postings.size();) {
      size_t end = begin;
      while (end < postings.size() &&
             postings[end].first == postings[begin].first) {
        ++end;
      }
      for (size_t a = begin; a < end; ++a) {
        const size_t i = static_cast<size_t>(postings[a].second);
        const size_t row = i * (i - 1) / 2;
        for (size_t b = begin; b < a; ++b) {
          const size_t bit = row + static_cast<size_t>(postings[b].second);
          set.bits_[bit >> 6] |= uint64_t{1} << (bit & 63);
        }
      }
      begin = end;
    }
  }

  for (const uint64_t word : set.bits_) {
    set.count_ += std::popcount(word);
  }
  return set;
}

CandidateSet CandidateSet::BuildPartial(const ProfileArena& arena,
                                        const std::vector<char>& dirty) {
  CandidateSet set;
  const size_t n = arena.num_refs();
  set.num_refs_ = n;
  const size_t cells = n < 2 ? 0 : n * (n - 1) / 2;
  set.bits_.assign((cells + 63) / 64, 0);

  // Build()'s tuple groups, restricted to the dirty rows' neighborhoods,
  // without the sort: pass 1 numbers each tuple a dirty reference holds
  // (a direct-indexed tuple -> bucket map, reset via the touched list
  // between paths), pass 2 scatters every reference holding a numbered
  // tuple into its bucket, and only pairs touching a dirty reference are
  // marked per bucket — clean-clean cells are never consulted by the
  // partial refill, and marking a both-dirty pair from either end twice
  // is idempotent. Per path the cost is one O(entries) scan plus
  // O(dirty_members x members) marking per bucket, instead of Build()'s
  // sort and O(members^2) groups.
  // Scratch persists across calls (bucket_of alone spans the tuple id
  // space, ~100KB) — one IncrementalCatalog apply runs this for hundreds
  // of names, and re-zeroing per name would dwarf the real work. Each path
  // iteration restores bucket_of to all -1 via `touched` and leaves the
  // bucket vectors cleared, so a new call always sees clean scratch.
  static thread_local std::vector<int32_t> bucket_of;  // tuple -> bucket id
  static thread_local std::vector<int32_t> touched;    // numbered this path
  static thread_local std::vector<std::vector<int32_t>> buckets;
  for (size_t p = 0; p < arena.num_paths(); ++p) {
    const ProfileArena::Path& path = arena.path(p);
    touched.clear();
    for (size_t r = 0; r < n; ++r) {
      if (!dirty[r]) {
        continue;
      }
      for (size_t e = path.offsets[r]; e < path.offsets[r + 1]; ++e) {
        const auto t = static_cast<size_t>(path.tuples[e]);
        if (t >= bucket_of.size()) {
          bucket_of.resize(t + 1, -1);
        }
        if (bucket_of[t] < 0) {
          bucket_of[t] = static_cast<int32_t>(touched.size());
          touched.push_back(static_cast<int32_t>(t));
        }
      }
    }
    if (touched.empty()) {
      continue;  // no dirty reference has entries on this path
    }
    if (buckets.size() < touched.size()) {
      buckets.resize(touched.size());
    }
    for (size_t r = 0; r < n; ++r) {
      for (size_t e = path.offsets[r]; e < path.offsets[r + 1]; ++e) {
        const auto t = static_cast<size_t>(path.tuples[e]);
        if (t < bucket_of.size() && bucket_of[t] >= 0) {
          buckets[static_cast<size_t>(bucket_of[t])].push_back(
              static_cast<int32_t>(r));
        }
      }
    }
    for (size_t b = 0; b < touched.size(); ++b) {
      std::vector<int32_t>& members = buckets[b];
      for (const int32_t ai : members) {
        const auto i = static_cast<size_t>(ai);
        if (!dirty[i]) {
          continue;
        }
        for (const int32_t bj : members) {
          const auto j = static_cast<size_t>(bj);
          if (j == i) {
            continue;
          }
          const size_t hi = i > j ? i : j;
          const size_t lo = i > j ? j : i;
          const size_t bit = hi * (hi - 1) / 2 + lo;
          set.bits_[bit >> 6] |= uint64_t{1} << (bit & 63);
        }
      }
      members.clear();
    }
    for (const int32_t t : touched) {
      bucket_of[static_cast<size_t>(t)] = -1;
    }
  }

  for (const uint64_t word : set.bits_) {
    set.count_ += std::popcount(word);
  }
  return set;
}

double PairSimilarityUpperBound(const ProfileArena& arena,
                                const SimilarityModel& model,
                                const PrunePolicy& policy, size_t i,
                                size_t j) {
  double resem_bound = 0.0;
  double walk_bound = 0.0;
  const std::vector<double>& resem_weights = model.resem_weights();
  const std::vector<double>& walk_weights = model.walk_weights();
  for (size_t p = 0; p < arena.num_paths(); ++p) {
    const ProfileArena::Path& path = arena.path(p);
    const double mass_i = path.mass[i];
    const double mass_j = path.mass[j];
    const double larger = std::max(mass_i, mass_j);
    if (larger > 0.0) {
      resem_bound += std::max(resem_weights[p], 0.0) *
                     (std::min(mass_i, mass_j) / larger);
    }
    // Walk_P(a->b) = Σ f_a(t)·r_b(t) over shared tuples; bound each factor
    // by its profile-wide aggregate, both ways, and keep the tighter.
    const double walk_ij =
        std::min(mass_i * path.reverse_max[j],
                 path.forward_max[i] * path.reverse_sum[j]);
    const double walk_ji =
        std::min(mass_j * path.reverse_max[i],
                 path.forward_max[j] * path.reverse_sum[i]);
    walk_bound += std::max(walk_weights[p], 0.0) * 0.5 * (walk_ij + walk_ji);
  }
  switch (policy.measure) {
    case ClusterMeasure::kResemblanceOnly:
      return resem_bound;
    case ClusterMeasure::kWalkOnly:
      return walk_bound;
    case ClusterMeasure::kComposite:
      break;
  }
  if (policy.combine == CombineRule::kArithmeticMean) {
    return 0.5 * (resem_bound + walk_bound);
  }
  return std::sqrt(resem_bound * walk_bound);
}

}  // namespace distinct
