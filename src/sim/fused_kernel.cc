#include "sim/fused_kernel.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

namespace distinct {

PairFeatures FusedFeatures(const ProfileArena& arena, size_t i, size_t j,
                           KernelIsa isa) {
  const MergeJoinFn join = MergeJoinForIsa(ResolveKernelIsa(isa));
  PairFeatures features;
  features.resemblance.resize(arena.num_paths());
  features.walk.resize(arena.num_paths());
  for (size_t p = 0; p < arena.num_paths(); ++p) {
    const FusedPathFeatures fused = join(arena.path(p), i, j);
    features.resemblance[p] = fused.resemblance;
    features.walk[p] = fused.walk;
  }
  return features;
}

namespace {

/// ORs `word` into the triangle bitmap at bit position `bit_pos` (the low
/// bit of `word` lands on `bit_pos`). Callers guarantee every set bit of
/// `word` stays inside the bitmap.
inline void OrWordAt(std::vector<uint64_t>& bits, size_t bit_pos,
                     uint64_t word) {
  if (word == 0) {
    return;
  }
  const size_t q = bit_pos >> 6;
  const size_t s = bit_pos & 63;
  if (s == 0) {
    bits[q] |= word;
    return;
  }
  bits[q] |= word << s;
  const uint64_t spill = word >> (64 - s);
  if (spill != 0) {
    bits[q + 1] |= spill;
  }
}

}  // namespace

CandidateSet CandidateSet::Build(const ProfileArena& arena,
                                 const CandidateBuildOptions& options) {
  CandidateSet set;
  const size_t n = arena.num_refs();
  set.num_refs_ = n;
  const size_t cells = n < 2 ? 0 : n * (n - 1) / 2;
  set.bits_.assign((cells + 63) / 64, 0);

  // Scratch shared across paths (and, via thread_local, across the many
  // names one scan worker builds — same idiom and lifetime contract as
  // BuildPartial below): dense_of spans the tuple id space and is restored
  // to all -1 through `touched` after every path.
  static thread_local std::vector<int32_t> dense_of;  // tuple -> dense id
  static thread_local std::vector<int32_t> touched;   // numbered this path
  std::vector<uint32_t> counts;       // dense id -> occurrences
  std::vector<uint32_t> group_begin;  // dense id -> start in grouped
  std::vector<int32_t> grouped;       // refs grouped by dense tuple id
  std::vector<uint64_t> tuple_bits;   // dense id -> reference bitmap
  std::vector<uint64_t> row;          // one reference's candidate row

  const size_t words = (n + 63) / 64;
  for (size_t p = 0; p < arena.num_paths(); ++p) {
    const ProfileArena::Path& path = arena.path(p);
    const size_t entries = path.tuples.size();
    if (entries == 0) {
      continue;
    }
    // Pass 1: dense-number every distinct tuple on this path and count its
    // postings — a counting sort's histogram, replacing the comparison
    // sort the old Build ran per path.
    touched.clear();
    counts.clear();
    for (size_t e = 0; e < entries; ++e) {
      const auto t = static_cast<size_t>(path.tuples[e]);
      if (t >= dense_of.size()) {
        dense_of.resize(t + 1, -1);
      }
      if (dense_of[t] < 0) {
        dense_of[t] = static_cast<int32_t>(touched.size());
        touched.push_back(static_cast<int32_t>(t));
        counts.push_back(0);
      }
      ++counts[static_cast<size_t>(dense_of[t])];
    }
    const size_t distinct = touched.size();

    // The counting pass's histogram prices both machines before either
    // runs: grouped marking visits every within-group pair (Σ count²),
    // the bitset path ORs ~(entries + n) · words/2 words. Hub tuples send
    // Σ count² quadratic, which is exactly when the word ops win.
    double grouped_cost = 0.0;
    for (size_t d = 0; d < distinct; ++d) {
      grouped_cost += static_cast<double>(counts[d]) *
                      static_cast<double>(counts[d]);
    }
    const double bitset_cost =
        static_cast<double>(entries + n) * static_cast<double>(words) * 0.5;
    const bool use_bitset =
        n >= static_cast<size_t>(std::max(options.bitset_min_refs, 0)) &&
        distinct * words <= options.bitset_max_scratch_words &&
        (options.bitset_cost_factor <= 0.0 ||
         grouped_cost > options.bitset_cost_factor * bitset_cost);

    if (use_bitset) {
      // Dense path: tuple -> reference bitmaps, then one word-parallel OR
      // per (reference, tuple) posting and a shifted OR into the
      // contiguous triangle row of each reference. Hub tuples cost words,
      // not pairs².
      tuple_bits.assign(distinct * words, 0);
      for (size_t r = 0; r < n; ++r) {
        for (size_t e = path.offsets[r]; e < path.offsets[r + 1]; ++e) {
          const auto d = static_cast<size_t>(
              dense_of[static_cast<size_t>(path.tuples[e])]);
          tuple_bits[d * words + (r >> 6)] |= uint64_t{1} << (r & 63);
        }
      }
      row.assign(words, 0);
      for (size_t r = 1; r < n; ++r) {
        if (path.size(r) == 0) {
          continue;
        }
        // Only bits below r survive the splice, so only the words that can
        // hold them are ORed (and re-zeroed).
        const size_t row_words = (r + 63) / 64;
        for (size_t e = path.offsets[r]; e < path.offsets[r + 1]; ++e) {
          const auto d = static_cast<size_t>(
              dense_of[static_cast<size_t>(path.tuples[e])]);
          const uint64_t* src = tuple_bits.data() + d * words;
          for (size_t w = 0; w < row_words; ++w) {
            row[w] |= src[w];
          }
        }
        const size_t base = r * (r - 1) / 2;
        const size_t full = r / 64;
        const size_t rem = r % 64;
        for (size_t w = 0; w < full; ++w) {
          OrWordAt(set.bits_, base + 64 * w, row[w]);
        }
        if (rem != 0) {
          OrWordAt(set.bits_, base + 64 * full,
                   row[full] & ((uint64_t{1} << rem) - 1));
        }
        std::fill(row.begin(), row.begin() + static_cast<int64_t>(row_words),
                  0);
      }
    } else {
      // Sparse path: scatter references into per-tuple groups (counting
      // sort, ref order preserved ascending) and mark every pair inside a
      // group — exactly the incidences the fused kernel would visit.
      group_begin.assign(distinct + 1, 0);
      for (size_t d = 0; d < distinct; ++d) {
        group_begin[d + 1] = group_begin[d] + counts[d];
      }
      grouped.resize(entries);
      counts.assign(distinct, 0);  // reused as per-group cursors
      for (size_t r = 0; r < n; ++r) {
        for (size_t e = path.offsets[r]; e < path.offsets[r + 1]; ++e) {
          const auto d = static_cast<size_t>(
              dense_of[static_cast<size_t>(path.tuples[e])]);
          grouped[group_begin[d] + counts[d]++] = static_cast<int32_t>(r);
        }
      }
      for (size_t d = 0; d < distinct; ++d) {
        const size_t begin = group_begin[d];
        const size_t end = group_begin[d + 1];
        for (size_t a = begin; a < end; ++a) {
          const auto i = static_cast<size_t>(grouped[a]);
          const size_t row_base = i * (i - 1) / 2;
          for (size_t b = begin; b < a; ++b) {
            const size_t bit = row_base + static_cast<size_t>(grouped[b]);
            set.bits_[bit >> 6] |= uint64_t{1} << (bit & 63);
          }
        }
      }
    }
    for (const int32_t t : touched) {
      dense_of[static_cast<size_t>(t)] = -1;
    }
  }

  for (const uint64_t word : set.bits_) {
    set.count_ += std::popcount(word);
  }
  return set;
}

CandidateSet CandidateSet::BuildPartial(const ProfileArena& arena,
                                        const std::vector<char>& dirty) {
  CandidateSet set;
  const size_t n = arena.num_refs();
  set.num_refs_ = n;
  const size_t cells = n < 2 ? 0 : n * (n - 1) / 2;
  set.bits_.assign((cells + 63) / 64, 0);

  // Build()'s tuple groups, restricted to the dirty rows' neighborhoods,
  // without the sort: pass 1 numbers each tuple a dirty reference holds
  // (a direct-indexed tuple -> bucket map, reset via the touched list
  // between paths), pass 2 scatters every reference holding a numbered
  // tuple into its bucket, and only pairs touching a dirty reference are
  // marked per bucket — clean-clean cells are never consulted by the
  // partial refill, and marking a both-dirty pair from either end twice
  // is idempotent. Per path the cost is one O(entries) scan plus
  // O(dirty_members x members) marking per bucket, instead of Build()'s
  // sort and O(members^2) groups.
  // Scratch persists across calls (bucket_of alone spans the tuple id
  // space, ~100KB) — one IncrementalCatalog apply runs this for hundreds
  // of names, and re-zeroing per name would dwarf the real work. Each path
  // iteration restores bucket_of to all -1 via `touched` and leaves the
  // bucket vectors cleared, so a new call always sees clean scratch.
  static thread_local std::vector<int32_t> bucket_of;  // tuple -> bucket id
  static thread_local std::vector<int32_t> touched;    // numbered this path
  static thread_local std::vector<std::vector<int32_t>> buckets;
  for (size_t p = 0; p < arena.num_paths(); ++p) {
    const ProfileArena::Path& path = arena.path(p);
    touched.clear();
    for (size_t r = 0; r < n; ++r) {
      if (!dirty[r]) {
        continue;
      }
      for (size_t e = path.offsets[r]; e < path.offsets[r + 1]; ++e) {
        const auto t = static_cast<size_t>(path.tuples[e]);
        if (t >= bucket_of.size()) {
          bucket_of.resize(t + 1, -1);
        }
        if (bucket_of[t] < 0) {
          bucket_of[t] = static_cast<int32_t>(touched.size());
          touched.push_back(static_cast<int32_t>(t));
        }
      }
    }
    if (touched.empty()) {
      continue;  // no dirty reference has entries on this path
    }
    if (buckets.size() < touched.size()) {
      buckets.resize(touched.size());
    }
    for (size_t r = 0; r < n; ++r) {
      for (size_t e = path.offsets[r]; e < path.offsets[r + 1]; ++e) {
        const auto t = static_cast<size_t>(path.tuples[e]);
        if (t < bucket_of.size() && bucket_of[t] >= 0) {
          buckets[static_cast<size_t>(bucket_of[t])].push_back(
              static_cast<int32_t>(r));
        }
      }
    }
    for (size_t b = 0; b < touched.size(); ++b) {
      std::vector<int32_t>& members = buckets[b];
      for (const int32_t ai : members) {
        const auto i = static_cast<size_t>(ai);
        if (!dirty[i]) {
          continue;
        }
        for (const int32_t bj : members) {
          const auto j = static_cast<size_t>(bj);
          if (j == i) {
            continue;
          }
          const size_t hi = i > j ? i : j;
          const size_t lo = i > j ? j : i;
          const size_t bit = hi * (hi - 1) / 2 + lo;
          set.bits_[bit >> 6] |= uint64_t{1} << (bit & 63);
        }
      }
      members.clear();
    }
    for (const int32_t t : touched) {
      bucket_of[static_cast<size_t>(t)] = -1;
    }
  }

  for (const uint64_t word : set.bits_) {
    set.count_ += std::popcount(word);
  }
  return set;
}

double PairSimilarityUpperBound(const ProfileArena& arena,
                                const SimilarityModel& model,
                                const PrunePolicy& policy, size_t i,
                                size_t j) {
  double resem_bound = 0.0;
  double walk_bound = 0.0;
  const std::vector<double>& resem_weights = model.resem_weights();
  const std::vector<double>& walk_weights = model.walk_weights();
  for (size_t p = 0; p < arena.num_paths(); ++p) {
    const ProfileArena::Path& path = arena.path(p);
    const double mass_i = path.mass[i];
    const double mass_j = path.mass[j];
    const auto matches =
        static_cast<double>(std::min(path.size(i), path.size(j)));
    // Resem_P = ν/δ with δ = mass_i + mass_j − ν exactly (Σmax + Σmin over
    // the union is the total mass), and ν/(M−ν) increases in ν — so any
    // upper bound ν* on the numerator gives the bound ν*/(M−ν*). The
    // numerator is capped by the smaller mass and by the match count times
    // the smaller per-entry maximum; the latter tightens hub-vs-small
    // pairs whose masses alone look similar.
    double nu = std::min(mass_i, mass_j);
    nu = std::min(nu, matches * std::min(path.forward_max[i],
                                         path.forward_max[j]));
    if (nu > 0.0) {
      const double delta = mass_i + mass_j - nu;
      const double resem =
          delta > 0.0 ? std::min(nu / delta, 1.0) : 1.0;
      resem_bound += std::max(resem_weights[p], 0.0) * resem;
    }
    // Walk_P(a->b) = Σ f_a(t)·r_b(t) over shared tuples; bound each factor
    // by its profile-wide aggregate (both ways), or the whole sum by the
    // match count times the largest single product, and keep the tightest.
    const double walk_ij =
        std::min({mass_i * path.reverse_max[j],
                  path.forward_max[i] * path.reverse_sum[j],
                  matches * path.forward_max[i] * path.reverse_max[j]});
    const double walk_ji =
        std::min({mass_j * path.reverse_max[i],
                  path.forward_max[j] * path.reverse_sum[i],
                  matches * path.forward_max[j] * path.reverse_max[i]});
    walk_bound += std::max(walk_weights[p], 0.0) * 0.5 * (walk_ij + walk_ji);
  }
  switch (policy.measure) {
    case ClusterMeasure::kResemblanceOnly:
      return resem_bound;
    case ClusterMeasure::kWalkOnly:
      return walk_bound;
    case ClusterMeasure::kComposite:
      break;
  }
  if (policy.combine == CombineRule::kArithmeticMean) {
    return 0.5 * (resem_bound + walk_bound);
  }
  return std::sqrt(resem_bound * walk_bound);
}

}  // namespace distinct
