// The per-join-path weight model (paper §3, Eq. 1).
//
// Overall similarity is a weighted combination of per-path similarities:
//   Resem(r1, r2) = Σ_P w_resem(P) · Resem_P(r1, r2)
//   Walk(r1, r2)  = Σ_P w_walk(P)  · Walk_P(r1, r2)
// Supervised weights come from a linear SVM trained on the automatically
// constructed training set; the unsupervised baselines use uniform weights.

#ifndef DISTINCT_SIM_SIMILARITY_MODEL_H_
#define DISTINCT_SIM_SIMILARITY_MODEL_H_

#include <string>
#include <vector>

#include "sim/feature_vector.h"

namespace distinct {

/// Weighted combination of per-path similarities.
class SimilarityModel {
 public:
  SimilarityModel() = default;

  /// Model with explicit weights. Both vectors are indexed by path.
  SimilarityModel(std::vector<double> resem_weights,
                  std::vector<double> walk_weights,
                  std::vector<std::string> path_names = {});

  /// Uniform (unsupervised) model: every path weighs 1/num_paths.
  static SimilarityModel Uniform(size_t num_paths,
                                 std::vector<std::string> path_names = {});

  size_t num_paths() const { return resem_weights_.size(); }
  const std::vector<double>& resem_weights() const { return resem_weights_; }
  const std::vector<double>& walk_weights() const { return walk_weights_; }
  const std::vector<std::string>& path_names() const { return path_names_; }

  /// Σ_P w_resem(P) · features.resemblance[P] (clamped at 0).
  double Resemblance(const PairFeatures& features) const;

  /// Σ_P w_walk(P) · features.walk[P] (clamped at 0).
  double Walk(const PairFeatures& features) const;

  /// Zeroes negative weights and rescales each weight vector to sum to 1,
  /// making supervised and unsupervised similarities share a scale (so one
  /// min-sim threshold is meaningful across variants).
  void ClampAndNormalize();

  /// Multi-line table of per-path weights, largest resemblance weight first.
  std::string DebugString() const;

 private:
  std::vector<double> resem_weights_;
  std::vector<double> walk_weights_;
  std::vector<std::string> path_names_;
};

}  // namespace distinct

#endif  // DISTINCT_SIM_SIMILARITY_MODEL_H_
