#include "sim/intersect.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#if defined(__x86_64__) && !defined(DISTINCT_DISABLE_SIMD)
#define DISTINCT_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#else
#define DISTINCT_HAVE_AVX2_KERNEL 0
#endif

namespace distinct {

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAuto:
      return "auto";
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kGallop:
      return "gallop";
    case KernelIsa::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool ParseKernelIsa(const std::string& text, KernelIsa* out) {
  if (text == "auto") {
    *out = KernelIsa::kAuto;
  } else if (text == "scalar") {
    *out = KernelIsa::kScalar;
  } else if (text == "gallop") {
    *out = KernelIsa::kGallop;
  } else if (text == "avx2") {
    *out = KernelIsa::kAvx2;
  } else {
    return false;
  }
  return true;
}

bool KernelIsaAvx2Available() {
#if DISTINCT_HAVE_AVX2_KERNEL
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

KernelIsa ResolveKernelIsa(KernelIsa requested) {
  switch (requested) {
    case KernelIsa::kScalar:
    case KernelIsa::kGallop:
      return requested;
    case KernelIsa::kAvx2:
      // The documented portable fallback: an explicit AVX2 request on a
      // host (or build) without it degrades to scalar, never to gallop —
      // the caller asked for a specific implementation, not "fastest".
      return KernelIsaAvx2Available() ? KernelIsa::kAvx2 : KernelIsa::kScalar;
    case KernelIsa::kAuto:
      break;
  }
  return KernelIsaAvx2Available() ? KernelIsa::kAvx2 : KernelIsa::kGallop;
}

namespace {

/// One slice is "skewed" past the other above this length ratio; below it
/// the probe bookkeeping (gallop) or vector loads (AVX2) cost more than
/// the comparisons they save, so both variants hand balanced pairs to the
/// scalar merge.
constexpr size_t kGallopSkew = 8;

/// First index in [begin, end) with tuples[idx] >= key. Requires
/// tuples[begin] < key (the caller just compared it), so the exponential
/// probe starts past it.
size_t GallopLowerBound(const int32_t* tuples, size_t begin, size_t end,
                        int32_t key) {
  size_t step = 1;
  size_t lo = begin;  // invariant: tuples[lo] < key
  while (begin + step < end && tuples[begin + step] < key) {
    lo = begin + step;
    step <<= 1;
  }
  size_t hi = std::min(end, begin + step);
  ++lo;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (tuples[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

FusedPathFeatures FusedMergeJoinGallop(const ProfileArena::Path& path,
                                       size_t i, size_t j) {
  size_t x = path.offsets[i];
  const size_t x_end = path.offsets[i + 1];
  size_t y = path.offsets[j];
  const size_t y_end = path.offsets[j + 1];
  const size_t len_x = x_end - x;
  const size_t len_y = y_end - y;
  FusedPathFeatures features;
  if (len_x == 0 || len_y == 0) {
    return features;
  }
  if (len_x < len_y * kGallopSkew && len_y < len_x * kGallopSkew) {
    return FusedMergeJoin(path, i, j);  // balanced: plain merge wins
  }
  const bool long_is_x = len_x >= len_y;
  const int32_t* tuples = path.tuples.data();
  const double* fwd = path.forward.data();
  const double* rev = path.reverse.data();

  // The accumulation sequence is the scalar merge's, element for element:
  // the probe only finds where a long-side run ends, after which the run's
  // forwards are added in exactly the order the two-pointer loop would
  // have added them (a maximal same-side run is contiguous in the union
  // order). Matches and the short side advance one element at a time.
  double numerator = 0.0;
  double denominator = 0.0;
  double walk_ij = 0.0;
  double walk_ji = 0.0;
  while (x < x_end && y < y_end) {
    const int32_t tx = tuples[x];
    const int32_t ty = tuples[y];
    if (tx == ty) {
      numerator += std::min(fwd[x], fwd[y]);
      denominator += std::max(fwd[x], fwd[y]);
      walk_ij += fwd[x] * rev[y];
      walk_ji += fwd[y] * rev[x];
      ++x;
      ++y;
    } else if (tx < ty) {
      if (long_is_x) {
        const size_t run_end = GallopLowerBound(tuples, x, x_end, ty);
        for (; x < run_end; ++x) {
          denominator += fwd[x];
        }
      } else {
        denominator += fwd[x];
        ++x;
      }
    } else {
      if (!long_is_x) {
        const size_t run_end = GallopLowerBound(tuples, y, y_end, tx);
        for (; y < run_end; ++y) {
          denominator += fwd[y];
        }
      } else {
        denominator += fwd[y];
        ++y;
      }
    }
  }
  for (; x < x_end; ++x) {
    denominator += fwd[x];
  }
  for (; y < y_end; ++y) {
    denominator += fwd[y];
  }
  if (denominator > 0.0) {
    features.resemblance = numerator / denominator;
  }
  features.walk = 0.5 * (walk_ij + walk_ji);
  return features;
}

#if DISTINCT_HAVE_AVX2_KERNEL

namespace {

__attribute__((target("avx2"))) FusedPathFeatures Avx2MergeJoin(
    const ProfileArena::Path& path, size_t i, size_t j) {
  size_t x = path.offsets[i];
  const size_t x_end = path.offsets[i + 1];
  size_t y = path.offsets[j];
  const size_t y_end = path.offsets[j + 1];
  FusedPathFeatures features;
  if (x == x_end || y == y_end) {
    return features;
  }
  const int32_t* tuples = path.tuples.data();
  const double* fwd = path.forward.data();
  const double* rev = path.reverse.data();

  double numerator = 0.0;
  double denominator = 0.0;
  double walk_ij = 0.0;
  double walk_ji = 0.0;
  // Runs of length one or two dominate when the slices interleave, and a
  // vector load per mismatch loses to the plain compare there — so a run
  // advances scalar first, and only once it persists past kAvx2RunTrigger
  // elements does the probe switch to 8-tuples-per-compare blocks: within
  // a sorted slice the lanes below the other side's current tuple form a
  // prefix of the comparison mask, so the in-block run length is a
  // trailing-ones count. Either way the run's forwards are added one at a
  // time — the identical sequence (and therefore identical floating-point
  // result) as the scalar merge, which also adds a maximal same-side run
  // contiguously.
  constexpr size_t kAvx2RunTrigger = 4;
  while (x < x_end && y < y_end) {
    const int32_t tx = tuples[x];
    const int32_t ty = tuples[y];
    if (tx == ty) {
      numerator += std::min(fwd[x], fwd[y]);
      denominator += std::max(fwd[x], fwd[y]);
      walk_ij += fwd[x] * rev[y];
      walk_ji += fwd[y] * rev[x];
      ++x;
      ++y;
      continue;
    }
    if (tx < ty) {
      size_t streak = 0;
      while (x < x_end && tuples[x] < ty && streak < kAvx2RunTrigger) {
        denominator += fwd[x];
        ++x;
        ++streak;
      }
      if (streak < kAvx2RunTrigger) {
        continue;  // run ended (or slice did) before the vector threshold
      }
      const __m256i pivot = _mm256_set1_epi32(ty);
      while (x + 8 <= x_end) {
        const __m256i block = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tuples + x));
        const auto mask = static_cast<uint32_t>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpgt_epi32(pivot, block))));
        const unsigned run = static_cast<unsigned>(std::countr_one(mask));
        for (unsigned k = 0; k < run; ++k) {
          denominator += fwd[x + k];
        }
        x += run;
        if (run < 8) {
          break;
        }
      }
      while (x < x_end && tuples[x] < ty) {  // tail past the last block
        denominator += fwd[x];
        ++x;
      }
    } else {
      size_t streak = 0;
      while (y < y_end && tuples[y] < tx && streak < kAvx2RunTrigger) {
        denominator += fwd[y];
        ++y;
        ++streak;
      }
      if (streak < kAvx2RunTrigger) {
        continue;
      }
      const __m256i pivot = _mm256_set1_epi32(tx);
      while (y + 8 <= y_end) {
        const __m256i block = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tuples + y));
        const auto mask = static_cast<uint32_t>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpgt_epi32(pivot, block))));
        const unsigned run = static_cast<unsigned>(std::countr_one(mask));
        for (unsigned k = 0; k < run; ++k) {
          denominator += fwd[y + k];
        }
        y += run;
        if (run < 8) {
          break;
        }
      }
      while (y < y_end && tuples[y] < tx) {
        denominator += fwd[y];
        ++y;
      }
    }
  }
  for (; x < x_end; ++x) {
    denominator += fwd[x];
  }
  for (; y < y_end; ++y) {
    denominator += fwd[y];
  }
  if (denominator > 0.0) {
    features.resemblance = numerator / denominator;
  }
  features.walk = 0.5 * (walk_ij + walk_ji);
  return features;
}

}  // namespace

#endif  // DISTINCT_HAVE_AVX2_KERNEL

FusedPathFeatures FusedMergeJoinAvx2(const ProfileArena::Path& path, size_t i,
                                     size_t j) {
#if DISTINCT_HAVE_AVX2_KERNEL
  if (KernelIsaAvx2Available()) {
    // Balanced slices interleave in short runs where a vector load per
    // mismatch loses to the plain compare (measured on the pair-kernel
    // bench), so the vector probe is reserved for the same skew regime
    // galloping targets — it replaces the binary probe with 8-wide run
    // scans there.
    const size_t len_x = path.offsets[i + 1] - path.offsets[i];
    const size_t len_y = path.offsets[j + 1] - path.offsets[j];
    if (len_x >= len_y * kGallopSkew || len_y >= len_x * kGallopSkew) {
      return Avx2MergeJoin(path, i, j);
    }
  }
#endif
  return FusedMergeJoin(path, i, j);
}

MergeJoinFn MergeJoinForIsa(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kGallop:
      return &FusedMergeJoinGallop;
    case KernelIsa::kAvx2:
      return &FusedMergeJoinAvx2;
    case KernelIsa::kAuto:
    case KernelIsa::kScalar:
      break;
  }
  return &FusedMergeJoin;
}

}  // namespace distinct
