#include "sim/feature_vector.h"

#include "sim/resemblance.h"
#include "sim/walk_probability.h"

namespace distinct {

FeatureExtractor::FeatureExtractor(const PropagationEngine& engine,
                                   std::vector<JoinPath> paths,
                                   PropagationOptions options)
    : engine_(&engine), paths_(std::move(paths)), options_(options) {}

const std::vector<NeighborProfile>& FeatureExtractor::ProfilesFor(
    int32_t ref) {
  auto it = cache_.find(ref);
  if (it != cache_.end()) {
    return it->second;
  }
  std::vector<NeighborProfile> profiles;
  profiles.reserve(paths_.size());
  if (options_.algorithm == PropagationAlgorithm::kWorkspace) {
    if (workspace_ == nullptr) {
      workspace_ =
          std::make_unique<PropagationWorkspace>(engine_->link());
    }
    for (const JoinPath& path : paths_) {
      profiles.push_back(engine_->Compute(path, ref, options_, *workspace_));
    }
  } else {
    for (const JoinPath& path : paths_) {
      profiles.push_back(engine_->Compute(path, ref, options_));
    }
  }
  return cache_.emplace(ref, std::move(profiles)).first->second;
}

PairFeatures ComputePairFeatures(const std::vector<NeighborProfile>& p1,
                                 const std::vector<NeighborProfile>& p2) {
  PairFeatures features;
  features.resemblance.resize(p1.size());
  features.walk.resize(p1.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    features.resemblance[i] = SetResemblance(p1[i], p2[i]);
    features.walk[i] = SymmetricWalkProbability(p1[i], p2[i]);
  }
  return features;
}

PairFeatures FeatureExtractor::Compute(int32_t ref1, int32_t ref2) {
  const std::vector<NeighborProfile>& p1 = ProfilesFor(ref1);
  const std::vector<NeighborProfile>& p2 = ProfilesFor(ref2);
  return ComputePairFeatures(p1, p2);
}

void FeatureExtractor::ClearCache() { cache_.clear(); }

}  // namespace distinct
