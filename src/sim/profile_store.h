// Shared read-only store of per-reference neighbor profiles — phase 1 of
// the parallel intra-name similarity kernel.
//
// Each of the n references needs one propagation per join path, and the
// propagations are mutually independent, so Build() fans them out over a
// ThreadPool. Once built the store is immutable: any number of threads may
// read profiles and derive pair features concurrently without
// synchronization. This replaces the per-worker FeatureExtractor caches the
// bulk scan used to maintain (whose `thread_local` keying by engine address
// dangled when an engine was destroyed and a new one reused the address).

#ifndef DISTINCT_SIM_PROFILE_STORE_H_
#define DISTINCT_SIM_PROFILE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "prop/propagation.h"
#include "prop/workspace.h"
#include "relational/join_path.h"
#include "sim/feature_vector.h"

namespace distinct {

/// Hands each worker a private PropagationWorkspace and takes it back when
/// the worker's task ends, recycling the dense slabs across tasks (and,
/// when one pool is shared across many Build() calls, across name groups —
/// a bulk scan then allocates at most one workspace per concurrent worker
/// for the whole run, which is what makes its memory budgetable). A plain
/// mutex-protected free-list — deliberately not `thread_local`, which keyed
/// by engine address dangled here before (see file comment below).
class WorkspacePool {
 public:
  explicit WorkspacePool(const LinkGraph& link) : link_(&link) {}

  std::unique_ptr<PropagationWorkspace> Acquire();
  void Release(std::unique_ptr<PropagationWorkspace> workspace);

  /// Workspaces ever allocated — the high-water mark of concurrent use.
  /// Multiplied by ApproxWorkspaceBytes(link) this bounds the pool's
  /// resident footprint.
  int64_t num_created() const;

 private:
  const LinkGraph* link_;
  mutable std::mutex mutex_;
  int64_t created_ = 0;
  std::vector<std::unique_ptr<PropagationWorkspace>> free_;
};

class ProfileStore {
 public:
  /// Below this many references Build() stays serial even when a pool is
  /// supplied (task overhead would dominate n propagations).
  static constexpr size_t kMinParallelRefs = 32;

  /// Computes the profiles of every reference in `refs` along every path.
  /// With a non-null `pool`, references are processed in parallel; safe to
  /// call from inside a pool task (work is shared via ParallelForShared).
  /// Each reference's profiles are computed by exactly one thread with the
  /// same per-path loop as the serial code, so the result is bit-identical
  /// across thread counts.
  ///
  /// With PropagationAlgorithm::kWorkspace, each worker checks a
  /// PropagationWorkspace out of a free-list (dense scratch is recycled
  /// across references, never shared between concurrent workers) and all
  /// workers share one SubtreeCache: `shared_cache` when non-null —
  /// letting a caller reuse the memo across many Build() calls over the
  /// same link graph — else a Build-local cache of options.cache_bytes.
  /// `shared_workspaces` (optional, must be over the same link graph)
  /// likewise recycles dense scratch across Build() calls; workspaces are
  /// epoch-reset on reuse, so sharing cannot change results.
  static ProfileStore Build(const PropagationEngine& engine,
                            const std::vector<JoinPath>& paths,
                            const PropagationOptions& options,
                            std::vector<int32_t> refs,
                            ThreadPool* pool = nullptr,
                            size_t min_parallel_refs = kMinParallelRefs,
                            SubtreeCache* shared_cache = nullptr,
                            WorkspacePool* shared_workspaces = nullptr);

  /// Splice-update after a database delta (the serving-path seam of the
  /// incremental catalog): recomputes in place the profiles of the
  /// references at `positions` of refs() — those whose evidence the delta
  /// changed — and appends `new_refs` with freshly computed profiles.
  /// Untouched profiles are kept verbatim, so the store afterwards is
  /// bit-identical to a full Build() over the combined reference list
  /// (clean profiles are unchanged by construction; dirty and new ones go
  /// through the exact Build() per-path loop). Parallelized like Build().
  ///
  /// `position_path_masks` (optional, aligned with `positions`) restricts
  /// each position's recompute to the paths whose bit is set — propagation
  /// is independent per (reference, path), so keeping a clean path's
  /// profile is exact. Bits past path 63 are treated as set. Appended
  /// `new_refs` always compute every path.
  void Update(const PropagationEngine& engine,
              const std::vector<JoinPath>& paths,
              const PropagationOptions& options,
              const std::vector<size_t>& positions,
              std::vector<int32_t> new_refs,
              ThreadPool* pool = nullptr,
              size_t min_parallel_refs = kMinParallelRefs,
              SubtreeCache* shared_cache = nullptr,
              WorkspacePool* shared_workspaces = nullptr,
              const std::vector<uint64_t>* position_path_masks = nullptr);

  size_t num_refs() const { return refs_.size(); }
  size_t num_paths() const { return num_paths_; }
  const std::vector<int32_t>& refs() const { return refs_; }

  /// Profiles (one per path) of the reference at position `index` of
  /// refs().
  const std::vector<NeighborProfile>& profiles(size_t index) const {
    return profiles_[index];
  }

  /// Position of `ref` in refs(), or -1 when absent.
  int64_t IndexOf(int32_t ref) const;

  /// Pair features of the references at positions i and j.
  PairFeatures Features(size_t i, size_t j) const {
    return ComputePairFeatures(profiles_[i], profiles_[j]);
  }

 private:
  ProfileStore() = default;

  std::vector<int32_t> refs_;
  size_t num_paths_ = 0;
  std::vector<std::vector<NeighborProfile>> profiles_;  // indexed like refs_
  /// (ref, position) sorted by ref — IndexOf binary-searches it instead of
  /// hashing on the scan hot path. Built once in Build(); for duplicate
  /// refs the first position wins (stable sort), matching the old
  /// hash-map emplace semantics.
  std::vector<std::pair<int32_t, size_t>> index_;
};

}  // namespace distinct

#endif  // DISTINCT_SIM_PROFILE_STORE_H_
