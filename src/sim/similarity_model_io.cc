#include "sim/similarity_model_io.h"

#include <cstdio>
#include <memory>

#include "common/string_util.h"

namespace distinct {
namespace {

constexpr char kMagic[] = "distinct-similarity-model v1";

}  // namespace

std::string SerializeSimilarityModel(const SimilarityModel& model) {
  std::string out = kMagic;
  out += '\n';
  out += StrFormat("paths %zu\n", model.num_paths());
  for (size_t p = 0; p < model.num_paths(); ++p) {
    const std::string name =
        model.path_names().empty() ? StrFormat("path %zu", p)
                                   : model.path_names()[p];
    out += StrFormat("%.17g %.17g\t%s\n", model.resem_weights()[p],
                     model.walk_weights()[p], name.c_str());
  }
  return out;
}

StatusOr<SimilarityModel> ParseSimilarityModel(const std::string& text) {
  std::vector<std::string> lines;
  for (std::string& line : Split(text, '\n')) {
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    lines.emplace_back(line);  // keep interior tabs intact
  }
  if (lines.empty() ||
      StripWhitespace(lines[0]) != std::string_view(kMagic)) {
    return DataLossError("similarity model: missing or unknown header");
  }
  if (lines.size() < 2 || !StartsWith(StripWhitespace(lines[1]), "paths ")) {
    return DataLossError("similarity model: expected 'paths' line");
  }
  auto count =
      ParseInt64(std::string_view(StripWhitespace(lines[1])).substr(6));
  if (!count.has_value() || *count < 0) {
    return DataLossError("similarity model: malformed path count");
  }
  if (lines.size() != 2 + static_cast<size_t>(*count)) {
    return DataLossError(StrFormat(
        "similarity model: expected %lld path lines, found %zu",
        static_cast<long long>(*count), lines.size() - 2));
  }

  std::vector<double> resem_weights;
  std::vector<double> walk_weights;
  std::vector<std::string> path_names;
  for (int64_t p = 0; p < *count; ++p) {
    const std::string& line = lines[2 + static_cast<size_t>(p)];
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return DataLossError(StrFormat(
          "similarity model: path line %lld has no name separator",
          static_cast<long long>(p)));
    }
    const std::vector<std::string> numbers =
        SplitSkipEmpty(line.substr(0, tab), ' ');
    if (numbers.size() != 2) {
      return DataLossError(StrFormat(
          "similarity model: path line %lld needs two weights",
          static_cast<long long>(p)));
    }
    auto resem = ParseDouble(numbers[0]);
    auto walk = ParseDouble(numbers[1]);
    if (!resem.has_value() || !walk.has_value()) {
      return DataLossError(StrFormat(
          "similarity model: malformed weight on path line %lld",
          static_cast<long long>(p)));
    }
    resem_weights.push_back(*resem);
    walk_weights.push_back(*walk);
    path_names.emplace_back(StripWhitespace(line.substr(tab + 1)));
  }
  if (resem_weights.empty()) {
    return DataLossError("similarity model: zero paths");
  }
  return SimilarityModel(std::move(resem_weights), std::move(walk_weights),
                         std::move(path_names));
}

Status SaveSimilarityModel(const SimilarityModel& model,
                           const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (file == nullptr) {
    return InvalidArgumentError("cannot open '" + path + "' for writing");
  }
  const std::string text = SerializeSimilarityModel(model);
  if (std::fwrite(text.data(), 1, text.size(), file.get()) != text.size()) {
    return DataLossError("short write to '" + path + "'");
  }
  return Status::Ok();
}

StatusOr<SimilarityModel> LoadSimilarityModel(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::string text;
  char buffer[1 << 14];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    text.append(buffer, read);
  }
  return ParseSimilarityModel(text);
}

}  // namespace distinct
