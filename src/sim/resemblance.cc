#include "sim/resemblance.h"

#include <algorithm>

namespace distinct {

double SetResemblance(const NeighborProfile& a, const NeighborProfile& b) {
  if (a.empty() || b.empty()) {
    return 0.0;
  }
  double numerator = 0.0;
  double denominator = 0.0;

  const auto& ea = a.entries();
  const auto& eb = b.entries();
  size_t i = 0;
  size_t j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].tuple < eb[j].tuple) {
      denominator += ea[i].forward;
      ++i;
    } else if (eb[j].tuple < ea[i].tuple) {
      denominator += eb[j].forward;
      ++j;
    } else {
      numerator += std::min(ea[i].forward, eb[j].forward);
      denominator += std::max(ea[i].forward, eb[j].forward);
      ++i;
      ++j;
    }
  }
  for (; i < ea.size(); ++i) {
    denominator += ea[i].forward;
  }
  for (; j < eb.size(); ++j) {
    denominator += eb[j].forward;
  }
  if (denominator <= 0.0) {
    return 0.0;
  }
  return numerator / denominator;
}

}  // namespace distinct
