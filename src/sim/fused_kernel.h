// Fused sparse pair kernel: one merge-join per (pair, path) instead of
// three, plus inverted-index candidate generation and an optional
// mass-bound prune.
//
// The reference pair phase runs three independent sorted merges per
// (pair, path): SetResemblance (§2.3) and both WalkProbability directions
// (§2.4). All three walk the same two sorted tuple sequences, so one pass
// with separate accumulators — advanced in the identical visit order —
// produces bit-identical values while touching each entry once.
//
// Candidate generation exploits the sparsity blocking systems rely on: a
// pair whose profiles share no neighbor tuple on any path has resemblance
// numerator 0 and no walk matches, so every feature — and therefore every
// model-combined similarity — is exactly 0.0, the PairMatrix init value.
// A per-path inverted index tuple -> references yields exactly the pairs
// with at least one shared tuple; everything else is skipped, turning the
// dense quadratic fill into work proportional to actual neighbor overlap.
//
// The mass-bound prune (optional, heuristic) upper-bounds a candidate
// pair's combined similarity from per-profile aggregates alone:
//   Resem_P <= min(m1, m2) / max(m1, m2)         (m = Σ forward)
//   Walk_P(a->b) <= min(mass_a · rmax_b, fmax_a · rsum_b)
// and skips pairs whose combined bound falls below the clusterer's merge
// floor — such a pair can never trigger a singleton merge (merges require
// sim >= min_sim). Zeroing it does perturb Average-Link cluster sums by
// values below the floor, which can shift merges whose cluster-pair
// average sits near min_sim — so the prune is an opt-in approximation,
// never armed by default. DESIGN.md §11 derives the bound, the singleton
// exactness argument, and the counterexample that keeps it opt-in.

#ifndef DISTINCT_SIM_FUSED_KERNEL_H_
#define DISTINCT_SIM_FUSED_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/agglomerative.h"
#include "sim/feature_vector.h"
#include "sim/profile_arena.h"
#include "sim/similarity_model.h"

namespace distinct {

/// One path's pair features out of a single merge-join.
struct FusedPathFeatures {
  double resemblance = 0.0;
  double walk = 0.0;  // symmetric: mean of both directions
};

/// Single-pass resemblance + both walk directions for the pair (i, j) of
/// one path slab. Accumulators advance in the same visit order as the
/// three-pass reference, so each value is bit-identical to
/// SetResemblance / SymmetricWalkProbability on the original profiles.
FusedPathFeatures FusedMergeJoin(const ProfileArena::Path& path, size_t i,
                                 size_t j);

/// All-path features of pair (i, j) — the fused drop-in for
/// ProfileStore::Features / ComputePairFeatures (testing seam).
PairFeatures FusedFeatures(const ProfileArena& arena, size_t i, size_t j);

/// The overlap-sparse candidate pair set: bit b(i, j) is set iff
/// references i and j share at least one neighbor tuple on at least one
/// path. Built from per-path inverted indexes (tuple -> references); cost
/// is proportional to the number of (pair, shared tuple) incidences — the
/// same matches the fused kernel would visit.
class CandidateSet {
 public:
  static CandidateSet Build(const ProfileArena& arena);

  /// Candidate pairs restricted to cells with at least one endpoint marked
  /// in `dirty` (size num_refs). Exactly Build()'s bits on those cells;
  /// clean-clean pairs are never marked. Per tuple group the marking costs
  /// O(dirty_members x members) instead of O(members^2), which is what
  /// makes candidate skipping affordable for the partial refill after a
  /// delta (UpdatePairMatrices) — a full Build over a mega-name costs more
  /// than the joins it saves when only a few rows changed.
  static CandidateSet BuildPartial(const ProfileArena& arena,
                                   const std::vector<char>& dirty);

  /// Whether the strict-lower-triangle pair (i, j), i > j, is a candidate.
  bool contains(size_t i, size_t j) const {
    const size_t bit = i * (i - 1) / 2 + j;
    return (bits_[bit >> 6] >> (bit & 63)) & 1;
  }

  size_t num_refs() const { return num_refs_; }
  /// Candidate pairs out of n(n-1)/2.
  int64_t count() const { return count_; }

 private:
  CandidateSet() = default;

  size_t num_refs_ = 0;
  int64_t count_ = 0;
  std::vector<uint64_t> bits_;
};

/// What the mass-bound prune needs to shape the combined-similarity upper
/// bound like the clusterer's singleton similarity.
struct PrunePolicy {
  double min_sim = 0.0;  // the clusterer's merge floor
  ClusterMeasure measure = ClusterMeasure::kComposite;
  CombineRule combine = CombineRule::kGeometricMean;
};

/// Upper bound on the clusterer's singleton-pair similarity of (i, j)
/// under `policy`, computed from per-profile aggregates only (no entry
/// scan). Negative model weights contribute nothing to the bound (their
/// terms are <= 0 in the true similarity).
double PairSimilarityUpperBound(const ProfileArena& arena,
                                const SimilarityModel& model,
                                const PrunePolicy& policy, size_t i,
                                size_t j);

}  // namespace distinct

#endif  // DISTINCT_SIM_FUSED_KERNEL_H_
