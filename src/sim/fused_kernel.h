// Fused sparse pair kernel: one merge-join per (pair, path) instead of
// three, plus inverted-index candidate generation and an optional
// mass-bound prune.
//
// The reference pair phase runs three independent sorted merges per
// (pair, path): SetResemblance (§2.3) and both WalkProbability directions
// (§2.4). All three walk the same two sorted tuple sequences, so one pass
// with separate accumulators — advanced in the identical visit order —
// produces bit-identical values while touching each entry once.
//
// Candidate generation exploits the sparsity blocking systems rely on: a
// pair whose profiles share no neighbor tuple on any path has resemblance
// numerator 0 and no walk matches, so every feature — and therefore every
// model-combined similarity — is exactly 0.0, the PairMatrix init value.
// A per-path inverted index tuple -> references yields exactly the pairs
// with at least one shared tuple; everything else is skipped, turning the
// dense quadratic fill into work proportional to actual neighbor overlap.
//
// The mass-bound prune (optional, heuristic) upper-bounds a candidate
// pair's combined similarity from per-profile aggregates alone:
//   Resem_P <= min(m1, m2) / max(m1, m2)         (m = Σ forward)
//   Walk_P(a->b) <= min(mass_a · rmax_b, fmax_a · rsum_b)
// and skips pairs whose combined bound falls below the clusterer's merge
// floor — such a pair can never trigger a singleton merge (merges require
// sim >= min_sim). Zeroing it does perturb Average-Link cluster sums by
// values below the floor, which can shift merges whose cluster-pair
// average sits near min_sim — so the prune is an opt-in approximation,
// never armed by default. DESIGN.md §11 derives the bound, the singleton
// exactness argument, and the counterexample that keeps it opt-in.

#ifndef DISTINCT_SIM_FUSED_KERNEL_H_
#define DISTINCT_SIM_FUSED_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/agglomerative.h"
#include "sim/feature_vector.h"
#include "sim/intersect.h"
#include "sim/profile_arena.h"
#include "sim/similarity_model.h"

namespace distinct {

// The merge-join itself (FusedPathFeatures, FusedMergeJoin and its
// gallop/AVX2 siblings, KernelIsa dispatch) lives in sim/intersect.h;
// this header keeps the candidate set and the mass-bound prune.

/// All-path features of pair (i, j) — the fused drop-in for
/// ProfileStore::Features / ComputePairFeatures (testing seam). `isa`
/// picks the merge-join variant; every ISA returns bit-identical values.
PairFeatures FusedFeatures(const ProfileArena& arena, size_t i, size_t j,
                           KernelIsa isa = KernelIsa::kScalar);

/// How CandidateSet::Build marks the pairs of one path: pairwise within
/// tuple groups (cost ~ shared-tuple incidences — right for sparse
/// overlap), or bitset rows with word-parallel OR (cost ~ entries·n/64 +
/// n²/64 — right for dense names, where hub tuples make the per-group
/// pairwise marking quadratic). Both produce the identical bit set; the
/// thresholds only pick which machine fills it.
struct CandidateBuildOptions {
  /// Bitset rows need at least this many references before the word ops
  /// amortize (below it the triangle fits in a handful of words anyway).
  int bitset_min_refs = 64;
  /// Cost-model bias: the grouped marking costs ~ the sum of squared
  /// per-tuple posting counts (pairs within each group), the bitset path
  /// ~ (entries + n) · n/128 word operations — both computable from the
  /// counting pass's histogram before committing to either. The bitset
  /// path is taken when grouped-cost > bitset_cost_factor · bitset-cost;
  /// values above 1.0 bias toward the grouped marking, <= 0 forces the
  /// bitset path wherever bitset_min_refs and the scratch cap allow
  /// (differential tests and the bench pin both machines this way).
  double bitset_cost_factor = 1.0;
  /// Hard cap on the tuple->references bitmap scratch (words); a path
  /// whose distinct-tuple count would blow past it falls back to the
  /// grouped marking regardless of the cost model.
  size_t bitset_max_scratch_words = size_t{1} << 23;  // 64 MiB
};

/// The overlap-sparse candidate pair set: bit b(i, j) is set iff
/// references i and j share at least one neighbor tuple on at least one
/// path. Built from per-path inverted indexes (tuple -> references); cost
/// is proportional to the number of (pair, shared tuple) incidences for
/// sparse paths, or word-parallel for dense ones (CandidateBuildOptions).
class CandidateSet {
 public:
  static CandidateSet Build(const ProfileArena& arena,
                            const CandidateBuildOptions& options = {});

  /// Candidate pairs restricted to cells with at least one endpoint marked
  /// in `dirty` (size num_refs). Exactly Build()'s bits on those cells;
  /// clean-clean pairs are never marked. Per tuple group the marking costs
  /// O(dirty_members x members) instead of O(members^2), which is what
  /// makes candidate skipping affordable for the partial refill after a
  /// delta (UpdatePairMatrices) — a full Build over a mega-name costs more
  /// than the joins it saves when only a few rows changed.
  static CandidateSet BuildPartial(const ProfileArena& arena,
                                   const std::vector<char>& dirty);

  /// Whether the strict-lower-triangle pair (i, j), i > j, is a candidate.
  bool contains(size_t i, size_t j) const {
    const size_t bit = i * (i - 1) / 2 + j;
    return (bits_[bit >> 6] >> (bit & 63)) & 1;
  }

  size_t num_refs() const { return num_refs_; }
  /// Candidate pairs out of n(n-1)/2.
  int64_t count() const { return count_; }

 private:
  CandidateSet() = default;

  size_t num_refs_ = 0;
  int64_t count_ = 0;
  std::vector<uint64_t> bits_;
};

/// What the mass-bound prune needs to shape the combined-similarity upper
/// bound like the clusterer's singleton similarity.
struct PrunePolicy {
  double min_sim = 0.0;  // the clusterer's merge floor
  ClusterMeasure measure = ClusterMeasure::kComposite;
  CombineRule combine = CombineRule::kGeometricMean;
};

/// Upper bound on the clusterer's singleton-pair similarity of (i, j)
/// under `policy`, computed from per-profile aggregates only (no entry
/// scan). Negative model weights contribute nothing to the bound (their
/// terms are <= 0 in the true similarity).
double PairSimilarityUpperBound(const ProfileArena& arena,
                                const SimilarityModel& model,
                                const PrunePolicy& policy, size_t i,
                                size_t j);

}  // namespace distinct

#endif  // DISTINCT_SIM_FUSED_KERNEL_H_
