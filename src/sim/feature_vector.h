// Per-pair feature extraction: one resemblance and one walk-probability
// value per join path.
//
// The extractor owns a profile cache so that resolving a name with n
// references costs n propagations per path plus O(n^2) sparse merges, not
// O(n^2) propagations.

#ifndef DISTINCT_SIM_FEATURE_VECTOR_H_
#define DISTINCT_SIM_FEATURE_VECTOR_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "prop/propagation.h"
#include "prop/workspace.h"
#include "relational/join_path.h"

namespace distinct {

/// Similarities of one reference pair along every join path; the inputs to
/// both the SVM (training) and the similarity model (resolution).
struct PairFeatures {
  std::vector<double> resemblance;  // indexed by path
  std::vector<double> walk;         // indexed by path
};

/// Pair features from two per-path profile vectors (one profile per path,
/// same path order on both sides). Pure function of its inputs; shared by
/// the caching FeatureExtractor and the read-only ProfileStore.
PairFeatures ComputePairFeatures(const std::vector<NeighborProfile>& p1,
                                 const std::vector<NeighborProfile>& p2);

/// Computes and caches per-reference profiles, and derives pair features.
class FeatureExtractor {
 public:
  /// Borrows the engine; `paths` must all start at the reference relation's
  /// node.
  FeatureExtractor(const PropagationEngine& engine,
                   std::vector<JoinPath> paths,
                   PropagationOptions options = {});

  size_t num_paths() const { return paths_.size(); }
  const std::vector<JoinPath>& paths() const { return paths_; }
  const PropagationEngine& engine() const { return *engine_; }
  const PropagationOptions& propagation_options() const { return options_; }

  /// Profiles of `ref` along every path; computed once then cached.
  const std::vector<NeighborProfile>& ProfilesFor(int32_t ref);

  /// Pair features for two references of the same relation.
  PairFeatures Compute(int32_t ref1, int32_t ref2);

  /// Drops all cached profiles (e.g., between names).
  void ClearCache();

  size_t cache_size() const { return cache_.size(); }

 private:
  const PropagationEngine* engine_;
  std::vector<JoinPath> paths_;
  PropagationOptions options_;
  std::unordered_map<int32_t, std::vector<NeighborProfile>> cache_;
  /// Dense scratch for kWorkspace propagation, created on first use. An
  /// extractor is single-threaded, so the workspace is too; it is recycled
  /// across references like the profile cache.
  std::unique_ptr<PropagationWorkspace> workspace_;
};

}  // namespace distinct

#endif  // DISTINCT_SIM_FEATURE_VECTOR_H_
