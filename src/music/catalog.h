// A second domain: the AllMusic-style catalog from the paper's
// introduction ("72 songs and 3 albums named 'Forgotten'").
//
// Schema:
//   Artists(artist_id PK, name, genre)
//   Labels(label_id PK, name, country)
//   Albums(album_id PK, title, artist_id -> Artists, label_id -> Labels,
//          year)
//   Songs(song_id PK, title)        <- one row per distinct TITLE
//   Tracks(track_id PK, song_id -> Songs, album_id -> Albums)
//
// References are Tracks rows; several real songs can share one Songs row
// (the title), and DISTINCT splits a title's tracks by real song using the
// album/artist/label linkage. Exercises the engine's schema-agnosticism
// end to end with generated ground truth.

#ifndef DISTINCT_MUSIC_CATALOG_H_
#define DISTINCT_MUSIC_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "relational/reference_spec.h"

namespace distinct {

inline constexpr char kArtistsTable[] = "Artists";
inline constexpr char kLabelsTable[] = "Labels";
inline constexpr char kAlbumsTable[] = "Albums";
inline constexpr char kSongsTable[] = "Songs";
inline constexpr char kTracksTable[] = "Tracks";

/// An empty database with the five catalog tables.
StatusOr<Database> MakeEmptyMusicDatabase();

/// References are Tracks rows; names live in Songs.title.
ReferenceSpec MusicReferenceSpec();

/// Promotable non-key attributes: Labels.country, Albums.year,
/// Artists.genre.
std::vector<std::pair<std::string, std::string>> MusicDefaultPromotions();

/// One planted ambiguous title: `num_songs` distinct real songs carrying
/// `title`, together appearing on `num_tracks` tracks.
struct AmbiguousTitleSpec {
  std::string title;
  int num_songs = 0;
  int num_tracks = 0;
};

struct MusicConfig {
  uint64_t seed = 42;
  int num_artists = 120;
  int num_labels = 10;
  int num_genres = 8;
  int albums_per_artist = 4;
  int songs_per_artist = 12;
  /// Tracks per regular song (same song on several of its artist's
  /// albums: studio, live, compilation).
  double mean_tracks_per_song = 1.8;
  int start_year = 1990;
  int end_year = 2006;
  /// Planted ambiguous titles; empty means a default "Forgotten" case
  /// (8 songs, 30 tracks) echoing the paper's motivation.
  std::vector<AmbiguousTitleSpec> ambiguous;
};

/// Ground truth for one planted title.
struct MusicCase {
  std::string title;
  int num_songs = 0;
  std::vector<int32_t> track_rows;  // rows of Tracks, parallel to truth
  std::vector<int> truth;           // dense real-song index per track
  std::vector<std::string> song_labels;  // e.g. "Forgotten (Nightfall)"
};

struct MusicDataset {
  Database db;
  std::vector<MusicCase> cases;
};

/// Generates a catalog. Deterministic in `config.seed`.
StatusOr<MusicDataset> GenerateMusicCatalog(const MusicConfig& config);

}  // namespace distinct

#endif  // DISTINCT_MUSIC_CATALOG_H_
