#include "music/catalog.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"
#include "dblp/name_pool.h"

namespace distinct {
namespace {

/// A real song before table construction.
struct Song {
  std::string title;
  int artist = -1;
  int tracks = 1;           // how many albums carry it
  bool is_ambiguous = false;
  int case_index = -1;
  int case_song_index = -1;
};

}  // namespace

StatusOr<Database> MakeEmptyMusicDatabase() {
  Database db;

  auto artists = Table::Create(
      kArtistsTable, {ColumnSpec{"artist_id", ColumnType::kInt64, true, ""},
                      ColumnSpec{"name", ColumnType::kString, false, ""},
                      ColumnSpec{"genre", ColumnType::kString, false, ""}});
  DISTINCT_RETURN_IF_ERROR(artists.status());
  auto labels = Table::Create(
      kLabelsTable, {ColumnSpec{"label_id", ColumnType::kInt64, true, ""},
                     ColumnSpec{"name", ColumnType::kString, false, ""},
                     ColumnSpec{"country", ColumnType::kString, false, ""}});
  DISTINCT_RETURN_IF_ERROR(labels.status());
  auto albums = Table::Create(
      kAlbumsTable,
      {ColumnSpec{"album_id", ColumnType::kInt64, true, ""},
       ColumnSpec{"title", ColumnType::kString, false, ""},
       ColumnSpec{"artist_id", ColumnType::kInt64, false, kArtistsTable},
       ColumnSpec{"label_id", ColumnType::kInt64, false, kLabelsTable},
       ColumnSpec{"year", ColumnType::kInt64, false, ""}});
  DISTINCT_RETURN_IF_ERROR(albums.status());
  auto songs = Table::Create(
      kSongsTable, {ColumnSpec{"song_id", ColumnType::kInt64, true, ""},
                    ColumnSpec{"title", ColumnType::kString, false, ""}});
  DISTINCT_RETURN_IF_ERROR(songs.status());
  auto tracks = Table::Create(
      kTracksTable,
      {ColumnSpec{"track_id", ColumnType::kInt64, true, ""},
       ColumnSpec{"song_id", ColumnType::kInt64, false, kSongsTable},
       ColumnSpec{"album_id", ColumnType::kInt64, false, kAlbumsTable}});
  DISTINCT_RETURN_IF_ERROR(tracks.status());

  for (auto* table : {&artists, &labels, &albums, &songs, &tracks}) {
    DISTINCT_RETURN_IF_ERROR(db.AddTable(*std::move(*table)).status());
  }
  return db;
}

ReferenceSpec MusicReferenceSpec() {
  ReferenceSpec spec;
  spec.reference_table = kTracksTable;
  spec.identity_column = "song_id";
  spec.name_table = kSongsTable;
  spec.name_column = "title";
  return spec;
}

std::vector<std::pair<std::string, std::string>> MusicDefaultPromotions() {
  return {
      {kLabelsTable, "country"},
      {kAlbumsTable, "year"},
      {kArtistsTable, "genre"},
  };
}

StatusOr<MusicDataset> GenerateMusicCatalog(const MusicConfig& config) {
  if (config.num_artists < 1 || config.num_labels < 1 ||
      config.albums_per_artist < 1) {
    return InvalidArgumentError("music generator: degenerate config");
  }
  const std::vector<AmbiguousTitleSpec> specs =
      config.ambiguous.empty()
          ? std::vector<AmbiguousTitleSpec>{{"Forgotten", 8, 30}}
          : config.ambiguous;
  for (const AmbiguousTitleSpec& spec : specs) {
    if (spec.num_songs < 1 || spec.num_tracks < spec.num_songs) {
      return InvalidArgumentError("music generator: ambiguous title '" +
                                  spec.title +
                                  "' needs tracks >= songs >= 1");
    }
    if (spec.num_songs > config.num_artists) {
      return InvalidArgumentError(
          "music generator: more ambiguous songs than artists");
    }
  }

  Rng rng(config.seed);
  auto db_or = MakeEmptyMusicDatabase();
  DISTINCT_RETURN_IF_ERROR(db_or.status());
  Database db = *std::move(db_or);

  Table* artists = *db.FindMutableTable(kArtistsTable);
  Table* labels = *db.FindMutableTable(kLabelsTable);
  Table* albums = *db.FindMutableTable(kAlbumsTable);
  Table* songs_table = *db.FindMutableTable(kSongsTable);
  Table* tracks = *db.FindMutableTable(kTracksTable);

  // Labels and artists. Every artist signs with one label and one genre.
  for (int l = 0; l < config.num_labels; ++l) {
    DISTINCT_RETURN_IF_ERROR(
        labels
            ->AppendRow({Value::Int(l), Value::Str(StrFormat("Label%02d", l)),
                         Value::Str(StrFormat(
                             "Country%d",
                             static_cast<int>(rng.UniformInt(1, 12))))})
            .status());
  }
  std::vector<int> label_of_artist(static_cast<size_t>(config.num_artists));
  for (int a = 0; a < config.num_artists; ++a) {
    label_of_artist[static_cast<size_t>(a)] =
        static_cast<int>(rng.UniformInt(0, config.num_labels - 1));
    DISTINCT_RETURN_IF_ERROR(
        artists
            ->AppendRow(
                {Value::Int(a),
                 Value::Str(NamePool::InstitutionName(
                     static_cast<size_t>(a) + 1000)),
                 Value::Str(StrFormat(
                     "Genre%d",
                     static_cast<int>(rng.UniformInt(
                         1, std::max(config.num_genres, 1)))))})
            .status());
  }

  // Albums: each artist releases albums_per_artist records on its label.
  std::vector<std::vector<int64_t>> albums_of_artist(
      static_cast<size_t>(config.num_artists));
  int64_t next_album = 0;
  for (int a = 0; a < config.num_artists; ++a) {
    for (int r = 0; r < config.albums_per_artist; ++r) {
      const int64_t year = rng.UniformInt(config.start_year,
                                          config.end_year);
      DISTINCT_RETURN_IF_ERROR(
          albums
              ->AppendRow({Value::Int(next_album),
                           Value::Str(StrFormat("Album %lld",
                                                static_cast<long long>(
                                                    next_album))),
                           Value::Int(a),
                           Value::Int(label_of_artist[static_cast<size_t>(a)]),
                           Value::Int(year)})
              .status());
      albums_of_artist[static_cast<size_t>(a)].push_back(next_album);
      ++next_album;
    }
  }

  // Songs: regular ones (unique titles) plus planted ambiguous titles.
  std::vector<Song> songs;
  for (int a = 0; a < config.num_artists; ++a) {
    for (int s = 0; s < config.songs_per_artist; ++s) {
      Song song;
      song.title = StrFormat("Song %d-%d", a, s);
      song.artist = a;
      song.tracks = 1 + rng.Poisson(std::max(
                            0.1, config.mean_tracks_per_song - 1.0));
      songs.push_back(std::move(song));
    }
  }
  std::vector<MusicCase> cases(specs.size());
  for (size_t c = 0; c < specs.size(); ++c) {
    const AmbiguousTitleSpec& spec = specs[c];
    cases[c].title = spec.title;
    cases[c].num_songs = spec.num_songs;
    // Distinct artists for the planted songs.
    const std::vector<size_t> chosen = rng.SampleWithoutReplacement(
        static_cast<size_t>(config.num_artists),
        static_cast<size_t>(spec.num_songs));
    int remaining = spec.num_tracks;
    for (int s = 0; s < spec.num_songs; ++s) {
      Song song;
      song.title = spec.title;
      song.artist = static_cast<int>(chosen[static_cast<size_t>(s)]);
      const int left = spec.num_songs - s - 1;
      const int max_here = remaining - left;  // leave >= 1 per later song
      song.tracks = (s == spec.num_songs - 1)
                        ? remaining
                        : 1 + static_cast<int>(rng.UniformInt(
                                  0, std::max(0, std::min(max_here - 1,
                                                          2 * spec.num_tracks /
                                                              spec.num_songs))));
      remaining -= song.tracks;
      song.is_ambiguous = true;
      song.case_index = static_cast<int>(c);
      song.case_song_index = s;
      cases[c].song_labels.push_back(
          spec.title + " (" +
          NamePool::InstitutionName(static_cast<size_t>(song.artist) + 1000) +
          ")");
      songs.push_back(std::move(song));
    }
  }

  // Tables: one Songs row per distinct title (the ambiguity), then tracks.
  Dictionary title_ids;
  std::vector<int64_t> song_row_of(songs.size());
  for (size_t s = 0; s < songs.size(); ++s) {
    const int64_t before = title_ids.size();
    const int64_t title_id = title_ids.Intern(songs[s].title);
    if (title_id == before) {
      DISTINCT_RETURN_IF_ERROR(
          songs_table
              ->AppendRow({Value::Int(title_id), Value::Str(songs[s].title)})
              .status());
    }
    song_row_of[s] = title_id;
  }

  int64_t next_track = 0;
  for (size_t s = 0; s < songs.size(); ++s) {
    const Song& song = songs[s];
    const auto& own_albums = albums_of_artist[static_cast<size_t>(song.artist)];
    for (int t = 0; t < song.tracks; ++t) {
      const int64_t album = own_albums[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(own_albums.size()) - 1))];
      DISTINCT_RETURN_IF_ERROR(
          tracks
              ->AppendRow({Value::Int(next_track),
                           Value::Int(song_row_of[s]), Value::Int(album)})
              .status());
      if (song.is_ambiguous) {
        MusicCase& c = cases[static_cast<size_t>(song.case_index)];
        c.track_rows.push_back(static_cast<int32_t>(next_track));
        c.truth.push_back(song.case_song_index);
      }
      ++next_track;
    }
  }

  MusicDataset dataset;
  dataset.db = std::move(db);
  dataset.cases = std::move(cases);
  return dataset;
}

}  // namespace distinct
