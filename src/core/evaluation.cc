#include "core/evaluation.h"

namespace distinct {

StatusOr<CaseEvaluation> EvaluateCase(Distinct& engine,
                                      const AmbiguousCase& c) {
  auto clustering = engine.ResolveRefs(c.publish_rows);
  DISTINCT_RETURN_IF_ERROR(clustering.status());
  CaseEvaluation evaluation;
  evaluation.name = c.name;
  evaluation.num_entities = c.num_entities;
  evaluation.num_refs = c.publish_rows.size();
  evaluation.scores =
      PairwisePrecisionRecall(c.truth, clustering->assignment);
  evaluation.clustering = *std::move(clustering);
  return evaluation;
}

StatusOr<std::vector<CaseEvaluation>> EvaluateCases(
    Distinct& engine, const std::vector<AmbiguousCase>& cases) {
  std::vector<CaseEvaluation> evaluations;
  evaluations.reserve(cases.size());
  for (const AmbiguousCase& c : cases) {
    auto evaluation = EvaluateCase(engine, c);
    DISTINCT_RETURN_IF_ERROR(evaluation.status());
    evaluations.push_back(*std::move(evaluation));
  }
  return evaluations;
}

AggregateScores Aggregate(const std::vector<CaseEvaluation>& evaluations) {
  AggregateScores aggregate;
  if (evaluations.empty()) {
    return aggregate;
  }
  for (const CaseEvaluation& evaluation : evaluations) {
    aggregate.precision += evaluation.scores.precision;
    aggregate.recall += evaluation.scores.recall;
    aggregate.f1 += evaluation.scores.f1;
    aggregate.accuracy += evaluation.scores.accuracy;
  }
  const double n = static_cast<double>(evaluations.size());
  aggregate.precision /= n;
  aggregate.recall /= n;
  aggregate.f1 /= n;
  aggregate.accuracy /= n;
  return aggregate;
}

StatusOr<std::vector<CaseMatrices>> ComputeCaseMatrices(
    Distinct& engine, const std::vector<AmbiguousCase>& cases) {
  std::vector<CaseMatrices> matrices;
  matrices.reserve(cases.size());
  for (const AmbiguousCase& c : cases) {
    auto pair = engine.ComputeMatrices(c.publish_rows);
    DISTINCT_RETURN_IF_ERROR(pair.status());
    CaseMatrices m;
    m.ambiguous_case = &c;
    m.resem = std::move(pair->first);
    m.walk = std::move(pair->second);
    matrices.push_back(std::move(m));
  }
  return matrices;
}

std::vector<CaseEvaluation> EvaluateWithOptions(
    const std::vector<CaseMatrices>& matrices,
    const AgglomerativeOptions& options) {
  std::vector<CaseEvaluation> evaluations;
  evaluations.reserve(matrices.size());
  for (const CaseMatrices& m : matrices) {
    CaseEvaluation evaluation;
    evaluation.name = m.ambiguous_case->name;
    evaluation.num_entities = m.ambiguous_case->num_entities;
    evaluation.num_refs = m.ambiguous_case->publish_rows.size();
    evaluation.clustering = ClusterReferences(m.resem, m.walk, options);
    evaluation.scores = PairwisePrecisionRecall(
        m.ambiguous_case->truth, evaluation.clustering.assignment);
    evaluations.push_back(std::move(evaluation));
  }
  return evaluations;
}

double BestMinSim(const std::vector<CaseMatrices>& matrices,
                  AgglomerativeOptions options,
                  const std::vector<double>& grid) {
  double best_min_sim = options.min_sim;
  double best_f1 = -1.0;
  for (const double min_sim : grid) {
    options.min_sim = min_sim;
    const AggregateScores aggregate =
        Aggregate(EvaluateWithOptions(matrices, options));
    if (aggregate.f1 > best_f1) {
      best_f1 = aggregate.f1;
      best_min_sim = min_sim;
    }
  }
  return best_min_sim;
}

std::vector<double> DefaultMinSimGrid() {
  std::vector<double> grid;
  // Log-spaced from 1e-5 to ~0.7 with six points per decade.
  for (double base = 1e-5; base < 0.2; base *= 10.0) {
    for (const double step : {1.0, 1.5, 2.0, 3.0, 5.0, 7.0}) {
      grid.push_back(base * step);
    }
  }
  return grid;
}

}  // namespace distinct
