#include "core/scan_shard.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "sim/parallel_kernel.h"
#include "sim/profile_store.h"

namespace distinct {

int64_t EstimatedGroupMatrixBytes(int64_t n) {
  return n * (n - 1) * static_cast<int64_t>(sizeof(double)) +
         2 * n * static_cast<int64_t>(sizeof(int));
}

namespace {

/// What the per-shard memory budget affords.
struct ShardBudget {
  int threads = 1;
  size_t cache_bytes = 0;    // SubtreeCache capacity (dense engine only)
  int64_t budget_bytes = 0;  // 0 = unbounded
};

ShardBudget ComputeShardBudget(const Distinct& engine,
                               const ShardedScanOptions& options) {
  const DistinctConfig& config = engine.config();
  const bool dense =
      config.propagation.algorithm == PropagationAlgorithm::kWorkspace;
  ShardBudget budget;
  budget.threads = std::max(1, options.num_threads);
  const int64_t mb = options.memory_budget_mb > 0 ? options.memory_budget_mb
                                                  : config.scan_memory_mb;
  if (mb <= 0) {
    budget.cache_bytes = dense ? config.propagation.cache_bytes : 0;
    return budget;
  }
  budget.budget_bytes = mb << 20;
  if (dense) {
    // A quarter of the budget for the subtree memo (never more than the
    // configured cache), the rest for dense scratch: one workspace per
    // concurrent worker, so the workspace allowance caps the thread count.
    budget.cache_bytes =
        std::min(config.propagation.cache_bytes,
                 static_cast<size_t>(budget.budget_bytes / 4));
    const size_t workspace_bytes =
        std::max<size_t>(ApproxWorkspaceBytes(engine.propagation_engine().link()), 1);
    const int64_t affordable = static_cast<int64_t>(
        (static_cast<size_t>(budget.budget_bytes) - budget.cache_bytes) /
        workspace_bytes);
    budget.threads = static_cast<int>(std::clamp<int64_t>(
        affordable, 1, static_cast<int64_t>(budget.threads)));
  }
  return budget;
}

/// Resolves the groups at `indices` with the existing parallel kernel —
/// same per-group body as ResolveAllNamesParallel, so the resolutions are
/// bit-identical to the unsharded scan's. `out` is parallel to `indices`.
Status ResolveShardGroups(const Distinct& engine,
                          const std::vector<NameGroup>& groups,
                          const std::vector<size_t>& indices,
                          const ShardBudget& budget,
                          obs::ProgressState* progress,
                          std::vector<BulkResolution>* out) {
  const bool dense = engine.config().propagation.algorithm ==
                     PropagationAlgorithm::kWorkspace;

  // Up-front validation so a bad group fails the shard cleanly instead of
  // crashing a worker mid-kernel.
  const std::vector<JoinPath>& paths = engine.paths();
  const int64_t num_start_tuples =
      paths.empty() ? 0
                    : engine.propagation_engine().link().NumTuples(
                          paths.front().start_node);
  // Admission is measured, not just estimated: bytes the tracked
  // subsystems already hold (engine-level memo entries, arenas from prior
  // work) count against the budget alongside the group's matrix estimate.
  const int64_t standing_bytes =
      obs::MemoryTracker::Global().TrackedTotalBytes();
  for (const size_t g : indices) {
    const NameGroup& group = groups[g];
    for (const int32_t ref : group.refs) {
      if (!paths.empty() && (ref < 0 || ref >= num_start_tuples)) {
        return InvalidArgumentError(StrFormat(
            "group '%s' has out-of-range reference %d (universe %lld)",
            group.name.c_str(), ref,
            static_cast<long long>(num_start_tuples)));
      }
    }
    if (budget.budget_bytes > 0) {
      const int64_t matrix_bytes =
          EstimatedGroupMatrixBytes(static_cast<int64_t>(group.refs.size()));
      if (standing_bytes + matrix_bytes > budget.budget_bytes) {
        return OutOfRangeError(StrFormat(
            "group '%s' (%zu refs) needs ~%lld bytes of pair matrices on "
            "top of %lld measured resident bytes, over the %lld-byte shard "
            "budget",
            group.name.c_str(), group.refs.size(),
            static_cast<long long>(matrix_bytes),
            static_cast<long long>(standing_bytes),
            static_cast<long long>(budget.budget_bytes)));
      }
    }
  }

  // Shard-local memo and workspace pool: the memo is capped by the budget
  // carve-out, the pool by the (budget-capped) worker count. Hit/miss and
  // reuse patterns cannot change values — only speed — so per-shard caches
  // keep the output identical to the scan-wide ones.
  std::unique_ptr<SubtreeCache> memo;
  std::unique_ptr<WorkspacePool> workspaces;
  if (dense) {
    memo = std::make_unique<SubtreeCache>(budget.cache_bytes);
    workspaces =
        std::make_unique<WorkspacePool>(engine.propagation_engine().link());
  }

  out->assign(indices.size(), BulkResolution{});
  {
    ThreadPool pool(budget.threads);
    const SimilarityModel& model = engine.model();
    const AgglomerativeOptions cluster_options = engine.cluster_options();
    const PairKernelOptions kernel =
        engine.kernel_options(/*for_clustering=*/true);
    ParallelFor(pool, static_cast<int64_t>(indices.size()), [&](int64_t i) {
      const NameGroup& group = groups[indices[static_cast<size_t>(i)]];
      const ProfileStore store = ProfileStore::Build(
          engine.propagation_engine(), paths, engine.config().propagation,
          group.refs, &pool, ProfileStore::kMinParallelRefs, memo.get(),
          workspaces.get());
      auto matrices = ComputePairMatrices(store, model, &pool, kernel);
      BulkResolution& resolution = (*out)[static_cast<size_t>(i)];
      resolution.name = group.name;
      resolution.num_refs = group.refs.size();
      resolution.clustering = ClusterReferences(
          matrices.first, matrices.second, cluster_options);
      if (progress != nullptr) {
        progress->groups_done.fetch_add(1, std::memory_order_relaxed);
        progress->refs_done.fetch_add(
            static_cast<int64_t>(group.refs.size()),
            std::memory_order_relaxed);
      }
    });
  }
  return Status::Ok();
}

/// Checks a loaded checkpoint against the current plan; resuming against a
/// different dataset or shard layout must fail loudly, not recompute.
Status ValidateCheckpointAgainstPlan(const Distinct& engine,
                                     const ShardCheckpoint& checkpoint,
                                     const std::vector<NameGroup>& groups,
                                     const ShardPlan& plan, int shard_id) {
  if (checkpoint.catalog_version != engine.catalog_version() ||
      checkpoint.tuple_watermark != engine.tuple_watermark()) {
    return FailedPreconditionError(StrFormat(
        "checkpoint for shard %d is stale: it was written at catalog "
        "version %lld / %lld tuples, the engine is at version %lld / %lld "
        "tuples — rows were appended (ApplyDelta) since the checkpoint; "
        "re-run the scan without --resume",
        shard_id, static_cast<long long>(checkpoint.catalog_version),
        static_cast<long long>(checkpoint.tuple_watermark),
        static_cast<long long>(engine.catalog_version()),
        static_cast<long long>(engine.tuple_watermark())));
  }
  if (checkpoint.num_shards != plan.num_shards() ||
      checkpoint.group_indices != plan.shards[static_cast<size_t>(shard_id)]) {
    return FailedPreconditionError(StrFormat(
        "checkpoint for shard %d was written for a different shard plan "
        "(checkpoint: %d shards, %zu groups; current: %d shards, %zu "
        "groups)",
        shard_id, checkpoint.num_shards, checkpoint.group_indices.size(),
        plan.num_shards(),
        plan.shards[static_cast<size_t>(shard_id)].size()));
  }
  for (size_t g = 0; g < checkpoint.group_indices.size(); ++g) {
    const NameGroup& group = groups[checkpoint.group_indices[g]];
    const BulkResolution& resolution = checkpoint.results[g];
    if (resolution.name != group.name ||
        resolution.num_refs != group.refs.size()) {
      return FailedPreconditionError(StrFormat(
          "checkpoint for shard %d resolves '%s' (%zu refs) where the "
          "current scan has '%s' (%zu refs) — wrong dataset?",
          shard_id, resolution.name.c_str(), resolution.num_refs,
          group.name.c_str(), group.refs.size()));
    }
  }
  return Status::Ok();
}

void AccumulateStats(const BulkResolution& resolution, BulkStats* stats) {
  ++stats->names_resolved;
  stats->total_refs += static_cast<int64_t>(resolution.num_refs);
  stats->total_clusters += resolution.clustering.num_clusters;
  if (resolution.clustering.num_clusters > 1) {
    ++stats->names_split;
  }
}

}  // namespace

int64_t EstimatedPairs(const NameGroup& group) {
  const int64_t n = static_cast<int64_t>(group.refs.size());
  return n * (n - 1) / 2;
}

ShardPlan PlanShards(const std::vector<NameGroup>& groups, int num_shards) {
  ShardPlan plan;
  const size_t shards = static_cast<size_t>(std::max(1, num_shards));
  plan.shards.resize(shards);
  plan.estimated_pairs.assign(shards, 0);
  // Longest-processing-time greedy. Scan groups arrive sorted by
  // descending size, so the heaviest groups are placed first and the
  // lighter tail evens the loads out. Each group goes to the currently
  // lightest shard (ties to the lowest id) — deterministic, so resume can
  // re-derive the identical plan from the same groups.
  for (size_t g = 0; g < groups.size(); ++g) {
    size_t lightest = 0;
    for (size_t s = 1; s < shards; ++s) {
      if (plan.estimated_pairs[s] < plan.estimated_pairs[lightest]) {
        lightest = s;
      }
    }
    plan.shards[lightest].push_back(g);
    // Even a 1-ref group (0 pairs) costs a profile build; weigh it at
    // least 1 so pairless groups still spread across shards.
    plan.estimated_pairs[lightest] +=
        std::max<int64_t>(EstimatedPairs(groups[g]), 1);
  }
  return plan;
}

const char* ShardStateName(ShardState state) {
  switch (state) {
    case ShardState::kCompleted:
      return "completed";
    case ShardState::kResumed:
      return "resumed";
    case ShardState::kFailed:
      return "failed";
  }
  return "unknown";
}

StatusOr<ShardedScanResult> RunShardedScan(
    const Distinct& engine, const std::vector<NameGroup>& groups,
    const ShardedScanOptions& options) {
  if (options.num_shards < 1) {
    return InvalidArgumentError(
        StrFormat("num_shards must be >= 1, got %d", options.num_shards));
  }
  if (options.resume && options.checkpoint_dir.empty()) {
    return InvalidArgumentError("resume requires a checkpoint directory");
  }

  Stopwatch watch;
  DISTINCT_TRACE_SPAN("sharded_scan");
  if (!options.checkpoint_dir.empty()) {
    // Drop tmp files a killed writer left behind before any reads/writes.
    const int64_t removed =
        CleanupCheckpointTmpFiles(options.checkpoint_dir);
    if (removed > 0) {
      DISTINCT_LOG(INFO) << "scan: removed " << removed
                         << " orphaned checkpoint tmp file(s) from "
                         << options.checkpoint_dir;
    }
  }
  const ShardPlan plan = PlanShards(groups, options.num_shards);
  const ShardBudget budget = ComputeShardBudget(engine, options);
  DISTINCT_COUNTER_ADD("scan.shards_planned", plan.num_shards());
  DISTINCT_LOG(INFO) << "scan: " << groups.size() << " groups over "
                     << plan.num_shards() << " shards, "
                     << budget.threads << " threads/shard"
                     << (budget.budget_bytes > 0
                             ? StrFormat(", %lld MiB budget/shard",
                                         static_cast<long long>(
                                             budget.budget_bytes >> 20))
                             : std::string());

  if (options.progress != nullptr) {
    int64_t total_refs = 0;
    for (const NameGroup& group : groups) {
      total_refs += static_cast<int64_t>(group.refs.size());
    }
    options.progress->shards_total.store(plan.num_shards(),
                                         std::memory_order_relaxed);
    options.progress->groups_total.store(
        static_cast<int64_t>(groups.size()), std::memory_order_relaxed);
    options.progress->refs_total.store(total_refs,
                                       std::memory_order_relaxed);
  }
  const bool write_fragments = options.write_trace_fragments &&
                               !options.checkpoint_dir.empty() &&
                               obs::Enabled();

  ShardedScanResult result;
  result.shards.reserve(static_cast<size_t>(plan.num_shards()));
  // Resolutions keyed by planned group index; merged in order at the end.
  std::vector<std::optional<BulkResolution>> by_group(groups.size());

  for (int s = 0; s < plan.num_shards(); ++s) {
    const std::vector<size_t>& indices =
        plan.shards[static_cast<size_t>(s)];
    ShardOutcome outcome;
    outcome.shard_id = s;
    outcome.num_groups = static_cast<int64_t>(indices.size());
    outcome.estimated_pairs =
        plan.estimated_pairs[static_cast<size_t>(s)];
    outcome.threads_used = budget.threads;
    for (const size_t g : indices) {
      outcome.num_refs += static_cast<int64_t>(groups[g].refs.size());
    }
    Stopwatch shard_watch;

    if (options.resume &&
        ShardCheckpointComplete(options.checkpoint_dir, s)) {
      auto checkpoint = ReadShardCheckpoint(options.checkpoint_dir, s);
      DISTINCT_RETURN_IF_ERROR(checkpoint.status());
      DISTINCT_RETURN_IF_ERROR(
          ValidateCheckpointAgainstPlan(engine, *checkpoint, groups, plan, s));
      for (size_t g = 0; g < checkpoint->group_indices.size(); ++g) {
        by_group[checkpoint->group_indices[g]] =
            std::move(checkpoint->results[g]);
      }
      outcome.state = ShardState::kResumed;
      outcome.seconds = shard_watch.Seconds();
      DISTINCT_COUNTER_ADD("scan.shards_resumed", 1);
      DISTINCT_LOG(INFO) << "scan: shard " << s << " resumed from "
                         << ShardCheckpointPath(options.checkpoint_dir, s);
      if (options.progress != nullptr) {
        // A resumed shard's groups were produced by the previous process;
        // count them done wholesale (its fragment, if any, is kept as-is).
        options.progress->shards_done.fetch_add(1,
                                                std::memory_order_relaxed);
        options.progress->groups_done.fetch_add(outcome.num_groups,
                                                std::memory_order_relaxed);
        options.progress->refs_done.fetch_add(outcome.num_refs,
                                              std::memory_order_relaxed);
      }
      result.shards.push_back(std::move(outcome));
      continue;
    }

    // Spans recorded from here on belong to this shard's trace fragment.
    const size_t span_base =
        write_fragments ? obs::Tracer::Global().Snapshot().size() : 0;
    std::vector<BulkResolution> shard_results;
    Status shard_status = [&] {
      DISTINCT_TRACE_SPAN("scan_shard");
      return ResolveShardGroups(engine, groups, indices, budget,
                                options.progress, &shard_results);
    }();
    if (shard_status.ok() && !options.checkpoint_dir.empty()) {
      ShardCheckpoint checkpoint;
      checkpoint.shard_id = s;
      checkpoint.num_shards = plan.num_shards();
      checkpoint.catalog_version = engine.catalog_version();
      checkpoint.tuple_watermark = engine.tuple_watermark();
      checkpoint.group_indices = indices;
      checkpoint.results = shard_results;
      shard_status =
          WriteShardCheckpoint(options.checkpoint_dir, checkpoint);
    }

    outcome.seconds = shard_watch.Seconds();
    if (!shard_status.ok()) {
      // Graceful degradation: record the error, skip the shard's groups,
      // keep scanning. The shard table and scan.shards_failed make the
      // gap visible instead of the whole run aborting.
      outcome.state = ShardState::kFailed;
      outcome.error = shard_status.ToString();
      DISTINCT_COUNTER_ADD("scan.shards_failed", 1);
      DISTINCT_LOG(WARN) << "scan: shard " << s
                         << " failed and was skipped: " << outcome.error;
    } else {
      for (size_t g = 0; g < indices.size(); ++g) {
        by_group[indices[g]] = std::move(shard_results[g]);
      }
      outcome.state = ShardState::kCompleted;
      DISTINCT_COUNTER_ADD("scan.shards_completed", 1);
      DISTINCT_HISTOGRAM_RECORD(
          "scan.shard_nanos",
          static_cast<int64_t>(outcome.seconds * 1e9));
    }
    if (write_fragments) {
      // Re-root this shard's spans so the fragment stands alone: parents
      // outside the shard's slice (the open sharded_scan span) become
      // roots. Fragments are advisory — a write failure is logged, never
      // fails the shard.
      std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Snapshot();
      std::vector<obs::SpanRecord> shard_spans(
          spans.begin() + static_cast<ptrdiff_t>(
                              std::min(span_base, spans.size())),
          spans.end());
      for (obs::SpanRecord& span : shard_spans) {
        span.parent = span.parent >= static_cast<int>(span_base)
                          ? span.parent - static_cast<int>(span_base)
                          : -1;
      }
      const Status written = obs::WriteTraceFragment(
          obs::TraceFragmentPath(options.checkpoint_dir, s), shard_spans);
      if (!written.ok()) {
        DISTINCT_LOG(WARN) << "scan: shard " << s
                           << " trace fragment not written: "
                           << written.ToString();
      }
    }
    if (options.progress != nullptr) {
      // Failed shards count as done shards (they will not run again) but
      // their groups stay pending-forever — the gap is the signal.
      options.progress->shards_done.fetch_add(1, std::memory_order_relaxed);
    }
    result.shards.push_back(std::move(outcome));
  }

  for (std::optional<BulkResolution>& resolution : by_group) {
    if (!resolution.has_value()) {
      continue;
    }
    AccumulateStats(*resolution, &result.stats);
    result.results.push_back(*std::move(resolution));
  }
  result.stats.seconds = watch.Seconds();
  DISTINCT_COUNTER_ADD("scan.names_resolved", result.stats.names_resolved);
  DISTINCT_COUNTER_ADD("scan.names_split", result.stats.names_split);
  DISTINCT_COUNTER_ADD("scan.refs_resolved", result.stats.total_refs);
  DISTINCT_LOG(INFO) << "scan: resolved " << result.stats.names_resolved
                     << " names (" << result.stats.names_split
                     << " split) across " << plan.num_shards()
                     << " shards in " << result.stats.seconds << "s";
  return result;
}

}  // namespace distinct
