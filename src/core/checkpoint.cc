#include "core/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/io_util.h"
#include "common/string_util.h"
#include "obs/json_reader.h"
#include "obs/json_writer.h"
#include "obs/memory.h"
#include "obs/metrics.h"

namespace distinct {

namespace {

// ---------------------------------------------------------------------------
// Durable file I/O is the shared common/io_util.h helper set (data fsync'd
// before rename, directory fsync'd after, marker last): every call passes
// "checkpoint" as the context so messages keep naming the subsystem.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// JSON parsing is the shared obs::JsonReader (obs/json_reader.h), which
// keeps the int64-exact / %.17g round-trip guarantees checkpoints rely on.
// ---------------------------------------------------------------------------

using obs::JsonReader;
using obs::JsonValue;

constexpr char kJsonContext[] = "checkpoint JSON";

StatusOr<int64_t> RequireInt(const JsonValue& object, const char* key) {
  return obs::RequireInt(object, key, kJsonContext);
}

// ---------------------------------------------------------------------------
// Checkpoint (de)serialization.
// ---------------------------------------------------------------------------

constexpr char kVersionKey[] = "distinct_shard_checkpoint";

std::string CheckpointToJson(const ShardCheckpoint& checkpoint) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key(kVersionKey).Value(ShardCheckpoint::kFormatVersion);
  json.Key("shard_id").Value(checkpoint.shard_id);
  json.Key("num_shards").Value(checkpoint.num_shards);
  json.Key("catalog_version").Value(checkpoint.catalog_version);
  json.Key("tuple_watermark").Value(checkpoint.tuple_watermark);
  json.Key("groups").BeginArray();
  for (size_t g = 0; g < checkpoint.results.size(); ++g) {
    const BulkResolution& resolution = checkpoint.results[g];
    json.BeginObject();
    json.Key("index").Value(
        static_cast<int64_t>(checkpoint.group_indices[g]));
    json.Key("name").Value(resolution.name);
    json.Key("num_refs").Value(static_cast<int64_t>(resolution.num_refs));
    json.Key("num_clusters").Value(resolution.clustering.num_clusters);
    json.Key("assignment").BeginArray();
    for (const int cluster : resolution.clustering.assignment) {
      json.Value(cluster);
    }
    json.EndArray();
    // Merges as [into, from, similarity] triples; %.17g round-trips the
    // similarity bit-exactly, which is what makes resume byte-identical.
    json.Key("merges").BeginArray();
    for (const MergeStep& merge : resolution.clustering.merges) {
      json.BeginArray();
      json.Value(merge.into);
      json.Value(merge.from);
      json.Value(merge.similarity);
      json.EndArray();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

StatusOr<ShardCheckpoint> CheckpointFromJson(const std::string& text,
                                             int expected_shard_id) {
  auto root = JsonReader(text, kJsonContext).Parse();
  DISTINCT_RETURN_IF_ERROR(root.status());
  if (root->kind != JsonValue::Kind::kObject) {
    return DataLossError("checkpoint JSON: top level is not an object");
  }

  auto version = RequireInt(*root, kVersionKey);
  DISTINCT_RETURN_IF_ERROR(version.status());
  if (*version != ShardCheckpoint::kFormatVersion) {
    return FailedPreconditionError(StrFormat(
        "checkpoint format version %lld, this build reads version %d",
        static_cast<long long>(*version), ShardCheckpoint::kFormatVersion));
  }

  ShardCheckpoint checkpoint;
  auto shard_id = RequireInt(*root, "shard_id");
  DISTINCT_RETURN_IF_ERROR(shard_id.status());
  auto num_shards = RequireInt(*root, "num_shards");
  DISTINCT_RETURN_IF_ERROR(num_shards.status());
  checkpoint.shard_id = static_cast<int>(*shard_id);
  checkpoint.num_shards = static_cast<int>(*num_shards);
  auto catalog_version = RequireInt(*root, "catalog_version");
  DISTINCT_RETURN_IF_ERROR(catalog_version.status());
  auto tuple_watermark = RequireInt(*root, "tuple_watermark");
  DISTINCT_RETURN_IF_ERROR(tuple_watermark.status());
  checkpoint.catalog_version = *catalog_version;
  checkpoint.tuple_watermark = *tuple_watermark;
  if (checkpoint.shard_id != expected_shard_id) {
    return DataLossError(StrFormat(
        "checkpoint names shard %d, expected shard %d", checkpoint.shard_id,
        expected_shard_id));
  }

  const JsonValue* groups = root->Find("groups");
  if (groups == nullptr || groups->kind != JsonValue::Kind::kArray) {
    return DataLossError("checkpoint JSON: missing 'groups' array");
  }
  for (const JsonValue& group : groups->items) {
    if (group.kind != JsonValue::Kind::kObject) {
      return DataLossError("checkpoint JSON: group is not an object");
    }
    auto index = RequireInt(group, "index");
    DISTINCT_RETURN_IF_ERROR(index.status());
    auto num_refs = RequireInt(group, "num_refs");
    DISTINCT_RETURN_IF_ERROR(num_refs.status());
    auto num_clusters = RequireInt(group, "num_clusters");
    DISTINCT_RETURN_IF_ERROR(num_clusters.status());
    const JsonValue* name = group.Find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) {
      return DataLossError("checkpoint JSON: group without a name");
    }
    const JsonValue* assignment = group.Find("assignment");
    const JsonValue* merges = group.Find("merges");
    if (assignment == nullptr ||
        assignment->kind != JsonValue::Kind::kArray || merges == nullptr ||
        merges->kind != JsonValue::Kind::kArray) {
      return DataLossError(
          "checkpoint JSON: group without assignment/merges arrays");
    }

    BulkResolution resolution;
    resolution.name = name->string_value;
    resolution.num_refs = static_cast<size_t>(*num_refs);
    resolution.clustering.num_clusters = static_cast<int>(*num_clusters);
    resolution.clustering.assignment.reserve(assignment->items.size());
    for (const JsonValue& cluster : assignment->items) {
      if (cluster.kind != JsonValue::Kind::kInt) {
        return DataLossError("checkpoint JSON: non-integer assignment");
      }
      resolution.clustering.assignment.push_back(
          static_cast<int>(cluster.int_value));
    }
    if (resolution.clustering.assignment.size() != resolution.num_refs) {
      return DataLossError(StrFormat(
          "checkpoint JSON: group '%s' has %zu assignments for %zu refs",
          resolution.name.c_str(), resolution.clustering.assignment.size(),
          resolution.num_refs));
    }
    resolution.clustering.merges.reserve(merges->items.size());
    for (const JsonValue& triple : merges->items) {
      if (triple.kind != JsonValue::Kind::kArray ||
          triple.items.size() != 3 ||
          triple.items[0].kind != JsonValue::Kind::kInt ||
          triple.items[1].kind != JsonValue::Kind::kInt) {
        return DataLossError("checkpoint JSON: malformed merge triple");
      }
      MergeStep merge;
      merge.into = static_cast<int>(triple.items[0].int_value);
      merge.from = static_cast<int>(triple.items[1].int_value);
      merge.similarity = triple.items[2].AsDouble();
      resolution.clustering.merges.push_back(merge);
    }
    resolution.clustering.num_merges =
        static_cast<int>(resolution.clustering.merges.size());

    checkpoint.group_indices.push_back(static_cast<size_t>(*index));
    checkpoint.results.push_back(std::move(resolution));
  }
  return checkpoint;
}

}  // namespace

std::string ShardCheckpointPath(const std::string& dir, int shard_id) {
  return dir + "/shard-" + std::to_string(shard_id) + ".json";
}

std::string ShardMarkerPath(const std::string& dir, int shard_id) {
  return dir + "/shard-" + std::to_string(shard_id) + ".done";
}

Status WriteShardCheckpoint(const std::string& dir,
                            const ShardCheckpoint& checkpoint) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return InternalError("checkpoint: cannot create directory '" + dir +
                         "': " + ec.message());
  }

  const std::string json = CheckpointToJson(checkpoint);
  // The serialized buffer lives until this function returns; hold it
  // against the kCheckpoint gauge so its peak shows up in the report.
  obs::TrackedBytes buffer_bytes(obs::MemoryTracker::kCheckpoint);
  buffer_bytes.Set(static_cast<int64_t>(json.capacity()));
  const std::string path = ShardCheckpointPath(dir, checkpoint.shard_id);
  const std::string tmp = path + ".tmp";
  // A failed write or rename must not leak the tmp file: the retry path
  // recreates it from scratch, and CleanupCheckpointTmpFiles() only covers
  // crashes, not surviving processes that keep checkpointing.
  if (Status written = WriteFileDurable(tmp, json, "checkpoint"); !written.ok()) {
    ::unlink(tmp.c_str());
    return written;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string error = std::strerror(errno);
    ::unlink(tmp.c_str());
    return DataLossError("checkpoint: rename '" + tmp + "' -> '" + path +
                         "' failed: " + error);
  }
  DISTINCT_RETURN_IF_ERROR(FsyncDir(dir, "checkpoint"));
  // The marker is written only after the data file is durably in place, so
  // its presence certifies a complete, readable checkpoint.
  DISTINCT_RETURN_IF_ERROR(WriteFileDurable(
      ShardMarkerPath(dir, checkpoint.shard_id), "done\n", "checkpoint"));
  DISTINCT_RETURN_IF_ERROR(FsyncDir(dir, "checkpoint"));
  DISTINCT_COUNTER_ADD("scan.checkpoints_written", 1);
  DISTINCT_COUNTER_ADD("scan.checkpoint_bytes_written",
                       static_cast<int64_t>(json.size()));
  return Status::Ok();
}

bool ShardCheckpointComplete(const std::string& dir, int shard_id) {
  std::error_code ec;
  return std::filesystem::exists(ShardMarkerPath(dir, shard_id), ec);
}

StatusOr<ShardCheckpoint> ReadShardCheckpoint(const std::string& dir,
                                              int shard_id) {
  if (!ShardCheckpointComplete(dir, shard_id)) {
    return NotFoundError(StrFormat(
        "checkpoint for shard %d has no completion marker", shard_id));
  }
  auto text = ReadFileToString(ShardCheckpointPath(dir, shard_id), "checkpoint");
  DISTINCT_RETURN_IF_ERROR(text.status());
  obs::TrackedBytes buffer_bytes(obs::MemoryTracker::kCheckpoint);
  buffer_bytes.Set(static_cast<int64_t>(text->capacity()));
  auto checkpoint = CheckpointFromJson(*text, shard_id);
  if (checkpoint.ok()) {
    DISTINCT_COUNTER_ADD("scan.checkpoints_read", 1);
  }
  return checkpoint;
}

int64_t CleanupCheckpointTmpFiles(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return 0;  // missing or unreadable directory: nothing to clean
  }
  int64_t removed = 0;
  for (const std::filesystem::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kPrefix = "shard-";
    constexpr std::string_view kSuffix = ".json.tmp";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path(), remove_ec) && !remove_ec) {
      ++removed;
    }
  }
  return removed;
}

}  // namespace distinct
