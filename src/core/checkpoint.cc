#include "core/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/string_util.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace distinct {

namespace {

// ---------------------------------------------------------------------------
// Durable file I/O. The library's JsonWriter is write-only and the run
// report never fsyncs; checkpoints must survive a kill -9, so they go
// through raw descriptors: data fsync'd before rename, directory fsync'd
// after, marker last.
// ---------------------------------------------------------------------------

Status WriteFileDurable(const std::string& path, const std::string& data) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return InternalError("checkpoint: cannot open '" + path +
                         "': " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const std::string error = std::strerror(errno);
      ::close(fd);
      return DataLossError("checkpoint: short write to '" + path +
                           "': " + error);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return DataLossError("checkpoint: fsync of '" + path +
                         "' failed: " + error);
  }
  if (::close(fd) != 0) {
    return DataLossError("checkpoint: close of '" + path +
                         "' failed: " + std::strerror(errno));
  }
  return Status::Ok();
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return InternalError("checkpoint: cannot open directory '" + dir +
                         "': " + std::strerror(errno));
  }
  const bool ok = ::fsync(fd) == 0;
  const std::string error = ok ? "" : std::strerror(errno);
  ::close(fd);
  if (!ok) {
    return DataLossError("checkpoint: fsync of directory '" + dir +
                         "' failed: " + error);
  }
  return Status::Ok();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return NotFoundError("checkpoint: no file '" + path + "'");
    }
    return InternalError("checkpoint: cannot open '" + path +
                         "': " + std::strerror(errno));
  }
  std::string data;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const std::string error = std::strerror(errno);
      ::close(fd);
      return DataLossError("checkpoint: read of '" + path +
                           "' failed: " + error);
    }
    if (n == 0) {
      break;
    }
    data.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough to parse what WriteShardCheckpoint
// emits (the library is otherwise write-only, see obs/json_writer.h).
// Objects keep member order; numbers stay int64 when written without a
// fraction/exponent so ids round-trip exactly, and doubles round-trip via
// the writer's %.17g.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                               // kArray
  std::vector<std::pair<std::string, JsonValue>> members;     // kObject

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [name, value] : members) {
      if (name == key) {
        return &value;
      }
    }
    return nullptr;
  }

  double AsDouble() const {
    return kind == Kind::kInt ? static_cast<double>(int_value) : double_value;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    auto value = ParseValue(0);
    DISTINCT_RETURN_IF_ERROR(value.status());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Corrupt("trailing bytes after the JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Corrupt(const std::string& what) const {
    return DataLossError(StrFormat("checkpoint JSON: %s at byte %zu",
                                   what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Corrupt("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Corrupt("truncated document");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseLiteralBool();
      case 'n':
        return ParseLiteralNull();
      default:
        return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      return value;
    }
    for (;;) {
      SkipWhitespace();
      auto key = ParseString();
      DISTINCT_RETURN_IF_ERROR(key.status());
      SkipWhitespace();
      if (!Consume(':')) {
        return Corrupt("expected ':' after object key");
      }
      auto member = ParseValue(depth + 1);
      DISTINCT_RETURN_IF_ERROR(member.status());
      value.members.emplace_back(std::move(key->string_value),
                                 *std::move(member));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return value;
      }
      return Corrupt("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      return value;
    }
    for (;;) {
      auto item = ParseValue(depth + 1);
      DISTINCT_RETURN_IF_ERROR(item.status());
      value.items.push_back(*std::move(item));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return value;
      }
      return Corrupt("expected ',' or ']' in array");
    }
  }

  StatusOr<JsonValue> ParseString() {
    if (!Consume('"')) {
      return Corrupt("expected '\"'");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    std::string& out = value.string_value;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return value;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Corrupt("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Corrupt("bad \\u escape digit");
            }
          }
          // The writer only \u-escapes control characters (< 0x20); decode
          // the BMP generally anyway.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Corrupt("unknown escape");
      }
    }
    return Corrupt("unterminated string");
  }

  StatusOr<JsonValue> ParseLiteralBool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.bool_value = true;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      return value;
    }
    return Corrupt("bad literal");
  }

  StatusOr<JsonValue> ParseLiteralNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return Corrupt("bad literal");
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    bool floating = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        floating = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    JsonValue value;
    if (floating) {
      auto parsed = ParseDouble(token);
      if (!parsed.has_value()) {
        return Corrupt("bad number");
      }
      value.kind = JsonValue::Kind::kDouble;
      value.double_value = *parsed;
    } else {
      auto parsed = ParseInt64(token);
      if (!parsed.has_value()) {
        return Corrupt("bad number");
      }
      value.kind = JsonValue::Kind::kInt;
      value.int_value = *parsed;
    }
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Checkpoint (de)serialization.
// ---------------------------------------------------------------------------

constexpr char kVersionKey[] = "distinct_shard_checkpoint";

std::string CheckpointToJson(const ShardCheckpoint& checkpoint) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key(kVersionKey).Value(ShardCheckpoint::kFormatVersion);
  json.Key("shard_id").Value(checkpoint.shard_id);
  json.Key("num_shards").Value(checkpoint.num_shards);
  json.Key("catalog_version").Value(checkpoint.catalog_version);
  json.Key("tuple_watermark").Value(checkpoint.tuple_watermark);
  json.Key("groups").BeginArray();
  for (size_t g = 0; g < checkpoint.results.size(); ++g) {
    const BulkResolution& resolution = checkpoint.results[g];
    json.BeginObject();
    json.Key("index").Value(
        static_cast<int64_t>(checkpoint.group_indices[g]));
    json.Key("name").Value(resolution.name);
    json.Key("num_refs").Value(static_cast<int64_t>(resolution.num_refs));
    json.Key("num_clusters").Value(resolution.clustering.num_clusters);
    json.Key("assignment").BeginArray();
    for (const int cluster : resolution.clustering.assignment) {
      json.Value(cluster);
    }
    json.EndArray();
    // Merges as [into, from, similarity] triples; %.17g round-trips the
    // similarity bit-exactly, which is what makes resume byte-identical.
    json.Key("merges").BeginArray();
    for (const MergeStep& merge : resolution.clustering.merges) {
      json.BeginArray();
      json.Value(merge.into);
      json.Value(merge.from);
      json.Value(merge.similarity);
      json.EndArray();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

StatusOr<int64_t> RequireInt(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kInt) {
    return DataLossError(StrFormat("checkpoint JSON: missing int '%s'", key));
  }
  return value->int_value;
}

StatusOr<ShardCheckpoint> CheckpointFromJson(const std::string& text,
                                             int expected_shard_id) {
  auto root = JsonReader(text).Parse();
  DISTINCT_RETURN_IF_ERROR(root.status());
  if (root->kind != JsonValue::Kind::kObject) {
    return DataLossError("checkpoint JSON: top level is not an object");
  }

  auto version = RequireInt(*root, kVersionKey);
  DISTINCT_RETURN_IF_ERROR(version.status());
  if (*version != ShardCheckpoint::kFormatVersion) {
    return FailedPreconditionError(StrFormat(
        "checkpoint format version %lld, this build reads version %d",
        static_cast<long long>(*version), ShardCheckpoint::kFormatVersion));
  }

  ShardCheckpoint checkpoint;
  auto shard_id = RequireInt(*root, "shard_id");
  DISTINCT_RETURN_IF_ERROR(shard_id.status());
  auto num_shards = RequireInt(*root, "num_shards");
  DISTINCT_RETURN_IF_ERROR(num_shards.status());
  checkpoint.shard_id = static_cast<int>(*shard_id);
  checkpoint.num_shards = static_cast<int>(*num_shards);
  auto catalog_version = RequireInt(*root, "catalog_version");
  DISTINCT_RETURN_IF_ERROR(catalog_version.status());
  auto tuple_watermark = RequireInt(*root, "tuple_watermark");
  DISTINCT_RETURN_IF_ERROR(tuple_watermark.status());
  checkpoint.catalog_version = *catalog_version;
  checkpoint.tuple_watermark = *tuple_watermark;
  if (checkpoint.shard_id != expected_shard_id) {
    return DataLossError(StrFormat(
        "checkpoint names shard %d, expected shard %d", checkpoint.shard_id,
        expected_shard_id));
  }

  const JsonValue* groups = root->Find("groups");
  if (groups == nullptr || groups->kind != JsonValue::Kind::kArray) {
    return DataLossError("checkpoint JSON: missing 'groups' array");
  }
  for (const JsonValue& group : groups->items) {
    if (group.kind != JsonValue::Kind::kObject) {
      return DataLossError("checkpoint JSON: group is not an object");
    }
    auto index = RequireInt(group, "index");
    DISTINCT_RETURN_IF_ERROR(index.status());
    auto num_refs = RequireInt(group, "num_refs");
    DISTINCT_RETURN_IF_ERROR(num_refs.status());
    auto num_clusters = RequireInt(group, "num_clusters");
    DISTINCT_RETURN_IF_ERROR(num_clusters.status());
    const JsonValue* name = group.Find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) {
      return DataLossError("checkpoint JSON: group without a name");
    }
    const JsonValue* assignment = group.Find("assignment");
    const JsonValue* merges = group.Find("merges");
    if (assignment == nullptr ||
        assignment->kind != JsonValue::Kind::kArray || merges == nullptr ||
        merges->kind != JsonValue::Kind::kArray) {
      return DataLossError(
          "checkpoint JSON: group without assignment/merges arrays");
    }

    BulkResolution resolution;
    resolution.name = name->string_value;
    resolution.num_refs = static_cast<size_t>(*num_refs);
    resolution.clustering.num_clusters = static_cast<int>(*num_clusters);
    resolution.clustering.assignment.reserve(assignment->items.size());
    for (const JsonValue& cluster : assignment->items) {
      if (cluster.kind != JsonValue::Kind::kInt) {
        return DataLossError("checkpoint JSON: non-integer assignment");
      }
      resolution.clustering.assignment.push_back(
          static_cast<int>(cluster.int_value));
    }
    if (resolution.clustering.assignment.size() != resolution.num_refs) {
      return DataLossError(StrFormat(
          "checkpoint JSON: group '%s' has %zu assignments for %zu refs",
          resolution.name.c_str(), resolution.clustering.assignment.size(),
          resolution.num_refs));
    }
    resolution.clustering.merges.reserve(merges->items.size());
    for (const JsonValue& triple : merges->items) {
      if (triple.kind != JsonValue::Kind::kArray ||
          triple.items.size() != 3 ||
          triple.items[0].kind != JsonValue::Kind::kInt ||
          triple.items[1].kind != JsonValue::Kind::kInt) {
        return DataLossError("checkpoint JSON: malformed merge triple");
      }
      MergeStep merge;
      merge.into = static_cast<int>(triple.items[0].int_value);
      merge.from = static_cast<int>(triple.items[1].int_value);
      merge.similarity = triple.items[2].AsDouble();
      resolution.clustering.merges.push_back(merge);
    }
    resolution.clustering.num_merges =
        static_cast<int>(resolution.clustering.merges.size());

    checkpoint.group_indices.push_back(static_cast<size_t>(*index));
    checkpoint.results.push_back(std::move(resolution));
  }
  return checkpoint;
}

}  // namespace

std::string ShardCheckpointPath(const std::string& dir, int shard_id) {
  return dir + "/shard-" + std::to_string(shard_id) + ".json";
}

std::string ShardMarkerPath(const std::string& dir, int shard_id) {
  return dir + "/shard-" + std::to_string(shard_id) + ".done";
}

Status WriteShardCheckpoint(const std::string& dir,
                            const ShardCheckpoint& checkpoint) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return InternalError("checkpoint: cannot create directory '" + dir +
                         "': " + ec.message());
  }

  const std::string json = CheckpointToJson(checkpoint);
  const std::string path = ShardCheckpointPath(dir, checkpoint.shard_id);
  const std::string tmp = path + ".tmp";
  // A failed write or rename must not leak the tmp file: the retry path
  // recreates it from scratch, and CleanupCheckpointTmpFiles() only covers
  // crashes, not surviving processes that keep checkpointing.
  if (Status written = WriteFileDurable(tmp, json); !written.ok()) {
    ::unlink(tmp.c_str());
    return written;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string error = std::strerror(errno);
    ::unlink(tmp.c_str());
    return DataLossError("checkpoint: rename '" + tmp + "' -> '" + path +
                         "' failed: " + error);
  }
  DISTINCT_RETURN_IF_ERROR(FsyncDir(dir));
  // The marker is written only after the data file is durably in place, so
  // its presence certifies a complete, readable checkpoint.
  DISTINCT_RETURN_IF_ERROR(WriteFileDurable(
      ShardMarkerPath(dir, checkpoint.shard_id), "done\n"));
  DISTINCT_RETURN_IF_ERROR(FsyncDir(dir));
  DISTINCT_COUNTER_ADD("scan.checkpoints_written", 1);
  DISTINCT_COUNTER_ADD("scan.checkpoint_bytes_written",
                       static_cast<int64_t>(json.size()));
  return Status::Ok();
}

bool ShardCheckpointComplete(const std::string& dir, int shard_id) {
  std::error_code ec;
  return std::filesystem::exists(ShardMarkerPath(dir, shard_id), ec);
}

StatusOr<ShardCheckpoint> ReadShardCheckpoint(const std::string& dir,
                                              int shard_id) {
  if (!ShardCheckpointComplete(dir, shard_id)) {
    return NotFoundError(StrFormat(
        "checkpoint for shard %d has no completion marker", shard_id));
  }
  auto text = ReadFileToString(ShardCheckpointPath(dir, shard_id));
  DISTINCT_RETURN_IF_ERROR(text.status());
  auto checkpoint = CheckpointFromJson(*text, shard_id);
  if (checkpoint.ok()) {
    DISTINCT_COUNTER_ADD("scan.checkpoints_read", 1);
  }
  return checkpoint;
}

int64_t CleanupCheckpointTmpFiles(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return 0;  // missing or unreadable directory: nothing to clean
  }
  int64_t removed = 0;
  for (const std::filesystem::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kPrefix = "shard-";
    constexpr std::string_view kSuffix = ".json.tmp";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path(), remove_ec) && !remove_ec) {
      ++removed;
    }
  }
  return removed;
}

}  // namespace distinct
