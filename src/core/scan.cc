#include "core/scan.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/parallel_kernel.h"
#include "sim/profile_store.h"

namespace distinct {

namespace {

/// Applies the min/max-refs filters and the descending-size order shared by
/// both ScanNameGroups overloads.
std::vector<NameGroup> FilterAndSortGroups(std::vector<NameGroup> groups,
                                           const ScanOptions& options) {
  std::vector<NameGroup> filtered;
  for (NameGroup& group : groups) {
    const int64_t refs = static_cast<int64_t>(group.refs.size());
    if (refs < options.min_refs) {
      continue;
    }
    if (options.max_refs > 0 && refs > options.max_refs) {
      continue;
    }
    filtered.push_back(std::move(group));
  }
  std::stable_sort(filtered.begin(), filtered.end(),
                   [](const NameGroup& a, const NameGroup& b) {
                     return a.refs.size() > b.refs.size();
                   });
  return filtered;
}

}  // namespace

StatusOr<std::vector<NameGroup>> ScanNameGroups(const Database& db,
                                                const ReferenceSpec& spec,
                                                const ScanOptions& options) {
  auto resolved = ResolveReferenceSpec(db, spec);
  DISTINCT_RETURN_IF_ERROR(resolved.status());
  const Table& name_table = db.table(resolved->name_table_id);
  const Table& ref_table = db.table(resolved->reference_table_id);

  // Primary key -> name-group index (groups keyed by name string so that
  // several same-named rows collapse into one group).
  std::unordered_map<std::string, size_t> group_of_name;
  std::unordered_map<int64_t, size_t> group_of_pk;
  std::vector<NameGroup> groups;
  const int pk_col = name_table.primary_key_column();
  for (int64_t row = 0; row < name_table.num_rows(); ++row) {
    const std::string& name =
        name_table.GetString(row, resolved->name_column);
    auto [it, inserted] = group_of_name.emplace(name, groups.size());
    if (inserted) {
      NameGroup group;
      group.name = name;
      groups.push_back(std::move(group));
    }
    group_of_pk[name_table.GetInt(row, pk_col)] = it->second;
  }

  for (int64_t row = 0; row < ref_table.num_rows(); ++row) {
    if (ref_table.IsNull(row, resolved->identity_column)) {
      continue;
    }
    auto it =
        group_of_pk.find(ref_table.GetInt(row, resolved->identity_column));
    if (it != group_of_pk.end()) {
      groups[it->second].refs.push_back(static_cast<int32_t>(row));
    }
  }

  return FilterAndSortGroups(std::move(groups), options);
}

StatusOr<std::vector<NameGroup>> ScanNameGroups(const Distinct& engine,
                                                const ScanOptions& options) {
  std::vector<NameGroup> groups;
  groups.reserve(engine.name_groups().size());
  for (const auto& [name, refs] : engine.name_groups()) {
    NameGroup group;
    group.name = name;
    group.refs = refs;
    groups.push_back(std::move(group));
  }
  return FilterAndSortGroups(std::move(groups), options);
}

StatusOr<BulkStats> ResolveAllNames(
    Distinct& engine, const std::vector<NameGroup>& groups,
    std::vector<BulkResolution>* results,
    const std::function<bool(const BulkResolution&)>& on_result) {
  Stopwatch watch;
  DISTINCT_TRACE_SPAN("bulk_resolve");
  DISTINCT_LOG(INFO) << "scan: resolving " << groups.size()
                     << " name groups serially";
  BulkStats stats;
  for (const NameGroup& group : groups) {
    Stopwatch group_watch;
    auto clustering = engine.ResolveRefs(group.refs);
    DISTINCT_RETURN_IF_ERROR(clustering.status());
    DISTINCT_HISTOGRAM_RECORD("scan.resolve_nanos",
                              group_watch.ElapsedNanos());

    BulkResolution resolution;
    resolution.name = group.name;
    resolution.num_refs = group.refs.size();
    resolution.clustering = *std::move(clustering);

    ++stats.names_resolved;
    stats.total_refs += static_cast<int64_t>(group.refs.size());
    stats.total_clusters += resolution.clustering.num_clusters;
    if (resolution.clustering.num_clusters > 1) {
      ++stats.names_split;
    }

    const bool keep_going =
        on_result == nullptr || on_result(resolution);
    if (results != nullptr) {
      results->push_back(std::move(resolution));
    }
    if (!keep_going) {
      break;
    }
  }
  stats.seconds = watch.Seconds();
  DISTINCT_COUNTER_ADD("scan.names_resolved", stats.names_resolved);
  DISTINCT_COUNTER_ADD("scan.names_split", stats.names_split);
  DISTINCT_COUNTER_ADD("scan.refs_resolved", stats.total_refs);
  DISTINCT_LOG(INFO) << "scan: resolved " << stats.names_resolved
                     << " names (" << stats.names_split << " split) in "
                     << stats.seconds << "s";
  return stats;
}

StatusOr<BulkStats> ResolveAllNamesParallel(
    const Distinct& engine, const std::vector<NameGroup>& groups,
    int num_threads, std::vector<BulkResolution>* results) {
  Stopwatch watch;
  // One span for the whole fan-out, opened on the calling thread. Worker
  // lambdas record only commutative counters/histograms (inside the kernels
  // they call), so the span tree is identical at any thread count.
  DISTINCT_TRACE_SPAN("bulk_resolve_parallel");
  DISTINCT_LOG(INFO) << "scan: resolving " << groups.size()
                     << " name groups on " << num_threads << " threads";
  std::vector<BulkResolution> local(groups.size());

  // The subtree memo is reference-independent, so one cache serves every
  // name group of the scan: subtrees computed while resolving one name are
  // hits for all later names that reach the same junction tuples. The
  // workspace pool is likewise scan-wide, capping dense-scratch allocation
  // at one workspace per concurrent worker for the whole run.
  std::unique_ptr<SubtreeCache> memo;
  std::unique_ptr<WorkspacePool> workspaces;
  if (engine.config().propagation.algorithm ==
      PropagationAlgorithm::kWorkspace) {
    memo = std::make_unique<SubtreeCache>(
        engine.config().propagation.cache_bytes);
    workspaces =
        std::make_unique<WorkspacePool>(engine.propagation_engine().link());
  }

  {
    ThreadPool pool(num_threads);
    // Groups are one task each; a mega-group's profile propagations and
    // pair-matrix tiles additionally fan out to the same pool from inside
    // the group task (ParallelForShared is re-entrant, so idle workers
    // help while busy ones keep resolving other groups). Each group gets
    // a fresh read-only ProfileStore — nothing outlives the call, unlike
    // the retired `thread_local` extractors keyed by engine address, which
    // dangled when a destroyed engine's address was reused.
    const SimilarityModel& model = engine.model();
    const AgglomerativeOptions options = engine.cluster_options();
    const PairKernelOptions kernel =
        engine.kernel_options(/*for_clustering=*/true);
    ParallelFor(pool, static_cast<int64_t>(groups.size()),
                [&](int64_t g) {
                  const NameGroup& group = groups[static_cast<size_t>(g)];
                  const ProfileStore store = ProfileStore::Build(
                      engine.propagation_engine(), engine.paths(),
                      engine.config().propagation, group.refs, &pool,
                      ProfileStore::kMinParallelRefs, memo.get(),
                      workspaces.get());
                  auto matrices =
                      ComputePairMatrices(store, model, &pool, kernel);
                  BulkResolution& resolution =
                      local[static_cast<size_t>(g)];
                  resolution.name = group.name;
                  resolution.num_refs = group.refs.size();
                  resolution.clustering = ClusterReferences(
                      matrices.first, matrices.second, options);
                });
  }

  BulkStats stats;
  for (BulkResolution& resolution : local) {
    ++stats.names_resolved;
    stats.total_refs += static_cast<int64_t>(resolution.num_refs);
    stats.total_clusters += resolution.clustering.num_clusters;
    if (resolution.clustering.num_clusters > 1) {
      ++stats.names_split;
    }
    if (results != nullptr) {
      results->push_back(std::move(resolution));
    }
  }
  stats.seconds = watch.Seconds();
  DISTINCT_COUNTER_ADD("scan.names_resolved", stats.names_resolved);
  DISTINCT_COUNTER_ADD("scan.names_split", stats.names_split);
  DISTINCT_COUNTER_ADD("scan.refs_resolved", stats.total_refs);
  DISTINCT_LOG(INFO) << "scan: resolved " << stats.names_resolved
                     << " names (" << stats.names_split << " split) in "
                     << stats.seconds << "s";
  return stats;
}

}  // namespace distinct
