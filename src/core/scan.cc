#include "core/scan.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace distinct {

StatusOr<std::vector<NameGroup>> ScanNameGroups(const Database& db,
                                                const ReferenceSpec& spec,
                                                const ScanOptions& options) {
  auto resolved = ResolveReferenceSpec(db, spec);
  DISTINCT_RETURN_IF_ERROR(resolved.status());
  const Table& name_table = db.table(resolved->name_table_id);
  const Table& ref_table = db.table(resolved->reference_table_id);

  // Primary key -> name-group index (groups keyed by name string so that
  // several same-named rows collapse into one group).
  std::unordered_map<std::string, size_t> group_of_name;
  std::unordered_map<int64_t, size_t> group_of_pk;
  std::vector<NameGroup> groups;
  const int pk_col = name_table.primary_key_column();
  for (int64_t row = 0; row < name_table.num_rows(); ++row) {
    const std::string& name =
        name_table.GetString(row, resolved->name_column);
    auto [it, inserted] = group_of_name.emplace(name, groups.size());
    if (inserted) {
      NameGroup group;
      group.name = name;
      groups.push_back(std::move(group));
    }
    group_of_pk[name_table.GetInt(row, pk_col)] = it->second;
  }

  for (int64_t row = 0; row < ref_table.num_rows(); ++row) {
    if (ref_table.IsNull(row, resolved->identity_column)) {
      continue;
    }
    auto it =
        group_of_pk.find(ref_table.GetInt(row, resolved->identity_column));
    if (it != group_of_pk.end()) {
      groups[it->second].refs.push_back(static_cast<int32_t>(row));
    }
  }

  std::vector<NameGroup> filtered;
  for (NameGroup& group : groups) {
    const int refs = static_cast<int>(group.refs.size());
    if (refs < options.min_refs) {
      continue;
    }
    if (options.max_refs > 0 && refs > options.max_refs) {
      continue;
    }
    filtered.push_back(std::move(group));
  }
  std::stable_sort(filtered.begin(), filtered.end(),
                   [](const NameGroup& a, const NameGroup& b) {
                     return a.refs.size() > b.refs.size();
                   });
  return filtered;
}

StatusOr<BulkStats> ResolveAllNames(
    Distinct& engine, const std::vector<NameGroup>& groups,
    std::vector<BulkResolution>* results,
    const std::function<bool(const BulkResolution&)>& on_result) {
  Stopwatch watch;
  BulkStats stats;
  for (const NameGroup& group : groups) {
    auto clustering = engine.ResolveRefs(group.refs);
    DISTINCT_RETURN_IF_ERROR(clustering.status());

    BulkResolution resolution;
    resolution.name = group.name;
    resolution.num_refs = group.refs.size();
    resolution.clustering = *std::move(clustering);

    ++stats.names_resolved;
    stats.total_refs += static_cast<int64_t>(group.refs.size());
    stats.total_clusters += resolution.clustering.num_clusters;
    if (resolution.clustering.num_clusters > 1) {
      ++stats.names_split;
    }

    const bool keep_going =
        on_result == nullptr || on_result(resolution);
    if (results != nullptr) {
      results->push_back(std::move(resolution));
    }
    if (!keep_going) {
      break;
    }
  }
  stats.seconds = watch.Seconds();
  return stats;
}

StatusOr<BulkStats> ResolveAllNamesParallel(
    const Distinct& engine, const std::vector<NameGroup>& groups,
    int num_threads, std::vector<BulkResolution>* results) {
  Stopwatch watch;
  std::vector<BulkResolution> local(groups.size());

  {
    ThreadPool pool(num_threads);
    // One FeatureExtractor (profile cache) per worker thread; the
    // propagation engine and model are shared read-only.
    const SimilarityModel& model = engine.model();
    const AgglomerativeOptions options = engine.cluster_options();
    ParallelFor(pool, static_cast<int64_t>(groups.size()),
                [&](int64_t g) {
                  thread_local std::unique_ptr<FeatureExtractor> extractor;
                  thread_local const Distinct* extractor_owner = nullptr;
                  if (extractor == nullptr || extractor_owner != &engine) {
                    extractor = std::make_unique<FeatureExtractor>(
                        engine.propagation_engine(), engine.paths(),
                        engine.config().propagation);
                    extractor_owner = &engine;
                  }
                  const NameGroup& group = groups[static_cast<size_t>(g)];
                  const size_t n = group.refs.size();
                  PairMatrix resem(n);
                  PairMatrix walk(n);
                  for (size_t i = 0; i < n; ++i) {
                    for (size_t j = 0; j < i; ++j) {
                      const PairFeatures features = extractor->Compute(
                          group.refs[i], group.refs[j]);
                      resem.set(i, j, model.Resemblance(features));
                      walk.set(i, j, model.Walk(features));
                    }
                  }
                  extractor->ClearCache();
                  BulkResolution& resolution =
                      local[static_cast<size_t>(g)];
                  resolution.name = group.name;
                  resolution.num_refs = n;
                  resolution.clustering =
                      ClusterReferences(resem, walk, options);
                });
  }

  BulkStats stats;
  for (BulkResolution& resolution : local) {
    ++stats.names_resolved;
    stats.total_refs += static_cast<int64_t>(resolution.num_refs);
    stats.total_clusters += resolution.clustering.num_clusters;
    if (resolution.clustering.num_clusters > 1) {
      ++stats.names_split;
    }
    if (results != nullptr) {
      results->push_back(std::move(resolution));
    }
  }
  stats.seconds = watch.Seconds();
  return stats;
}

}  // namespace distinct
