// Incremental catalog maintenance: ingesting appended rows without
// rebuilding the engine.
//
// Everything else in core/ is batch — any appended Publish row used to
// invalidate the whole Distinct instance and force a full Create() +
// rescan. This module adds the delta path:
//
//   * DatabaseDelta batches rows to append, per table.
//   * Distinct::ApplyDelta() (declared in distinct.h, defined here)
//     validates the batch, appends it, extends the LinkGraph in place,
//     absorbs new names/references into the name index, erases exactly the
//     SubtreeCache entries whose memoized path suffixes touch changed
//     tuples, and reports every name whose similarity evidence changed.
//   * IncrementalCatalog keeps per-name resolutions resident and, after a
//     delta, re-resolves only the dirty names — reusing every clean
//     cached resolution. Because dirty detection is conservative and
//     per-name resolution is bit-identical regardless of cache state, the
//     catalog after Apply() equals a batch rebuild cluster-for-cluster
//     (the differential harness in tests/core/delta_test.cc and
//     bench_incremental enforce this).
//
// Dirty detection runs one backward sweep per join path. Let S be the set
// of changed tuples: tuples appended by the delta plus forward-targets of
// appended rows (their reverse adjacency lists and fanouts grew; forward
// lists of old rows never change under append). A reference's profile
// along a path changes only if the path's forward cone from that
// reference intersects S — so sweeping preimages of S∩level from the
// deepest level back to level 0 yields a superset of the affected
// references, and the sweep's frontier at the path's junction level is
// exactly the set of memo entries to invalidate.

#ifndef DISTINCT_CORE_DELTA_H_
#define DISTINCT_CORE_DELTA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/distinct.h"
#include "core/scan.h"
#include "relational/database.h"
#include "relational/value.h"

namespace distinct {

/// Rows to append, batched per table. Order of Add() calls within one
/// table is the append order; foreign keys may point at rows of the same
/// delta (they are validated against existing and pending keys alike).
struct DatabaseDelta {
  struct TableRows {
    std::string table;
    std::vector<std::vector<Value>> rows;
  };

  /// Queues `row` for appending to `table`.
  void Add(const std::string& table, std::vector<Value> row);

  int64_t num_rows() const;
  bool empty() const { return num_rows() == 0; }
  const std::vector<TableRows>& tables() const { return tables_; }

 private:
  std::vector<TableRows> tables_;
  std::unordered_map<std::string, size_t> index_;  // table -> tables_ pos
};

/// What one ApplyDelta() did. `names_reused`/`names_reresolved` are zero
/// until IncrementalCatalog::Apply() fills them.
struct DeltaReport {
  int64_t rows_appended = 0;
  /// Appended rows of the reference table.
  int64_t new_refs = 0;
  /// Names whose similarity evidence changed (including brand-new names),
  /// in name-index order. Only these need re-resolving.
  std::vector<std::string> dirty_names;
  /// Reference rows whose profile along at least one path may have
  /// changed — existing rows reached by the dirty sweep plus every
  /// appended row. Ascending, duplicate-free. Within a dirty name, cells
  /// and profiles of references NOT listed here are provably unchanged;
  /// Distinct::PatchResolveArtifacts recomputes only these.
  std::vector<int32_t> dirty_refs;
  /// Aligned with dirty_refs: bit p set means path p's profile of that
  /// reference may have changed (bits past path 63 are folded into a
  /// conservative all-ones mask). The splice update recomputes only the
  /// flagged paths.
  std::vector<uint64_t> dirty_ref_path_masks;
  /// Subtree-memo entries invalidated by the delta.
  int64_t cache_entries_erased = 0;
  int64_t names_reused = 0;
  int64_t names_reresolved = 0;
  /// Engine state after the delta (checkpoints embed these; --resume
  /// rejects checkpoints written before an append).
  int64_t catalog_version = 0;
  int64_t tuple_watermark = 0;
};

/// Splits `db` into (base, delta): the base holds every table whole except
/// `table`, whose last `tail_rows` rows become the delta. The caller must
/// pick a table nothing references by foreign key (DBLP's Publish rows
/// qualify) — the base is otherwise left with dangling FKs. Built for the
/// differential tests and bench_incremental: generate once, replay the
/// tail as a delta.
StatusOr<std::pair<Database, DatabaseDelta>> MakeTailDelta(
    const Database& db, const std::string& table, int64_t tail_rows);

/// Reads `<directory>/<Table>.csv` for every table of `db` into a delta
/// (header line required, schema validated like AppendCsvToTable). Tables
/// without a file are simply absent from the delta.
StatusOr<DatabaseDelta> LoadDatabaseDeltaCsv(const Database& db,
                                             const std::string& directory);

/// A resident catalog of per-name resolutions over one engine, maintained
/// incrementally. Build() resolves every candidate name; Apply() ingests
/// a delta and re-resolves only the names the delta dirtied, reusing the
/// cached resolution of every clean name. The result is bit-identical to
/// rebuilding the engine and resolving every name from scratch (with the
/// same model).
///
/// With `cache_artifacts` (the default), the catalog also keeps each
/// name's profile store and pair matrices resident; a dirty name is then
/// brought up to date by splicing — recomputing only the profiles and
/// matrix cells of the delta's dirty references — instead of from
/// scratch, making Apply() cost proportional to the delta's blast radius
/// rather than the dirty names' full size. Resident cost is roughly the
/// corpus' profile volume (~24 bytes per profile entry); pass false to
/// trade Apply() latency for that memory.
class IncrementalCatalog {
 public:
  /// `engine` must outlive the catalog.
  explicit IncrementalCatalog(Distinct& engine, ScanOptions options = {},
                              bool cache_artifacts = true)
      : engine_(&engine),
        options_(options),
        cache_artifacts_(cache_artifacts) {}

  /// Resolves every name group passing the scan filters.
  Status Build();

  /// Applies `delta` to the engine (see Distinct::ApplyDelta), then brings
  /// the catalog up to date: clean names keep their cached resolution, and
  /// dirty or new names are re-resolved against the updated evidence. The
  /// returned report additionally carries names_reused/names_reresolved.
  StatusOr<DeltaReport> Apply(Database& db, const DatabaseDelta& delta);

  /// Current resolutions, ordered like ScanNameGroups (descending
  /// reference count, stable).
  const std::vector<BulkResolution>& resolutions() const {
    return resolutions_;
  }

 private:
  Distinct* engine_;
  ScanOptions options_;
  bool cache_artifacts_ = true;
  std::vector<BulkResolution> resolutions_;
  /// Aligned with resolutions_; nullopt when artifact caching is off.
  std::vector<std::optional<Distinct::ResolveArtifacts>> artifacts_;
  std::unordered_map<std::string, size_t> index_;  // name -> resolutions_ pos
};

}  // namespace distinct

#endif  // DISTINCT_CORE_DELTA_H_
