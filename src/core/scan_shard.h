// Sharded, memory-bounded bulk scan with checkpoint/resume.
//
// ScanNameGroups + ResolveAllNamesParallel materialize every group, every
// profile, and every pair matrix inside one process lifetime — one OOM or
// crash loses the whole run. This layer partitions the filtered groups
// into deterministic, size-balanced shards (balanced by estimated pair
// count, since cost and matrix memory are quadratic in group size, not by
// group count), runs each shard through the existing parallel kernel under
// a per-shard memory budget (DistinctConfig::scan_memory_mb), and persists
// each finished shard as a checkpoint (core/checkpoint.h) so an
// interrupted run resumes by re-running only the unfinished shard. A shard
// that fails — bad group, matrix estimate over budget, checkpoint I/O
// error — is recorded with its error and skipped; the rest of the scan
// completes.
//
// Determinism: the plan is a pure function of (groups, num_shards); shard
// results merge back into the original group order; and the kernel is
// bit-identical across thread counts, cache sizes, and workspace reuse, so
// the merged output is byte-identical to the unsharded scan at every shard
// count and every budget that completes.

#ifndef DISTINCT_CORE_SCAN_SHARD_H_
#define DISTINCT_CORE_SCAN_SHARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/scan.h"
#include "obs/heartbeat.h"

namespace distinct {

/// Pairs a group of n references contributes to its shard's pair matrices
/// (and, squared-ish, to its memory): n·(n-1)/2.
int64_t EstimatedPairs(const NameGroup& group);

/// Pair matrices (resemblance + walk, strict lower triangle of doubles)
/// plus the assignment vector for a group of n references. The scan's
/// over-budget rejection and the serve admission controller both price a
/// query with this same estimate.
int64_t EstimatedGroupMatrixBytes(int64_t n);

/// A deterministic partition of group indices into shards.
struct ShardPlan {
  /// shards[s] = indices into the planned group vector, ascending. Shards
  /// may be empty when there are fewer groups than shards.
  std::vector<std::vector<size_t>> shards;
  /// Estimated pair count per shard (the balancing objective).
  std::vector<int64_t> estimated_pairs;

  int num_shards() const { return static_cast<int>(shards.size()); }
};

/// Size-balances `groups` into `num_shards` shards by estimated pair
/// count: longest-processing-time greedy — groups in input order (the scan
/// order is descending size, so big groups place first), each onto the
/// currently lightest shard, ties to the lowest shard id. Pure function of
/// its inputs; resume depends on replanning producing the identical plan.
ShardPlan PlanShards(const std::vector<NameGroup>& groups, int num_shards);

struct ShardedScanOptions {
  int num_shards = 1;
  /// Worker threads per shard (shards run one after another; within a
  /// shard, groups × tiles fan out exactly like ResolveAllNamesParallel).
  int num_threads = 1;
  /// Per-shard memory budget in MiB; 0 falls back to
  /// DistinctConfig::scan_memory_mb (and 0 there means unbounded). The
  /// budget sizes the shard's SubtreeCache, bounds concurrent
  /// PropagationWorkspaces (capping effective threads), and fails shards
  /// whose largest group's pair matrices alone would not fit.
  int64_t memory_budget_mb = 0;
  /// Directory for per-shard checkpoints; empty disables checkpointing
  /// (and resume).
  std::string checkpoint_dir;
  /// Load complete checkpoints instead of re-resolving their shards. A
  /// checkpoint that is present-but-incomplete (killed mid-shard) re-runs;
  /// one that is complete but corrupt or from a different plan fails the
  /// scan with a clean error rather than silently recomputing.
  bool resume = false;
  /// Persist each shard's spans as trace-shard-<id>.json next to its
  /// checkpoint (requires checkpoint_dir and an enabled tracer). The
  /// fragments survive the process, so a resumed scan's merged trace
  /// (obs::CollectShardedTrace) still covers shards the previous run
  /// finished.
  bool write_trace_fragments = false;
  /// When non-null, the scan publishes totals up front and bumps the done
  /// counters as groups resolve — the feed for obs::HeartbeatReporter.
  /// Must outlive the scan. Groups of failed shards stay un-done: the
  /// terminal heartbeat shows exactly what was processed.
  obs::ProgressState* progress = nullptr;
};

enum class ShardState {
  kCompleted,  // resolved in this run
  kResumed,    // loaded from a checkpoint
  kFailed,     // recorded and skipped
};

const char* ShardStateName(ShardState state);

/// What happened to one shard.
struct ShardOutcome {
  int shard_id = 0;
  ShardState state = ShardState::kCompleted;
  int64_t num_groups = 0;
  int64_t num_refs = 0;
  int64_t estimated_pairs = 0;
  /// Worker threads the memory budget afforded this shard.
  int threads_used = 0;
  double seconds = 0.0;
  std::string error;  // kFailed only
};

struct ShardedScanResult {
  /// Successful resolutions merged back into the input group order;
  /// groups of failed shards are absent.
  std::vector<BulkResolution> results;
  /// Aggregated over successful shards; seconds covers the whole scan.
  BulkStats stats;
  /// One outcome per planned shard, in shard order.
  std::vector<ShardOutcome> shards;
};

/// Plans, runs (or resumes), checkpoints, and merges a sharded scan.
/// Errors of individual shards degrade gracefully into ShardOutcome
/// records; the returned status is non-OK only for scan-level problems
/// (invalid options, unusable resume state).
StatusOr<ShardedScanResult> RunShardedScan(
    const Distinct& engine, const std::vector<NameGroup>& groups,
    const ShardedScanOptions& options);

}  // namespace distinct

#endif  // DISTINCT_CORE_SCAN_SHARD_H_
