// The six method variants compared in the paper's Fig. 4.

#ifndef DISTINCT_CORE_VARIANTS_H_
#define DISTINCT_CORE_VARIANTS_H_

#include <string>
#include <vector>

#include "core/distinct.h"

namespace distinct {

/// Fig. 4's bars, in the paper's order.
enum class MethodVariant {
  kDistinct,              // supervised, combined measure (the contribution)
  kUnsupervisedCombined,  // combined measure, uniform weights
  kSupervisedResem,       // set resemblance only, learned weights
  kSupervisedWalk,        // random walk only, learned weights
  kUnsupervisedResem,     // set resemblance only, uniform ([1]-style)
  kUnsupervisedWalk,      // random walk only, uniform ([9]-style)
};

/// Display name, e.g. "DISTINCT" / "unsupervised random walk".
const char* MethodVariantName(MethodVariant variant);

/// All six variants in Fig. 4 order.
std::vector<MethodVariant> AllMethodVariants();

/// Applies a variant's supervision/measure switches to a base config.
DistinctConfig ApplyVariant(DistinctConfig base, MethodVariant variant);

}  // namespace distinct

#endif  // DISTINCT_CORE_VARIANTS_H_
