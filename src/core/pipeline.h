// Internal pipeline steps shared by Distinct::Create and the benchmarks.
//
// Exposed in a header (rather than hidden in distinct.cc) so the ablation
// benchmarks and tests can exercise individual stages.

#ifndef DISTINCT_CORE_PIPELINE_H_
#define DISTINCT_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "core/distinct.h"

namespace distinct {

/// Builds the schema graph with the configured attribute promotions.
StatusOr<std::unique_ptr<SchemaGraph>> BuildPromotedSchemaGraph(
    const Database& db, const DistinctConfig& config);

/// Join paths from the reference relation, excluding the identity edge as
/// the first step when configured.
std::vector<JoinPath> EnumerateReferencePaths(
    const SchemaGraph& graph, const ResolvedReferenceSpec& resolved,
    const DistinctConfig& config);

/// Fits the supervised path-weight model: builds the automatic training
/// set, extracts per-pair features, trains one linear SVM for the
/// resemblance features and one for the walk features, and maps the learned
/// weights back to raw feature space. Fills `report`.
StatusOr<SimilarityModel> TrainSimilarityModel(
    const Database& db, const ReferenceSpec& spec,
    const DistinctConfig& config, FeatureExtractor& extractor,
    TrainingReport* report);

}  // namespace distinct

#endif  // DISTINCT_CORE_PIPELINE_H_
