// Per-shard checkpoints for the sharded bulk scan (core/scan_shard.h).
//
// Each completed shard persists its resolutions as one versioned JSON file
// plus a separate completion marker, both fsync'd, so a scan killed mid-run
// can be resumed: shards whose marker survives are loaded instead of
// re-resolved, and the interrupted shard (data file present, marker absent
// or file truncated) is simply re-run. The JSON carries enough of the plan
// (shard count, group indices, names, sizes) to detect a checkpoint that
// was written for a different scan.
//
// Write protocol (crash-safe on POSIX):
//   1. write shard-<id>.json.tmp, fsync it
//   2. rename onto shard-<id>.json, fsync the directory
//   3. write shard-<id>.done (the marker), fsync it, fsync the directory
// A crash between any two steps leaves either no marker (shard re-runs) or
// a complete pair (shard resumes); never a marker over torn data.

#ifndef DISTINCT_CORE_CHECKPOINT_H_
#define DISTINCT_CORE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/scan.h"

namespace distinct {

/// Everything one shard persists: which planned groups it covered and the
/// full resolution of each (assignment, merge sequence, similarities —
/// enough to reproduce the uninterrupted run byte for byte).
struct ShardCheckpoint {
  /// Bumped whenever the JSON layout changes; readers reject other
  /// versions instead of guessing. v2 added catalog_version and
  /// tuple_watermark (delta-ingest support).
  static constexpr int kFormatVersion = 2;

  int shard_id = 0;
  int num_shards = 0;  // of the plan that produced this shard
  /// Engine catalog state the shard was resolved against (see
  /// Distinct::catalog_version/tuple_watermark). A resumed scan rejects a
  /// checkpoint whose values predate the engine's — the plan it belongs to
  /// was computed before rows were appended.
  int64_t catalog_version = 0;
  int64_t tuple_watermark = 0;
  /// Indices into the planned (filtered + sorted) group vector, ascending;
  /// parallel to `results`.
  std::vector<size_t> group_indices;
  std::vector<BulkResolution> results;
};

/// `<dir>/shard-<id>.json` — the data file.
std::string ShardCheckpointPath(const std::string& dir, int shard_id);
/// `<dir>/shard-<id>.done` — the completion marker.
std::string ShardMarkerPath(const std::string& dir, int shard_id);

/// Persists `checkpoint` under `dir` (created if missing) with the
/// crash-safe protocol above.
Status WriteShardCheckpoint(const std::string& dir,
                            const ShardCheckpoint& checkpoint);

/// True when the shard's completion marker exists (the data file may still
/// fail validation — callers must handle ReadShardCheckpoint errors).
bool ShardCheckpointComplete(const std::string& dir, int shard_id);

/// Loads and validates one shard's checkpoint. NotFound when the data file
/// or marker is missing (incomplete shard — re-run it); DataLoss when the
/// file is truncated, corrupt, or names a different shard;
/// FailedPrecondition on a format-version mismatch.
StatusOr<ShardCheckpoint> ReadShardCheckpoint(const std::string& dir,
                                              int shard_id);

/// Removes orphaned `shard-*.json.tmp` files from `dir` — leftovers of a
/// write that died between creating the tmp file and renaming it into
/// place (the rename makes the tmp disappear on success). Safe to call
/// while no writer is active; the sharded scan runs it on startup.
/// Returns the number of files removed; a missing directory counts as
/// zero.
int64_t CleanupCheckpointTmpFiles(const std::string& dir);

}  // namespace distinct

#endif  // DISTINCT_CORE_CHECKPOINT_H_
