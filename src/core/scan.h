// Whole-database operation: find every name that could be ambiguous and
// resolve all of them.
//
// The paper resolves ten hand-picked names; a production deployment wants
// "split every name in the catalog". This module enumerates the candidate
// names (those with enough references to possibly be several people) and
// drives bulk resolution with progress-friendly batching.

#ifndef DISTINCT_CORE_SCAN_H_
#define DISTINCT_CORE_SCAN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/distinct.h"

namespace distinct {

/// One candidate name and all its references.
struct NameGroup {
  std::string name;
  std::vector<int32_t> refs;  // rows of the reference table
};

struct ScanOptions {
  /// Only names with at least this many references are candidates (a name
  /// with one reference cannot be split). int64_t on purpose: group sizes
  /// are compared without narrowing, so a group larger than INT_MAX cannot
  /// wrap negative and slip past the filters.
  int64_t min_refs = 2;
  /// Skip names with more references than this (0 = no cap). Guards bulk
  /// runs against quadratic blowup on a handful of mega-names.
  int64_t max_refs = 0;
};

/// Groups every reference in the database by name string (names appearing
/// in several name-table rows are one group) and returns the groups
/// passing the filters, ordered by descending reference count.
StatusOr<std::vector<NameGroup>> ScanNameGroups(const Database& db,
                                                const ReferenceSpec& spec,
                                                const ScanOptions& options = {});

/// Same result, but served from the engine's name index (built once at
/// Create() time) instead of rescanning the name and reference tables.
StatusOr<std::vector<NameGroup>> ScanNameGroups(const Distinct& engine,
                                                const ScanOptions& options = {});

/// Result of resolving one name during a bulk run.
struct BulkResolution {
  std::string name;
  size_t num_refs = 0;
  ClusteringResult clustering;
};

/// Statistics of a bulk run.
struct BulkStats {
  int64_t names_resolved = 0;
  int64_t names_split = 0;       // resolved into more than one cluster
  int64_t total_refs = 0;
  int64_t total_clusters = 0;
  double seconds = 0.0;
};

/// Resolves every scanned name group with `engine`. `on_result` (optional)
/// is invoked after each name; returning false aborts the run early.
StatusOr<BulkStats> ResolveAllNames(
    Distinct& engine, const std::vector<NameGroup>& groups,
    std::vector<BulkResolution>* results = nullptr,
    const std::function<bool(const BulkResolution&)>& on_result = nullptr);

/// Parallel variant: resolves names on `num_threads` workers. Small groups
/// are resolved one-per-task; a mega-group additionally fans its own
/// profile propagations and pair-matrix tiles out to the same pool
/// (nested groups × tiles parallelism), so one "Wei Wang"-scale name no
/// longer serializes the run. Each group's profiles live in a per-group
/// read-only ProfileStore; the shared propagation engine and model are
/// read-only. Results are in group order, bit-identical to the sequential
/// ones. No callback/early-abort in this mode.
StatusOr<BulkStats> ResolveAllNamesParallel(
    const Distinct& engine, const std::vector<NameGroup>& groups,
    int num_threads, std::vector<BulkResolution>* results = nullptr);

}  // namespace distinct

#endif  // DISTINCT_CORE_SCAN_H_
