#include "core/delta.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "relational/csv.h"
#include "relational/schema_graph.h"

namespace distinct {

void DatabaseDelta::Add(const std::string& table, std::vector<Value> row) {
  auto [it, inserted] = index_.emplace(table, tables_.size());
  if (inserted) {
    tables_.push_back(TableRows{table, {}});
  }
  tables_[it->second].rows.push_back(std::move(row));
}

int64_t DatabaseDelta::num_rows() const {
  int64_t total = 0;
  for (const TableRows& batch : tables_) {
    total += static_cast<int64_t>(batch.rows.size());
  }
  return total;
}

namespace {

/// Full dry run of `delta` against `db`: schema arity/types, primary-key
/// uniqueness (against existing rows and within the delta), and
/// foreign-key resolvability (against existing rows and keys the delta
/// itself appends). Nothing is mutated, so a rejected delta leaves the
/// database and every structure derived from it untouched.
Status ValidateDelta(const Database& db, const DatabaseDelta& delta) {
  std::unordered_map<std::string, std::unordered_set<int64_t>> pending_pks;
  for (const DatabaseDelta::TableRows& batch : delta.tables()) {
    auto table = db.FindTable(batch.table);
    DISTINCT_RETURN_IF_ERROR(table.status());
    const Table& t = **table;
    auto& pending = pending_pks[batch.table];
    for (size_t r = 0; r < batch.rows.size(); ++r) {
      const std::vector<Value>& row = batch.rows[r];
      if (static_cast<int>(row.size()) != t.num_columns()) {
        return InvalidArgumentError(StrFormat(
            "delta row %zu of %s has %zu cells; table has %d columns", r,
            batch.table.c_str(), row.size(), t.num_columns()));
      }
      for (int c = 0; c < t.num_columns(); ++c) {
        const ColumnSpec& spec = t.column(c);
        const Value& cell = row[c];
        if (cell.is_null()) {
          if (spec.is_primary_key) {
            return InvalidArgumentError(
                StrFormat("delta row %zu of %s: NULL primary key", r,
                          batch.table.c_str()));
          }
          continue;
        }
        if (cell.type() != spec.type) {
          return InvalidArgumentError(StrFormat(
              "delta row %zu of %s: column %s expects %s", r,
              batch.table.c_str(), spec.name.c_str(),
              ColumnTypeToString(spec.type)));
        }
        if (spec.is_primary_key) {
          const int64_t pk = cell.AsInt();
          if (t.RowForPrimaryKey(pk).ok() || !pending.insert(pk).second) {
            return InvalidArgumentError(StrFormat(
                "delta row %zu of %s: duplicate primary key %lld", r,
                batch.table.c_str(), static_cast<long long>(pk)));
          }
        }
      }
    }
  }
  // Second pass, once every pending primary key is known: foreign keys may
  // point at rows the delta itself appends.
  for (const DatabaseDelta::TableRows& batch : delta.tables()) {
    const Table& t = **db.FindTable(batch.table);
    for (size_t r = 0; r < batch.rows.size(); ++r) {
      const std::vector<Value>& row = batch.rows[r];
      for (int c = 0; c < t.num_columns(); ++c) {
        const ColumnSpec& spec = t.column(c);
        if (spec.fk_table.empty() || row[c].is_null()) {
          continue;
        }
        auto target = db.FindTable(spec.fk_table);
        DISTINCT_RETURN_IF_ERROR(target.status());
        const int64_t fk = row[c].AsInt();
        if ((*target)->RowForPrimaryKey(fk).ok()) {
          continue;
        }
        auto p = pending_pks.find(spec.fk_table);
        if (p != pending_pks.end() && p->second.count(fk) > 0) {
          continue;
        }
        return FailedPreconditionError(StrFormat(
            "delta row %zu of %s: dangling FK %s -> %lld (%s)", r,
            batch.table.c_str(), spec.name.c_str(),
            static_cast<long long>(fk), spec.fk_table.c_str()));
      }
    }
  }
  return Status::Ok();
}

/// Schema node of every level of `path` (size steps + 1).
std::vector<int> NodeAtLevels(const SchemaGraph& schema,
                              const JoinPath& path) {
  std::vector<int> node_at(path.steps.size() + 1);
  node_at[0] = path.start_node;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    node_at[i + 1] = schema.Traverse(
        node_at[i], IncidentEdge{path.steps[i].edge_id, path.steps[i].forward});
  }
  return node_at;
}

}  // namespace

StatusOr<DeltaReport> Distinct::ApplyDelta(Database& db,
                                           const DatabaseDelta& delta) {
  if (&db != db_) {
    return InvalidArgumentError(
        "ApplyDelta must be given the database the engine was created over");
  }
  DISTINCT_TRACE_SPAN("apply_delta");
  DISTINCT_RETURN_IF_ERROR(ValidateDelta(db, delta));

  const SchemaGraph& schema = *schema_graph_;
  const int num_nodes = schema.num_nodes();
  std::vector<int64_t> old_tuples(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    old_tuples[static_cast<size_t>(n)] = link_graph_->NumTuples(n);
  }
  std::vector<int64_t> old_rows(static_cast<size_t>(db.num_tables()));
  for (int i = 0; i < db.num_tables(); ++i) {
    old_rows[static_cast<size_t>(i)] = db.table(i).num_rows();
  }

  DeltaReport report;
  for (const DatabaseDelta::TableRows& batch : delta.tables()) {
    auto table = db.FindMutableTable(batch.table);
    DISTINCT_RETURN_IF_ERROR(table.status());
    for (const std::vector<Value>& row : batch.rows) {
      // Validated above; a failure here would mean the table mutated
      // between validation and append.
      DISTINCT_RETURN_IF_ERROR((*table)->AppendRow(row).status());
      ++report.rows_appended;
    }
  }

  // Appended rows can only introduce dangling FKs already rejected by the
  // dry run, so the in-place extension cannot hit its error path here.
  DISTINCT_RETURN_IF_ERROR(link_graph_->ApplyAppend());

  // Absorb new name/reference rows into the name index with the same
  // first-seen-order loops as Create(); the grown index is bit-identical
  // to the one a fresh Create() over the appended database would build.
  const Table& name_table = db.table(resolved_.name_table_id);
  const Table& ref_table = db.table(resolved_.reference_table_id);
  const int pk_col = name_table.primary_key_column();
  for (int64_t row = old_rows[static_cast<size_t>(resolved_.name_table_id)];
       row < name_table.num_rows(); ++row) {
    const std::string& name = name_table.GetString(row, resolved_.name_column);
    auto [it, inserted] = name_index_.emplace(name, name_groups_.size());
    if (inserted) {
      name_groups_.emplace_back(name, std::vector<int32_t>{});
    }
    name_group_of_pk_[name_table.GetInt(row, pk_col)] = it->second;
  }
  const int64_t old_ref_rows =
      old_rows[static_cast<size_t>(resolved_.reference_table_id)];
  for (int64_t row = old_ref_rows; row < ref_table.num_rows(); ++row) {
    if (ref_table.IsNull(row, resolved_.identity_column)) {
      continue;
    }
    auto it = name_group_of_pk_.find(
        ref_table.GetInt(row, resolved_.identity_column));
    if (it != name_group_of_pk_.end()) {
      name_groups_[it->second].second.push_back(static_cast<int32_t>(row));
    }
  }
  report.new_refs = ref_table.num_rows() - old_ref_rows;

  // Changed tuples per node: tuples the delta appended, plus forward
  // targets of appended rows (their reverse lists and fanouts grew —
  // forward lists of old rows never change under append).
  std::vector<std::vector<int32_t>> changed(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    for (int64_t t = old_tuples[static_cast<size_t>(n)];
         t < link_graph_->NumTuples(n); ++t) {
      changed[static_cast<size_t>(n)].push_back(static_cast<int32_t>(t));
    }
  }
  for (int e = 0; e < schema.num_edges(); ++e) {
    const SchemaEdge& edge = schema.edge(e);
    const int64_t rows = db.table(edge.table_id).num_rows();
    for (int64_t row = old_rows[static_cast<size_t>(edge.table_id)];
         row < rows; ++row) {
      const auto target = link_graph_->Forward(e, static_cast<int32_t>(row));
      if (!target.empty() &&
          target[0] < old_tuples[static_cast<size_t>(edge.to_node)]) {
        changed[static_cast<size_t>(edge.to_node)].push_back(target[0]);
      }
    }
  }
  for (auto& tuples : changed) {
    std::sort(tuples.begin(), tuples.end());
    tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  }

  // Per-path backward sweep: the frontier at level 0 is the references
  // whose profile along the path may have changed; the frontier at the
  // junction level is the memo entries whose cached suffix may have.
  const std::vector<JoinPath>& paths = extractor_->paths();
  const int start_node = paths.empty() ? 0 : paths.front().start_node;
  // Per-reference bitmask of the paths whose profile the delta may have
  // changed (paths past bit 63 conservatively dirty every bit). A nonzero
  // mask is what makes a reference — and its name — dirty; the mask itself
  // lets the splice update recompute only the dirtied paths.
  std::vector<uint64_t> dirty_ref(
      static_cast<size_t>(link_graph_->NumTuples(start_node)), 0);
  for (size_t p = 0; p < paths.size(); ++p) {
    const JoinPath& path = paths[p];
    const std::vector<int> node_at = NodeAtLevels(schema, path);
    const size_t k = path.steps.size();
    const size_t junction = SubtreeJunctionLevel(
        path, node_at, config_.propagation.exclude_start_tuple);
    std::vector<int32_t> frontier =
        changed[static_cast<size_t>(node_at[k])];
    std::vector<int32_t> junction_dirty;
    if (junction == k) {
      junction_dirty = frontier;
    }
    for (size_t level = k; level >= 1; --level) {
      const JoinStep& step = path.steps[level - 1];
      const int prev_node = node_at[level - 1];
      std::vector<char> mark(
          static_cast<size_t>(link_graph_->NumTuples(prev_node)), 0);
      std::vector<int32_t> prev;
      for (const int32_t t : frontier) {
        const auto preimage = step.forward
                                  ? link_graph_->Reverse(step.edge_id, t)
                                  : link_graph_->Forward(step.edge_id, t);
        for (const int32_t u : preimage) {
          if (!mark[static_cast<size_t>(u)]) {
            mark[static_cast<size_t>(u)] = 1;
            prev.push_back(u);
          }
        }
      }
      for (const int32_t u : changed[static_cast<size_t>(prev_node)]) {
        if (!mark[static_cast<size_t>(u)]) {
          mark[static_cast<size_t>(u)] = 1;
          prev.push_back(u);
        }
      }
      std::sort(prev.begin(), prev.end());
      frontier = std::move(prev);
      if (level - 1 == junction) {
        junction_dirty = frontier;
      }
    }
    const uint64_t path_bit = p < 64 ? uint64_t{1} << p : ~uint64_t{0};
    for (const int32_t r : frontier) {
      dirty_ref[static_cast<size_t>(r)] |= path_bit;
    }
    if (memo_ != nullptr) {
      report.cache_entries_erased +=
          memo_->Erase(static_cast<int>(p), junction_dirty);
    }
  }

  // Dirty names: groups owning a dirty reference. New references are new
  // tuples of the start node, so brand-new names are dirty by definition.
  std::vector<char> group_dirty(name_groups_.size(), 0);
  for (size_t r = 0; r < dirty_ref.size(); ++r) {
    if (dirty_ref[r] == 0 ||
        ref_table.IsNull(static_cast<int64_t>(r), resolved_.identity_column)) {
      continue;
    }
    auto it = name_group_of_pk_.find(ref_table.GetInt(
        static_cast<int64_t>(r), resolved_.identity_column));
    if (it != name_group_of_pk_.end()) {
      group_dirty[it->second] = 1;
    }
  }
  for (size_t g = 0; g < group_dirty.size(); ++g) {
    if (group_dirty[g]) {
      report.dirty_names.push_back(name_groups_[g].first);
    }
  }
  for (size_t r = 0; r < dirty_ref.size(); ++r) {
    if (dirty_ref[r] != 0) {
      report.dirty_refs.push_back(static_cast<int32_t>(r));
      report.dirty_ref_path_masks.push_back(dirty_ref[r]);
    }
  }

  // Pooled workspaces size their dense slabs at first acquire and never
  // grow them; after the universes grew they would index out of bounds, so
  // the pool is recreated (the memo keeps its surviving entries — those
  // are the expensive part).
  if (workspaces_ != nullptr) {
    workspaces_ = std::make_unique<WorkspacePool>(*link_graph_);
  }

  ++catalog_version_;
  tuple_watermark_ = db.TotalRows();
  report.catalog_version = catalog_version_;
  report.tuple_watermark = tuple_watermark_;
  return report;
}

StatusOr<Distinct::ResolveArtifacts> Distinct::PatchResolveArtifacts(
    ResolveArtifacts cached, const std::vector<int32_t>& refs,
    const std::vector<int32_t>& dirty_refs,
    const std::vector<uint64_t>& dirty_ref_path_masks) {
  const std::vector<int32_t>& old_refs = cached.store.refs();
  if (old_refs.size() > refs.size() ||
      !std::equal(old_refs.begin(), old_refs.end(), refs.begin())) {
    return InvalidArgumentError(
        "PatchResolveArtifacts: cached artifacts do not cover a prefix of "
        "`refs` — append-only deltas keep existing references in place");
  }
  const size_t old_n = old_refs.size();
  const bool have_masks = dirty_ref_path_masks.size() == dirty_refs.size() &&
                          !dirty_ref_path_masks.empty();

  // Positions whose profiles the delta may have changed; the appended
  // suffix is dirty by definition (it has no cached state at all).
  std::vector<size_t> positions;
  std::vector<uint64_t> path_masks;
  std::vector<char> dirty(refs.size(), 0);
  for (size_t i = 0; i < old_n; ++i) {
    const auto it =
        std::lower_bound(dirty_refs.begin(), dirty_refs.end(), refs[i]);
    if (it == dirty_refs.end() || *it != refs[i]) {
      continue;
    }
    positions.push_back(i);
    dirty[i] = 1;
    if (have_masks) {
      path_masks.push_back(dirty_ref_path_masks[static_cast<size_t>(
          it - dirty_refs.begin())]);
    }
  }
  for (size_t i = old_n; i < refs.size(); ++i) {
    dirty[i] = 1;
  }

  {
    DISTINCT_TRACE_SPAN("profile_store");
    cached.store.Update(*engine_, extractor_->paths(), config_.propagation,
                        positions,
                        std::vector<int32_t>(refs.begin() + old_n, refs.end()),
                        pool_.get(), ProfileStore::kMinParallelRefs,
                        memo_.get(), workspaces_.get(),
                        have_masks ? &path_masks : nullptr);
  }
  auto matrices = [&] {
    DISTINCT_TRACE_SPAN("pair_matrix");
    // Re-flatten only the updated positions (plus the appended suffix)
    // into the cached arena — bit-identical to FromStore over the updated
    // store.
    {
      DISTINCT_TRACE_SPAN("arena_patch");
      cached.arena.PatchFromStore(cached.store, positions);
    }
    return UpdatePairMatrices(cached.store, cached.arena, model_, dirty,
                              cached.resem, cached.walk, pool_.get(),
                              kernel_options(/*for_clustering=*/true));
  }();
  DISTINCT_TRACE_SPAN("cluster");
  ClusteringResult clustering =
      ClusterReferences(matrices.first, matrices.second, cluster_options());
  return ResolveArtifacts{std::move(cached.store), std::move(cached.arena),
                          std::move(matrices.first),
                          std::move(matrices.second), std::move(clustering)};
}

StatusOr<std::pair<Database, DatabaseDelta>> MakeTailDelta(
    const Database& db, const std::string& table, int64_t tail_rows) {
  auto target_id = db.TableId(table);
  DISTINCT_RETURN_IF_ERROR(target_id.status());
  const Table& target = db.table(*target_id);
  if (tail_rows < 0 || tail_rows > target.num_rows()) {
    return InvalidArgumentError(StrFormat(
        "tail_rows %lld out of range for %s (%lld rows)",
        static_cast<long long>(tail_rows), table.c_str(),
        static_cast<long long>(target.num_rows())));
  }

  Database base;
  for (int i = 0; i < db.num_tables(); ++i) {
    const Table& src = db.table(i);
    std::vector<ColumnSpec> columns;
    columns.reserve(static_cast<size_t>(src.num_columns()));
    for (int c = 0; c < src.num_columns(); ++c) {
      columns.push_back(src.column(c));
    }
    auto copy = Table::Create(src.name(), std::move(columns));
    DISTINCT_RETURN_IF_ERROR(copy.status());
    const int64_t keep =
        i == *target_id ? src.num_rows() - tail_rows : src.num_rows();
    for (int64_t row = 0; row < keep; ++row) {
      std::vector<Value> values;
      values.reserve(static_cast<size_t>(src.num_columns()));
      for (int c = 0; c < src.num_columns(); ++c) {
        values.push_back(src.GetValue(row, c));
      }
      DISTINCT_RETURN_IF_ERROR(copy->AppendRow(values).status());
    }
    DISTINCT_RETURN_IF_ERROR(base.AddTable(*std::move(copy)).status());
  }

  DatabaseDelta delta;
  for (int64_t row = target.num_rows() - tail_rows; row < target.num_rows();
       ++row) {
    std::vector<Value> values;
    values.reserve(static_cast<size_t>(target.num_columns()));
    for (int c = 0; c < target.num_columns(); ++c) {
      values.push_back(target.GetValue(row, c));
    }
    delta.Add(table, std::move(values));
  }
  return std::make_pair(std::move(base), std::move(delta));
}

StatusOr<DatabaseDelta> LoadDatabaseDeltaCsv(const Database& db,
                                             const std::string& directory) {
  DatabaseDelta delta;
  for (int i = 0; i < db.num_tables(); ++i) {
    const Table& src = db.table(i);
    std::vector<ColumnSpec> columns;
    columns.reserve(static_cast<size_t>(src.num_columns()));
    for (int c = 0; c < src.num_columns(); ++c) {
      columns.push_back(src.column(c));
    }
    // Stage through an empty table with the same schema: the CSV header,
    // cell types, and within-file primary-key uniqueness are validated
    // exactly like a full LoadDatabaseCsv (uniqueness against the live
    // database is ApplyDelta's dry run).
    auto staging = Table::Create(src.name(), std::move(columns));
    DISTINCT_RETURN_IF_ERROR(staging.status());
    auto loaded =
        LoadTableCsv(directory + "/" + src.name() + ".csv", *staging);
    if (!loaded.ok()) {
      if (loaded.status().code() == StatusCode::kNotFound) {
        continue;  // a delta need not touch every table
      }
      return loaded.status();
    }
    for (int64_t row = 0; row < staging->num_rows(); ++row) {
      std::vector<Value> values;
      values.reserve(static_cast<size_t>(staging->num_columns()));
      for (int c = 0; c < staging->num_columns(); ++c) {
        values.push_back(staging->GetValue(row, c));
      }
      delta.Add(src.name(), std::move(values));
    }
  }
  return delta;
}

Status IncrementalCatalog::Build() {
  auto groups = ScanNameGroups(*engine_, options_);
  DISTINCT_RETURN_IF_ERROR(groups.status());
  resolutions_.clear();
  artifacts_.clear();
  index_.clear();
  resolutions_.reserve(groups->size());
  artifacts_.reserve(groups->size());
  for (const NameGroup& group : *groups) {
    index_.emplace(group.name, resolutions_.size());
    if (cache_artifacts_) {
      auto resolved = engine_->ResolveRefsArtifacts(group.refs);
      DISTINCT_RETURN_IF_ERROR(resolved.status());
      resolutions_.push_back(BulkResolution{group.name, group.refs.size(),
                                            resolved->clustering});
      artifacts_.push_back(*std::move(resolved));
    } else {
      auto clustering = engine_->ResolveRefs(group.refs);
      DISTINCT_RETURN_IF_ERROR(clustering.status());
      resolutions_.push_back(BulkResolution{group.name, group.refs.size(),
                                            *std::move(clustering)});
      artifacts_.emplace_back();
    }
  }
  return Status::Ok();
}

StatusOr<DeltaReport> IncrementalCatalog::Apply(Database& db,
                                                const DatabaseDelta& delta) {
  auto report = engine_->ApplyDelta(db, delta);
  DISTINCT_RETURN_IF_ERROR(report.status());
  std::unordered_set<std::string> dirty(report->dirty_names.begin(),
                                        report->dirty_names.end());

  // A clean name has the same references and the same profiles as before,
  // so its cached clustering is exactly what re-resolving would produce.
  // Dirty names get no merge-replay shortcut: replaying merges is unsound
  // when new evidence lowers a pairwise sum (a past merge may no longer
  // clear the floor), so they are re-seeded from full matrices by the
  // exact clusterer — that is the un-merge/re-seed rule. With cached
  // artifacts those matrices are spliced — only cells with an endpoint in
  // the delta's dirty references are recomputed — which is bit-identical
  // to refilling them (every cell is a pure function of its two profiles).
  auto groups = ScanNameGroups(*engine_, options_);
  DISTINCT_RETURN_IF_ERROR(groups.status());
  std::vector<BulkResolution> next;
  std::vector<std::optional<Distinct::ResolveArtifacts>> next_artifacts;
  std::unordered_map<std::string, size_t> next_index;
  next.reserve(groups->size());
  next_artifacts.reserve(groups->size());
  for (const NameGroup& group : *groups) {
    auto cached = index_.find(group.name);
    next_index.emplace(group.name, next.size());
    if (cached != index_.end() && dirty.count(group.name) == 0) {
      next.push_back(std::move(resolutions_[cached->second]));
      next_artifacts.push_back(std::move(artifacts_[cached->second]));
      ++report->names_reused;
      continue;
    }
    if (cached != index_.end() && artifacts_[cached->second].has_value()) {
      auto patched = engine_->PatchResolveArtifacts(
          *std::move(artifacts_[cached->second]), group.refs,
          report->dirty_refs, report->dirty_ref_path_masks);
      DISTINCT_RETURN_IF_ERROR(patched.status());
      next.push_back(BulkResolution{group.name, group.refs.size(),
                                    patched->clustering});
      next_artifacts.push_back(*std::move(patched));
    } else if (cache_artifacts_) {
      auto resolved = engine_->ResolveRefsArtifacts(group.refs);
      DISTINCT_RETURN_IF_ERROR(resolved.status());
      next.push_back(BulkResolution{group.name, group.refs.size(),
                                    resolved->clustering});
      next_artifacts.push_back(*std::move(resolved));
    } else {
      auto clustering = engine_->ResolveRefs(group.refs);
      DISTINCT_RETURN_IF_ERROR(clustering.status());
      next.push_back(BulkResolution{group.name, group.refs.size(),
                                    *std::move(clustering)});
      next_artifacts.emplace_back();
    }
    ++report->names_reresolved;
  }
  resolutions_ = std::move(next);
  artifacts_ = std::move(next_artifacts);
  index_ = std::move(next_index);
  return report;
}

}  // namespace distinct
