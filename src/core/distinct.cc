#include "core/distinct.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/parallel_kernel.h"
#include "sim/profile_store.h"

namespace distinct {

StatusOr<Distinct> Distinct::CreateWithModel(const Database& db,
                                             const ReferenceSpec& spec,
                                             DistinctConfig config,
                                             SimilarityModel model) {
  config.supervised = false;  // never train when a model is supplied
  auto engine = Create(db, spec, std::move(config));
  DISTINCT_RETURN_IF_ERROR(engine.status());

  if (model.num_paths() != engine->extractor_->num_paths()) {
    return InvalidArgumentError(StrFormat(
        "supplied model has %zu paths; this schema enumerates %zu",
        model.num_paths(), engine->extractor_->num_paths()));
  }
  if (!model.path_names().empty()) {
    for (size_t p = 0; p < model.num_paths(); ++p) {
      const std::string current =
          engine->extractor_->paths()[p].Describe(*engine->schema_graph_);
      if (model.path_names()[p] != current) {
        return InvalidArgumentError(
            "supplied model was trained on a different schema: path " +
            std::to_string(p) + " is '" + model.path_names()[p] +
            "' in the model but '" + current + "' here");
      }
    }
  }
  engine->model_ = std::move(model);
  return engine;
}

StatusOr<Distinct> Distinct::Create(const Database& db,
                                    const ReferenceSpec& spec,
                                    DistinctConfig config) {
  Distinct engine;
  engine.db_ = &db;
  engine.config_ = std::move(config);
  engine.config_.propagation.cache_bytes =
      static_cast<size_t>(std::max(0, engine.config_.propagation_cache_mb))
      << 20;
  if (engine.config_.observability) {
    obs::SetEnabled(true);
  }
  // Resolve the merge-join ISA once and stamp it into every run report
  // collected by this process — the dispatched variant is a runtime fact
  // (CPU features + build flags) that numbers are meaningless without.
  obs::SetRunAttribute(
      "kernel_isa",
      KernelIsaName(ResolveKernelIsa(engine.config_.kernel_isa)));
  DISTINCT_TRACE_SPAN("create");

  auto resolved = ResolveReferenceSpec(db, spec);
  DISTINCT_RETURN_IF_ERROR(resolved.status());
  engine.resolved_ = *resolved;

  auto schema_graph = [&] {
    DISTINCT_TRACE_SPAN("schema_graph");
    return BuildPromotedSchemaGraph(db, engine.config_);
  }();
  DISTINCT_RETURN_IF_ERROR(schema_graph.status());
  engine.schema_graph_ = *std::move(schema_graph);

  auto link_graph = [&] {
    DISTINCT_TRACE_SPAN("link_graph");
    return LinkGraph::Build(*engine.schema_graph_);
  }();
  DISTINCT_RETURN_IF_ERROR(link_graph.status());
  engine.link_graph_ = std::make_unique<LinkGraph>(*std::move(link_graph));

  engine.engine_ = std::make_unique<PropagationEngine>(*engine.link_graph_);

  std::vector<JoinPath> paths = [&] {
    DISTINCT_TRACE_SPAN("enumerate_paths");
    return EnumerateReferencePaths(*engine.schema_graph_, engine.resolved_,
                                   engine.config_);
  }();
  DISTINCT_COUNTER_ADD("core.join_paths_enumerated",
                       static_cast<int64_t>(paths.size()));
  if (paths.empty()) {
    return FailedPreconditionError(
        "no join paths found from the reference relation; is the schema "
        "connected?");
  }
  engine.extractor_ = std::make_unique<FeatureExtractor>(
      *engine.engine_, std::move(paths), engine.config_.propagation);

  std::vector<std::string> path_names;
  path_names.reserve(engine.extractor_->num_paths());
  for (const JoinPath& path : engine.extractor_->paths()) {
    path_names.push_back(path.Describe(*engine.schema_graph_));
  }

  if (engine.config_.num_threads > 1) {
    engine.pool_ = std::make_unique<ThreadPool>(engine.config_.num_threads);
  }

  // Name -> reference-rows index, built once; RefsForName and
  // ScanNameGroups(engine, ...) queries reuse it instead of rescanning the
  // name and reference tables.
  {
    DISTINCT_TRACE_SPAN("name_index");
    const Table& name_table = db.table(engine.resolved_.name_table_id);
    const Table& ref_table = db.table(engine.resolved_.reference_table_id);
    const int pk_col = name_table.primary_key_column();
    engine.name_group_of_pk_.reserve(
        static_cast<size_t>(name_table.num_rows()));
    for (int64_t row = 0; row < name_table.num_rows(); ++row) {
      const std::string& name =
          name_table.GetString(row, engine.resolved_.name_column);
      auto [it, inserted] =
          engine.name_index_.emplace(name, engine.name_groups_.size());
      if (inserted) {
        engine.name_groups_.emplace_back(name, std::vector<int32_t>{});
      }
      engine.name_group_of_pk_[name_table.GetInt(row, pk_col)] = it->second;
    }
    for (int64_t row = 0; row < ref_table.num_rows(); ++row) {
      if (ref_table.IsNull(row, engine.resolved_.identity_column)) {
        continue;
      }
      auto it = engine.name_group_of_pk_.find(
          ref_table.GetInt(row, engine.resolved_.identity_column));
      if (it != engine.name_group_of_pk_.end()) {
        engine.name_groups_[it->second].second.push_back(
            static_cast<int32_t>(row));
      }
    }
  }
  engine.tuple_watermark_ = db.TotalRows();
  engine.catalog_version_ = engine.config_.base_catalog_version;

  if (engine.config_.supervised) {
    Stopwatch watch;
    auto model = TrainSimilarityModel(db, spec, engine.config_,
                                      *engine.extractor_, &engine.report_);
    DISTINCT_RETURN_IF_ERROR(model.status());
    engine.model_ =
        SimilarityModel(model->resem_weights(), model->walk_weights(),
                        std::move(path_names));
    engine.report_.seconds_total = watch.Seconds();
    if (engine.config_.auto_min_sim &&
        engine.report_.suggested_min_sim > 0.0) {
      engine.config_.min_sim = engine.report_.suggested_min_sim;
    }
  } else {
    engine.model_ = SimilarityModel::Uniform(engine.extractor_->num_paths(),
                                             std::move(path_names));
    engine.report_.num_paths =
        static_cast<int>(engine.extractor_->num_paths());
  }
  return engine;
}

const std::vector<JoinPath>& Distinct::paths() const {
  return extractor_->paths();
}

AgglomerativeOptions Distinct::cluster_options() const {
  AgglomerativeOptions options;
  options.min_sim = config_.min_sim;
  options.measure = config_.measure;
  options.combine = config_.combine;
  options.stopping = config_.stopping;
  options.incremental = config_.incremental;
  return options;
}

StatusOr<std::vector<int32_t>> Distinct::RefsForName(
    const std::string& name) const {
  // Several name-table rows may carry the same string (e.g. two "Forgotten"
  // songs the catalog already tells apart); the index collapses them into
  // one group.
  auto it = name_index_.find(name);
  if (it == name_index_.end()) {
    return std::vector<int32_t>{};
  }
  return name_groups_[it->second].second;
}

PairKernelOptions Distinct::kernel_options(bool for_clustering) const {
  PairKernelOptions options;
  options.kernel = config_.kernel;
  options.isa = config_.kernel_isa;
  if (for_clustering && config_.kernel_pruning) {
    options.pruning = true;
    options.prune_min_sim = config_.min_sim;
    options.measure = config_.measure;
    options.combine = config_.combine;
  }
  return options;
}

ProfileStore Distinct::BuildProfileStore(const std::vector<int32_t>& refs) {
  // Under the kWorkspace engine the subtree memo and the dense scratch
  // pool live for the engine's lifetime: suffix distributions stay warm
  // across queries and across ApplyDelta (which erases only the entries
  // its delta dirtied). Sharing cannot change results — a memo hit
  // returns exactly what a miss would recompute.
  if (config_.propagation.algorithm == PropagationAlgorithm::kWorkspace &&
      memo_ == nullptr) {
    memo_ = std::make_unique<SubtreeCache>(config_.propagation.cache_bytes);
    workspaces_ = std::make_unique<WorkspacePool>(*link_graph_);
  }
  DISTINCT_TRACE_SPAN("profile_store");
  return ProfileStore::Build(*engine_, extractor_->paths(),
                             config_.propagation, refs, pool_.get(),
                             ProfileStore::kMinParallelRefs, memo_.get(),
                             workspaces_.get());
}

std::pair<PairMatrix, PairMatrix> Distinct::ComputeMatricesWithOptions(
    const std::vector<int32_t>& refs, const PairKernelOptions& options) {
  // Phase 1: n propagations per path, each independent. Phase 2: tiled
  // lower-triangle fill. Both fan out over the engine pool when configured;
  // with num_threads == 1 this is exactly the old serial loop.
  const ProfileStore store = BuildProfileStore(refs);
  DISTINCT_TRACE_SPAN("pair_matrix");
  return ComputePairMatrices(store, model_, pool_.get(), options);
}

StatusOr<std::pair<PairMatrix, PairMatrix>> Distinct::ComputeMatrices(
    const std::vector<int32_t>& refs) {
  // Exact matrices: callers sweep thresholds over them, so the prune (which
  // zeroes cells below config.min_sim) must stay off.
  return ComputeMatricesWithOptions(refs,
                                    kernel_options(/*for_clustering=*/false));
}

StatusOr<ClusteringResult> Distinct::ResolveRefs(
    const std::vector<int32_t>& refs) {
  // These matrices are consumed once, by a clusterer whose merge floor is
  // config.min_sim — exactly the contract the mass-bound prune needs.
  const auto matrices = ComputeMatricesWithOptions(
      refs, kernel_options(/*for_clustering=*/true));
  DISTINCT_TRACE_SPAN("cluster");
  return ClusterReferences(matrices.first, matrices.second,
                           cluster_options());
}

StatusOr<Distinct::ResolveArtifacts> Distinct::ResolveRefsArtifacts(
    const std::vector<int32_t>& refs) {
  ProfileStore store = BuildProfileStore(refs);
  // The arena is built once here and patched in place by later
  // PatchResolveArtifacts calls — the fused kernel never re-flattens the
  // whole group across deltas.
  ProfileArena arena = ProfileArena::FromStore(store);
  auto matrices = [&] {
    DISTINCT_TRACE_SPAN("pair_matrix");
    return ComputePairMatrices(store, arena, model_, pool_.get(),
                               kernel_options(/*for_clustering=*/true));
  }();
  DISTINCT_TRACE_SPAN("cluster");
  ClusteringResult clustering =
      ClusterReferences(matrices.first, matrices.second, cluster_options());
  return ResolveArtifacts{std::move(store), std::move(arena),
                          std::move(matrices.first),
                          std::move(matrices.second), std::move(clustering)};
}

StatusOr<Distinct::ResolveResult> Distinct::ResolveName(
    const std::string& name) {
  auto refs = RefsForName(name);
  DISTINCT_RETURN_IF_ERROR(refs.status());
  if (refs->empty()) {
    return NotFoundError("no references named '" + name + "'");
  }
  auto clustering = ResolveRefs(*refs);
  DISTINCT_RETURN_IF_ERROR(clustering.status());
  ResolveResult result;
  result.refs = *std::move(refs);
  result.clustering = *std::move(clustering);
  return result;
}

}  // namespace distinct
