#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <unordered_set>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/profile_store.h"
#include "svm/scaler.h"

namespace distinct {

StatusOr<std::unique_ptr<SchemaGraph>> BuildPromotedSchemaGraph(
    const Database& db, const DistinctConfig& config) {
  auto graph = SchemaGraph::Build(db);
  DISTINCT_RETURN_IF_ERROR(graph.status());
  auto owned = std::make_unique<SchemaGraph>(*std::move(graph));
  for (const auto& [table, column] : config.promotions) {
    DISTINCT_RETURN_IF_ERROR(owned->PromoteAttribute(table, column));
  }
  return owned;
}

std::vector<JoinPath> EnumerateReferencePaths(
    const SchemaGraph& graph, const ResolvedReferenceSpec& resolved,
    const DistinctConfig& config) {
  PathEnumerationOptions options;
  options.max_length = config.max_path_length;
  if (config.exclude_identity_first_step) {
    for (int e = 0; e < graph.num_edges(); ++e) {
      const SchemaEdge& edge = graph.edge(e);
      if (edge.table_id == resolved.reference_table_id &&
          edge.column == resolved.identity_column) {
        options.forbidden_first_steps.push_back(
            JoinStep{e, /*forward=*/true});
      }
    }
  }
  return EnumerateJoinPaths(graph, resolved.reference_table_id, options);
}

StatusOr<SimilarityModel> TrainSimilarityModel(
    const Database& db, const ReferenceSpec& spec,
    const DistinctConfig& config, FeatureExtractor& extractor,
    TrainingReport* report) {
  Stopwatch total;
  DISTINCT_TRACE_SPAN("train");

  // Oversample negatives so that enough *linked* distinct-author pairs are
  // available for the hard-negative mix.
  TrainingSetOptions sampling = config.training;
  sampling.num_negative *= std::max(config.negative_oversample, 1);
  auto pairs = [&] {
    DISTINCT_TRACE_SPAN("training_set");
    return BuildTrainingSet(db, spec, sampling);
  }();
  DISTINCT_RETURN_IF_ERROR(pairs.status());
  DISTINCT_COUNTER_ADD("train.pairs_sampled",
                       static_cast<int64_t>(pairs->size()));

  Stopwatch features_watch;
  SvmProblem resem_problem;
  SvmProblem walk_problem;

  // Similarity-kernel phase 1: profiles of every reference that appears in
  // a training pair, fanned out over the configured thread count; phase 2:
  // per-pair features from the frozen store, also parallel. Both phases
  // are bit-identical to the serial extractor loop.
  std::vector<int32_t> unique_refs;
  {
    std::unordered_set<int32_t> seen;
    for (const TrainingPair& pair : *pairs) {
      if (seen.insert(pair.ref1).second) {
        unique_refs.push_back(pair.ref1);
      }
      if (seen.insert(pair.ref2).second) {
        unique_refs.push_back(pair.ref2);
      }
    }
  }
  DISTINCT_COUNTER_ADD("train.unique_refs",
                       static_cast<int64_t>(unique_refs.size()));
  DISTINCT_LOG(INFO) << "train: " << pairs->size() << " pairs over "
                     << unique_refs.size() << " unique references, "
                     << extractor.num_paths() << " join paths";
  std::unique_ptr<ThreadPool> pool;
  if (config.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(config.num_threads);
  }
  const ProfileStore store = [&] {
    DISTINCT_TRACE_SPAN("profile_store");
    return ProfileStore::Build(extractor.engine(), extractor.paths(),
                               extractor.propagation_options(), unique_refs,
                               pool.get());
  }();
  std::vector<PairFeatures> pair_features(pairs->size());
  const auto features_of = [&](int64_t p) {
    const TrainingPair& pair = (*pairs)[static_cast<size_t>(p)];
    pair_features[static_cast<size_t>(p)] =
        store.Features(static_cast<size_t>(store.IndexOf(pair.ref1)),
                       static_cast<size_t>(store.IndexOf(pair.ref2)));
  };
  {
    DISTINCT_TRACE_SPAN("pair_features");
    if (pool != nullptr) {
      ParallelForShared(*pool, static_cast<int64_t>(pairs->size()),
                        features_of);
    } else {
      for (size_t p = 0; p < pairs->size(); ++p) {
        features_of(static_cast<int64_t>(p));
      }
    }
  }

  // Positives go in unchanged; negative candidates are ranked by how many
  // join paths link them (pairs linked along many paths — e.g. shared
  // venues — are the confusable ones the SVM must learn to discount; pairs
  // sharing only a publication year score low).
  struct NegativeCandidate {
    PairFeatures features;
    int linked_paths = 0;
    size_t order = 0;  // original sampling order, for determinism
  };
  std::vector<NegativeCandidate> negatives;
  for (size_t p = 0; p < pairs->size(); ++p) {
    const TrainingPair& pair = (*pairs)[p];
    PairFeatures features = std::move(pair_features[p]);
    if (pair.label > 0) {
      resem_problem.x.push_back(std::move(features.resemblance));
      resem_problem.y.push_back(+1);
      walk_problem.x.push_back(std::move(features.walk));
      walk_problem.y.push_back(+1);
      continue;
    }
    NegativeCandidate candidate;
    for (const double f : features.resemblance) {
      if (f > 0.0) {
        ++candidate.linked_paths;
      }
    }
    candidate.features = std::move(features);
    candidate.order = negatives.size();
    negatives.push_back(std::move(candidate));
  }

  const int target_negatives = config.training.num_negative;
  const int target_hard = static_cast<int>(
      std::min(1.0, std::max(0.0, config.hard_negative_fraction)) *
      static_cast<double>(target_negatives));
  // Hard slots: the most-linked candidates. Easy slots: the remaining
  // candidates in sampling order.
  std::vector<size_t> by_hardness(negatives.size());
  for (size_t i = 0; i < negatives.size(); ++i) {
    by_hardness[i] = i;
  }
  std::stable_sort(by_hardness.begin(), by_hardness.end(),
                   [&](size_t a, size_t b) {
                     return negatives[a].linked_paths >
                            negatives[b].linked_paths;
                   });
  std::vector<bool> selected(negatives.size(), false);
  int taken = 0;
  for (size_t rank = 0; rank < by_hardness.size() && taken < target_hard;
       ++rank) {
    const size_t i = by_hardness[rank];
    if (negatives[i].linked_paths == 0) {
      break;
    }
    selected[i] = true;
    ++taken;
  }
  for (size_t i = 0; i < negatives.size() && taken < target_negatives; ++i) {
    if (!selected[i]) {
      selected[i] = true;
      ++taken;
    }
  }
  for (size_t i = 0; i < negatives.size(); ++i) {
    if (!selected[i]) {
      continue;
    }
    resem_problem.x.push_back(std::move(negatives[i].features.resemblance));
    resem_problem.y.push_back(-1);
    walk_problem.x.push_back(std::move(negatives[i].features.walk));
    walk_problem.y.push_back(-1);
  }
  const double seconds_features = features_watch.Seconds();

  Stopwatch svm_watch;
  MaxAbsScaler resem_scaler;
  resem_scaler.Fit(resem_problem.x);
  SvmProblem scaled_resem{resem_scaler.TransformAll(resem_problem.x),
                          resem_problem.y};
  auto resem_model = [&] {
    DISTINCT_TRACE_SPAN("svm_resemblance");
    return TrainLinearSvm(scaled_resem, config.svm);
  }();
  DISTINCT_RETURN_IF_ERROR(resem_model.status());

  MaxAbsScaler walk_scaler;
  walk_scaler.Fit(walk_problem.x);
  SvmProblem scaled_walk{walk_scaler.TransformAll(walk_problem.x),
                         walk_problem.y};
  auto walk_model = [&] {
    DISTINCT_TRACE_SPAN("svm_walk");
    return TrainLinearSvm(scaled_walk, config.svm);
  }();
  DISTINCT_RETURN_IF_ERROR(walk_model.status());
  const double seconds_svm = svm_watch.Seconds();

  // Map weights back to raw feature space; the similarity model consumes
  // unscaled features at resolve time.
  std::vector<std::string> path_names;
  path_names.reserve(extractor.num_paths());
  // Path names are attached by the caller (which owns the schema graph);
  // left empty here.
  SimilarityModel model(resem_scaler.UnscaleWeights(resem_model->weights()),
                        walk_scaler.UnscaleWeights(walk_model->weights()),
                        std::move(path_names));
  model.ClampAndNormalize();

  // Suggested min-sim: the smallest composite-similarity threshold that
  // still classifies the training pairs with high precision.
  // Clustering recovers pairwise recall transitively (references merge
  // through their strong links, and average-link aggregation then bridges
  // the rest), so the useful operating point is precision-constrained
  // rather than pairwise-F1-optimal.
  double suggested_min_sim = 0.0;
  {
    DISTINCT_TRACE_SPAN("calibrate_min_sim");
    constexpr double kPrecisionTarget = 0.99;
    std::vector<std::pair<double, int>> scored;  // (similarity, label)
    scored.reserve(resem_problem.x.size());
    for (size_t i = 0; i < resem_problem.x.size(); ++i) {
      PairFeatures features;
      features.resemblance = resem_problem.x[i];
      features.walk = walk_problem.x[i];
      const double sim = std::sqrt(model.Resemblance(features) *
                                   model.Walk(features));
      scored.emplace_back(sim, resem_problem.y[i]);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    int64_t tp = 0;
    int64_t fp = 0;
    for (size_t i = 0; i < scored.size(); ++i) {
      tp += scored[i].second > 0 ? 1 : 0;
      fp += scored[i].second > 0 ? 0 : 1;
      if (i + 1 < scored.size() && scored[i + 1].first == scored[i].first) {
        continue;  // don't cut between equal scores
      }
      const double precision =
          static_cast<double>(tp) / static_cast<double>(tp + fp);
      if (precision >= kPrecisionTarget && scored[i].first > 0.0) {
        const double next = i + 1 < scored.size() ? scored[i + 1].first : 0.0;
        suggested_min_sim = 0.5 * (scored[i].first + next);
      }
    }
  }

  if (report != nullptr) {
    report->suggested_min_sim = suggested_min_sim;
    report->num_paths = static_cast<int>(extractor.num_paths());
    report->num_training_pairs = resem_problem.x.size();
    report->num_unique_refs = unique_refs.size();
    report->seconds_features = seconds_features;
    report->seconds_svm = seconds_svm;
    report->seconds_total = total.Seconds();
    report->train_accuracy_resem = resem_model->Accuracy(scaled_resem);
    report->train_accuracy_walk = walk_model->Accuracy(scaled_walk);
  }
  DISTINCT_LOG(INFO) << "train: done in " << total.Seconds()
                     << "s (features " << seconds_features << "s, svm "
                     << seconds_svm << "s), suggested min-sim "
                     << suggested_min_sim;
  return model;
}

}  // namespace distinct
