// Evaluating a trained engine against generator ground truth — the glue
// shared by the benchmark harnesses, the examples, and the integration
// tests.

#ifndef DISTINCT_CORE_EVALUATION_H_
#define DISTINCT_CORE_EVALUATION_H_

#include <string>
#include <vector>

#include "core/distinct.h"
#include "dblp/generator.h"
#include "eval/metrics.h"

namespace distinct {

/// One resolved-and-scored ambiguous case.
struct CaseEvaluation {
  std::string name;
  int num_entities = 0;
  size_t num_refs = 0;
  ClusteringResult clustering;
  PairwiseScores scores;
};

/// Resolves `c`'s references with `engine` and scores the result.
StatusOr<CaseEvaluation> EvaluateCase(Distinct& engine,
                                      const AmbiguousCase& c);

/// Evaluates every case.
StatusOr<std::vector<CaseEvaluation>> EvaluateCases(
    Distinct& engine, const std::vector<AmbiguousCase>& cases);

/// Unweighted averages over cases (the paper averages per name).
struct AggregateScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;
};

AggregateScores Aggregate(const std::vector<CaseEvaluation>& evaluations);

/// Pairwise model similarities of one case, computed once so clustering can
/// be re-run cheaply under different options (min-sim sweeps, ablations).
struct CaseMatrices {
  const AmbiguousCase* ambiguous_case = nullptr;
  PairMatrix resem{0};
  PairMatrix walk{0};
};

/// Computes matrices for every case.
StatusOr<std::vector<CaseMatrices>> ComputeCaseMatrices(
    Distinct& engine, const std::vector<AmbiguousCase>& cases);

/// Clusters precomputed matrices under `options` and scores each case.
std::vector<CaseEvaluation> EvaluateWithOptions(
    const std::vector<CaseMatrices>& matrices,
    const AgglomerativeOptions& options);

/// Sweeps min-sim over `grid` and returns the value maximizing average F1
/// (the paper tunes baselines this way). `options` supplies measure/combine.
double BestMinSim(const std::vector<CaseMatrices>& matrices,
                  AgglomerativeOptions options,
                  const std::vector<double>& grid);

/// A default log-spaced min-sim grid.
std::vector<double> DefaultMinSimGrid();

}  // namespace distinct

#endif  // DISTINCT_CORE_EVALUATION_H_
