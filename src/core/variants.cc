#include "core/variants.h"

namespace distinct {

const char* MethodVariantName(MethodVariant variant) {
  switch (variant) {
    case MethodVariant::kDistinct:
      return "DISTINCT";
    case MethodVariant::kUnsupervisedCombined:
      return "unsupervised combined measure";
    case MethodVariant::kSupervisedResem:
      return "supervised set resemblance";
    case MethodVariant::kSupervisedWalk:
      return "supervised random walk";
    case MethodVariant::kUnsupervisedResem:
      return "unsupervised set resemblance";
    case MethodVariant::kUnsupervisedWalk:
      return "unsupervised random walk";
  }
  return "unknown";
}

std::vector<MethodVariant> AllMethodVariants() {
  return {
      MethodVariant::kDistinct,
      MethodVariant::kUnsupervisedCombined,
      MethodVariant::kSupervisedResem,
      MethodVariant::kSupervisedWalk,
      MethodVariant::kUnsupervisedResem,
      MethodVariant::kUnsupervisedWalk,
  };
}

DistinctConfig ApplyVariant(DistinctConfig base, MethodVariant variant) {
  switch (variant) {
    case MethodVariant::kDistinct:
      base.supervised = true;
      base.measure = ClusterMeasure::kComposite;
      break;
    case MethodVariant::kUnsupervisedCombined:
      base.supervised = false;
      base.measure = ClusterMeasure::kComposite;
      break;
    case MethodVariant::kSupervisedResem:
      base.supervised = true;
      base.measure = ClusterMeasure::kResemblanceOnly;
      break;
    case MethodVariant::kSupervisedWalk:
      base.supervised = true;
      base.measure = ClusterMeasure::kWalkOnly;
      break;
    case MethodVariant::kUnsupervisedResem:
      base.supervised = false;
      base.measure = ClusterMeasure::kResemblanceOnly;
      break;
    case MethodVariant::kUnsupervisedWalk:
      base.supervised = false;
      base.measure = ClusterMeasure::kWalkOnly;
      break;
  }
  return base;
}

}  // namespace distinct
