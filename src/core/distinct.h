// DISTINCT: the public entry point of this library.
//
// Typical use:
//   auto dataset = GenerateDblpDataset({});                    // or your DB
//   auto engine = Distinct::Create(dataset->db, DblpReferenceSpec(), {});
//   auto result = engine->ResolveName("Wei Wang");
//   // result->clustering.assignment groups result->refs by real person.
//
// Create() builds the schema/link graphs, enumerates join paths, and (by
// default) constructs the automatic training set and fits the SVM path
// weights — the paper's offline phase. ResolveName()/ResolveRefs() run the
// per-name clustering — the paper's online phase.

#ifndef DISTINCT_CORE_DISTINCT_H_
#define DISTINCT_CORE_DISTINCT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/agglomerative.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "prop/propagation.h"
#include "relational/join_path.h"
#include "relational/reference_spec.h"
#include "prop/workspace.h"
#include "sim/feature_vector.h"
#include "sim/parallel_kernel.h"
#include "sim/profile_arena.h"
#include "sim/profile_store.h"
#include "sim/similarity_model.h"
#include "svm/linear_svm.h"
#include "train/training_set.h"

namespace distinct {

struct DatabaseDelta;  // core/delta.h
struct DeltaReport;    // core/delta.h

/// Everything configurable about the pipeline. The defaults mirror the
/// paper's setup on DBLP.
struct DistinctConfig {
  // --- Join paths ---
  /// Maximum join-path length ("coauthors of coauthors" needs 4).
  int max_path_length = 4;
  /// Skip paths that start by following the reference's own name edge;
  /// every resembling reference shares that neighbor by definition.
  bool exclude_identity_first_step = true;
  /// Non-key attributes to promote to tuples, as (table, column) pairs.
  /// Empty means none (use DblpDefaultPromotions() for the DBLP set).
  std::vector<std::pair<std::string, std::string>> promotions;
  PropagationOptions propagation;
  /// Byte budget (in MiB) of the shared subtree memo used by the default
  /// workspace propagation engine; Create() copies it into
  /// propagation.cache_bytes. 0 disables memo storage — propagation still
  /// runs on dense scratch and results are unchanged, only slower.
  int propagation_cache_mb = 64;

  // --- Path-weight model ---
  /// false: uniform weights (the unsupervised baselines of Fig. 4).
  bool supervised = true;
  TrainingSetOptions training;
  SvmParams svm;
  /// Fraction of negative examples drawn from *linked* distinct-author
  /// pairs (pairs with at least one nonzero path similarity). Random
  /// negatives are mostly unlinked, which would teach the SVM that any
  /// linkage implies equivalence; hard negatives make it learn which
  /// linkage types discriminate. Negatives are oversampled
  /// `negative_oversample`x to find enough linked ones.
  double hard_negative_fraction = 0.5;
  int negative_oversample = 4;

  // --- Clustering ---
  /// Merge floor (the paper's min-sim). Calibrated on the standard
  /// synthetic dataset (see bench_minsim_sweep).
  double min_sim = 3e-2;
  /// Extension: derive min_sim from the training pairs instead of using
  /// the fixed value — the threshold that best classifies the automatic
  /// positive/negative pairs by their composite similarity. Removes the
  /// per-dataset calibration (supervised mode only).
  bool auto_min_sim = false;
  ClusterMeasure measure = ClusterMeasure::kComposite;
  CombineRule combine = CombineRule::kGeometricMean;
  /// When to stop merging: the paper's fixed min-sim floor, or the
  /// threshold-free largest-gap extension.
  StoppingRule stopping = StoppingRule::kFixedThreshold;
  /// When false, cluster-pair sums are recomputed from the base matrices at
  /// every merge (the §4.2 cost ablation strawman).
  bool incremental = true;

  // --- Execution ---
  /// Worker threads for the intra-name similarity kernel: per-reference
  /// profile propagation and the tiled pair-matrix fill both fan out over
  /// one shared pool. 1 keeps everything on the calling thread. Results
  /// are bit-identical across thread counts.
  int num_threads = 1;
  /// Which pair kernel fills the similarity matrices. kFused (the default)
  /// streams a flat profile arena and skips provably-zero pairs via an
  /// inverted-index candidate set; bit-identical to kReference, which runs
  /// the three-pass merges over the per-profile vectors.
  PairKernelType kernel = PairKernelType::kFused;
  /// Fused kernel only, opt-in: additionally skip candidate pairs whose
  /// mass-bound combined-similarity upper bound is below min_sim when the
  /// matrices feed clustering (ResolveName/ResolveRefs and the bulk
  /// scans). A pruned pair can never trigger a singleton merge, but its
  /// cell reads 0.0 instead of a sub-floor value, and sub-floor cells
  /// still contribute to Average-Link cluster sums — so pruning is an
  /// approximation that may shift merges whose cluster-pair average sits
  /// near the floor (DESIGN.md §11 has the three-reference
  /// counterexample). Off by default; ComputeMatrices() never prunes
  /// regardless — its matrices serve threshold sweeps below min_sim.
  bool kernel_pruning = false;
  /// Merge-join ISA of the fused kernel (sim/intersect.h). kAuto resolves
  /// once to the fastest variant this host supports (AVX2 where present,
  /// galloping otherwise); explicit values pin one variant, with an avx2
  /// request on a host or build without it degrading to scalar. Every
  /// variant returns bit-identical matrices — this is purely a speed knob.
  KernelIsa kernel_isa = KernelIsa::kAuto;
  /// Per-shard memory budget (in MiB) of the sharded bulk scan
  /// (core/scan_shard.h). Sizes the shard's SubtreeCache and bounds how
  /// many concurrent PropagationWorkspaces (and therefore worker threads)
  /// a shard may use; a name group whose pair matrices alone would exceed
  /// the budget fails its shard instead of OOMing the process. 0 = no
  /// bound. Results are bit-identical at every budget that completes.
  int64_t scan_memory_mb = 0;
  /// Catalog generation stamp carried into checkpoints. When the database
  /// was materialised from an on-disk columnar catalog (catalog/reader.h)
  /// the caller seeds this with the catalog's generation, so --resume and
  /// append --delta reject checkpoints taken against a different ingest
  /// generation even when the row counts happen to agree. 0 (in-memory
  /// datasets) keeps the engine-local versioning that starts at zero and
  /// increments per applied delta.
  int64_t base_catalog_version = 0;
  /// Enables the process-wide metrics registry and span tracer
  /// (src/obs/) for this engine. Create() flips the global obs switch;
  /// when false (the default) every instrumentation site reduces to a
  /// single relaxed load + branch, so benchmark numbers and the
  /// bit-identical parallel-kernel guarantee are unaffected.
  bool observability = false;
};

/// Timings and diagnostics from Create().
struct TrainingReport {
  int num_paths = 0;
  size_t num_training_pairs = 0;
  size_t num_unique_refs = 0;      // distinct references in training pairs
  double seconds_features = 0.0;   // propagation + merges
  double seconds_svm = 0.0;
  double seconds_total = 0.0;
  double train_accuracy_resem = 0.0;  // SVM fit on its own training set
  double train_accuracy_walk = 0.0;
  /// Composite-similarity threshold that best separates the training
  /// pairs; what auto_min_sim installs (0 when not trained).
  double suggested_min_sim = 0.0;
};

/// A trained object-distinction engine bound to one database.
class Distinct {
 public:
  /// Builds graphs, enumerates paths, and fits the model. `db` must outlive
  /// the engine.
  static StatusOr<Distinct> Create(const Database& db,
                                   const ReferenceSpec& spec,
                                   DistinctConfig config = {});

  /// Like Create, but installs a previously trained model (see
  /// sim/similarity_model_io.h) instead of training. The model must have
  /// one weight pair per enumerated join path; when it carries path names
  /// they must match the current schema's paths (drift detection).
  static StatusOr<Distinct> CreateWithModel(const Database& db,
                                            const ReferenceSpec& spec,
                                            DistinctConfig config,
                                            SimilarityModel model);

  Distinct(Distinct&&) = default;
  Distinct& operator=(Distinct&&) = default;
  Distinct(const Distinct&) = delete;
  Distinct& operator=(const Distinct&) = delete;

  /// A resolved name: the references found and their grouping.
  struct ResolveResult {
    std::vector<int32_t> refs;  // rows of the reference table
    ClusteringResult clustering;
  };

  /// Groups every reference carrying `name` (NotFound if the name is
  /// absent).
  StatusOr<ResolveResult> ResolveName(const std::string& name);

  /// Groups an explicit set of (resembling) references.
  StatusOr<ClusteringResult> ResolveRefs(const std::vector<int32_t>& refs);

  /// Everything ResolveRefs computes on the way to a clustering, kept so a
  /// later delta can be spliced in instead of recomputed from scratch: the
  /// profile store, its flattened arena (patched in place across deltas so
  /// the fused kernel never re-flattens the whole group), both pair
  /// matrices, and the clustering itself. The store + arena are the
  /// resident cost (~2x 24 bytes per profile entry); the matrices are
  /// O(refs²) doubles.
  struct ResolveArtifacts {
    ProfileStore store;
    ProfileArena arena;
    PairMatrix resem;
    PairMatrix walk;
    ClusteringResult clustering;
  };

  /// ResolveRefs, returning the intermediate artifacts for caching (the
  /// clustering inside is exactly what ResolveRefs(refs) returns).
  StatusOr<ResolveArtifacts> ResolveRefsArtifacts(
      const std::vector<int32_t>& refs);

  /// Splice-updates `cached` (artifacts over a prefix of `refs`) after an
  /// ApplyDelta: recomputes only the profiles of references listed in
  /// `dirty_refs` (sorted row ids — DeltaReport::dirty_refs) plus the
  /// appended suffix, patches the pair-matrix cells with a dirty endpoint,
  /// and re-clusters. `dirty_ref_path_masks` (optional, aligned with
  /// `dirty_refs` — DeltaReport::dirty_ref_path_masks) further restricts
  /// each dirty reference's profile recompute to the flagged paths; empty
  /// means all paths. Bit-identical to ResolveRefsArtifacts(refs), at cost
  /// proportional to the dirty rows rather than the whole group.
  /// InvalidArgument when cached.store.refs() is not a prefix of `refs`
  /// (append-only deltas keep existing references in place).
  StatusOr<ResolveArtifacts> PatchResolveArtifacts(
      ResolveArtifacts cached, const std::vector<int32_t>& refs,
      const std::vector<int32_t>& dirty_refs,
      const std::vector<uint64_t>& dirty_ref_path_masks = {});

  /// Ingests appended rows without rebuilding the engine. `db` must be the
  /// database this engine was created over; `delta` holds rows to append
  /// per table. The delta is validated (arity, types, primary-key
  /// uniqueness, foreign-key resolvability — against existing and pending
  /// rows alike) before anything mutates, so a bad delta leaves database
  /// and engine untouched. On success the link graph is extended in place,
  /// the name index absorbs the new name/reference rows, stale subtree
  /// memo entries are dropped, and the report lists every name whose
  /// evidence changed (and therefore must be re-resolved — see
  /// core/delta.h's IncrementalCatalog for the cached-resolution layer).
  /// Resolutions computed after ApplyDelta are bit-identical to a fresh
  /// Create() over the appended database with the same model.
  StatusOr<DeltaReport> ApplyDelta(Database& db, const DatabaseDelta& delta);

  /// Bumped once per successful ApplyDelta (0 at Create).
  int64_t catalog_version() const { return catalog_version_; }
  /// Total database rows covered by the current catalog state; checkpoints
  /// record it so --resume can reject plans that predate appended data.
  int64_t tuple_watermark() const { return tuple_watermark_; }

  /// Pairwise model-combined similarity matrices for `refs` — (set
  /// resemblance, random walk). Useful for min-sim sweeps: compute once,
  /// cluster many times with ClusterReferences(). Always exact: the
  /// mass-bound prune is never applied here, so every cell carries its
  /// true value even below config.min_sim.
  StatusOr<std::pair<PairMatrix, PairMatrix>> ComputeMatrices(
      const std::vector<int32_t>& refs);

  /// All reference rows whose name equals `name` (possibly empty). Served
  /// from the name index built at Create() time — no table scan per query.
  StatusOr<std::vector<int32_t>> RefsForName(const std::string& name) const;

  /// Every (name, reference rows) group in name-table row order, built once
  /// at Create() time. Rows of several same-named name-table entries are
  /// one group. ScanNameGroups(engine, ...) filters this index instead of
  /// rescanning the database.
  const std::vector<std::pair<std::string, std::vector<int32_t>>>&
  name_groups() const {
    return name_groups_;
  }

  const DistinctConfig& config() const { return config_; }
  const std::vector<JoinPath>& paths() const;
  /// The stateless propagation engine; safe to share across threads (build
  /// a shared ProfileStore, or one FeatureExtractor per thread, on top of
  /// it).
  const PropagationEngine& propagation_engine() const { return *engine_; }
  const SimilarityModel& model() const { return model_; }
  const TrainingReport& report() const { return report_; }
  const SchemaGraph& schema_graph() const { return *schema_graph_; }

  /// Clustering options derived from config (measure/combine/min_sim).
  AgglomerativeOptions cluster_options() const;

  /// Pair-kernel options derived from config. With `for_clustering`, the
  /// mass-bound prune is armed at the clusterer's merge floor (when
  /// config.kernel_pruning allows); matrices handed back to callers — who
  /// may sweep thresholds below min_sim — must pass false.
  PairKernelOptions kernel_options(bool for_clustering) const;

 private:
  Distinct() = default;

  /// Shared body of ComputeMatrices/ResolveRefs: profile build + pair fill
  /// under explicit kernel options (only the prune arming differs).
  std::pair<PairMatrix, PairMatrix> ComputeMatricesWithOptions(
      const std::vector<int32_t>& refs, const PairKernelOptions& options);

  /// Lazily creates the engine-lifetime subtree memo + workspace pool
  /// (kWorkspace only), then builds the profiles of `refs`.
  ProfileStore BuildProfileStore(const std::vector<int32_t>& refs);

  const Database* db_ = nullptr;
  ResolvedReferenceSpec resolved_;
  DistinctConfig config_;
  // unique_ptr keeps addresses stable across moves (members hold borrowed
  // pointers to each other).
  std::unique_ptr<SchemaGraph> schema_graph_;
  std::unique_ptr<LinkGraph> link_graph_;
  std::unique_ptr<PropagationEngine> engine_;
  std::unique_ptr<FeatureExtractor> extractor_;
  SimilarityModel model_;
  TrainingReport report_;
  /// Kernel pool, created at Create() when config.num_threads > 1; null in
  /// serial mode.
  std::unique_ptr<ThreadPool> pool_;
  /// name -> position in name_groups_ (groups in name-table row order).
  std::vector<std::pair<std::string, std::vector<int32_t>>> name_groups_;
  std::unordered_map<std::string, size_t> name_index_;
  /// name-table primary key -> position in name_groups_; lets ApplyDelta
  /// route appended reference rows to their group without a rescan.
  std::unordered_map<int64_t, size_t> name_group_of_pk_;
  /// Engine-lifetime subtree memo + workspace pool, created lazily by the
  /// first ComputeMatricesWithOptions under the kWorkspace engine so warm
  /// suffix distributions survive across queries; ApplyDelta erases only
  /// the entries its delta dirtied and recreates the workspaces (their
  /// dense slabs are sized at first acquire and never grow).
  std::unique_ptr<SubtreeCache> memo_;
  std::unique_ptr<WorkspacePool> workspaces_;
  int64_t catalog_version_ = 0;
  int64_t tuple_watermark_ = 0;
};

}  // namespace distinct

#endif  // DISTINCT_CORE_DISTINCT_H_
