// TCP transport of the resident disambiguation service.
//
// One listening socket on localhost, one thread per connection, requests
// framed one JSON object per line (serve/protocol.h). Everything heavy
// lives in ServeService — a connection thread only reads a line, calls
// Handle(), and writes the response, so connection count is bounded by
// file descriptors while kernel concurrency is bounded by the service's
// admission control.
//
// Shutdown drains: Shutdown() stops the accept loop, then half-closes
// every live connection (shutdown(SHUT_RD)) — the in-flight request
// finishes and its response is still written, the next read sees EOF, and
// the thread exits. This is what makes `kill -TERM` on the CLI a graceful
// drain rather than a dropped query.

#ifndef DISTINCT_SERVE_SERVER_H_
#define DISTINCT_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/service.h"

namespace distinct {
namespace serve {

struct ServerOptions {
  /// Bind address. Loopback by default: the service speaks an
  /// unauthenticated plaintext protocol, so exposing it beyond the host
  /// is an explicit operator decision.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read back via port()).
  uint16_t port = 0;
};

class ServeServer {
 public:
  /// `service` must outlive the server.
  ServeServer(ServeService* service, ServerOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens, and starts the accept thread. InvalidArgument for a
  /// bad host, Internal for bind/listen failures (port in use, ...).
  Status Start();

  /// The bound port (after Start(); resolves port 0 requests).
  uint16_t port() const { return port_; }

  /// Graceful drain; idempotent, also run by the destructor. Returns once
  /// every connection thread has exited.
  void Shutdown();

  /// Live connection count (tests poll this).
  int64_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void Serve(int fd);

  ServeService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> connections_{0};
  std::thread accept_thread_;
  std::mutex shutdown_mutex_;
  bool stopped_ = false;  // guarded by shutdown_mutex_

  std::mutex mutex_;  // conn_fds_ + conn_threads_
  /// fd of every live connection, for the shutdown half-close.
  std::unordered_map<uint64_t, int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  uint64_t next_conn_id_ = 0;
};

}  // namespace serve
}  // namespace distinct

#endif  // DISTINCT_SERVE_SERVER_H_
