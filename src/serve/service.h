// Query execution for the resident disambiguation service, independent of
// any socket: the server (serve/server.h), the stress driver (bench_serve)
// and the tests all drive this layer directly.
//
// A ServeService wraps one trained, immutable Distinct engine and pins the
// warm state a batch scan builds per run: a scan-wide SubtreeCache (suffix
// distributions computed for one name are hits for every later name that
// reaches the same junction tuples), a WorkspacePool capping dense scratch
// at one workspace per concurrent worker, and one kernel ThreadPool. On
// top of the warm state it layers the three serving mechanisms:
//
//  - Request batching (single-flight): concurrent queries for the same
//    name coalesce onto one kernel invocation — the first caller computes,
//    the rest wait on the flight and share the leader's answer (and the
//    leader's error: a coalesced follower inherits a deadline_exceeded).
//  - Deadlines: each query gets a CancelToken with its steady-clock
//    deadline; the pair-matrix fill abandons work at the next tile/row
//    boundary and the query reports deadline_exceeded. The half-filled
//    matrices are discarded, never cached.
//  - Admission control: a query over n references is priced at
//    EstimatedGroupMatrixBytes(n) — the same formula the sharded scan
//    budgets with. It is admitted only when MemoryTracker standing bytes
//    plus the estimates already reserved by in-flight queries plus its own
//    estimate fit in the memory budget (scan_memory_mb); otherwise it is
//    rejected as `overloaded` with a retry_after_ms hint. Reservations are
//    deliberately conservative: an in-flight query is counted both by its
//    reservation and (as its matrices materialize) by the tracker, so the
//    bound holds with margin rather than by luck.
//
// Answers are bit-identical to the batch path: the executor is the same
// ProfileStore::Build → ComputePairMatrices → ClusterReferences sequence
// as Distinct::ResolveRefs, sharing the memo exactly like the bulk scan —
// memo hits return what misses would compute, so warmth never changes a
// result.

#ifndef DISTINCT_SERVE_SERVICE_H_
#define DISTINCT_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/distinct.h"
#include "obs/heartbeat.h"
#include "prop/workspace.h"
#include "serve/protocol.h"

namespace distinct {
namespace serve {

struct ServiceOptions {
  /// Kernel threads shared by every in-flight query (propagation fan-out +
  /// matrix tiles, via ParallelForShared). 0 = engine config num_threads.
  int num_threads = 0;
  /// Queries allowed past admission at once (resolve/classify only —
  /// stats/health always answer). Excess is rejected as overloaded.
  int max_inflight = 64;
  /// Default per-query deadline in ms when the request carries none;
  /// 0 = no deadline. A request's own deadline_ms is honoured up to this
  /// value when set (a client cannot outlive the server's cap).
  int64_t default_deadline_ms = 0;
  /// Memory budget in MiB for admission (the engine's scan_memory_mb);
  /// 0 = admit on slots alone.
  int64_t memory_budget_mb = 0;
  /// Completed answers kept for exact re-serving, FIFO-evicted. 0 off.
  size_t result_cache_entries = 4096;
  /// Publish liveness counters here instead of the service's own state
  /// (the CLI points this at the ProgressState its HeartbeatReporter
  /// samples). Must outlive the service. Null = internal state, still
  /// reachable via progress().
  obs::ProgressState* progress = nullptr;
};

/// Plain-value counters snapshot; also serialized by StatsJson().
struct ServiceStats {
  int64_t queries = 0;            // resolve/classify requests seen
  int64_t answered = 0;           // successful answers (incl. cache/batch)
  int64_t batched = 0;            // coalesced onto another query's flight
  int64_t cache_hits = 0;
  int64_t rejected_inflight = 0;  // admission: no slot
  int64_t rejected_memory = 0;    // admission: over memory budget
  int64_t deadline_exceeded = 0;
  int64_t not_found = 0;
  int64_t inflight = 0;           // currently admitted
  int64_t reserved_bytes = 0;     // live admission reservations
  /// Max over admissions of tracked bytes + reservations at admit time:
  /// the bench asserts this never exceeded the budget.
  int64_t admission_peak_bytes = 0;
  int64_t cache_entries = 0;
};

class ServeService {
 public:
  /// `engine` must outlive the service and must not be mutated while
  /// serving (ApplyDelta and serving are mutually exclusive phases).
  ServeService(const Distinct& engine, ServiceOptions options);

  /// Parses and executes one request line; always returns one response
  /// line (no trailing newline) — errors included.
  std::string HandleLine(std::string_view line);

  /// Executes a parsed request against `now`'s admission/deadline state.
  std::string Handle(const ServeRequest& request);

  /// The resolve executor with an explicit deadline, for deterministic
  /// tests (`time_point::min()` = already expired,
  /// `time_point::max()` = none). Covers admission, cache, and
  /// single-flight exactly like Handle().
  StatusOr<ResolveAnswer> ResolveNameAt(
      const std::string& name, std::chrono::steady_clock::time_point deadline);

  ServiceStats stats() const;
  std::string StatsJson() const;
  std::string HealthJson() const;

  /// Liveness counters for a HeartbeatReporter: groups_done = answered
  /// queries, refs_done = references resolved.
  obs::ProgressState* progress() { return progress_; }

  const ServiceOptions& options() const { return options_; }

 private:
  /// One in-flight computation of a name, shared by coalesced queries.
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Status status;
    std::shared_ptr<const ResolveAnswer> answer;  // null on error
  };

  /// RAII admission: slot + byte reservation, released on destruction.
  class Admission;

  StatusOr<std::shared_ptr<const ResolveAnswer>> ResolveShared(
      const std::string& name,
      std::chrono::steady_clock::time_point deadline);
  StatusOr<std::shared_ptr<const ResolveAnswer>> ComputeAnswer(
      const std::vector<int32_t>& refs,
      std::chrono::steady_clock::time_point deadline);
  Status Admit(int64_t estimate_bytes, int64_t* reserved_out);
  void Release(bool slot, int64_t reserved_bytes);
  void CacheInsert(const std::string& name,
                   std::shared_ptr<const ResolveAnswer> answer);
  std::chrono::steady_clock::time_point DeadlineFor(
      const ServeRequest& request) const;

  const Distinct& engine_;
  ServiceOptions options_;
  int64_t budget_bytes_ = 0;  // 0 = unbounded
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<SubtreeCache> memo_;
  std::unique_ptr<WorkspacePool> workspaces_;
  /// reference row -> position in engine.name_groups(), for classify_row.
  std::unordered_map<int32_t, size_t> group_of_row_;

  mutable std::mutex mutex_;  // flights + cache
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
  std::unordered_map<std::string, std::shared_ptr<const ResolveAnswer>>
      cache_;
  std::deque<std::string> cache_fifo_;

  std::atomic<int64_t> inflight_{0};
  std::atomic<int64_t> reserved_bytes_{0};
  std::atomic<int64_t> admission_peak_bytes_{0};

  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> answered_{0};
  std::atomic<int64_t> batched_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> rejected_inflight_{0};
  std::atomic<int64_t> rejected_memory_{0};
  std::atomic<int64_t> deadline_exceeded_{0};
  std::atomic<int64_t> not_found_{0};

  obs::ProgressState owned_progress_;
  obs::ProgressState* progress_ = &owned_progress_;  // ctor honours options
};

}  // namespace serve
}  // namespace distinct

#endif  // DISTINCT_SERVE_SERVICE_H_
