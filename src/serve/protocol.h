// Wire protocol of the resident disambiguation service.
//
// One request per line, one response per line, both JSON objects — the
// simplest framing that composes with netcat, shell scripts, and any
// language's socket library. Requests carry a client-chosen `id` echoed in
// the response so a client may pipeline.
//
// Methods:
//   {"id":1,"method":"resolve_name","name":"Wei Wang","deadline_ms":250}
//   {"id":2,"method":"classify_row","row":17}
//   {"id":3,"method":"stats"}
//   {"id":4,"method":"health"}
//
// Success responses carry `"ok":true` plus the method's payload; the
// resolution payload (refs, assignment, merges) round-trips doubles via
// %.17g so a response compares bit-identical to the batch ResolveRefs
// answer. Errors carry `"ok":false` and an `error` object:
//   {"id":1,"ok":false,"error":{"code":"overloaded",
//    "message":"...","retry_after_ms":50}}
// with codes: invalid_argument, not_found, deadline_exceeded, overloaded,
// unavailable, internal.

#ifndef DISTINCT_SERVE_PROTOCOL_H_
#define DISTINCT_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/agglomerative.h"
#include "common/status.h"

namespace distinct {
namespace serve {

/// Protocol schema version, reported by `health`.
inline constexpr int kProtocolVersion = 1;

/// Hard per-line cap enforced by the transport before parsing: a request
/// longer than this is rejected (and the connection closed) instead of
/// buffered without bound.
inline constexpr size_t kMaxRequestBytes = 1 << 20;

/// Largest deadline a request (or the server's --deadline-ms default) may
/// carry; anything above is a parse error, not a silent clamp.
inline constexpr int64_t kMaxDeadlineMs = 60'000;

enum class Method {
  kResolveName,  // cluster every reference carrying a name
  kClassifyRow,  // resolve the name group containing one reference row
  kStats,        // serving counters (queries, batching, admission, cache)
  kHealth,       // liveness + protocol version
};

const char* MethodName(Method method);

struct ServeRequest {
  int64_t id = 0;
  Method method = Method::kHealth;
  std::string name;         // kResolveName
  int64_t row = -1;         // kClassifyRow
  /// Per-query deadline override in milliseconds; 0 = server default,
  /// capped by the server's --deadline-ms.
  int64_t deadline_ms = 0;
};

/// Parses one request line. InvalidArgument on malformed JSON, unknown
/// methods, missing/mistyped fields, or out-of-range ids/deadlines.
StatusOr<ServeRequest> ParseRequest(std::string_view line);

/// A resolution payload: the reference rows and their clustering, exactly
/// as the batch path produces them.
struct ResolveAnswer {
  std::vector<int32_t> refs;
  ClusteringResult clustering;
};

/// Success response for resolve_name (and, with `row`/`cluster` >= 0,
/// classify_row). No trailing newline — the transport frames.
std::string AnswerResponseJson(int64_t id, Method method,
                               const std::string& name,
                               const ResolveAnswer& answer,
                               int64_t row = -1, int cluster = -1);

/// Success response with a caller-built payload object (stats, health):
/// {"id":N,"ok":true,"<key>":<payload_json>}.
std::string ObjectResponseJson(int64_t id, const std::string& key,
                               const std::string& payload_json);

/// Error response. `retry_after_ms` >= 0 adds the overload backoff hint.
std::string ErrorResponseJson(int64_t id, const Status& status,
                              int64_t retry_after_ms = -1);

/// Wire name of an error code ("deadline_exceeded", "overloaded", ...).
const char* WireErrorCode(StatusCode code);

}  // namespace serve
}  // namespace distinct

#endif  // DISTINCT_SERVE_PROTOCOL_H_
