#include "serve/service.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/cancel.h"

#include "common/stopwatch.h"
#include "core/scan_shard.h"
#include "obs/json_writer.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "sim/profile_store.h"

namespace distinct {
namespace serve {

namespace {

/// Backoff hint attached to overloaded rejections. A constant is honest
/// here: admission pressure is dominated by whichever mega-name is in
/// flight, whose latency the server cannot predict per-request.
constexpr int64_t kRetryAfterMs = 50;

constexpr int64_t kMiB = 1024 * 1024;

}  // namespace

/// RAII release of admitted capacity — an inflight slot and/or a byte
/// reservation — so every early return on the query path gives it back.
class ServeService::Admission {
 public:
  Admission(ServeService* service, bool slot, int64_t reserved)
      : service_(service), slot_(slot), reserved_(reserved) {}
  ~Admission() { service_->Release(slot_, reserved_); }
  Admission(const Admission&) = delete;
  Admission& operator=(const Admission&) = delete;

 private:
  ServeService* service_;
  bool slot_;
  int64_t reserved_;
};

ServeService::ServeService(const Distinct& engine, ServiceOptions options)
    : engine_(engine), options_(options) {
  options_.max_inflight = std::max(1, options_.max_inflight);
  budget_bytes_ = options_.memory_budget_mb > 0
                      ? options_.memory_budget_mb * kMiB
                      : 0;
  const int threads = std::max(
      1, options_.num_threads > 0 ? options_.num_threads
                                  : engine.config().num_threads);
  options_.num_threads = threads;
  pool_ = std::make_unique<ThreadPool>(threads);
  // The warm state the bulk scan builds per run, pinned for the server's
  // lifetime (see ResolveAllNamesParallel for the sharing argument).
  if (engine.config().propagation.algorithm ==
      PropagationAlgorithm::kWorkspace) {
    memo_ = std::make_unique<SubtreeCache>(
        engine.config().propagation.cache_bytes);
    workspaces_ =
        std::make_unique<WorkspacePool>(engine.propagation_engine().link());
  }
  if (options_.progress != nullptr) {
    progress_ = options_.progress;
  }
  const auto& groups = engine.name_groups();
  int64_t total_refs = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const int32_t row : groups[g].second) {
      group_of_row_.emplace(row, g);
    }
    total_refs += static_cast<int64_t>(groups[g].second.size());
  }
  progress_->groups_total.store(static_cast<int64_t>(groups.size()),
                                std::memory_order_relaxed);
  progress_->refs_total.store(total_refs, std::memory_order_relaxed);
}

std::chrono::steady_clock::time_point ServeService::DeadlineFor(
    const ServeRequest& request) const {
  int64_t ms = options_.default_deadline_ms;
  if (request.deadline_ms > 0) {
    // The request may only tighten the server's cap, never extend it.
    ms = ms > 0 ? std::min(ms, request.deadline_ms) : request.deadline_ms;
  }
  if (ms <= 0) {
    return std::chrono::steady_clock::time_point::max();
  }
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

std::string ServeService::HandleLine(std::string_view line) {
  auto request = ParseRequest(line);
  if (!request.ok()) {
    return ErrorResponseJson(0, request.status());
  }
  return Handle(*request);
}

std::string ServeService::Handle(const ServeRequest& request) {
  Stopwatch watch;
  std::string response;
  switch (request.method) {
    case Method::kResolveName: {
      queries_.fetch_add(1, std::memory_order_relaxed);
      auto answer = ResolveShared(request.name, DeadlineFor(request));
      response = answer.ok()
                     ? AnswerResponseJson(request.id, Method::kResolveName,
                                          request.name, **answer)
                     : ErrorResponseJson(
                           request.id, answer.status(),
                           answer.status().code() ==
                                   StatusCode::kResourceExhausted
                               ? kRetryAfterMs
                               : -1);
      DISTINCT_HISTOGRAM_RECORD("serve.resolve_name_nanos",
                                watch.ElapsedNanos());
      break;
    }
    case Method::kClassifyRow: {
      queries_.fetch_add(1, std::memory_order_relaxed);
      const auto row = static_cast<int32_t>(request.row);
      auto it = group_of_row_.find(row);
      if (request.row > INT32_MAX || it == group_of_row_.end()) {
        not_found_.fetch_add(1, std::memory_order_relaxed);
        response = ErrorResponseJson(
            request.id, NotFoundError("serve: no reference row " +
                                      std::to_string(request.row)));
      } else {
        const std::string& name = engine_.name_groups()[it->second].first;
        auto answer = ResolveShared(name, DeadlineFor(request));
        if (!answer.ok()) {
          response = ErrorResponseJson(
              request.id, answer.status(),
              answer.status().code() == StatusCode::kResourceExhausted
                  ? kRetryAfterMs
                  : -1);
        } else {
          const std::vector<int32_t>& refs = (*answer)->refs;
          const size_t pos = static_cast<size_t>(
              std::find(refs.begin(), refs.end(), row) - refs.begin());
          const int cluster =
              pos < refs.size() ? (*answer)->clustering.assignment[pos] : -1;
          response = AnswerResponseJson(request.id, Method::kClassifyRow,
                                        name, **answer, request.row,
                                        cluster);
        }
      }
      DISTINCT_HISTOGRAM_RECORD("serve.classify_row_nanos",
                                watch.ElapsedNanos());
      break;
    }
    case Method::kStats:
      response = ObjectResponseJson(request.id, "stats", StatsJson());
      DISTINCT_HISTOGRAM_RECORD("serve.stats_nanos", watch.ElapsedNanos());
      break;
    case Method::kHealth:
      response = ObjectResponseJson(request.id, "health", HealthJson());
      DISTINCT_HISTOGRAM_RECORD("serve.health_nanos", watch.ElapsedNanos());
      break;
  }
  return response;
}

StatusOr<ResolveAnswer> ServeService::ResolveNameAt(
    const std::string& name,
    std::chrono::steady_clock::time_point deadline) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  auto answer = ResolveShared(name, deadline);
  if (!answer.ok()) {
    return answer.status();
  }
  return **answer;
}

StatusOr<std::shared_ptr<const ResolveAnswer>> ServeService::ResolveShared(
    const std::string& name,
    std::chrono::steady_clock::time_point deadline) {
  // Inflight slots bound concurrency for every query, cached or not: a
  // stampede of cache hits is cheap, but the slot check is what keeps a
  // stampede of distinct cold names from all reaching the kernel at once.
  int64_t inflight = inflight_.load(std::memory_order_relaxed);
  for (;;) {
    if (inflight >= options_.max_inflight) {
      rejected_inflight_.fetch_add(1, std::memory_order_relaxed);
      return ResourceExhaustedError(
          "serve: " + std::to_string(inflight) +
          " queries in flight (max " +
          std::to_string(options_.max_inflight) + ")");
    }
    if (inflight_.compare_exchange_weak(inflight, inflight + 1,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
  Admission slot(this, /*slot=*/true, /*reserved=*/0);

  auto refs = engine_.RefsForName(name);
  if (!refs.ok()) {
    return refs.status();
  }
  if (refs->empty()) {
    not_found_.fetch_add(1, std::memory_order_relaxed);
    return NotFoundError("serve: no references named '" + name + "'");
  }

  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto cached = cache_.find(name); cached != cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      answered_.fetch_add(1, std::memory_order_relaxed);
      return cached->second;
    }
    auto it = flights_.find(name);
    if (it != flights_.end()) {
      flight = it->second;
    } else {
      flight = std::make_shared<Flight>();
      flights_.emplace(name, flight);
      leader = true;
    }
  }

  if (!leader) {
    // Coalesce: wait for the leader's answer under our own deadline — a
    // follower never outlives its budget just because the leader has a
    // laxer one.
    batched_.fetch_add(1, std::memory_order_relaxed);
    DISTINCT_COUNTER_ADD("serve.batched", 1);
    std::unique_lock<std::mutex> lock(flight->mutex);
    if (!flight->cv.wait_until(lock, deadline,
                               [&] { return flight->done; })) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      return DeadlineExceededError(
          "serve: deadline expired waiting on coalesced query '" + name +
          "'");
    }
    if (!flight->status.ok()) {
      if (flight->status.code() == StatusCode::kDeadlineExceeded) {
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      }
      return flight->status;
    }
    answered_.fetch_add(1, std::memory_order_relaxed);
    return flight->answer;
  }

  // Leader: pay memory admission, compute, publish to flight + cache.
  StatusOr<std::shared_ptr<const ResolveAnswer>> result =
      [&]() -> StatusOr<std::shared_ptr<const ResolveAnswer>> {
    int64_t reserved = 0;
    DISTINCT_RETURN_IF_ERROR(Admit(
        EstimatedGroupMatrixBytes(static_cast<int64_t>(refs->size())),
        &reserved));
    Admission reservation(this, /*slot=*/false, reserved);
    return ComputeAnswer(*refs, deadline);
  }();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    flights_.erase(name);
    if (result.ok()) {
      CacheInsert(name, *result);
    }
  }
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->done = true;
    flight->status = result.ok() ? Status::Ok() : result.status();
    if (result.ok()) {
      flight->answer = *result;
    }
  }
  flight->cv.notify_all();

  if (!result.ok()) {
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    }
    return result.status();
  }
  answered_.fetch_add(1, std::memory_order_relaxed);
  progress_->groups_done.fetch_add(1, std::memory_order_relaxed);
  progress_->refs_done.fetch_add(
      static_cast<int64_t>((*result)->refs.size()),
      std::memory_order_relaxed);
  return *result;
}

StatusOr<std::shared_ptr<const ResolveAnswer>> ServeService::ComputeAnswer(
    const std::vector<int32_t>& refs,
    std::chrono::steady_clock::time_point deadline) {
  // A token is only materialized for bounded queries: an unbounded one
  // passes a null token and the fill runs the exact branch-free-checked
  // batch path.
  std::optional<CancelToken> token;
  if (deadline != std::chrono::steady_clock::time_point::max()) {
    token.emplace(deadline);
    if (token->CheckAbort()) {
      return DeadlineExceededError(
          "serve: deadline expired before compute");
    }
  }

  // The exact batch sequence (Distinct::ResolveRefs via the shared warm
  // state, like ResolveAllNamesParallel): memo hits return precisely what
  // misses would compute, so the answer is bit-identical to a cold batch
  // run.
  const ProfileStore store = ProfileStore::Build(
      engine_.propagation_engine(), engine_.paths(),
      engine_.config().propagation, refs, pool_.get(),
      ProfileStore::kMinParallelRefs, memo_.get(), workspaces_.get());
  PairKernelOptions kernel = engine_.kernel_options(/*for_clustering=*/true);
  kernel.cancel = token.has_value() ? &*token : nullptr;
  auto matrices =
      ComputePairMatrices(store, engine_.model(), pool_.get(), kernel);
  if (token.has_value() && token->aborted()) {
    // The fill stopped at a tile/row boundary; the matrices are partial
    // and are dropped here, never clustered and never cached.
    return DeadlineExceededError("serve: deadline expired in pair kernel");
  }
  auto answer = std::make_shared<ResolveAnswer>();
  answer->refs = refs;
  answer->clustering = ClusterReferences(matrices.first, matrices.second,
                                         engine_.cluster_options());
  return std::shared_ptr<const ResolveAnswer>(std::move(answer));
}

Status ServeService::Admit(int64_t estimate_bytes, int64_t* reserved_out) {
  *reserved_out = 0;
  if (budget_bytes_ <= 0) {
    return Status::Ok();
  }
  int64_t reserved = reserved_bytes_.load(std::memory_order_relaxed);
  for (;;) {
    const int64_t standing =
        obs::MemoryTracker::Global().TrackedTotalBytes();
    const int64_t would_be = standing + reserved + estimate_bytes;
    if (would_be > budget_bytes_) {
      rejected_memory_.fetch_add(1, std::memory_order_relaxed);
      DISTINCT_COUNTER_ADD("serve.rejected", 1);
      return ResourceExhaustedError(
          "serve: query estimate " + std::to_string(estimate_bytes) +
          " bytes over budget (" + std::to_string(standing) +
          " standing + " + std::to_string(reserved) + " reserved of " +
          std::to_string(budget_bytes_) + ")");
    }
    if (reserved_bytes_.compare_exchange_weak(reserved,
                                              reserved + estimate_bytes,
                                              std::memory_order_relaxed)) {
      *reserved_out = estimate_bytes;
      int64_t peak = admission_peak_bytes_.load(std::memory_order_relaxed);
      while (peak < would_be && !admission_peak_bytes_.compare_exchange_weak(
                                    peak, would_be,
                                    std::memory_order_relaxed)) {
      }
      return Status::Ok();
    }
  }
}

void ServeService::Release(bool slot, int64_t reserved_bytes) {
  if (reserved_bytes > 0) {
    reserved_bytes_.fetch_sub(reserved_bytes, std::memory_order_relaxed);
  }
  if (slot) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ServeService::CacheInsert(const std::string& name,
                               std::shared_ptr<const ResolveAnswer> answer) {
  // Caller holds mutex_.
  if (options_.result_cache_entries == 0) {
    return;
  }
  if (cache_.emplace(name, std::move(answer)).second) {
    cache_fifo_.push_back(name);
    while (cache_fifo_.size() > options_.result_cache_entries) {
      cache_.erase(cache_fifo_.front());
      cache_fifo_.pop_front();
    }
  }
}

ServiceStats ServeService::stats() const {
  ServiceStats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.answered = answered_.load(std::memory_order_relaxed);
  stats.batched = batched_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.rejected_inflight =
      rejected_inflight_.load(std::memory_order_relaxed);
  stats.rejected_memory = rejected_memory_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.not_found = not_found_.load(std::memory_order_relaxed);
  stats.inflight = inflight_.load(std::memory_order_relaxed);
  stats.reserved_bytes = reserved_bytes_.load(std::memory_order_relaxed);
  stats.admission_peak_bytes =
      admission_peak_bytes_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.cache_entries = static_cast<int64_t>(cache_.size());
  }
  return stats;
}

std::string ServeService::StatsJson() const {
  const ServiceStats stats = this->stats();
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("queries").Value(stats.queries);
  json.Key("answered").Value(stats.answered);
  json.Key("batched").Value(stats.batched);
  json.Key("cache_hits").Value(stats.cache_hits);
  json.Key("cache_entries").Value(stats.cache_entries);
  json.Key("rejected_inflight").Value(stats.rejected_inflight);
  json.Key("rejected_memory").Value(stats.rejected_memory);
  json.Key("deadline_exceeded").Value(stats.deadline_exceeded);
  json.Key("not_found").Value(stats.not_found);
  json.Key("inflight").Value(stats.inflight);
  json.Key("reserved_bytes").Value(stats.reserved_bytes);
  json.Key("admission_peak_bytes").Value(stats.admission_peak_bytes);
  json.Key("tracked_bytes")
      .Value(obs::MemoryTracker::Global().TrackedTotalBytes());
  json.Key("budget_bytes").Value(budget_bytes_);
  json.EndObject();
  return json.str();
}

std::string ServeService::HealthJson() const {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("status").Value("serving");
  json.Key("protocol").Value(kProtocolVersion);
  json.Key("names")
      .Value(static_cast<int64_t>(engine_.name_groups().size()));
  json.Key("catalog_version").Value(engine_.catalog_version());
  json.Key("threads").Value(options_.num_threads);
  json.Key("max_inflight").Value(options_.max_inflight);
  json.EndObject();
  return json.str();
}

}  // namespace serve
}  // namespace distinct
