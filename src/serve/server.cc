#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/io_util.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace distinct {
namespace serve {

namespace {

/// Accept-loop poll granularity: the stop flag is observed within this
/// bound even when no client ever connects.
constexpr int kAcceptPollMs = 200;

void CloseQuietly(int fd) {
  if (fd >= 0) {
    while (::close(fd) != 0 && errno == EINTR) {
    }
  }
}

}  // namespace

ServeServer::ServeServer(ServeService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

ServeServer::~ServeServer() { Shutdown(); }

Status ServeServer::Start() {
  // A client that disappears mid-response must surface as EPIPE on
  // write(), not kill the process.
  IgnoreSigPipe();

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("serve: bad bind address '" +
                                options_.host + "'");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return InternalError(std::string("serve: socket: ") +
                         std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status error = InternalError(
        "serve: cannot bind " + options_.host + ":" +
        std::to_string(options_.port) + ": " + std::strerror(errno));
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return error;
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    const Status error =
        InternalError(std::string("serve: listen: ") + std::strerror(errno));
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return error;
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  DISTINCT_LOG(INFO) << "serve: listening on " << options_.host << ":"
                     << port_;
  return Status::Ok();
}

void ServeServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;  // transient (ECONNABORTED, EINTR, fd exhaustion)
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      CloseQuietly(fd);
      break;
    }
    const uint64_t id = next_conn_id_++;
    conn_fds_.emplace(id, fd);
    connections_.fetch_add(1, std::memory_order_relaxed);
    DISTINCT_COUNTER_ADD("serve.connections", 1);
    conn_threads_.emplace_back([this, id, fd] {
      Serve(fd);
      {
        std::lock_guard<std::mutex> inner(mutex_);
        conn_fds_.erase(id);
      }
      CloseQuietly(fd);
      connections_.fetch_sub(1, std::memory_order_relaxed);
    });
  }
}

void ServeServer::Serve(int fd) {
  FdLineReader reader(fd, kMaxRequestBytes, "serve");
  std::string line;
  bool eof = false;
  for (;;) {
    const Status read = reader.ReadLine(&line, &eof);
    if (!read.ok()) {
      // Oversized or unreadable request: answer once, then drop the
      // connection — the stream offset is no longer trustworthy.
      const std::string response = ErrorResponseJson(0, read) + "\n";
      (void)WriteFdAll(fd, response, "serve");
      return;
    }
    if (eof) {
      return;
    }
    if (line.empty()) {
      continue;  // blank keep-alive line
    }
    const std::string response = service_->HandleLine(line) + "\n";
    if (!WriteFdAll(fd, response, "serve").ok()) {
      return;  // client went away; nothing left to tell it
    }
  }
}

void ServeServer::Shutdown() {
  // Serialized end to end: a second caller blocks until the first drain
  // finishes, then sees stopped_ and returns.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (stopped_) {
    return;
  }
  stopped_ = true;
  stopping_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  CloseQuietly(listen_fd_);
  listen_fd_ = -1;

  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Half-close: in-flight requests complete and their responses are
    // written; the next ReadLine sees EOF and the thread exits.
    for (const auto& [id, fd] : conn_fds_) {
      ::shutdown(fd, SHUT_RD);
    }
    threads.swap(conn_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  DISTINCT_LOG(INFO) << "serve: drained and stopped";
}

}  // namespace serve
}  // namespace distinct
