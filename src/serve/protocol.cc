#include "serve/protocol.h"

#include "obs/json_reader.h"
#include "obs/json_writer.h"

namespace distinct {
namespace serve {

namespace {


Status BadRequest(const std::string& what) {
  return InvalidArgumentError("serve request: " + what);
}

}  // namespace

const char* MethodName(Method method) {
  switch (method) {
    case Method::kResolveName:
      return "resolve_name";
    case Method::kClassifyRow:
      return "classify_row";
    case Method::kStats:
      return "stats";
    case Method::kHealth:
      return "health";
  }
  return "unknown";
}

StatusOr<ServeRequest> ParseRequest(std::string_view line) {
  obs::JsonReader reader(line, "serve request");
  auto root = reader.Parse();
  if (!root.ok()) {
    return BadRequest("malformed JSON: " + root.status().message());
  }
  if (root->kind != obs::JsonValue::Kind::kObject) {
    return BadRequest("expected a JSON object");
  }

  ServeRequest request;
  const obs::JsonValue* id = root->Find("id");
  if (id != nullptr) {
    if (id->kind != obs::JsonValue::Kind::kInt) {
      return BadRequest("'id' must be an integer");
    }
    request.id = id->int_value;
  }

  const obs::JsonValue* method = root->Find("method");
  if (method == nullptr || method->kind != obs::JsonValue::Kind::kString) {
    return BadRequest("missing string field 'method'");
  }
  if (method->string_value == "resolve_name") {
    request.method = Method::kResolveName;
    const obs::JsonValue* name = root->Find("name");
    if (name == nullptr || name->kind != obs::JsonValue::Kind::kString) {
      return BadRequest("resolve_name needs a string field 'name'");
    }
    request.name = name->string_value;
  } else if (method->string_value == "classify_row") {
    request.method = Method::kClassifyRow;
    const obs::JsonValue* row = root->Find("row");
    if (row == nullptr || row->kind != obs::JsonValue::Kind::kInt) {
      return BadRequest("classify_row needs an integer field 'row'");
    }
    if (row->int_value < 0) {
      return BadRequest("'row' must be >= 0");
    }
    request.row = row->int_value;
  } else if (method->string_value == "stats") {
    request.method = Method::kStats;
  } else if (method->string_value == "health") {
    request.method = Method::kHealth;
  } else {
    return BadRequest("unknown method '" + method->string_value + "'");
  }

  const obs::JsonValue* deadline = root->Find("deadline_ms");
  if (deadline != nullptr) {
    if (deadline->kind != obs::JsonValue::Kind::kInt ||
        deadline->int_value < 0 || deadline->int_value > kMaxDeadlineMs) {
      return BadRequest("'deadline_ms' must be an integer in [0, " +
                        std::to_string(kMaxDeadlineMs) + "]");
    }
    request.deadline_ms = deadline->int_value;
  }
  return request;
}

std::string AnswerResponseJson(int64_t id, Method method,
                               const std::string& name,
                               const ResolveAnswer& answer, int64_t row,
                               int cluster) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("id").Value(id);
  json.Key("ok").Value(true);
  json.Key("method").Value(MethodName(method));
  json.Key("name").Value(name);
  if (row >= 0) {
    json.Key("row").Value(row);
    json.Key("cluster").Value(cluster);
  }
  json.Key("refs").BeginArray();
  for (const int32_t ref : answer.refs) {
    json.Value(static_cast<int64_t>(ref));
  }
  json.EndArray();
  json.Key("assignment").BeginArray();
  for (const int a : answer.clustering.assignment) {
    json.Value(a);
  }
  json.EndArray();
  json.Key("num_clusters").Value(answer.clustering.num_clusters);
  // Full merge sequence, similarities in %.17g: equality of this document
  // is equality of the clustering down to the last bit, which is what the
  // serve-vs-batch differential tests compare.
  json.Key("merges").BeginArray();
  for (const MergeStep& merge : answer.clustering.merges) {
    json.BeginArray();
    json.Value(merge.into);
    json.Value(merge.from);
    json.Value(merge.similarity);
    json.EndArray();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string ObjectResponseJson(int64_t id, const std::string& key,
                               const std::string& payload_json) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("id").Value(id);
  json.Key("ok").Value(true);
  json.EndObject();
  std::string out = json.str();
  // Splice the pre-rendered payload before the closing brace; JsonWriter
  // has no raw-value escape hatch and the payload is already a JSON
  // object built by another writer.
  out.pop_back();
  out += ",\"" + key + "\":" + payload_json + "}";
  return out;
}

const char* WireErrorCode(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "overloaded";
    case StatusCode::kUnavailable:
      return "unavailable";
    default:
      return "internal";
  }
}

std::string ErrorResponseJson(int64_t id, const Status& status,
                              int64_t retry_after_ms) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("id").Value(id);
  json.Key("ok").Value(false);
  json.Key("error").BeginObject();
  json.Key("code").Value(WireErrorCode(status.code()));
  json.Key("message").Value(status.message());
  if (retry_after_ms >= 0) {
    json.Key("retry_after_ms").Value(retry_after_ms);
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

}  // namespace serve
}  // namespace distinct
