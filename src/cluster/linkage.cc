#include "cluster/linkage.h"

#include <algorithm>

#include "common/logging.h"

namespace distinct {

const char* LinkageToString(Linkage linkage) {
  switch (linkage) {
    case Linkage::kSingle:
      return "single-link";
    case Linkage::kComplete:
      return "complete-link";
    case Linkage::kAverage:
      return "average-link";
  }
  return "unknown";
}

ClusteringResult HierarchicalCluster(const PairMatrix& sim, Linkage linkage,
                                     double min_sim) {
  const size_t n = sim.size();
  ClusteringResult result;
  if (n == 0) {
    return result;
  }
  if (n == 1) {
    result.assignment = {0};
    result.num_clusters = 1;
    return result;
  }

  // Cluster-level similarity, updated by Lance-Williams rules on merge.
  PairMatrix cluster_sim(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      cluster_sim.set(i, j, sim.at(i, j));
    }
  }
  std::vector<bool> active(n, true);
  std::vector<size_t> sizes(n, 1);
  std::vector<int> parent(n);
  for (size_t i = 0; i < n; ++i) {
    parent[i] = static_cast<int>(i);
  }

  int merges = 0;
  while (true) {
    double best = -1.0;
    size_t best_a = 0;
    size_t best_b = 0;
    for (size_t a = 0; a < n; ++a) {
      if (!active[a]) continue;
      for (size_t b = 0; b < a; ++b) {
        if (!active[b]) continue;
        const double s = cluster_sim.at(a, b);
        if (s > best) {
          best = s;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best < min_sim || best < 0.0) {
      break;
    }

    // Merge best_b into best_a.
    for (size_t c = 0; c < n; ++c) {
      if (!active[c] || c == best_a || c == best_b) continue;
      const double sa = cluster_sim.at(best_a, c);
      const double sb = cluster_sim.at(best_b, c);
      double merged = 0.0;
      switch (linkage) {
        case Linkage::kSingle:
          merged = std::max(sa, sb);
          break;
        case Linkage::kComplete:
          merged = std::min(sa, sb);
          break;
        case Linkage::kAverage:
          merged = (sa * static_cast<double>(sizes[best_a]) +
                    sb * static_cast<double>(sizes[best_b])) /
                   static_cast<double>(sizes[best_a] + sizes[best_b]);
          break;
      }
      cluster_sim.set(best_a, c, merged);
    }
    sizes[best_a] += sizes[best_b];
    active[best_b] = false;
    parent[best_b] = static_cast<int>(best_a);
    ++merges;
  }

  // Path-compress parents into dense cluster ids.
  auto find_root = [&](size_t i) {
    size_t at = i;
    while (parent[at] != static_cast<int>(at)) {
      at = static_cast<size_t>(parent[at]);
    }
    return at;
  };
  std::vector<int> root_to_id(n, -1);
  result.assignment.assign(n, -1);
  int next_id = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t root = find_root(i);
    if (root_to_id[root] < 0) {
      root_to_id[root] = next_id++;
    }
    result.assignment[i] = root_to_id[root];
  }
  result.num_clusters = next_id;
  result.num_merges = merges;
  return result;
}

}  // namespace distinct
