#include "cluster/agglomerative.h"

#include <cmath>
#include <cstdint>
#include <numeric>
#include <queue>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace distinct {
namespace {

/// Rebuilds a flat clustering from the first `count` merges.
ClusteringResult ResultFromMerges(size_t n,
                                  const std::vector<MergeStep>& merges,
                                  size_t count) {
  DISTINCT_CHECK(count <= merges.size());
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find_root = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (size_t m = 0; m < count; ++m) {
    parent[static_cast<size_t>(find_root(merges[m].from))] =
        find_root(merges[m].into);
  }

  ClusteringResult result;
  result.assignment.assign(n, -1);
  std::vector<int> root_to_id(n, -1);
  int next_id = 0;
  for (size_t i = 0; i < n; ++i) {
    const int root = find_root(static_cast<int>(i));
    if (root_to_id[static_cast<size_t>(root)] < 0) {
      root_to_id[static_cast<size_t>(root)] = next_id++;
    }
    result.assignment[i] = root_to_id[static_cast<size_t>(root)];
  }
  result.num_clusters = next_id;
  result.num_merges = static_cast<int>(count);
  result.merges.assign(merges.begin(),
                       merges.begin() + static_cast<long>(count));
  return result;
}

/// Index after which to cut a merge sequence under the largest-gap rule:
/// the merge whose similarity drops the most (relatively) from its
/// predecessor starts the "should not have merged" tail. Returns
/// merges.size() when no drop is pronounced enough.
size_t LargestGapCut(const std::vector<MergeStep>& merges,
                     double gap_factor) {
  if (merges.size() < 2) {
    // Zero or one executed merge: the delta list is empty, so there is no
    // gap to inspect — keep every merge (the min-sim floor already vetted
    // each one).
    return merges.size();
  }
  size_t cut = merges.size();
  double best_ratio = 0.0;
  bool found = false;
  for (size_t m = 1; m < merges.size(); ++m) {
    const double previous = merges[m - 1].similarity;
    const double current = std::max(merges[m].similarity, 1e-300);
    const double ratio = previous / current;
    // A drop qualifies at gap_factor exactly (the documented "minimum
    // relative drop ... that counts"); among qualifying drops the largest
    // wins, earliest on ties.
    if (ratio >= gap_factor && ratio > best_ratio) {
      best_ratio = ratio;
      cut = m;
      found = true;
    }
  }
  return found ? cut : merges.size();
}

/// Incremental clustering state: active clusters with pairwise sums.
class MergeEngine {
 public:
  MergeEngine(const PairMatrix& resem, const PairMatrix& walk,
              const AgglomerativeOptions& options)
      : resem_(resem),
        walk_(walk),
        options_(options),
        n_(resem.size()),
        members_(n_),
        active_(n_, true),
        // The strawman recomputes sums from the base matrices, so only the
        // incremental engine pays for the O(n²) running-sum matrices.
        sum_resem_(options.incremental ? n_ : 0),
        sum_walk_(options.incremental ? n_ : 0) {
    DISTINCT_CHECK(walk.size() == n_);
    for (size_t i = 0; i < n_; ++i) {
      members_[i] = {static_cast<int>(i)};
    }
    if (options_.incremental) {
      for (size_t i = 0; i < n_; ++i) {
        for (size_t j = 0; j < i; ++j) {
          sum_resem_.set(i, j, resem.at(i, j));
          sum_walk_.set(i, j, walk.at(i, j));
        }
      }
    }
  }

  ClusteringResult Run() {
    // Lazy max-heap over candidate pairs: entries are invalidated by
    // bumping a cluster's version on merge (a pair's similarity only
    // changes when one of its clusters merges). Tie-breaking — larger
    // similarity, then smaller (a, b) — matches a full scan exactly.
    struct Candidate {
      double similarity;
      uint32_t a, b;       // a > b
      uint32_t va, vb;     // cluster versions at push time
      bool operator<(const Candidate& other) const {
        if (similarity != other.similarity) {
          return similarity < other.similarity;  // max-heap on similarity
        }
        if (a != other.a) {
          return a > other.a;  // then smallest a on top
        }
        return b > other.b;  // then smallest b
      }
    };
    std::vector<uint32_t> version(n_, 0);
    std::priority_queue<Candidate> heap;
    for (size_t a = 0; a < n_; ++a) {
      for (size_t b = 0; b < a; ++b) {
        const double sim = Similarity(a, b);
        if (sim >= options_.min_sim) {
          heap.push(Candidate{sim, static_cast<uint32_t>(a),
                              static_cast<uint32_t>(b), 0, 0});
        }
      }
    }

    std::vector<MergeStep> merges;
    int64_t stale_skips = 0;
    while (!heap.empty()) {
      const Candidate top = heap.top();
      heap.pop();
      const size_t a = top.a;
      const size_t b = top.b;
      if (!active_[a] || !active_[b] || version[a] != top.va ||
          version[b] != top.vb) {
        ++stale_skips;
        continue;  // stale entry
      }
      merges.push_back(
          MergeStep{static_cast<int>(a), static_cast<int>(b),
                    top.similarity});
      Merge(a, b);
      ++version[a];
      for (size_t c = 0; c < n_; ++c) {
        if (!active_[c] || c == a) continue;
        const double sim = Similarity(std::max(a, c), std::min(a, c));
        if (sim >= options_.min_sim) {
          heap.push(Candidate{sim,
                              static_cast<uint32_t>(std::max(a, c)),
                              static_cast<uint32_t>(std::min(a, c)),
                              version[std::max(a, c)],
                              version[std::min(a, c)]});
        }
      }
    }

    size_t keep = merges.size();
    if (options_.stopping == StoppingRule::kLargestGap) {
      keep = LargestGapCut(merges, options_.gap_factor);
      DISTINCT_COUNTER_ADD("cluster.gap_cut_merges_dropped",
                           static_cast<int64_t>(merges.size() - keep));
    }
    DISTINCT_COUNTER_ADD("cluster.merges", static_cast<int64_t>(keep));
    DISTINCT_COUNTER_ADD("cluster.stale_candidates_skipped", stale_skips);
    return ResultFromMerges(n_, merges, keep);
  }

 private:
  double Similarity(size_t a, size_t b) {
    const double pairs = static_cast<double>(members_[a].size()) *
                         static_cast<double>(members_[b].size());
    double sum_r;
    double sum_w;
    if (options_.incremental) {
      sum_r = sum_resem_.at(a, b);
      sum_w = sum_walk_.at(a, b);
    } else {
      // Strawman recomputation from the base matrices (cost ablation).
      sum_r = 0.0;
      sum_w = 0.0;
      for (const int i : members_[a]) {
        for (const int j : members_[b]) {
          sum_r += resem_.at(static_cast<size_t>(i), static_cast<size_t>(j));
          sum_w += walk_.at(static_cast<size_t>(i), static_cast<size_t>(j));
        }
      }
    }
    const double avg_resem = sum_r / pairs;
    // Collective walk: each cluster as one object whose mass starts spread
    // over its references; mean of the two directions.
    const double collective_walk =
        0.5 * sum_w *
        (1.0 / static_cast<double>(members_[a].size()) +
         1.0 / static_cast<double>(members_[b].size()));
    switch (options_.measure) {
      case ClusterMeasure::kResemblanceOnly:
        return avg_resem;
      case ClusterMeasure::kWalkOnly:
        return collective_walk;
      case ClusterMeasure::kComposite:
        break;
    }
    if (options_.combine == CombineRule::kArithmeticMean) {
      return 0.5 * (avg_resem + collective_walk);
    }
    return std::sqrt(std::max(avg_resem, 0.0) *
                     std::max(collective_walk, 0.0));
  }

  /// Folds cluster b into cluster a.
  void Merge(size_t a, size_t b) {
    if (options_.incremental) {
      for (size_t c = 0; c < n_; ++c) {
        if (!active_[c] || c == a || c == b) continue;
        sum_resem_.set(a, c, sum_resem_.at(a, c) + sum_resem_.at(b, c));
        sum_walk_.set(a, c, sum_walk_.at(a, c) + sum_walk_.at(b, c));
      }
    }
    members_[a].insert(members_[a].end(), members_[b].begin(),
                       members_[b].end());
    members_[b].clear();
    active_[b] = false;
  }

  const PairMatrix& resem_;
  const PairMatrix& walk_;
  const AgglomerativeOptions& options_;
  size_t n_;
  std::vector<std::vector<int>> members_;
  std::vector<bool> active_;
  PairMatrix sum_resem_;
  PairMatrix sum_walk_;
};

}  // namespace

std::string ClusteringResult::DebugString() const {
  return StrFormat("%zu references -> %d clusters (%d merges)",
                   assignment.size(), num_clusters, num_merges);
}

ClusteringResult ClusterReferences(const PairMatrix& resem,
                                   const PairMatrix& walk,
                                   const AgglomerativeOptions& options) {
  if (resem.size() == 0) {
    return ClusteringResult{};
  }
  if (resem.size() == 1) {
    ClusteringResult result;
    result.assignment = {0};
    result.num_clusters = 1;
    return result;
  }
  Stopwatch watch;
  MergeEngine engine(resem, walk, options);
  ClusteringResult result = engine.Run();
  DISTINCT_COUNTER_ADD("cluster.runs", 1);
  DISTINCT_COUNTER_ADD("cluster.refs_clustered",
                       static_cast<int64_t>(resem.size()));
  DISTINCT_HISTOGRAM_RECORD("cluster.run_nanos", watch.ElapsedNanos());
  return result;
}

}  // namespace distinct
