// DISTINCT's agglomerative clustering of references (paper §4).
//
// Starts from singleton clusters and repeatedly merges the most similar
// pair until the best similarity drops below `min_sim`. Cluster similarity
// is the composite measure
//   Sim(C1, C2) = sqrt(Resem(C1, C2) · WalkProb(C1, C2))
// where Resem is the Average-Link set resemblance and WalkProb the
// collective random walk probability (each cluster treated as one object).
// Merges are incremental (§4.2): the engine maintains the pairwise sums
//   sumR(Ca, Cb) = Σ resem(i, j),  sumW(Ca, Cb) = Σ walk(i, j)
// and folds sum(C1∪C2, Ci) = sum(C1, Ci) + sum(C2, Ci) at each merge, so a
// merge costs O(active clusters) instead of O(|C1|·|C2|) recomputation.

#ifndef DISTINCT_CLUSTER_AGGLOMERATIVE_H_
#define DISTINCT_CLUSTER_AGGLOMERATIVE_H_

#include <string>
#include <vector>

#include "cluster/pair_matrix.h"

namespace distinct {

/// Which cluster-similarity measure drives merging. The single-measure
/// modes are the Fig. 4 baselines.
enum class ClusterMeasure {
  kComposite,         // sqrt(avg resemblance · collective walk)
  kResemblanceOnly,   // Average-Link set resemblance
  kWalkOnly,          // collective random walk probability
};

/// How the two measures are combined in kComposite mode. The paper argues
/// for the geometric mean (arithmetic averaging lets the larger-scaled
/// measure drown the other); the arithmetic option exists for the ablation.
enum class CombineRule {
  kGeometricMean,
  kArithmeticMean,
};

/// When to stop merging.
enum class StoppingRule {
  /// The paper's rule: stop when the best similarity drops below min_sim.
  kFixedThreshold,
  /// Threshold-free extension: run the merge sequence down to min_sim,
  /// then cut it at the largest relative drop between consecutive merge
  /// similarities. Removes the per-dataset min-sim calibration at a small
  /// accuracy cost (see bench_ablation_stopping).
  kLargestGap,
};

struct AgglomerativeOptions {
  /// Merge floor: no merge below it under either stopping rule.
  double min_sim = 5e-4;
  ClusterMeasure measure = ClusterMeasure::kComposite;
  CombineRule combine = CombineRule::kGeometricMean;
  StoppingRule stopping = StoppingRule::kFixedThreshold;
  /// kLargestGap only: the minimum relative drop between consecutive merge
  /// similarities that counts as "the" gap; no cut is made when every drop
  /// is below it.
  double gap_factor = 3.0;
  /// When false, pairwise sums are recomputed from the base matrices at
  /// every step (the paper's strawman; exists for the cost ablation).
  bool incremental = true;
};

/// One executed merge (references by their pre-merge cluster slots, which
/// equal reference indices for singletons).
struct MergeStep {
  int into = -1;    // surviving slot
  int from = -1;    // absorbed slot
  double similarity = 0.0;
};

/// A flat clustering plus the dendrogram (merge sequence) that produced it.
struct ClusteringResult {
  /// assignment[i] = dense cluster id of reference i.
  std::vector<int> assignment;
  int num_clusters = 0;
  int num_merges = 0;
  /// The executed merges in order; merges.size() == num_merges.
  std::vector<MergeStep> merges;

  std::string DebugString() const;
};

/// Clusters `resem.size()` references. `resem` and `walk` must be the same
/// size; `walk` is ignored in kResemblanceOnly mode and `resem` in kWalkOnly
/// mode (pass either matrix twice if only one is available).
ClusteringResult ClusterReferences(const PairMatrix& resem,
                                   const PairMatrix& walk,
                                   const AgglomerativeOptions& options);

}  // namespace distinct

#endif  // DISTINCT_CLUSTER_AGGLOMERATIVE_H_
