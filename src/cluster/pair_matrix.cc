#include "cluster/pair_matrix.h"

#include <algorithm>

#include "common/logging.h"

namespace distinct {

PairMatrix::PairMatrix(size_t n, double init)
    : n_(n),
      cells_(n < 2 ? 0 : n * (n - 1) / 2, init),
      tracked_(obs::MemoryTracker::kPairMatrix) {
  tracked_.Set(static_cast<int64_t>(cells_.capacity() * sizeof(double)));
}

size_t PairMatrix::Index(size_t i, size_t j) const {
  DISTINCT_DCHECK(i < n_ && j < n_ && i != j);
  if (i < j) {
    std::swap(i, j);
  }
  return i * (i - 1) / 2 + j;
}

double PairMatrix::at(size_t i, size_t j) const {
  return cells_[Index(i, j)];
}

void PairMatrix::set(size_t i, size_t j, double value) {
  cells_[Index(i, j)] = value;
}

double PairMatrix::MaxValue() const {
  if (cells_.empty()) {
    return 0.0;
  }
  return *std::max_element(cells_.begin(), cells_.end());
}

}  // namespace distinct
