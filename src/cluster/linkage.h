// Classic hierarchical clustering with Single-, Complete-, and Average-Link
// over a single similarity matrix.
//
// The paper (§4.1) discusses why Single-Link (merges through one misleading
// linkage) and Complete-Link (breaks weakly linked partitions) are
// unsuitable; these implementations exist as library baselines and to back
// that discussion with measurements.

#ifndef DISTINCT_CLUSTER_LINKAGE_H_
#define DISTINCT_CLUSTER_LINKAGE_H_

#include "cluster/agglomerative.h"
#include "cluster/pair_matrix.h"

namespace distinct {

enum class Linkage {
  kSingle,    // max pairwise similarity
  kComplete,  // min pairwise similarity
  kAverage,   // mean pairwise similarity
};

const char* LinkageToString(Linkage linkage);

/// Agglomerates until no pair of clusters reaches `min_sim` under the given
/// linkage. Uses Lance-Williams-style incremental updates.
ClusteringResult HierarchicalCluster(const PairMatrix& sim, Linkage linkage,
                                     double min_sim);

}  // namespace distinct

#endif  // DISTINCT_CLUSTER_LINKAGE_H_
