// Symmetric pairwise-similarity matrix over n references.
//
// Stored as the strict lower triangle; the diagonal is not represented
// (self-similarity is never consulted by the clusterers).

#ifndef DISTINCT_CLUSTER_PAIR_MATRIX_H_
#define DISTINCT_CLUSTER_PAIR_MATRIX_H_

#include <cstddef>
#include <vector>

#include "obs/memory.h"

namespace distinct {

/// Dense symmetric matrix with O(n^2/2) storage.
class PairMatrix {
 public:
  /// n-by-n matrix initialized to `init`. n may be 0 or 1 (no pairs).
  explicit PairMatrix(size_t n, double init = 0.0);

  size_t size() const { return n_; }

  /// Value at (i, j), i != j, order-insensitive.
  double at(size_t i, size_t j) const;

  /// Sets (i, j) and (j, i). Requires i != j.
  void set(size_t i, size_t j, double value);

  /// Largest off-diagonal value; 0 for n < 2.
  double MaxValue() const;

 private:
  size_t Index(size_t i, size_t j) const;

  size_t n_;
  std::vector<double> cells_;
  obs::TrackedBytes tracked_;  // kPairMatrix gauge (obs/memory.h)
};

}  // namespace distinct

#endif  // DISTINCT_CLUSTER_PAIR_MATRIX_H_
