#include "common/flags.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace distinct {

void FlagParser::AddInt64(const std::string& name, int64_t default_value,
                          const std::string& help) {
  Flag flag;
  flag.type = Type::kInt64;
  flag.help = help;
  flag.int_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = help;
  flag.double_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.help = help;
  flag.bool_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  Flag flag;
  flag.type = Type::kString;
  flag.help = help;
  flag.string_value = default_value;
  flags_[name] = std::move(flag);
}

Status FlagParser::SetFromText(Flag& flag, const std::string& name,
                               const std::string& text) {
  switch (flag.type) {
    case Type::kInt64: {
      auto parsed = ParseInt64(text);
      if (!parsed.has_value()) {
        return InvalidArgumentError("flag --" + name +
                                    ": expected integer, got '" + text + "'");
      }
      flag.int_value = *parsed;
      return Status::Ok();
    }
    case Type::kDouble: {
      auto parsed = ParseDouble(text);
      if (!parsed.has_value()) {
        return InvalidArgumentError("flag --" + name +
                                    ": expected number, got '" + text + "'");
      }
      flag.double_value = *parsed;
      return Status::Ok();
    }
    case Type::kBool: {
      const std::string lower = ToLowerAscii(text);
      if (lower == "true" || lower == "1") {
        flag.bool_value = true;
      } else if (lower == "false" || lower == "0") {
        flag.bool_value = false;
      } else {
        return InvalidArgumentError("flag --" + name +
                                    ": expected bool, got '" + text + "'");
      }
      return Status::Ok();
    }
    case Type::kString:
      flag.string_value = text;
      return Status::Ok();
  }
  return InternalError("unreachable flag type");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }

    // `--no-name` sugar for boolean flags.
    if (!has_value && StartsWith(body, "no-")) {
      const std::string positive = body.substr(3);
      auto it = flags_.find(positive);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        it->second.bool_value = false;
        continue;
      }
    }

    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return InvalidArgumentError("unknown flag --" + body);
    }
    Flag& flag = it->second;

    if (!has_value) {
      if (flag.type == Type::kBool) {
        flag.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        return InvalidArgumentError("flag --" + body + ": missing value");
      }
      value = argv[++i];
    }
    DISTINCT_RETURN_IF_ERROR(SetFromText(flag, body, value));
  }
  return Status::Ok();
}

const FlagParser::Flag& FlagParser::GetChecked(const std::string& name,
                                               Type type) const {
  auto it = flags_.find(name);
  DISTINCT_CHECK(it != flags_.end());
  DISTINCT_CHECK(it->second.type == type);
  return it->second;
}

int64_t FlagParser::GetInt64(const std::string& name) const {
  return GetChecked(name, Type::kInt64).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return GetChecked(name, Type::kDouble).double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetChecked(name, Type::kBool).bool_value;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return GetChecked(name, Type::kString).string_value;
}

StatusOr<int64_t> FlagParser::GetInt64InRange(const std::string& name,
                                              int64_t min, int64_t max) const {
  const int64_t value = GetInt64(name);
  if (value < min || value > max) {
    return InvalidArgumentError(
        StrFormat("flag --%s: value %lld out of range [%lld, %lld]",
                  name.c_str(), static_cast<long long>(value),
                  static_cast<long long>(min), static_cast<long long>(max)));
  }
  return value;
}

StatusOr<int> FlagParser::GetIntInRange(const std::string& name, int min,
                                        int max) const {
  auto value = GetInt64InRange(name, min, max);
  if (!value.ok()) {
    return value.status();
  }
  return static_cast<int>(*value);
}

StatusOr<double> FlagParser::GetDoubleInRange(const std::string& name,
                                              double min, double max) const {
  const double value = GetDouble(name);
  if (!(value >= min && value <= max)) {  // rejects NaN too
    return InvalidArgumentError(
        StrFormat("flag --%s: value %g out of range [%g, %g]", name.c_str(),
                  value, min, max));
  }
  return value;
}

std::string FlagParser::Help() const {
  std::string out = "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name;
    switch (flag.type) {
      case Type::kInt64:
        out += StrFormat(" (int, default %lld)",
                         static_cast<long long>(flag.int_value));
        break;
      case Type::kDouble:
        out += StrFormat(" (double, default %g)", flag.double_value);
        break;
      case Type::kBool:
        out += StrFormat(" (bool, default %s)",
                         flag.bool_value ? "true" : "false");
        break;
      case Type::kString:
        out += " (string, default \"" + flag.string_value + "\")";
        break;
    }
    out += "\n      " + flag.help + "\n";
  }
  return out;
}

}  // namespace distinct
