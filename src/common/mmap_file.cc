#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace distinct {

StatusOr<MappedFile> MappedFile::Open(const std::string& path,
                                      const std::string& context) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return NotFoundError(context + ": no file '" + path + "'");
    }
    return InternalError(context + ": cannot open '" + path +
                         "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status error = InternalError(context + ": cannot stat '" + path +
                                       "': " + std::strerror(errno));
    ::close(fd);
    return error;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile(nullptr, 0);
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapped == MAP_FAILED) {
    return InternalError(context + ": mmap of '" + path +
                         "' failed: " + std::strerror(errno));
  }
  return MappedFile(static_cast<const char*>(mapped), size);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<char*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

}  // namespace distinct
