// Wall-clock timing. Originally written for the benchmark harnesses, now
// load-bearing in core: pipeline stage reports, bulk-scan statistics, and
// the observability histogram recorders all time with it.

#ifndef DISTINCT_COMMON_STOPWATCH_H_
#define DISTINCT_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace distinct {

/// Starts on construction; `Seconds()` reports elapsed wall time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

  /// Elapsed wall time in integer nanoseconds; monotonically non-decreasing
  /// across successive calls (steady clock). What the observability
  /// histograms record (obs/metrics.h).
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace distinct

#endif  // DISTINCT_COMMON_STOPWATCH_H_
