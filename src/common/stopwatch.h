// Wall-clock timing for the benchmark harnesses.

#ifndef DISTINCT_COMMON_STOPWATCH_H_
#define DISTINCT_COMMON_STOPWATCH_H_

#include <chrono>

namespace distinct {

/// Starts on construction; `Seconds()` reports elapsed wall time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace distinct

#endif  // DISTINCT_COMMON_STOPWATCH_H_
