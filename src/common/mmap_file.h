// Read-only memory-mapped files.
//
// The columnar catalog's reader hands out zero-copy views over its column
// and dictionary files; those views are only as safe as the mapping that
// backs them. MappedFile owns one PROT_READ/MAP_PRIVATE mapping with RAII
// unmap, so a view's lifetime question reduces to "is the MappedFile still
// alive" — the same discipline the rest of the tree uses for fds.

#ifndef DISTINCT_COMMON_MMAP_FILE_H_
#define DISTINCT_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"

namespace distinct {

/// A read-only mapping of one whole file. Move-only; the destructor
/// unmaps. An empty file maps to a valid object with size() == 0.
class MappedFile {
 public:
  /// Maps `path` read-only. ENOENT is NotFound; other failures Internal.
  static StatusOr<MappedFile> Open(const std::string& path,
                                   const std::string& context = "mmap");

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const { return std::string_view(data_, size_); }

 private:
  MappedFile(const char* data, size_t size) : data_(data), size_(size) {}

  const char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace distinct

#endif  // DISTINCT_COMMON_MMAP_FILE_H_
