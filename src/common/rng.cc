#include "common/rng.h"

#include <cmath>

namespace distinct {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& word : state_) {
    word = SplitMix64Next(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DISTINCT_DCHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = Next();
  while (value >= limit) {
    value = Next();
  }
  return lo + static_cast<int64_t>(value % range);
}

double Rng::UniformDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

int Rng::Poisson(double mean) {
  DISTINCT_DCHECK(mean > 0.0);
  const double threshold = std::exp(-mean);
  int k = 0;
  double product = UniformDouble();
  while (product > threshold) {
    ++k;
    product *= UniformDouble();
  }
  return k;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    DISTINCT_DCHECK(w >= 0.0);
    total += w;
  }
  DISTINCT_CHECK(total > 0.0);
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // Floating-point slack: last positive bucket.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DISTINCT_CHECK(k <= n);
  // Floyd's algorithm: O(k) expected inserts, exact uniformity.
  std::vector<size_t> result;
  result.reserve(k);
  std::vector<bool> chosen(n, false);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(j)));
    if (chosen[t]) {
      t = j;
    }
    chosen[t] = true;
    result.push_back(t);
  }
  Shuffle(result);
  return result;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  DISTINCT_CHECK(n >= 1);
  DISTINCT_CHECK(s > 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_[rank] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  // Binary search for the first rank whose cumulative probability exceeds u.
  size_t lo = 0;
  size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] <= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::Probability(size_t rank) const {
  DISTINCT_CHECK(rank < cdf_.size());
  if (rank == 0) {
    return cdf_[0];
  }
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace distinct
