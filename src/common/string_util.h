// Small string helpers shared across the library.

#ifndef DISTINCT_COMMON_STRING_UTIL_H_
#define DISTINCT_COMMON_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace distinct {

/// Splits `text` on `sep`, keeping empty pieces ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on `sep` and drops empty pieces.
std::vector<std::string> SplitSkipEmpty(std::string_view text, char sep);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// ASCII lower-casing (sufficient for this library's identifiers).
std::string ToLowerAscii(std::string_view text);

/// Parses a base-10 integer; std::nullopt on any malformed input.
std::optional<int64_t> ParseInt64(std::string_view text);

/// Parses a floating-point number; std::nullopt on any malformed input.
std::optional<double> ParseDouble(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// First token of a full name ("Wei Wang" -> "Wei"); "" when empty.
std::string_view FirstNameOf(std::string_view full_name);

/// Last token of a full name ("Wei Wang" -> "Wang"); "" when empty.
std::string_view LastNameOf(std::string_view full_name);

}  // namespace distinct

#endif  // DISTINCT_COMMON_STRING_UTIL_H_
