#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace distinct {

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(num_threads, 1);
  DISTINCT_COUNTER_ADD("pool.workers_started", count);
  workers_.reserve(static_cast<size_t>(count));
  for (int t = 0; t < count; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  DISTINCT_CHECK(task != nullptr);
  DISTINCT_COUNTER_ADD("pool.tasks_submitted", 1);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    DISTINCT_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  // Per-worker busy/idle accounting, flushed to the sharded pool counters
  // as it accrues. Checked per task, not per queue operation: tasks here
  // are chunky (ParallelFor/ParallelForShared submit one drain task per
  // worker), so the accounting never shows up in profiles.
  while (true) {
    std::function<void()> task;
    {
      const bool instrumented = obs::Enabled();
      Stopwatch idle_watch;
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (instrumented) {
        DISTINCT_COUNTER_ADD("pool.idle_nanos", idle_watch.ElapsedNanos());
      }
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (obs::Enabled()) {
      Stopwatch busy_watch;
      task();
      DISTINCT_COUNTER_ADD("pool.busy_nanos", busy_watch.ElapsedNanos());
      DISTINCT_COUNTER_ADD("pool.tasks_executed", 1);
    } else {
      task();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ParallelForShared(ThreadPool& pool, int64_t n,
                       const std::function<void(int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  struct State {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    std::mutex mutex;
    std::condition_variable finished;
  };
  auto state = std::make_shared<State>();
  // Capturing &fn is safe: the caller blocks until done == n, and any helper
  // dequeued afterwards sees next >= n and returns without touching fn.
  auto drain = [state, n, &fn] {
    while (true) {
      const int64_t i = state->next.fetch_add(1);
      if (i >= n) {
        return;
      }
      fn(i);
      if (state->done.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->finished.notify_all();
      }
    }
  };
  // The caller is one runner; at most n - 1 helpers can find work.
  const int64_t helpers =
      std::min<int64_t>(pool.num_threads(), n - 1);
  for (int64_t t = 0; t < helpers; ++t) {
    pool.Submit(drain);
  }
  drain();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->finished.wait(lock, [&] { return state->done.load() == n; });
}

void ParallelFor(ThreadPool& pool, int64_t n,
                 const std::function<void(int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  // Dynamic chunking: a shared counter, one task per worker.
  auto counter = std::make_shared<std::atomic<int64_t>>(0);
  const int tasks = std::min<int64_t>(pool.num_threads(), n);
  for (int t = 0; t < tasks; ++t) {
    pool.Submit([counter, n, &fn] {
      while (true) {
        const int64_t i = counter->fetch_add(1);
        if (i >= n) {
          return;
        }
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace distinct
