// EINTR-retrying, short-read/short-write-safe I/O helpers.
//
// Long-lived serving exposed every sloppy read/write in the tree: a signal
// mid-`read` returns EINTR, a full socket buffer makes `write` partial, and
// an fread loop that never checks ferror() silently treats an I/O error as
// EOF — which is how a truncated checkpoint or trace fragment passes for a
// complete one. Every file and socket transfer in the library goes through
// these helpers instead: they retry EINTR, loop until the full buffer moved,
// and surface errors as Status with the caller's context string
// ("checkpoint", "serve", ...) prefixed exactly like the messages the call
// sites used to build by hand.
//
// The durable variants (WriteFileDurable + FsyncDir) carry the checkpoint
// contract: data fsync'd before rename, directory fsync'd after.

#ifndef DISTINCT_COMMON_IO_UTIL_H_
#define DISTINCT_COMMON_IO_UTIL_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"

namespace distinct {

/// Whole-file read over a raw descriptor: EINTR-retried, error-checked (a
/// failed read is DataLoss, never a silent truncation). ENOENT is NotFound.
StatusOr<std::string> ReadFileToString(const std::string& path,
                                       const std::string& context = "io");

/// Whole-file overwrite: open(O_TRUNC) + full-write loop + close check. No
/// fsync — for reports and other artifacts a crash may lose.
Status WriteStringToFile(const std::string& path, std::string_view data,
                         const std::string& context = "io");

/// Crash-durable overwrite: like WriteStringToFile plus fsync before close.
/// Callers that need atomic replacement write to a tmp path, then rename,
/// then FsyncDir the parent.
Status WriteFileDurable(const std::string& path, std::string_view data,
                        const std::string& context = "io");

/// fsyncs a directory so a prior rename/create in it survives a crash.
Status FsyncDir(const std::string& dir, const std::string& context = "io");

/// Writes all of `data` to `fd` (file or socket): EINTR-retried,
/// short-write-resumed. EPIPE/ECONNRESET come back as Unavailable so a
/// server can treat a vanished client as routine.
Status WriteFdAll(int fd, std::string_view data,
                  const std::string& context = "io");

/// One EINTR-retried read of at most `capacity` bytes into `buffer`.
/// Returns the byte count (0 only at end of stream — a short read is
/// returned as-is, never mistaken for EOF); a failed read is DataLoss with
/// the caller's context. The chunked-consumption primitive for streaming
/// readers that must never materialise the file (XML ingest).
StatusOr<size_t> ReadFdSome(int fd, char* buffer, size_t capacity,
                            const std::string& context = "io");

/// Installs SIG_IGN for SIGPIPE once per process (idempotent). A server
/// writing to a client that already closed must get EPIPE from write(),
/// not a process-killing signal.
void IgnoreSigPipe();

/// Buffered '\n'-delimited line reader over a descriptor the reader does
/// NOT own. EINTR-retried; a line longer than `max_line_bytes` is an
/// OutOfRange error (the transport's oversized-request guard).
class FdLineReader {
 public:
  FdLineReader(int fd, size_t max_line_bytes,
               std::string context = "io");

  /// Reads the next line into `*line` (terminator stripped). Sets `*eof`
  /// and returns OK at end of stream (a final unterminated line is
  /// returned first, with eof on the following call). Non-OK on I/O error
  /// or an oversized line; the reader is then unusable.
  Status ReadLine(std::string* line, bool* eof);

 private:
  int fd_;
  size_t max_line_bytes_;
  std::string context_;
  std::string buffer_;   // bytes received but not yet returned
  size_t scanned_ = 0;   // prefix of buffer_ already searched for '\n'
  bool saw_eof_ = false;
};

}  // namespace distinct

#endif  // DISTINCT_COMMON_IO_UTIL_H_
