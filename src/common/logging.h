// Assertions and leveled logging.
//
// Library code is exception-free (fallible operations return Status); the
// CHECK macros guard internal invariants that indicate programmer error,
// aborting with a source location when violated.
//
// DISTINCT_LOG(INFO/WARN/ERROR) emits leveled diagnostics to stderr:
//
//   DISTINCT_LOG(INFO) << "trained on " << n << " pairs";
//
// ERROR and WARN always print; INFO prints at verbosity >= 1 and DEBUG at
// verbosity >= 2 (SetLogVerbosity, or the CLI --verbosity flag). The
// stream is only evaluated when the level is enabled, so suppressed INFO
// logs cost one relaxed atomic load.

#ifndef DISTINCT_COMMON_LOGGING_H_
#define DISTINCT_COMMON_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace distinct {

/// Severity of a DISTINCT_LOG message.
enum class LogSeverity {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

namespace internal_logging {

inline std::atomic<int>& VerbosityRef() {
  static std::atomic<int> verbosity{0};
  return verbosity;
}

}  // namespace internal_logging

/// Logging verbosity: 0 (default) shows WARN/ERROR only, 1 adds INFO,
/// 2 adds DEBUG.
inline void SetLogVerbosity(int verbosity) {
  internal_logging::VerbosityRef().store(verbosity,
                                         std::memory_order_relaxed);
}

inline int GetLogVerbosity() {
  return internal_logging::VerbosityRef().load(std::memory_order_relaxed);
}

namespace internal_logging {

// Tokens pasted by DISTINCT_LOG(severity).
inline constexpr LogSeverity kSeverityDEBUG = LogSeverity::kDebug;
inline constexpr LogSeverity kSeverityINFO = LogSeverity::kInfo;
inline constexpr LogSeverity kSeverityWARN = LogSeverity::kWarn;
inline constexpr LogSeverity kSeverityERROR = LogSeverity::kError;

inline bool LogEnabled(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return GetLogVerbosity() >= 2;
    case LogSeverity::kInfo:
      return GetLogVerbosity() >= 1;
    case LogSeverity::kWarn:
    case LogSeverity::kError:
      return true;
  }
  return true;
}

inline const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarn:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

/// Accumulates one log line and emits it on destruction (end of the full
/// statement), so a message built from several << pieces prints atomically
/// with respect to other lines from this process.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity), file_(file), line_(line) {}

  ~LogMessage() {
    std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityTag(severity_), file_,
                 line_, stream_.str().c_str());
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Makes the ?: arms of DISTINCT_LOG agree on type void.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  LogMessage(LogSeverity::kError, file, line).stream()
      << "CHECK failed: " << expr;
  std::abort();
}

}  // namespace internal_logging
}  // namespace distinct

/// Leveled logging: DISTINCT_LOG(INFO) << "message". Severity is one of
/// DEBUG, INFO, WARN, ERROR. The stream expression is not evaluated when
/// the severity is suppressed by the current verbosity.
#define DISTINCT_LOG(severity)                                              \
  !::distinct::internal_logging::LogEnabled(                                \
      ::distinct::internal_logging::kSeverity##severity)                    \
      ? (void)0                                                             \
      : ::distinct::internal_logging::LogVoidify() &                        \
            ::distinct::internal_logging::LogMessage(                       \
                ::distinct::internal_logging::kSeverity##severity,          \
                __FILE__, __LINE__)                                         \
                .stream()

/// Aborts the process when `expr` is false. Enabled in all build modes.
#define DISTINCT_CHECK(expr)                                            \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::distinct::internal_logging::CheckFailed(__FILE__, __LINE__,     \
                                                #expr);                 \
    }                                                                   \
  } while (0)

/// Debug-only invariant check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define DISTINCT_DCHECK(expr) \
  do {                        \
  } while (0)
#else
#define DISTINCT_DCHECK(expr) DISTINCT_CHECK(expr)
#endif

#endif  // DISTINCT_COMMON_LOGGING_H_
