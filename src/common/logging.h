// Lightweight assertion and logging macros.
//
// Library code is exception-free (fallible operations return Status); these
// macros guard internal invariants that indicate programmer error, aborting
// with a source location when violated.

#ifndef DISTINCT_COMMON_LOGGING_H_
#define DISTINCT_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace distinct {
namespace internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace distinct

/// Aborts the process when `expr` is false. Enabled in all build modes.
#define DISTINCT_CHECK(expr)                                            \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::distinct::internal_logging::CheckFailed(__FILE__, __LINE__,     \
                                                #expr);                 \
    }                                                                   \
  } while (0)

/// Debug-only invariant check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define DISTINCT_DCHECK(expr) \
  do {                        \
  } while (0)
#else
#define DISTINCT_DCHECK(expr) DISTINCT_CHECK(expr)
#endif

#endif  // DISTINCT_COMMON_LOGGING_H_
