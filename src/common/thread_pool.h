// A small fixed-size thread pool for embarrassingly parallel work
// (whole-database bulk resolution parallelizes over names).

#ifndef DISTINCT_COMMON_THREAD_POOL_H_
#define DISTINCT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace distinct {

/// Fixed worker count; tasks are plain void() callables. Join on
/// destruction after draining the queue.
class ThreadPool {
 public:
  /// `num_threads` is clamped to at least 1.
  explicit ThreadPool(int num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int64_t in_flight_ = 0;  // queued + running
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0..n-1) on the pool and waits for completion. `fn` must be safe
/// to call concurrently for different indices. Must be called from outside
/// the pool (it waits via ThreadPool::Wait, which counts *all* in-flight
/// tasks); from inside a pool task use ParallelForShared.
void ParallelFor(ThreadPool& pool, int64_t n,
                 const std::function<void(int64_t)>& fn);

/// Like ParallelFor, but re-entrant: the calling thread participates in the
/// work and completion is tracked per call, not via ThreadPool::Wait. Safe
/// to call from inside a pool task (nested parallelism, e.g. per-group tile
/// work inside a per-group ParallelFor): helper tasks are enqueued for idle
/// workers, and even if every worker is busy the caller alone drains all n
/// indices, so progress never depends on another task finishing.
void ParallelForShared(ThreadPool& pool, int64_t n,
                       const std::function<void(int64_t)>& fn);

}  // namespace distinct

#endif  // DISTINCT_COMMON_THREAD_POOL_H_
