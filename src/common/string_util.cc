#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace distinct {
namespace {

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitSkipEmpty(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  for (std::string& piece : Split(text, sep)) {
    if (!piece.empty()) {
      pieces.push_back(std::move(piece));
    }
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  while (!text.empty() && IsAsciiSpace(text.front())) {
    text.remove_prefix(1);
  }
  while (!text.empty() && IsAsciiSpace(text.back())) {
    text.remove_suffix(1);
  }
  return text;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::optional<int64_t> ParseInt64(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty() || text.size() > 32) {
    return std::nullopt;
  }
  char buffer[33];
  std::memcpy(buffer, text.data(), text.size());
  buffer[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer, &end, 10);
  if (errno != 0 || end != buffer + text.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty() || text.size() > 63) {
    return std::nullopt;
  }
  char buffer[64];
  std::memcpy(buffer, text.data(), text.size());
  buffer[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer, &end);
  if (errno != 0 || end != buffer + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string_view FirstNameOf(std::string_view full_name) {
  full_name = StripWhitespace(full_name);
  const size_t pos = full_name.find(' ');
  if (pos == std::string_view::npos) {
    return full_name;
  }
  return full_name.substr(0, pos);
}

std::string_view LastNameOf(std::string_view full_name) {
  full_name = StripWhitespace(full_name);
  const size_t pos = full_name.rfind(' ');
  if (pos == std::string_view::npos) {
    return full_name;
  }
  return full_name.substr(pos + 1);
}

}  // namespace distinct
