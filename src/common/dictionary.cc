#include "common/dictionary.h"

#include "common/logging.h"

namespace distinct {

int64_t Dictionary::Intern(std::string_view text) {
  auto it = index_.find(std::string(text));
  if (it != index_.end()) {
    return it->second;
  }
  const int64_t id = static_cast<int64_t>(strings_.size());
  strings_.emplace_back(text);
  index_.emplace(strings_.back(), id);
  return id;
}

std::optional<int64_t> Dictionary::Find(std::string_view text) const {
  auto it = index_.find(std::string(text));
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::string& Dictionary::Lookup(int64_t id) const {
  DISTINCT_CHECK(id >= 0 && id < size());
  return strings_[static_cast<size_t>(id)];
}

}  // namespace distinct
