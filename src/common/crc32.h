// CRC-32C (Castagnoli) checksums for on-disk artifacts.
//
// The columnar catalog (catalog/) protects every binary file — dictionary
// blobs and column segments — with a trailing CRC so a torn write, a bad
// disk, or a partially synced page is detected at open time instead of
// surfacing later as silently wrong resolver output. CRC-32C is used (not
// the zip polynomial) for its better error-detection properties on the
// short-burst corruptions file systems actually produce; this is the plain
// table-driven software implementation, fast enough to check a multi-GB
// catalog at hundreds of MB/s during open.

#ifndef DISTINCT_COMMON_CRC32_H_
#define DISTINCT_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace distinct {

/// CRC-32C of `data`, starting from `seed` (pass a previous result to
/// checksum data arriving in chunks; 0 for a fresh computation).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

/// Incremental helper for streamed writes: feed chunks, read value().
class Crc32cAccumulator {
 public:
  void Update(const void* data, size_t size) {
    crc_ = Crc32c(data, size, crc_);
  }
  void Update(std::string_view data) { Update(data.data(), data.size()); }
  uint32_t value() const { return crc_; }
  void Reset() { crc_ = 0; }

 private:
  uint32_t crc_ = 0;
};

}  // namespace distinct

#endif  // DISTINCT_COMMON_CRC32_H_
