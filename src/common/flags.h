// Minimal command-line flag parsing for the examples and bench harnesses.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`. Unknown flags are an error so typos surface immediately.

#ifndef DISTINCT_COMMON_FLAGS_H_
#define DISTINCT_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace distinct {

/// Declares flags, parses argv against them, and exposes typed lookups.
class FlagParser {
 public:
  FlagParser() = default;

  /// Declares a flag with a default value and help text.
  void AddInt64(const std::string& name, int64_t default_value,
                const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);

  /// Parses argv (excluding argv[0]). Returns an error for unknown flags or
  /// unparsable values. Positional (non `--`) arguments are collected.
  Status Parse(int argc, const char* const* argv);

  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  /// Range-checked lookups: the parsed value must lie in [min, max]
  /// (inclusive). Every numeric flag a command actually consumes should go
  /// through one of these so an out-of-range `--threads=-3` is rejected with
  /// a message naming the flag, not silently truncated downstream.
  StatusOr<int64_t> GetInt64InRange(const std::string& name, int64_t min,
                                    int64_t max) const;
  /// Like GetInt64InRange but additionally bounded to `int`; for call sites
  /// that would otherwise `static_cast<int>` an unchecked int64.
  StatusOr<int> GetIntInRange(const std::string& name, int min,
                              int max) const;
  StatusOr<double> GetDoubleInRange(const std::string& name, double min,
                                    double max) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text listing every declared flag with its default.
  std::string Help() const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };
  struct Flag {
    Type type;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
  };

  Status SetFromText(Flag& flag, const std::string& name,
                     const std::string& text);
  const Flag& GetChecked(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace distinct

#endif  // DISTINCT_COMMON_FLAGS_H_
