#include "common/crc32.h"

namespace distinct {
namespace {

/// 256-entry lookup table for the reflected CRC-32C polynomial 0x82F63B78,
/// built once at first use.
struct Crc32cTable {
  uint32_t entries[256];

  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0x82f63b78u : 0u);
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const Crc32cTable& table = Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  // The standard pre/post inversion makes appended zero bytes detectable
  // and lets chunked updates compose: Crc32c(ab) == Crc32c(b, Crc32c(a)).
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ bytes[i]) & 0xffu];
  }
  return ~crc;
}

}  // namespace distinct
