// Fixed-width text table rendering for benchmark and example output.
//
// The benchmark harnesses print the same rows the paper's tables report;
// this renders them with aligned columns, a header rule, and optional
// right-alignment for numeric columns.

#ifndef DISTINCT_COMMON_TEXT_TABLE_H_
#define DISTINCT_COMMON_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace distinct {

/// Accumulates rows of cells and renders them as an aligned text table.
class TextTable {
 public:
  /// Sets the header row. Column count is fixed by the header.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row. Requires the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  /// Marks `column` as right-aligned (numbers). Default is left-aligned.
  void SetRightAlign(size_t column);

  /// Renders the table, one trailing newline included.
  std::string Render() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<bool> right_align_;
};

}  // namespace distinct

#endif  // DISTINCT_COMMON_TEXT_TABLE_H_
