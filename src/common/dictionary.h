// String interning: bidirectional string <-> dense integer id mapping.
//
// Tables dictionary-encode their string columns with one `Dictionary` per
// column, so tuples are plain int64 vectors and joins compare integers.

#ifndef DISTINCT_COMMON_DICTIONARY_H_
#define DISTINCT_COMMON_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace distinct {

/// Assigns dense ids 0..n-1 to distinct strings in insertion order.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id of `text`, inserting it if new.
  int64_t Intern(std::string_view text);

  /// Returns the id of `text`, or std::nullopt if never interned.
  std::optional<int64_t> Find(std::string_view text) const;

  /// The string for `id`. Requires 0 <= id < size().
  const std::string& Lookup(int64_t id) const;

  int64_t size() const { return static_cast<int64_t>(strings_.size()); }

 private:
  std::unordered_map<std::string, int64_t> index_;
  std::vector<std::string> strings_;
};

}  // namespace distinct

#endif  // DISTINCT_COMMON_DICTIONARY_H_
