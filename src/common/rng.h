// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (data generation, training-pair
// sampling, SVM coordinate order) draws from an explicitly seeded `Rng` so
// experiments reproduce bit-for-bit. The engine is xoshiro256** seeded via
// SplitMix64 — fast, high quality, and stable across platforms (unlike
// std::default_random_engine, whose meaning is implementation-defined).

#ifndef DISTINCT_COMMON_RNG_H_
#define DISTINCT_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace distinct {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Exposed for seeding and for tests.
uint64_t SplitMix64Next(uint64_t& state);

/// Seedable xoshiro256** generator with sampling helpers.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams forever.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Poisson-distributed count with the given mean (> 0). Uses Knuth's
  /// method, which is exact and fast for the small means used here.
  int Poisson(double mean);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// `k` distinct indices sampled uniformly from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

/// Precomputed Zipf(s) sampler over ranks 0..n-1 (rank 0 most likely).
/// Used by the name pools and the synthetic DBLP generator to get the
/// heavy-tailed frequency distributions real bibliographies exhibit.
class ZipfSampler {
 public:
  /// Distribution over `n` ranks with exponent `s` (> 0). Requires n >= 1.
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  /// P(rank) for diagnostics and tests.
  double Probability(size_t rank) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, back() == 1.0
};

}  // namespace distinct

#endif  // DISTINCT_COMMON_RNG_H_
