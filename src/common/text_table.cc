#include "common/text_table.h"

#include <algorithm>

#include "common/logging.h"

namespace distinct {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)), right_align_(header_.size(), false) {
  DISTINCT_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  DISTINCT_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::SetRightAlign(size_t column) {
  DISTINCT_CHECK(column < header_.size());
  right_align_[column] = true;
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        line += "  ";
      }
      const size_t pad = widths[c] - row[c].size();
      if (right_align_[c]) {
        line.append(pad, ' ');
        line += row[c];
      } else {
        line += row[c];
        if (c + 1 < row.size()) {
          line.append(pad, ' ');
        }
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  size_t rule_width = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule_width += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(rule_width, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

}  // namespace distinct
