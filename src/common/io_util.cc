#include "common/io_util.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

namespace distinct {

namespace {

std::string Errno(const std::string& context, const std::string& what,
                  const std::string& target) {
  return context + ": " + what + " '" + target +
         "': " + std::strerror(errno);
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path,
                                       const std::string& context) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return NotFoundError(context + ": no file '" + path + "'");
    }
    return InternalError(Errno(context, "cannot open", path));
  }
  std::string data;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const Status error =
          DataLossError(Errno(context, "read of", path) );
      ::close(fd);
      return error;
    }
    if (n == 0) {
      break;
    }
    data.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

namespace {

Status WriteOpenFd(int fd, std::string_view data, const std::string& path,
                   const std::string& context, bool durable) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const Status error = DataLossError(Errno(context, "write to", path));
      ::close(fd);
      return error;
    }
    written += static_cast<size_t>(n);
  }
  if (durable && ::fsync(fd) != 0) {
    const Status error = DataLossError(Errno(context, "fsync of", path));
    ::close(fd);
    return error;
  }
  if (::close(fd) != 0) {
    return DataLossError(Errno(context, "close of", path));
  }
  return Status::Ok();
}

Status WriteFileImpl(const std::string& path, std::string_view data,
                     const std::string& context, bool durable) {
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return InternalError(Errno(context, "cannot open", path));
  }
  return WriteOpenFd(fd, data, path, context, durable);
}

}  // namespace

Status WriteStringToFile(const std::string& path, std::string_view data,
                         const std::string& context) {
  return WriteFileImpl(path, data, context, /*durable=*/false);
}

Status WriteFileDurable(const std::string& path, std::string_view data,
                        const std::string& context) {
  return WriteFileImpl(path, data, context, /*durable=*/true);
}

Status FsyncDir(const std::string& dir, const std::string& context) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return InternalError(Errno(context, "cannot open directory", dir));
  }
  const bool ok = ::fsync(fd) == 0;
  const Status error =
      ok ? Status::Ok()
         : DataLossError(Errno(context, "fsync of directory", dir));
  ::close(fd);
  return error;
}

Status WriteFdAll(int fd, std::string_view data,
                  const std::string& context) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status(StatusCode::kUnavailable,
                      context + ": peer closed the connection");
      }
      return DataLossError(context + ": write failed: " +
                           std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

StatusOr<size_t> ReadFdSome(int fd, char* buffer, size_t capacity,
                            const std::string& context) {
  for (;;) {
    const ssize_t n = ::read(fd, buffer, capacity);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return DataLossError(context + ": read failed: " +
                           std::strerror(errno));
    }
    return static_cast<size_t>(n);
  }
}

void IgnoreSigPipe() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &action, nullptr);
  });
}

FdLineReader::FdLineReader(int fd, size_t max_line_bytes,
                           std::string context)
    : fd_(fd),
      max_line_bytes_(max_line_bytes),
      context_(std::move(context)) {}

Status FdLineReader::ReadLine(std::string* line, bool* eof) {
  line->clear();
  *eof = false;
  for (;;) {
    const size_t newline = buffer_.find('\n', scanned_);
    if (newline != std::string::npos) {
      if (newline > max_line_bytes_) {
        return OutOfRangeError(
            context_ + ": line exceeds " +
            std::to_string(max_line_bytes_) + " bytes");
      }
      line->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      scanned_ = 0;
      return Status::Ok();
    }
    scanned_ = buffer_.size();
    if (saw_eof_) {
      if (buffer_.empty()) {
        *eof = true;
        return Status::Ok();
      }
      // Final unterminated line; next call reports EOF.
      line->swap(buffer_);
      scanned_ = 0;
      return Status::Ok();
    }
    if (buffer_.size() > max_line_bytes_) {
      return OutOfRangeError(context_ + ": line exceeds " +
                             std::to_string(max_line_bytes_) + " bytes");
    }
    char chunk[1 << 14];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == ECONNRESET) {
        saw_eof_ = true;
        continue;  // treat a reset like EOF: drain what we have
      }
      return DataLossError(context_ + ": read failed: " +
                           std::strerror(errno));
    }
    if (n == 0) {
      saw_eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace distinct
