// Error propagation without exceptions.
//
// `Status` carries an error code and message; `StatusOr<T>` carries either a
// value or a non-OK Status. Both follow the shape of absl::Status /
// absl::StatusOr so downstream users find them familiar.

#ifndef DISTINCT_COMMON_STATUS_H_
#define DISTINCT_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace distinct {

/// Canonical error codes (subset of the gRPC/absl canonical space).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kDataLoss = 8,
  kDeadlineExceeded = 9,
  kResourceExhausted = 10,
  kUnavailable = 11,
};

/// Returns a stable human-readable name for `code` (e.g. "NOT_FOUND").
const char* StatusCodeToString(StatusCode code);

/// The result of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DataLossError(std::string message);
Status DeadlineExceededError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);

/// Either a value of type `T` or a non-OK Status explaining why there is no
/// value. Accessing the value of a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value: `StatusOr<int> F() { return 42; }`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: `return NotFoundError(...)`.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    DISTINCT_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DISTINCT_CHECK(ok());
    return *value_;
  }
  T& value() & {
    DISTINCT_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    DISTINCT_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Returns early from the enclosing function when `expr` is a non-OK Status.
#define DISTINCT_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::distinct::Status status_macro_s_ = (expr);  \
    if (!status_macro_s_.ok()) {                  \
      return status_macro_s_;                     \
    }                                             \
  } while (0)

}  // namespace distinct

#endif  // DISTINCT_COMMON_STATUS_H_
