// Cooperative cancellation for long-running kernel work.
//
// A CancelToken is shared between the party that wants work abandoned (a
// serve deadline timer, a shutdown path) and the worker loops that check it.
// Checks happen only at coarse boundaries — per row on the serial pair-fill
// path, per tile on the parallel one — so a null or never-fired token adds a
// single predictable branch per boundary and leaves results bit-identical.
//
// Two bits are tracked separately: `cancelled` (someone asked to stop, set
// explicitly or implied by an expired deadline) and `aborted` (a worker
// actually observed the request and abandoned work). The caller inspects
// `aborted()` after the fill returns to distinguish "completed before the
// deadline fired" from "partial result, must not be used".

#ifndef DISTINCT_COMMON_CANCEL_H_
#define DISTINCT_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <optional>

namespace distinct {

class CancelToken {
 public:
  CancelToken() = default;

  /// A token that fires once `deadline` (steady clock) has passed.
  explicit CancelToken(std::chrono::steady_clock::time_point deadline)
      : deadline_(deadline) {}

  /// Requests cancellation explicitly (e.g. server shutdown).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True when cancellation was requested or the deadline has passed.
  /// Cheap enough for per-row checks: the clock is read only while the
  /// token is still live and carries a deadline.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return true;
    }
    if (deadline_.has_value() &&
        std::chrono::steady_clock::now() >= *deadline_) {
      return true;
    }
    return false;
  }

  /// Boundary check for worker loops: returns true (and records the
  /// abandonment) when the worker should stop. Once any worker aborts,
  /// subsequent checks return true without consulting the clock.
  bool CheckAbort() const {
    if (aborted_.load(std::memory_order_relaxed)) {
      return true;
    }
    if (Expired()) {
      aborted_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// True iff some worker abandoned work via CheckAbort(). The result
  /// produced under this token is partial and must be discarded.
  bool aborted() const { return aborted_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> aborted_{false};
  std::optional<std::chrono::steady_clock::time_point> deadline_;
};

}  // namespace distinct

#endif  // DISTINCT_COMMON_CANCEL_H_
