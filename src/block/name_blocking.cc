#include "block/name_blocking.h"

#include <algorithm>
#include <numeric>

namespace distinct {
namespace {

/// Union-find with path compression.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

StatusOr<std::vector<NameBlock>> BlockSimilarNames(
    const Database& db, const ReferenceSpec& spec,
    const BlockingOptions& options) {
  if (options.threshold <= 0.0 || options.threshold > 1.0) {
    return InvalidArgumentError("blocking threshold must be in (0, 1]");
  }
  auto resolved = ResolveReferenceSpec(db, spec);
  DISTINCT_RETURN_IF_ERROR(resolved.status());
  const Table& name_table = db.table(resolved->name_table_id);

  QGramIndex index(options.q);
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(name_table.num_rows()));
  for (int64_t row = 0; row < name_table.num_rows(); ++row) {
    index.Add(name_table.GetString(row, resolved->name_column));
    rows.push_back(row);
  }

  DisjointSets components(rows.size());
  for (const SimilarPair& pair : index.SimilarPairs(options.threshold)) {
    components.Union(static_cast<size_t>(pair.id1),
                     static_cast<size_t>(pair.id2));
  }

  // Gather components.
  std::vector<std::vector<size_t>> members_of_root(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    members_of_root[components.Find(i)].push_back(i);
  }
  std::vector<NameBlock> blocks;
  for (const std::vector<size_t>& members : members_of_root) {
    if (members.empty()) {
      continue;
    }
    if (members.size() == 1 && !options.include_singletons) {
      continue;
    }
    NameBlock block;
    for (const size_t member : members) {
      block.names.push_back(index.name(static_cast<int>(member)));
      block.name_rows.push_back(rows[member]);
    }
    blocks.push_back(std::move(block));
  }
  std::stable_sort(blocks.begin(), blocks.end(),
                   [](const NameBlock& a, const NameBlock& b) {
                     if (a.names.size() != b.names.size()) {
                       return a.names.size() > b.names.size();
                     }
                     return a.name_rows.front() < b.name_rows.front();
                   });
  return blocks;
}

}  // namespace distinct
