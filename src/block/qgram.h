// Q-gram approximate string matching for candidate generation.
//
// DISTINCT resolves *resembling* references — the paper defines resembling
// as textually identical and cites Gravano et al.'s q-gram joins [7] as
// the standard way to find near-identical candidates (initials, typos,
// diacritics). This module provides that blocking layer: padded q-gram
// extraction, q-gram Jaccard similarity, and an inverted index with a
// count filter for threshold joins.

#ifndef DISTINCT_BLOCK_QGRAM_H_
#define DISTINCT_BLOCK_QGRAM_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace distinct {

/// Lower-cases, collapses runs of whitespace, and trims — so "Wei  WANG "
/// and "wei wang" block together.
std::string NormalizeName(std::string_view name);

/// Padded q-grams of the normalized text ("ab", q=3 -> {"##a","#ab","ab#",
/// "b##"} with '#' padding). Duplicates are kept (bag semantics).
std::vector<std::string> QGrams(std::string_view text, int q);

/// Jaccard similarity of the two q-gram *sets* after normalization.
/// 1.0 for equal normalized strings, 0.0 for disjoint gram sets.
double QGramJaccard(std::string_view a, std::string_view b, int q = 3);

/// A matched candidate pair.
struct SimilarPair {
  int id1 = -1;  // insertion ids, id1 < id2
  int id2 = -1;
  double similarity = 0.0;
};

/// Inverted q-gram index over a set of names.
class QGramIndex {
 public:
  /// Requires q >= 2.
  explicit QGramIndex(int q = 3);

  /// Adds a name; returns its dense id (insertion order).
  int Add(std::string_view name);

  int size() const { return static_cast<int>(names_.size()); }
  const std::string& name(int id) const;

  /// Ids whose q-gram Jaccard with `text` is >= threshold, with scores,
  /// ordered by descending similarity. Uses the inverted index plus a
  /// count filter, so cost is proportional to candidates, not index size.
  std::vector<SimilarPair> Lookup(std::string_view text,
                                  double threshold) const;

  /// All index pairs with similarity >= threshold (self-join), each pair
  /// once with id1 < id2, ordered by (id1, id2). Threshold must be > 0.
  std::vector<SimilarPair> SimilarPairs(double threshold) const;

 private:
  /// Set-deduplicated, sorted grams of one name.
  static std::vector<std::string> GramSet(std::string_view name, int q);

  int q_;
  std::vector<std::string> names_;
  std::vector<std::vector<std::string>> gram_sets_;  // per name, sorted
  std::unordered_map<std::string, std::vector<int>> postings_;
};

}  // namespace distinct

#endif  // DISTINCT_BLOCK_QGRAM_H_
