#include "block/qgram.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "common/logging.h"

namespace distinct {
namespace {

constexpr char kPad = '#';

/// Jaccard of two sorted, deduplicated gram vectors.
double SortedSetJaccard(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) {
    return a.empty() && b.empty() ? 1.0 : 0.0;
  }
  size_t i = 0;
  size_t j = 0;
  size_t intersection = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++intersection;
      ++i;
      ++j;
    }
  }
  const size_t unions = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

}  // namespace

std::string NormalizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  bool pending_space = false;
  for (const char c : name) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> QGrams(std::string_view text, int q) {
  DISTINCT_CHECK(q >= 2);
  const std::string normalized = NormalizeName(text);
  std::vector<std::string> grams;
  if (normalized.empty()) {
    return grams;
  }
  std::string padded(static_cast<size_t>(q - 1), kPad);
  padded += normalized;
  padded.append(static_cast<size_t>(q - 1), kPad);
  grams.reserve(padded.size() - static_cast<size_t>(q) + 1);
  for (size_t i = 0; i + static_cast<size_t>(q) <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, static_cast<size_t>(q)));
  }
  return grams;
}

double QGramJaccard(std::string_view a, std::string_view b, int q) {
  auto set_of = [&](std::string_view text) {
    std::vector<std::string> grams = QGrams(text, q);
    std::sort(grams.begin(), grams.end());
    grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
    return grams;
  };
  return SortedSetJaccard(set_of(a), set_of(b));
}

QGramIndex::QGramIndex(int q) : q_(q) { DISTINCT_CHECK(q >= 2); }

std::vector<std::string> QGramIndex::GramSet(std::string_view name, int q) {
  std::vector<std::string> grams = QGrams(name, q);
  std::sort(grams.begin(), grams.end());
  grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
  return grams;
}

int QGramIndex::Add(std::string_view name) {
  const int id = size();
  names_.emplace_back(name);
  gram_sets_.push_back(GramSet(name, q_));
  for (const std::string& gram : gram_sets_.back()) {
    postings_[gram].push_back(id);
  }
  return id;
}

const std::string& QGramIndex::name(int id) const {
  DISTINCT_CHECK(id >= 0 && id < size());
  return names_[static_cast<size_t>(id)];
}

std::vector<SimilarPair> QGramIndex::Lookup(std::string_view text,
                                            double threshold) const {
  DISTINCT_CHECK(threshold > 0.0);
  const std::vector<std::string> query = GramSet(text, q_);
  // Count shared grams per candidate via the inverted lists.
  std::unordered_map<int, size_t> shared;
  for (const std::string& gram : query) {
    auto it = postings_.find(gram);
    if (it == postings_.end()) {
      continue;
    }
    for (const int id : it->second) {
      ++shared[id];
    }
  }
  std::vector<SimilarPair> results;
  for (const auto& [id, intersection] : shared) {
    const size_t unions = query.size() +
                          gram_sets_[static_cast<size_t>(id)].size() -
                          intersection;
    const double similarity =
        unions == 0 ? 1.0
                    : static_cast<double>(intersection) /
                          static_cast<double>(unions);
    if (similarity >= threshold) {
      results.push_back(SimilarPair{-1, id, similarity});
    }
  }
  std::sort(results.begin(), results.end(),
            [](const SimilarPair& a, const SimilarPair& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.id2 < b.id2;
            });
  return results;
}

std::vector<SimilarPair> QGramIndex::SimilarPairs(double threshold) const {
  DISTINCT_CHECK(threshold > 0.0);
  std::vector<SimilarPair> results;
  for (int id = 0; id < size(); ++id) {
    // Count grams shared with *earlier* ids only (each pair once).
    std::unordered_map<int, size_t> shared;
    for (const std::string& gram : gram_sets_[static_cast<size_t>(id)]) {
      auto it = postings_.find(gram);
      if (it == postings_.end()) {
        continue;
      }
      for (const int other : it->second) {
        if (other < id) {
          ++shared[other];
        }
      }
    }
    for (const auto& [other, intersection] : shared) {
      const size_t unions = gram_sets_[static_cast<size_t>(id)].size() +
                            gram_sets_[static_cast<size_t>(other)].size() -
                            intersection;
      const double similarity =
          unions == 0 ? 1.0
                      : static_cast<double>(intersection) /
                            static_cast<double>(unions);
      if (similarity >= threshold) {
        results.push_back(SimilarPair{other, id, similarity});
      }
    }
  }
  std::sort(results.begin(), results.end(),
            [](const SimilarPair& a, const SimilarPair& b) {
              if (a.id1 != b.id1) {
                return a.id1 < b.id1;
              }
              return a.id2 < b.id2;
            });
  return results;
}

}  // namespace distinct
