// Name blocking: group near-identical names in a database.
//
// The paper treats only textually identical references as resembling; real
// catalogs also contain near-duplicates ("Wei  Wang", "WEI WANG"). This
// blocks the name table into connected components of the q-gram similarity
// graph, so a caller can feed a whole block's references to
// Distinct::ResolveRefs and split/merge across spelling variants.

#ifndef DISTINCT_BLOCK_NAME_BLOCKING_H_
#define DISTINCT_BLOCK_NAME_BLOCKING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "block/qgram.h"
#include "relational/reference_spec.h"

namespace distinct {

/// A block of mutually similar names.
struct NameBlock {
  std::vector<std::string> names;      // distinct surface forms
  std::vector<int64_t> name_rows;      // rows in the name table, parallel
};

struct BlockingOptions {
  /// Q-gram Jaccard threshold for an edge between two names.
  double threshold = 0.75;
  int q = 3;
  /// Also return single-name blocks (default: only multi-name blocks,
  /// which are the interesting ones).
  bool include_singletons = false;
};

/// Blocks the distinct names of `spec.name_table`. Names are compared in
/// normalized form; blocks are connected components of the threshold graph,
/// ordered by descending block size then first name-row.
StatusOr<std::vector<NameBlock>> BlockSimilarNames(
    const Database& db, const ReferenceSpec& spec,
    const BlockingOptions& options = {});

}  // namespace distinct

#endif  // DISTINCT_BLOCK_NAME_BLOCKING_H_
