// Chrome-trace / Perfetto export of the span tree, plus per-shard trace
// fragments for the sharded scan.
//
// `distinct_cli --trace-json=FILE` turns the Tracer's span list into the
// Chrome Trace Event JSON object format ({"traceEvents":[...]}) that
// chrome://tracing and https://ui.perfetto.dev open directly: one complete
// ("ph":"X") event per closed span, timestamps in microseconds from the
// tracer epoch, one trace process per TraceProcess, one trace thread per
// tracer thread index.
//
// Sharded scans additionally persist one *fragment* per shard next to the
// shard's checkpoint (trace-shard-<id>.json): the spans recorded while
// that shard ran, re-rooted so the fragment stands alone. After the scan,
// CollectShardedTrace stitches the driver timeline (pid 0) and every
// fragment (pid shard+1, labeled "shard <id>") into one trace. Because
// fragments survive the process, a resumed scan still renders the spans of
// shards completed by the *previous* run — the merged trace covers the
// whole logical scan, not just the last process.
//
// Determinism: the exported JSON is a pure function of the span lists and
// their order — for a fixed shard plan the merged trace has the same
// events, names, pids/tids, and ordering every run (wall-clock ts/dur
// values are the only fields that vary).

#ifndef DISTINCT_OBS_TRACE_EXPORT_H_
#define DISTINCT_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace distinct {
namespace obs {

/// One trace process in the exported file. `spans` is self-contained:
/// parent indices point into this vector (-1 = root).
struct TraceProcess {
  int pid = 0;
  std::string name;  // "driver", "shard 0", ...
  std::vector<SpanRecord> spans;
};

/// The Chrome Trace Event JSON for `processes` (metadata events naming
/// each process, then one complete event per span, in input order; spans
/// still open at snapshot time export with their elapsed-so-far marked
/// incomplete).
std::string ChromeTraceJson(const std::vector<TraceProcess>& processes);

/// Writes ChromeTraceJson(processes) to `path`.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceProcess>& processes);

/// `<dir>/trace-shard-<id>.json` — one shard's fragment.
std::string TraceFragmentPath(const std::string& dir, int shard_id);

/// Persists one shard's spans as a standalone fragment (plain write, no
/// fsync — fragments are advisory, unlike checkpoints).
Status WriteTraceFragment(const std::string& path,
                          const std::vector<SpanRecord>& spans);

/// Loads a fragment written by WriteTraceFragment. NotFound when the file
/// does not exist; DataLoss when it is corrupt.
StatusOr<std::vector<SpanRecord>> ReadTraceFragment(const std::string& path);

/// Builds the merged sharded-scan trace: `driver_spans` as pid 0 plus one
/// process per fragment found under `fragment_dir` for shards
/// [0, num_shards). Missing fragments are skipped (that shard failed or
/// predates tracing); corrupt fragments fail the merge.
StatusOr<std::vector<TraceProcess>> CollectShardedTrace(
    const std::vector<SpanRecord>& driver_spans,
    const std::string& fragment_dir, int num_shards);

}  // namespace obs
}  // namespace distinct

#endif  // DISTINCT_OBS_TRACE_EXPORT_H_
