#include "obs/bench_compare.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/io_util.h"
#include "common/string_util.h"
#include "obs/json_reader.h"

namespace distinct {
namespace obs {

namespace {

constexpr char kBenchContext[] = "bench artifact";

// Below this magnitude a relative comparison degenerates; fall back to an
// absolute |current - baseline| <= threshold check.
constexpr double kRelativeFloor = 1e-12;

}  // namespace

StatusOr<BenchArtifact> ParseBenchArtifact(const std::string& json_text) {
  auto root = JsonReader(json_text, kBenchContext).Parse();
  DISTINCT_RETURN_IF_ERROR(root.status());
  if (root->kind != JsonValue::Kind::kObject) {
    return DataLossError("bench artifact: top level is not an object");
  }
  BenchArtifact artifact;
  for (const auto& member : root->members) {
    const std::string& key = member.first;
    const JsonValue& value = member.second;
    switch (value.kind) {
      case JsonValue::Kind::kInt:
      case JsonValue::Kind::kDouble:
        artifact.metrics[key] = value.AsDouble();
        break;
      case JsonValue::Kind::kString:
        if (key == "bench") {
          artifact.name = value.string_value;
        } else {
          artifact.info[key] = value.string_value;
        }
        break;
      case JsonValue::Kind::kBool:
        artifact.metrics[key] = value.bool_value ? 1.0 : 0.0;
        break;
      default:
        // Nested values have no gating semantics; ignore rather than fail
        // so future schema growth does not break old gates.
        break;
    }
  }
  if (artifact.name.empty()) {
    return DataLossError("bench artifact: missing 'bench' name field");
  }
  return artifact;
}

StatusOr<BenchArtifact> LoadBenchArtifact(const std::string& path) {
  // EINTR-retried, error-checked read: a mid-file I/O error must fail the
  // gate loudly, not truncate the artifact into a "missing metric".
  auto text = ReadFileToString(path, "bench artifact");
  if (!text.ok()) {
    if (text.status().code() == StatusCode::kNotFound) {
      return NotFoundError("bench artifact: no file '" + path + "'");
    }
    return text.status();
  }
  auto artifact = ParseBenchArtifact(*text);
  if (!artifact.ok()) {
    return Status(artifact.status().code(),
                  path + ": " + artifact.status().message());
  }
  return artifact;
}

const char* GateDirectionName(GateRule::Direction direction) {
  switch (direction) {
    case GateRule::Direction::kHigherIsBetter:
      return "higher";
    case GateRule::Direction::kLowerIsBetter:
      return "lower";
    case GateRule::Direction::kEqual:
      return "equal";
  }
  return "?";
}

StatusOr<std::vector<GateRule>> ParseGateRules(const std::string& text) {
  std::vector<GateRule> rules;
  std::istringstream lines(text);
  std::string line;
  int line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    GateRule rule;
    std::string direction;
    std::string threshold;
    if (!(fields >> rule.bench)) {
      continue;  // blank or comment-only line
    }
    if (!(fields >> rule.metric >> direction >> threshold)) {
      return InvalidArgumentError(StrFormat(
          "gate rules line %d: want 'bench metric direction threshold'",
          line_number));
    }
    std::string extra;
    if (fields >> extra) {
      return InvalidArgumentError(StrFormat(
          "gate rules line %d: trailing field '%s'", line_number,
          extra.c_str()));
    }
    if (direction == "higher") {
      rule.direction = GateRule::Direction::kHigherIsBetter;
    } else if (direction == "lower") {
      rule.direction = GateRule::Direction::kLowerIsBetter;
    } else if (direction == "equal") {
      rule.direction = GateRule::Direction::kEqual;
    } else {
      return InvalidArgumentError(StrFormat(
          "gate rules line %d: direction '%s' is not higher|lower|equal",
          line_number, direction.c_str()));
    }
    const auto parsed = ParseDouble(threshold);
    if (!parsed.has_value() || *parsed < 0.0 || !std::isfinite(*parsed)) {
      return InvalidArgumentError(StrFormat(
          "gate rules line %d: threshold '%s' is not a finite number >= 0",
          line_number, threshold.c_str()));
    }
    rule.threshold = *parsed;
    rules.push_back(std::move(rule));
  }
  return rules;
}

GateReport EvaluateGate(
    const std::vector<GateRule>& rules,
    const std::map<std::string, BenchArtifact>& baselines,
    const std::map<std::string, BenchArtifact>& currents) {
  GateReport report;
  report.checks.reserve(rules.size());
  for (const GateRule& rule : rules) {
    GateCheck check;
    check.rule = rule;
    const auto baseline_it = baselines.find(rule.bench);
    const auto current_it = currents.find(rule.bench);
    if (baseline_it == baselines.end()) {
      check.detail = "missing baseline artifact";
    } else if (current_it == currents.end()) {
      check.detail = "missing current artifact";
    } else {
      const auto base_metric = baseline_it->second.metrics.find(rule.metric);
      const auto cur_metric = current_it->second.metrics.find(rule.metric);
      if (base_metric == baseline_it->second.metrics.end()) {
        check.detail = "metric absent from baseline";
      } else if (cur_metric == current_it->second.metrics.end()) {
        check.detail = "metric absent from current run";
      } else {
        check.baseline = base_metric->second;
        check.current = cur_metric->second;
        const double magnitude = std::fabs(check.baseline);
        const double delta = check.current - check.baseline;
        if (magnitude < kRelativeFloor) {
          // Relative change is undefined against a ~zero baseline; gate
          // the absolute deviation instead.
          check.relative_change = 0.0;
          check.ok = std::fabs(delta) <= rule.threshold;
          if (!check.ok) {
            check.detail = "absolute deviation from ~zero baseline";
          }
        } else {
          check.relative_change = delta / magnitude;
          switch (rule.direction) {
            case GateRule::Direction::kHigherIsBetter:
              check.ok = check.relative_change >= -rule.threshold;
              break;
            case GateRule::Direction::kLowerIsBetter:
              check.ok = check.relative_change <= rule.threshold;
              break;
            case GateRule::Direction::kEqual:
              check.ok = std::fabs(check.relative_change) <= rule.threshold;
              break;
          }
          if (!check.ok) {
            check.detail = "regression beyond threshold";
          }
        }
      }
    }
    if (!check.ok) {
      ++report.failures;
    }
    report.checks.push_back(std::move(check));
  }
  return report;
}

namespace {

std::string ProvenanceLine(const BenchArtifact& artifact) {
  // Stable, compact: the keys bench_util stamps, in a fixed order.
  static constexpr const char* kKeys[] = {"run_host", "run_build",
                                          "run_git_sha", "run_threads"};
  std::string out;
  for (const char* key : kKeys) {
    const auto info = artifact.info.find(key);
    const auto metric = artifact.metrics.find(key);
    std::string value;
    if (info != artifact.info.end()) {
      value = info->second;
    } else if (metric != artifact.metrics.end()) {
      value = StrFormat("%g", metric->second);
    } else {
      continue;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += std::string(key) + "=" + value;
  }
  return out;
}

}  // namespace

std::string GateReportToText(
    const GateReport& report,
    const std::map<std::string, BenchArtifact>& baselines,
    const std::map<std::string, BenchArtifact>& currents) {
  std::string out;
  out += StrFormat("%-14s %-28s %-9s %12s %12s %9s %9s  %s\n", "bench",
                   "metric", "direction", "baseline", "current", "change",
                   "limit", "status");
  for (const GateCheck& check : report.checks) {
    const GateRule& rule = check.rule;
    out += StrFormat(
        "%-14s %-28s %-9s %12.6g %12.6g %8.1f%% %8.1f%%  %s%s%s\n",
        rule.bench.c_str(), rule.metric.c_str(),
        GateDirectionName(rule.direction), check.baseline, check.current,
        check.relative_change * 100.0, rule.threshold * 100.0,
        check.ok ? "OK" : "FAIL", check.detail.empty() ? "" : ": ",
        check.detail.c_str());
  }
  // Provenance annotations: which machine/build produced each side.
  std::map<std::string, bool> mentioned;
  for (const GateCheck& check : report.checks) {
    mentioned[check.rule.bench] = true;
  }
  for (const auto& entry : mentioned) {
    const auto base = baselines.find(entry.first);
    const auto cur = currents.find(entry.first);
    const std::string base_line =
        base != baselines.end() ? ProvenanceLine(base->second) : "";
    const std::string cur_line =
        cur != currents.end() ? ProvenanceLine(cur->second) : "";
    if (base_line.empty() && cur_line.empty()) {
      continue;
    }
    out += StrFormat("# %s: baseline[%s] current[%s]\n", entry.first.c_str(),
                     base_line.c_str(), cur_line.c_str());
  }
  out += StrFormat("%lld/%lld checks passed\n",
                   static_cast<long long>(report.checks.size()) -
                       static_cast<long long>(report.failures),
                   static_cast<long long>(report.checks.size()));
  return out;
}

}  // namespace obs
}  // namespace distinct
