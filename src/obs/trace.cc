#include "obs/trace.h"

namespace distinct {
namespace obs {

namespace {

/// Per-thread open-span stack. `generation` ties the stack to one tracer
/// run; a Reset() invalidates every stack lazily (checked on next open).
struct ThreadSpanState {
  uint64_t generation = ~uint64_t{0};
  int thread_index = -1;
  std::vector<int> open_spans;
};

thread_local ThreadSpanState t_span_state;

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  spans_dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  ++generation_;
  next_thread_index_ = 0;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

int64_t Tracer::DroppedSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_dropped_;
}

int Tracer::OpenSpan(const char* name) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= kMaxSpans) {
    ++spans_dropped_;  // surfaced as obs.spans_dropped in the RunReport
    return -1;
  }
  ThreadSpanState& state = t_span_state;
  if (state.generation != generation_) {
    state.generation = generation_;
    state.thread_index = next_thread_index_++;
    state.open_spans.clear();
  }
  SpanRecord record;
  record.name = name;
  record.start_nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           now - epoch_)
                           .count();
  record.parent = state.open_spans.empty() ? -1 : state.open_spans.back();
  record.thread = state.thread_index;
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(record));
  state.open_spans.push_back(index);
  return index;
}

void Tracer::CloseSpan(int index) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  ThreadSpanState& state = t_span_state;
  if (state.generation != generation_) {
    return;  // Reset() ran while this span was open; drop it
  }
  // Scoped spans close strictly LIFO per thread.
  if (!state.open_spans.empty() && state.open_spans.back() == index) {
    state.open_spans.pop_back();
  }
  if (index >= 0 && static_cast<size_t>(index) < spans_.size()) {
    SpanRecord& record = spans_[static_cast<size_t>(index)];
    record.duration_nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
            .count() -
        record.start_nanos;
  }
}

}  // namespace obs
}  // namespace distinct
