// Opt-in progress/heartbeat reporting for long scans.
//
// A sharded scan over millions of references runs for hours; operators
// need liveness signals without attaching a debugger. The scan publishes
// its progress into a ProgressState (plain atomics, negligible cost), and
// a HeartbeatReporter samples it from a background thread every
// `interval_seconds`: it refreshes the RSS gauge of the MemoryTracker,
// optionally prints a one-line progress summary to stderr, and atomically
// (tmp + rename) rewrites a small JSON heartbeat file
// ({"distinct_heartbeat":1, shards/groups/refs done+total, refs_per_sec,
// eta_s, rss_bytes, ...}) that dashboards and watchdog scripts can poll.
// A final beat is always emitted on Stop() so the file ends at the true
// terminal state.
//
// Default-off like the rest of obs/: nothing starts unless the CLI's
// --heartbeat / --progress-interval flags (or a direct construction) ask
// for it.

#ifndef DISTINCT_OBS_HEARTBEAT_H_
#define DISTINCT_OBS_HEARTBEAT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace distinct {
namespace obs {

/// Monotonic progress counters a long-running producer (the sharded scan)
/// bumps as it goes. Totals are set once up front; *_done only grow.
struct ProgressState {
  std::atomic<int64_t> shards_total{0};
  std::atomic<int64_t> shards_done{0};
  std::atomic<int64_t> groups_total{0};
  std::atomic<int64_t> groups_done{0};
  std::atomic<int64_t> refs_total{0};
  std::atomic<int64_t> refs_done{0};
};

/// Plain-value snapshot of a ProgressState plus derived rates.
struct HeartbeatSample {
  int64_t sequence = 0;  // 1-based beat number
  double elapsed_seconds = 0.0;
  int64_t shards_total = 0;
  int64_t shards_done = 0;
  int64_t groups_total = 0;
  int64_t groups_done = 0;
  int64_t refs_total = 0;
  int64_t refs_done = 0;
  double refs_per_sec = 0.0;
  /// Remaining refs over the observed rate; -1 while the rate is 0.
  double eta_seconds = -1.0;
  int64_t rss_bytes = -1;  // -1 when the OS probe is unavailable
  /// Terminal-beat marker. Periodic beats carry final=false; the last
  /// beat before the reporter stops carries final=true plus the run's
  /// outcome in `status` ("ok", "error", ...). Pollers distinguish "still
  /// running", "finished", and "failed" from the file alone — before this
  /// field a run that died mid-scan left its last periodic beat looking
  /// alive forever.
  bool final = false;
  std::string status;
};

/// Heartbeat JSON schema version (the "distinct_heartbeat" field).
inline constexpr int kHeartbeatSchemaVersion = 1;

/// Serializes one sample as the heartbeat JSON document (one object,
/// trailing newline). Pure — the schema test drives it directly.
std::string HeartbeatJson(const std::string& label,
                          const HeartbeatSample& sample);

/// Background sampler thread. Construction starts it; Stop() (or the
/// destructor) joins it after a final beat.
class HeartbeatReporter {
 public:
  struct Options {
    /// Heartbeat file path; empty writes no file (progress line only).
    std::string file_path;
    /// Seconds between beats (clamped to >= 0.01).
    double interval_seconds = 10.0;
    /// Also print a one-line progress summary to stderr on every beat.
    bool print_progress = false;
    /// Free-form run label embedded in the JSON ("scan", ...).
    std::string label;
  };

  /// `progress` must outlive the reporter; a null pointer reports zeros
  /// (still useful as a liveness file).
  HeartbeatReporter(Options options, const ProgressState* progress);
  ~HeartbeatReporter();

  HeartbeatReporter(const HeartbeatReporter&) = delete;
  HeartbeatReporter& operator=(const HeartbeatReporter&) = delete;

  /// Emits a final beat (status "ok"), stops the thread, and joins it.
  /// Idempotent.
  void Stop();

  /// Like Stop(), but stamps the terminal beat with an explicit outcome —
  /// error/early-return paths call StopWithStatus("error") so the file
  /// never ends on a beat that reads as a live run. First caller wins;
  /// later calls (including the destructor's Stop()) are no-ops.
  void StopWithStatus(const std::string& status);

  /// Beats emitted so far (tests poll this instead of sleeping blind).
  int64_t beats() const { return beats_.load(std::memory_order_relaxed); }

 private:
  HeartbeatSample Sample();
  void Emit(bool final, const std::string& status);
  void Run();

  Options options_;
  const ProgressState* progress_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<int64_t> beats_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;  // guarded by mutex_
  std::thread thread_;
};

}  // namespace obs
}  // namespace distinct

#endif  // DISTINCT_OBS_HEARTBEAT_H_
