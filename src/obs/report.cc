#include "obs/report.h"

#include <cstdio>
#include <map>
#include <mutex>

#include "common/io_util.h"
#include "common/string_util.h"
#include "common/text_table.h"
#include "obs/json_writer.h"

namespace distinct {
namespace obs {

namespace {

/// Aggregates spans into stages keyed by their root-to-span name path, in
/// first-appearance order (deterministic for a fixed workload).
std::vector<StageSummary> SummarizeStages(
    const std::vector<SpanRecord>& spans) {
  std::vector<std::string> paths(spans.size());
  std::vector<int> depths(spans.size(), 0);
  std::map<std::string, size_t> stage_of_path;
  std::vector<StageSummary> stages;
  for (size_t s = 0; s < spans.size(); ++s) {
    const SpanRecord& span = spans[s];
    if (span.parent >= 0) {
      const auto p = static_cast<size_t>(span.parent);
      paths[s] = paths[p] + "/" + span.name;
      depths[s] = depths[p] + 1;
    } else {
      paths[s] = span.name;
    }
    auto [it, inserted] = stage_of_path.emplace(paths[s], stages.size());
    if (inserted) {
      StageSummary stage;
      stage.path = paths[s];
      stage.depth = depths[s];
      stages.push_back(std::move(stage));
    }
    StageSummary& stage = stages[it->second];
    ++stage.calls;
    if (span.duration_nanos > 0) {
      stage.total_nanos += span.duration_nanos;
    }
  }
  return stages;
}

/// Ratio of two nanosecond-denominated quantities, skipped when the
/// denominator was never recorded.
void AddRate(std::vector<std::pair<std::string, double>>& derived,
             const std::string& name, int64_t numerator,
             int64_t denominator_nanos) {
  if (denominator_nanos > 0) {
    derived.emplace_back(name, static_cast<double>(numerator) /
                                   (static_cast<double>(denominator_nanos) /
                                    1e9));
  }
}

std::vector<std::pair<std::string, double>> ComputeDerived(
    const MetricsSnapshot& metrics) {
  std::vector<std::pair<std::string, double>> derived;

  if (const HistogramSnapshot* fill =
          metrics.FindHistogram("sim.pair_matrix_nanos")) {
    AddRate(derived, "pair_matrix.pairs_per_sec",
            metrics.CounterValue("sim.pairs_computed"), fill->sum);
    AddRate(derived, "pair_matrix.tiles_per_sec",
            metrics.CounterValue("sim.tiles_filled"), fill->sum);
  }
  if (const HistogramSnapshot* build =
          metrics.FindHistogram("sim.profile_build_nanos")) {
    AddRate(derived, "profiles.refs_per_sec",
            metrics.CounterValue("prop.profiles_built"), build->sum);
  }
  const int64_t memo_hits = metrics.CounterValue("prop.memo_hits");
  const int64_t memo_misses = metrics.CounterValue("prop.memo_misses");
  if (memo_hits + memo_misses > 0) {
    derived.emplace_back("prop.memo_hit_rate",
                         static_cast<double>(memo_hits) /
                             static_cast<double>(memo_hits + memo_misses));
  }
  const int64_t busy = metrics.CounterValue("pool.busy_nanos");
  const int64_t idle = metrics.CounterValue("pool.idle_nanos");
  if (busy + idle > 0) {
    derived.emplace_back("thread_pool.utilization",
                         static_cast<double>(busy) /
                             static_cast<double>(busy + idle));
  }
  return derived;
}

/// The run-attribute registry: std::map so snapshots come out key-sorted
/// (deterministic report ordering, like the metrics snapshot).
std::mutex& AttributeMutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, std::string>& AttributeMap() {
  static std::map<std::string, std::string> attributes;
  return attributes;
}

}  // namespace

void SetRunAttribute(const std::string& key, const std::string& value) {
  const std::lock_guard<std::mutex> lock(AttributeMutex());
  AttributeMap()[key] = value;
}

RunReport CollectRunReport(std::string label) {
  RunReport report;
  report.label = std::move(label);
  {
    const std::lock_guard<std::mutex> lock(AttributeMutex());
    report.attributes.assign(AttributeMap().begin(), AttributeMap().end());
  }
  report.metrics = MetricsRegistry::Global().Snapshot();
  report.spans = Tracer::Global().Snapshot();
  report.spans_dropped = Tracer::Global().DroppedSpans();
  MemoryTracker::Global().SampleRss();  // refresh the RSS gauge
  report.memory = MemoryTracker::Global().Snapshot();
  report.stages = SummarizeStages(report.spans);
  report.derived = ComputeDerived(report.metrics);
  return report;
}

std::string RunReportToJson(const RunReport& report) {
  JsonWriter json;
  json.BeginObject();
  json.Key("distinct_run_report").Value(RunReport::kSchemaVersion);
  json.Key("label").Value(report.label);
  json.Key("spans_dropped").Value(report.spans_dropped);

  json.Key("attributes").BeginObject();
  for (const auto& [key, value] : report.attributes) {
    json.Key(key).Value(value);
  }
  json.EndObject();

  json.Key("stages").BeginArray();
  for (const StageSummary& stage : report.stages) {
    json.BeginObject();
    json.Key("path").Value(stage.path);
    json.Key("calls").Value(stage.calls);
    json.Key("total_ns").Value(stage.total_nanos);
    json.EndObject();
  }
  json.EndArray();

  json.Key("spans").BeginArray();
  for (const SpanRecord& span : report.spans) {
    json.BeginObject();
    json.Key("name").Value(span.name);
    json.Key("start_ns").Value(span.start_nanos);
    json.Key("duration_ns").Value(span.duration_nanos);
    json.Key("parent").Value(span.parent);
    json.Key("thread").Value(span.thread);
    json.EndObject();
  }
  json.EndArray();

  json.Key("counters").BeginObject();
  for (const auto& [name, value] : report.metrics.counters) {
    json.Key(name).Value(value);
  }
  json.EndObject();

  json.Key("gauges").BeginObject();
  for (const auto& [name, value] : report.metrics.gauges) {
    json.Key(name).Value(value);
  }
  json.EndObject();

  json.Key("histograms").BeginArray();
  for (const HistogramSnapshot& histogram : report.metrics.histograms) {
    json.BeginObject();
    json.Key("name").Value(histogram.name);
    json.Key("count").Value(histogram.count);
    json.Key("sum_ns").Value(histogram.sum);
    json.Key("mean_ns").Value(histogram.MeanNanos());
    json.Key("p50_ns").Value(histogram.PercentileUpperBoundNanos(0.50));
    json.Key("p95_ns").Value(histogram.PercentileUpperBoundNanos(0.95));
    json.Key("p99_ns").Value(histogram.PercentileUpperBoundNanos(0.99));
    json.Key("buckets").BeginArray();
    // Trailing all-zero buckets are elided; parsers treat missing as 0.
    int last = HistogramSnapshot::kNumBuckets - 1;
    while (last >= 0 && histogram.buckets[static_cast<size_t>(last)] == 0) {
      --last;
    }
    for (int b = 0; b <= last; ++b) {
      json.Value(histogram.buckets[static_cast<size_t>(b)]);
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  json.Key("memory").BeginArray();
  for (const MemoryTracker::ComponentSnapshot& component : report.memory) {
    json.BeginObject();
    json.Key("component").Value(component.name);
    json.Key("current_bytes").Value(component.current_bytes);
    json.Key("peak_bytes").Value(component.peak_bytes);
    json.EndObject();
  }
  json.EndArray();

  json.Key("derived").BeginObject();
  for (const auto& [name, value] : report.derived) {
    json.Key(name).Value(value);
  }
  json.EndObject();

  json.Key("tables").BeginArray();
  for (const ReportTable& table : report.tables) {
    json.BeginObject();
    json.Key("title").Value(table.title);
    json.Key("header").BeginArray();
    for (const std::string& cell : table.header) {
      json.Value(cell);
    }
    json.EndArray();
    json.Key("rows").BeginArray();
    for (const std::vector<std::string>& row : table.rows) {
      json.BeginArray();
      for (const std::string& cell : row) {
        json.Value(cell);
      }
      json.EndArray();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  return json.str();
}

std::string RunReportToText(const RunReport& report) {
  std::string out =
      StrFormat("run report: %s\n\n", report.label.c_str());

  if (!report.attributes.empty()) {
    TextTable attributes({"attribute", "value"});
    for (const auto& [key, value] : report.attributes) {
      attributes.AddRow({key, value});
    }
    out += attributes.Render();
    out += "\n";
  }

  if (!report.stages.empty()) {
    TextTable stages({"stage", "calls", "total (s)"});
    stages.SetRightAlign(1);
    stages.SetRightAlign(2);
    for (const StageSummary& stage : report.stages) {
      const size_t leaf = stage.path.rfind('/');
      const std::string name =
          leaf == std::string::npos ? stage.path : stage.path.substr(leaf + 1);
      stages.AddRow({std::string(static_cast<size_t>(stage.depth) * 2, ' ') +
                         name,
                     StrFormat("%lld", static_cast<long long>(stage.calls)),
                     StrFormat("%.3f",
                               static_cast<double>(stage.total_nanos) / 1e9)});
    }
    out += stages.Render();
    out += "\n";
  }

  if (!report.metrics.counters.empty() || !report.metrics.gauges.empty()) {
    TextTable counters({"metric", "value"});
    counters.SetRightAlign(1);
    for (const auto& [name, value] : report.metrics.counters) {
      counters.AddRow({name, StrFormat("%lld", static_cast<long long>(value))});
    }
    for (const auto& [name, value] : report.metrics.gauges) {
      counters.AddRow({name + " (gauge)",
                       StrFormat("%lld", static_cast<long long>(value))});
    }
    if (report.spans_dropped > 0) {
      counters.AddRow(
          {"obs.spans_dropped (trace truncated)",
           StrFormat("%lld", static_cast<long long>(report.spans_dropped))});
    }
    out += counters.Render();
    out += "\n";
  }

  if (!report.metrics.histograms.empty()) {
    TextTable histograms({"histogram", "count", "mean (ms)", "p50 <= (ms)",
                          "p95 <= (ms)", "p99 <= (ms)"});
    for (size_t c = 1; c <= 5; ++c) {
      histograms.SetRightAlign(c);
    }
    for (const HistogramSnapshot& histogram : report.metrics.histograms) {
      histograms.AddRow(
          {histogram.name,
           StrFormat("%lld", static_cast<long long>(histogram.count)),
           StrFormat("%.3f", histogram.MeanNanos() / 1e6),
           StrFormat("%.3f", static_cast<double>(
                                 histogram.PercentileUpperBoundNanos(0.50)) /
                                 1e6),
           StrFormat("%.3f", static_cast<double>(
                                 histogram.PercentileUpperBoundNanos(0.95)) /
                                 1e6),
           StrFormat("%.3f", static_cast<double>(
                                 histogram.PercentileUpperBoundNanos(0.99)) /
                                 1e6)});
    }
    out += histograms.Render();
    out += "\n";
  }

  {
    bool any_memory = false;
    for (const MemoryTracker::ComponentSnapshot& component : report.memory) {
      any_memory = any_memory || component.peak_bytes != 0;
    }
    if (any_memory) {
      TextTable memory({"memory", "current (MiB)", "peak (MiB)"});
      memory.SetRightAlign(1);
      memory.SetRightAlign(2);
      for (const MemoryTracker::ComponentSnapshot& component : report.memory) {
        if (component.peak_bytes == 0) {
          continue;  // subsystem never ran
        }
        memory.AddRow(
            {component.name,
             StrFormat("%.1f", static_cast<double>(component.current_bytes) /
                                   (1024.0 * 1024.0)),
             StrFormat("%.1f", static_cast<double>(component.peak_bytes) /
                                   (1024.0 * 1024.0))});
      }
      out += memory.Render();
      out += "\n";
    }
  }

  if (!report.derived.empty()) {
    TextTable derived({"derived", "value"});
    derived.SetRightAlign(1);
    for (const auto& [name, value] : report.derived) {
      derived.AddRow({name, StrFormat("%.3f", value)});
    }
    out += derived.Render();
  }

  for (const ReportTable& table : report.tables) {
    out += "\n";
    out += table.title;
    out += "\n";
    TextTable rendered(table.header);
    for (const std::vector<std::string>& row : table.rows) {
      rendered.AddRow(row);
    }
    out += rendered.Render();
  }
  return out;
}

Status WriteRunReportJson(const RunReport& report, const std::string& path) {
  return WriteStringToFile(path, RunReportToJson(report), "report");
}

}  // namespace obs
}  // namespace distinct
