// Minimal streaming JSON serializer (objects, arrays, scalars, escaping).
// Used by the run report and the benchmark harnesses; deliberately
// write-only — the library never needs to parse JSON.

#ifndef DISTINCT_OBS_JSON_WRITER_H_
#define DISTINCT_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace distinct {
namespace obs {

/// Emits one JSON document. Containers are opened/closed explicitly;
/// commas are inserted automatically. Misuse (a bare key at array level,
/// closing the wrong container) is a programmer error and asserts.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits the key of the next object member.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(double value);  // non-finite serializes as null
  JsonWriter& Value(bool value);

  /// The finished document. Valid once every container is closed.
  const std::string& str() const;

  /// Escapes `text` for inclusion in a JSON string literal (no quotes).
  static std::string Escape(std::string_view text);

 private:
  enum class Scope { kObject, kArray };
  void BeforeValue();

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> has_items_;  // parallel to scopes_
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace distinct

#endif  // DISTINCT_OBS_JSON_WRITER_H_
