// Process-wide metrics: lock-cheap counters, gauges, and fixed-bucket
// latency histograms.
//
// Counters and histograms are sharded per thread (each thread owns a
// cache-line-padded slot chosen once via a thread-local index), so the
// similarity kernel and ParallelForShared workers increment without
// contending; shards are summed only when a snapshot is taken. Gauges are a
// single atomic (set-mostly, never hot). The registry hands out stable
// pointers: call sites cache them in function-local statics and a
// Reset() zeroes values without invalidating pointers.
//
// Everything is gated on the process-wide observability switch. When it is
// off (the default) the recording macros reduce to one relaxed atomic load
// and a predictable branch, so instrumented hot paths keep their benchmark
// numbers and the parallel kernel's bit-identical guarantee is trivially
// unaffected (instrumentation never feeds back into computation).

#ifndef DISTINCT_OBS_METRICS_H_
#define DISTINCT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace distinct {
namespace obs {

namespace internal {
inline std::atomic<bool> g_enabled{false};

/// Index of the calling thread's shard slot, assigned on first use and
/// fixed for the thread's lifetime.
unsigned ThreadShardIndex();
}  // namespace internal

/// Whether observability (metrics + tracing) is recording.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the process-wide switch. Typically set once at startup
/// (DistinctConfig::observability or the CLI --metrics-json/--report
/// flags); tests toggle it freely.
inline void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

/// A monotonically increasing sum, sharded per thread. Adds are one relaxed
/// fetch_add on the caller's own shard; concurrent adds from N threads sum
/// exactly (no sampling, no loss).
class Counter {
 public:
  static constexpr unsigned kShards = 16;  // power of two

  void Add(int64_t delta) {
    shards_[internal::ThreadShardIndex() & (kShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// A last-write-wins level (thread count, path count, queue depth).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Merged view of one histogram at snapshot time.
struct HistogramSnapshot {
  /// Bucket b counts samples in [2^b, 2^(b+1)) nanoseconds (bucket 0 also
  /// holds 0). 48 buckets cover ~3.2 days.
  static constexpr int kNumBuckets = 48;

  std::string name;
  int64_t count = 0;
  int64_t sum = 0;  // nanoseconds
  std::array<int64_t, kNumBuckets> buckets{};

  double MeanNanos() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
  /// Upper bound of the bucket containing the p-th percentile (p in [0,1]).
  int64_t PercentileUpperBoundNanos(double p) const;
};

/// Fixed-bucket latency histogram over nanoseconds, sharded per thread like
/// Counter. Record() touches only the caller's shard; Snapshot() merges.
class Histogram {
 public:
  static constexpr unsigned kShards = 16;  // power of two
  static constexpr int kNumBuckets = HistogramSnapshot::kNumBuckets;

  void Record(int64_t nanos);

  /// Merged buckets/count/sum (name left empty; the registry fills it).
  HistogramSnapshot Snapshot() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::array<std::atomic<int64_t>, kNumBuckets> buckets{};
  };
  std::array<Shard, kShards> shards_{};
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of the named counter, 0 when absent.
  int64_t CounterValue(std::string_view name) const;
  /// Value of the named gauge, 0 when absent.
  int64_t GaugeValue(std::string_view name) const;
  /// The named histogram, nullptr when absent.
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
};

/// Name -> metric map. Get* registers on first use and always returns the
/// same pointer for a name; pointers stay valid for the process lifetime
/// (Reset zeroes values, it never deletes).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (start of a fresh run / test).
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace distinct

/// Adds `delta` to the named counter when observability is on. The counter
/// pointer is resolved once per call site (function-local static).
#define DISTINCT_COUNTER_ADD(name, delta)                               \
  do {                                                                  \
    if (::distinct::obs::Enabled()) {                                   \
      static ::distinct::obs::Counter* const distinct_obs_counter_ =    \
          ::distinct::obs::MetricsRegistry::Global().GetCounter(name);  \
      distinct_obs_counter_->Add(delta);                                \
    }                                                                   \
  } while (0)

/// Sets the named gauge when observability is on.
#define DISTINCT_GAUGE_SET(name, value)                                 \
  do {                                                                  \
    if (::distinct::obs::Enabled()) {                                   \
      static ::distinct::obs::Gauge* const distinct_obs_gauge_ =        \
          ::distinct::obs::MetricsRegistry::Global().GetGauge(name);    \
      distinct_obs_gauge_->Set(value);                                  \
    }                                                                   \
  } while (0)

/// Records a nanosecond sample in the named histogram when observability
/// is on.
#define DISTINCT_HISTOGRAM_RECORD(name, nanos)                            \
  do {                                                                    \
    if (::distinct::obs::Enabled()) {                                     \
      static ::distinct::obs::Histogram* const distinct_obs_histogram_ =  \
          ::distinct::obs::MetricsRegistry::Global().GetHistogram(name);  \
      distinct_obs_histogram_->Record(nanos);                             \
    }                                                                     \
  } while (0)

#endif  // DISTINCT_OBS_METRICS_H_
