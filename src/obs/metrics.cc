#include "obs/metrics.h"

#include <algorithm>
#include <bit>

namespace distinct {
namespace obs {

namespace internal {

unsigned ThreadShardIndex() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace internal

namespace {

/// Bucket of a nanosecond sample: floor(log2(nanos)), clamped.
int BucketOf(int64_t nanos) {
  if (nanos <= 1) {
    return 0;
  }
  const int width = std::bit_width(static_cast<uint64_t>(nanos));
  return std::min(width - 1, Histogram::kNumBuckets - 1);
}

}  // namespace

int64_t HistogramSnapshot::PercentileUpperBoundNanos(double p) const {
  if (count <= 0) {
    return 0;
  }
  const double target = p * static_cast<double>(count);
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets[static_cast<size_t>(b)];
    if (static_cast<double>(seen) >= target) {
      return int64_t{1} << (b + 1);
    }
  }
  return int64_t{1} << kNumBuckets;
}

void Histogram::Record(int64_t nanos) {
  Shard& shard = shards_[internal::ThreadShardIndex() & (kShards - 1)];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(nanos, std::memory_order_relaxed);
  shard.buckets[static_cast<size_t>(BucketOf(nanos))].fetch_add(
      1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (const Shard& shard : shards_) {
    snapshot.count += shard.count.load(std::memory_order_relaxed);
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < kNumBuckets; ++b) {
      snapshot.buckets[static_cast<size_t>(b)] +=
          shard.buckets[static_cast<size_t>(b)].load(
              std::memory_order_relaxed);
    }
  }
  return snapshot;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

int64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) {
      return value;
    }
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const auto& [gauge_name, value] : gauges) {
    if (gauge_name == name) {
      return value;
    }
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSnapshot& histogram : histograms) {
    if (histogram.name == name) {
      return &histogram;
    }
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;  // std::map iteration order => sorted by name
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot merged = histogram->Snapshot();
    merged.name = name;
    snapshot.histograms.push_back(std::move(merged));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace obs
}  // namespace distinct
