#include "obs/trace_export.h"

#include "common/io_util.h"
#include "common/string_util.h"
#include "obs/json_reader.h"
#include "obs/json_writer.h"

namespace distinct {
namespace obs {

namespace {

constexpr char kFragmentVersionKey[] = "distinct_trace_fragment";
constexpr int kFragmentVersion = 1;
constexpr char kFragmentContext[] = "trace fragment";

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceProcess>& processes) {
  JsonWriter json;
  json.BeginObject();
  json.Key("displayTimeUnit").Value("ms");
  json.Key("traceEvents").BeginArray();
  // Process-name metadata first, in process order, so the viewer labels
  // rows before any event references them.
  for (const TraceProcess& process : processes) {
    json.BeginObject();
    json.Key("name").Value("process_name");
    json.Key("ph").Value("M");
    json.Key("pid").Value(process.pid);
    json.Key("tid").Value(0);
    json.Key("args").BeginObject();
    json.Key("name").Value(process.name);
    json.EndObject();
    json.EndObject();
    json.BeginObject();
    json.Key("name").Value("process_sort_index");
    json.Key("ph").Value("M");
    json.Key("pid").Value(process.pid);
    json.Key("tid").Value(0);
    json.Key("args").BeginObject();
    json.Key("sort_index").Value(process.pid);
    json.EndObject();
    json.EndObject();
  }
  for (const TraceProcess& process : processes) {
    for (const SpanRecord& span : process.spans) {
      const bool incomplete = span.duration_nanos < 0;
      json.BeginObject();
      json.Key("name").Value(span.name);
      json.Key("cat").Value("distinct");
      json.Key("ph").Value("X");
      // Microseconds with nanosecond precision (the format takes doubles).
      json.Key("ts").Value(static_cast<double>(span.start_nanos) / 1e3);
      json.Key("dur").Value(
          incomplete ? 0.0 : static_cast<double>(span.duration_nanos) / 1e3);
      json.Key("pid").Value(process.pid);
      json.Key("tid").Value(span.thread);
      if (incomplete) {
        json.Key("args").BeginObject();
        json.Key("incomplete").Value(true);
        json.EndObject();
      }
      json.EndObject();
    }
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceProcess>& processes) {
  return WriteStringToFile(path, ChromeTraceJson(processes));
}

std::string TraceFragmentPath(const std::string& dir, int shard_id) {
  return dir + "/trace-shard-" + std::to_string(shard_id) + ".json";
}

Status WriteTraceFragment(const std::string& path,
                          const std::vector<SpanRecord>& spans) {
  JsonWriter json;
  json.BeginObject();
  json.Key(kFragmentVersionKey).Value(kFragmentVersion);
  json.Key("spans").BeginArray();
  for (const SpanRecord& span : spans) {
    json.BeginObject();
    json.Key("name").Value(span.name);
    json.Key("start_ns").Value(span.start_nanos);
    json.Key("duration_ns").Value(span.duration_nanos);
    json.Key("parent").Value(span.parent);
    json.Key("thread").Value(span.thread);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return WriteStringToFile(path, json.str(), "trace");
}

StatusOr<std::vector<SpanRecord>> ReadTraceFragment(const std::string& path) {
  // EINTR-retried, error-checked read: the old fread loop treated a
  // mid-file I/O error as EOF and handed the parser a silent truncation.
  auto text = ReadFileToString(path, "trace");
  if (!text.ok()) {
    if (text.status().code() == StatusCode::kNotFound) {
      return NotFoundError("trace: no fragment '" + path + "'");
    }
    return text.status();
  }

  auto root = JsonReader(*text, kFragmentContext).Parse();
  DISTINCT_RETURN_IF_ERROR(root.status());
  auto version = RequireInt(*root, kFragmentVersionKey, kFragmentContext);
  DISTINCT_RETURN_IF_ERROR(version.status());
  if (*version != kFragmentVersion) {
    return FailedPreconditionError(StrFormat(
        "trace fragment version %lld, this build reads version %d",
        static_cast<long long>(*version), kFragmentVersion));
  }
  const JsonValue* spans = root->Find("spans");
  if (spans == nullptr || spans->kind != JsonValue::Kind::kArray) {
    return DataLossError("trace fragment: missing 'spans' array");
  }
  std::vector<SpanRecord> records;
  records.reserve(spans->items.size());
  for (const JsonValue& item : spans->items) {
    if (item.kind != JsonValue::Kind::kObject) {
      return DataLossError("trace fragment: span is not an object");
    }
    const JsonValue* name = item.Find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) {
      return DataLossError("trace fragment: span without a name");
    }
    auto start = RequireInt(item, "start_ns", kFragmentContext);
    DISTINCT_RETURN_IF_ERROR(start.status());
    auto duration = RequireInt(item, "duration_ns", kFragmentContext);
    DISTINCT_RETURN_IF_ERROR(duration.status());
    auto parent = RequireInt(item, "parent", kFragmentContext);
    DISTINCT_RETURN_IF_ERROR(parent.status());
    auto thread = RequireInt(item, "thread", kFragmentContext);
    DISTINCT_RETURN_IF_ERROR(thread.status());
    SpanRecord record;
    record.name = name->string_value;
    record.start_nanos = *start;
    record.duration_nanos = *duration;
    const auto span_count = static_cast<int64_t>(records.size());
    if (*parent < -1 || *parent >= span_count) {
      return DataLossError(StrFormat(
          "trace fragment: span %lld has out-of-range parent %lld",
          static_cast<long long>(span_count),
          static_cast<long long>(*parent)));
    }
    record.parent = static_cast<int>(*parent);
    record.thread = static_cast<int>(*thread);
    records.push_back(std::move(record));
  }
  return records;
}

StatusOr<std::vector<TraceProcess>> CollectShardedTrace(
    const std::vector<SpanRecord>& driver_spans,
    const std::string& fragment_dir, int num_shards) {
  std::vector<TraceProcess> processes;
  TraceProcess driver;
  driver.pid = 0;
  driver.name = "driver";
  driver.spans = driver_spans;
  processes.push_back(std::move(driver));
  for (int s = 0; s < num_shards; ++s) {
    auto spans = ReadTraceFragment(TraceFragmentPath(fragment_dir, s));
    if (spans.status().code() == StatusCode::kNotFound) {
      continue;  // shard failed, or ran before tracing was enabled
    }
    DISTINCT_RETURN_IF_ERROR(spans.status());
    TraceProcess shard;
    shard.pid = s + 1;
    shard.name = "shard " + std::to_string(s);
    shard.spans = *std::move(spans);
    processes.push_back(std::move(shard));
  }
  return processes;
}

}  // namespace obs
}  // namespace distinct
