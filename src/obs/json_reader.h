// Minimal recursive-descent JSON reader — the parsing counterpart of
// obs/json_writer.h, shared by checkpoint loading (core/checkpoint.cc),
// the sharded-scan trace merger (obs/trace_export.h), and the benchmark
// regression gate (obs/bench_compare.h).
//
// Objects keep member order; numbers stay int64 when written without a
// fraction/exponent so ids round-trip exactly, and doubles round-trip via
// JsonWriter's %.17g. Parse errors are DataLoss with a byte offset and the
// caller-supplied context ("checkpoint JSON", "trace fragment", ...).

#ifndef DISTINCT_OBS_JSON_READER_H_
#define DISTINCT_OBS_JSON_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace distinct {
namespace obs {

/// One parsed JSON value. Containers own their children by value.
struct JsonValue {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                               // kArray
  std::vector<std::pair<std::string, JsonValue>> members;     // kObject

  /// First member named `key`, nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const {
    for (const auto& [name, value] : members) {
      if (name == key) {
        return &value;
      }
    }
    return nullptr;
  }

  /// Numeric value of a kInt or kDouble node.
  double AsDouble() const {
    return kind == Kind::kInt ? static_cast<double>(int_value) : double_value;
  }

  bool IsNumber() const {
    return kind == Kind::kInt || kind == Kind::kDouble;
  }
};

/// Parses one document. `context` prefixes every error message.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text,
                      std::string context = "JSON")
      : text_(text), context_(std::move(context)) {}

  /// The parsed root, or DataLoss on malformed/trailing input.
  StatusOr<JsonValue> Parse();

 private:
  static constexpr int kMaxDepth = 64;

  Status Corrupt(const std::string& what) const;

  void SkipWhitespace();
  bool Consume(char c);

  StatusOr<JsonValue> ParseValue(int depth);
  StatusOr<JsonValue> ParseObject(int depth);
  StatusOr<JsonValue> ParseArray(int depth);
  StatusOr<JsonValue> ParseString();
  StatusOr<JsonValue> ParseLiteralBool();
  StatusOr<JsonValue> ParseLiteralNull();
  StatusOr<JsonValue> ParseNumber();

  std::string_view text_;
  std::string context_;
  size_t pos_ = 0;
};

/// Member `key` of `object` as an int64; DataLoss (with `context`) when the
/// member is missing or not an integer.
StatusOr<int64_t> RequireInt(const JsonValue& object, const char* key,
                             const std::string& context);

}  // namespace obs
}  // namespace distinct

#endif  // DISTINCT_OBS_JSON_READER_H_
