#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace distinct {
namespace obs {

std::string JsonWriter::Escape(std::string_view text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

void JsonWriter::BeforeValue() {
  if (scopes_.empty()) {
    return;  // top-level value
  }
  if (scopes_.back() == Scope::kObject) {
    DISTINCT_CHECK(pending_key_);  // object members need Key() first
    pending_key_ = false;
    return;
  }
  if (has_items_.back()) {
    out_ += ',';
  }
  has_items_.back() = true;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  DISTINCT_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  DISTINCT_CHECK(!pending_key_);
  if (has_items_.back()) {
    out_ += ',';
  }
  has_items_.back() = true;
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  scopes_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  DISTINCT_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  DISTINCT_CHECK(!pending_key_);
  out_ += '}';
  scopes_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  scopes_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  DISTINCT_CHECK(!scopes_.empty() && scopes_.back() == Scope::kArray);
  out_ += ']';
  scopes_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* value) {
  return Value(std::string_view(value));
}

JsonWriter& JsonWriter::Value(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

const std::string& JsonWriter::str() const {
  DISTINCT_CHECK(scopes_.empty());
  return out_;
}

}  // namespace obs
}  // namespace distinct
