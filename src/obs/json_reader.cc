#include "obs/json_reader.h"

#include "common/string_util.h"

namespace distinct {
namespace obs {

Status JsonReader::Corrupt(const std::string& what) const {
  return DataLossError(StrFormat("%s: %s at byte %zu", context_.c_str(),
                                 what.c_str(), pos_));
}

StatusOr<JsonValue> JsonReader::Parse() {
  auto value = ParseValue(0);
  DISTINCT_RETURN_IF_ERROR(value.status());
  SkipWhitespace();
  if (pos_ != text_.size()) {
    return Corrupt("trailing bytes after the JSON document");
  }
  return value;
}

void JsonReader::SkipWhitespace() {
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
      break;
    }
    ++pos_;
  }
}

bool JsonReader::Consume(char c) {
  if (pos_ < text_.size() && text_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

StatusOr<JsonValue> JsonReader::ParseValue(int depth) {
  if (depth > kMaxDepth) {
    return Corrupt("nesting too deep");
  }
  SkipWhitespace();
  if (pos_ >= text_.size()) {
    return Corrupt("truncated document");
  }
  const char c = text_[pos_];
  switch (c) {
    case '{':
      return ParseObject(depth);
    case '[':
      return ParseArray(depth);
    case '"':
      return ParseString();
    case 't':
    case 'f':
      return ParseLiteralBool();
    case 'n':
      return ParseLiteralNull();
    default:
      return ParseNumber();
  }
}

StatusOr<JsonValue> JsonReader::ParseObject(int depth) {
  ++pos_;  // '{'
  JsonValue value;
  value.kind = JsonValue::Kind::kObject;
  SkipWhitespace();
  if (Consume('}')) {
    return value;
  }
  for (;;) {
    SkipWhitespace();
    auto key = ParseString();
    DISTINCT_RETURN_IF_ERROR(key.status());
    SkipWhitespace();
    if (!Consume(':')) {
      return Corrupt("expected ':' after object key");
    }
    auto member = ParseValue(depth + 1);
    DISTINCT_RETURN_IF_ERROR(member.status());
    value.members.emplace_back(std::move(key->string_value),
                               *std::move(member));
    SkipWhitespace();
    if (Consume(',')) {
      continue;
    }
    if (Consume('}')) {
      return value;
    }
    return Corrupt("expected ',' or '}' in object");
  }
}

StatusOr<JsonValue> JsonReader::ParseArray(int depth) {
  ++pos_;  // '['
  JsonValue value;
  value.kind = JsonValue::Kind::kArray;
  SkipWhitespace();
  if (Consume(']')) {
    return value;
  }
  for (;;) {
    auto item = ParseValue(depth + 1);
    DISTINCT_RETURN_IF_ERROR(item.status());
    value.items.push_back(*std::move(item));
    SkipWhitespace();
    if (Consume(',')) {
      continue;
    }
    if (Consume(']')) {
      return value;
    }
    return Corrupt("expected ',' or ']' in array");
  }
}

StatusOr<JsonValue> JsonReader::ParseString() {
  if (!Consume('"')) {
    return Corrupt("expected '\"'");
  }
  JsonValue value;
  value.kind = JsonValue::Kind::kString;
  std::string& out = value.string_value;
  while (pos_ < text_.size()) {
    const char c = text_[pos_++];
    if (c == '"') {
      return value;
    }
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos_ >= text_.size()) {
      break;
    }
    const char escape = text_[pos_++];
    switch (escape) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (pos_ + 4 > text_.size()) {
          return Corrupt("truncated \\u escape");
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = text_[pos_++];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return Corrupt("bad \\u escape digit");
          }
        }
        // The writer only \u-escapes control characters (< 0x20); decode
        // the BMP generally anyway.
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default:
        return Corrupt("unknown escape");
    }
  }
  return Corrupt("unterminated string");
}

StatusOr<JsonValue> JsonReader::ParseLiteralBool() {
  if (text_.compare(pos_, 4, "true") == 0) {
    pos_ += 4;
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    value.bool_value = true;
    return value;
  }
  if (text_.compare(pos_, 5, "false") == 0) {
    pos_ += 5;
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    return value;
  }
  return Corrupt("bad literal");
}

StatusOr<JsonValue> JsonReader::ParseLiteralNull() {
  if (text_.compare(pos_, 4, "null") == 0) {
    pos_ += 4;
    return JsonValue{};
  }
  return Corrupt("bad literal");
}

StatusOr<JsonValue> JsonReader::ParseNumber() {
  const size_t start = pos_;
  bool floating = false;
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if ((c >= '0' && c <= '9') || c == '-' || c == '+') {
      ++pos_;
    } else if (c == '.' || c == 'e' || c == 'E') {
      floating = true;
      ++pos_;
    } else {
      break;
    }
  }
  const std::string_view token = text_.substr(start, pos_ - start);
  JsonValue value;
  if (floating) {
    auto parsed = ParseDouble(token);
    if (!parsed.has_value()) {
      return Corrupt("bad number");
    }
    value.kind = JsonValue::Kind::kDouble;
    value.double_value = *parsed;
  } else {
    auto parsed = ParseInt64(token);
    if (!parsed.has_value()) {
      return Corrupt("bad number");
    }
    value.kind = JsonValue::Kind::kInt;
    value.int_value = *parsed;
  }
  return value;
}

StatusOr<int64_t> RequireInt(const JsonValue& object, const char* key,
                             const std::string& context) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kInt) {
    return DataLossError(
        StrFormat("%s: missing int '%s'", context.c_str(), key));
  }
  return value->int_value;
}

}  // namespace obs
}  // namespace distinct
