// Structured run reports: one RunReport per pipeline run, built from the
// global MetricsRegistry and Tracer, serialized as JSON (--metrics-json)
// or a human text table (--report).

#ifndef DISTINCT_OBS_REPORT_H_
#define DISTINCT_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace distinct {
namespace obs {

/// One aggregated trace stage: every span sharing the same root-to-span
/// name path ("create/train/svm_resemblance"), in first-appearance order.
struct StageSummary {
  std::string path;
  int depth = 0;
  int64_t calls = 0;
  int64_t total_nanos = 0;
};

/// A caller-supplied table attached to the report (e.g. the sharded scan's
/// per-shard outcomes). obs/ stays ignorant of what the rows mean: rows are
/// pre-rendered strings, serialized under "tables" in the JSON and as one
/// more text table in the text rendering.
struct ReportTable {
  std::string title;
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;  // each sized like header
};

/// Everything recorded during one run.
struct RunReport {
  /// JSON schema version (the "distinct_run_report" field).
  static constexpr int kSchemaVersion = 1;

  std::string label;  // e.g. the CLI command
  /// Process-wide string facts registered via SetRunAttribute (dispatched
  /// kernel ISA, ...), sorted by key.
  std::vector<std::pair<std::string, std::string>> attributes;
  MetricsSnapshot metrics;
  std::vector<SpanRecord> spans;
  /// Spans the tracer refused at capacity; non-zero = truncated trace.
  int64_t spans_dropped = 0;
  /// Per-subsystem byte gauges with peak watermarks (obs/memory.h).
  std::vector<MemoryTracker::ComponentSnapshot> memory;
  std::vector<StageSummary> stages;  // derived from spans
  /// Cross-metric ratios (pairs/sec, pool utilization, ...). Ratios whose
  /// inputs were never recorded are omitted.
  std::vector<std::pair<std::string, double>> derived;
  /// Caller-attached tables, rendered after the derived ratios.
  std::vector<ReportTable> tables;
};

/// Registers (or overwrites) a process-wide string attribute that every
/// subsequently collected RunReport carries — runtime facts that are
/// neither counters nor gauges, e.g. which merge-join ISA the kernel
/// dispatch resolved to. Thread-safe; obs/ stays ignorant of the values.
void SetRunAttribute(const std::string& key, const std::string& value);

/// Snapshots the global registry and tracer and computes stage summaries
/// and derived ratios.
RunReport CollectRunReport(std::string label);

/// Serializes `report` as a single JSON object.
std::string RunReportToJson(const RunReport& report);

/// Renders `report` as human-readable text tables (stages indented by
/// span depth, counters, histograms with bucket-approximated percentiles,
/// derived ratios).
std::string RunReportToText(const RunReport& report);

/// Writes RunReportToJson(report) to `path`.
Status WriteRunReportJson(const RunReport& report, const std::string& path);

}  // namespace obs
}  // namespace distinct

#endif  // DISTINCT_OBS_REPORT_H_
