#include "obs/memory.h"

#include <cstdio>

#include <unistd.h>

namespace distinct {
namespace obs {

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* const tracker = new MemoryTracker();
  return *tracker;
}

const char* MemoryTracker::ComponentName(Component component) {
  switch (component) {
    case kProfileArena:
      return "profile_arena";
    case kSubtreeCache:
      return "subtree_cache";
    case kPairMatrix:
      return "pair_matrix";
    case kCheckpoint:
      return "checkpoint";
    case kIngestDictionary:
      return "ingest_dictionary";
    case kCatalogSegment:
      return "catalog_segment";
    case kRss:
      return "rss";
    case kNumComponents:
      break;
  }
  return "unknown";
}

void MemoryTracker::Add(Component component, int64_t delta) {
  Slot& slot = slots_[component];
  const int64_t now =
      slot.current.fetch_add(delta, std::memory_order_relaxed) + delta;
  // Peak is advisory (concurrent adds may briefly publish a stale max);
  // the CAS loop converges and the steady-state cost is one load.
  int64_t peak = slot.peak.load(std::memory_order_relaxed);
  while (now > peak && !slot.peak.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::Set(Component component, int64_t bytes) {
  Slot& slot = slots_[component];
  slot.current.store(bytes, std::memory_order_relaxed);
  int64_t peak = slot.peak.load(std::memory_order_relaxed);
  while (bytes > peak && !slot.peak.compare_exchange_weak(
                             peak, bytes, std::memory_order_relaxed)) {
  }
}

int64_t MemoryTracker::CurrentBytes(Component component) const {
  return slots_[component].current.load(std::memory_order_relaxed);
}

int64_t MemoryTracker::PeakBytes(Component component) const {
  return slots_[component].peak.load(std::memory_order_relaxed);
}

int64_t MemoryTracker::TrackedTotalBytes() const {
  int64_t total = 0;
  for (int c = 0; c < kNumComponents; ++c) {
    if (c == kRss) {
      continue;
    }
    total += slots_[c].current.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t MemoryTracker::SampleRss() {
  const int64_t rss = ReadRssBytes();
  if (rss >= 0) {
    Set(kRss, rss);
  }
  return rss;
}

void MemoryTracker::Reset() {
  for (Slot& slot : slots_) {
    slot.current.store(0, std::memory_order_relaxed);
    slot.peak.store(0, std::memory_order_relaxed);
  }
}

std::vector<MemoryTracker::ComponentSnapshot> MemoryTracker::Snapshot()
    const {
  std::vector<ComponentSnapshot> snapshot;
  snapshot.reserve(kNumComponents);
  for (int c = 0; c < kNumComponents; ++c) {
    ComponentSnapshot component;
    component.name = ComponentName(static_cast<Component>(c));
    component.current_bytes =
        slots_[c].current.load(std::memory_order_relaxed);
    component.peak_bytes = slots_[c].peak.load(std::memory_order_relaxed);
    snapshot.push_back(std::move(component));
  }
  return snapshot;
}

int64_t ReadRssBytes() {
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* file = std::fopen("/proc/self/statm", "r");
  if (file == nullptr) {
    return -1;
  }
  long long size_pages = 0;
  long long resident_pages = 0;
  const int matched =
      std::fscanf(file, "%lld %lld", &size_pages, &resident_pages);
  std::fclose(file);
  if (matched != 2) {
    return -1;
  }
  const long page_size = ::sysconf(_SC_PAGESIZE);
  if (page_size <= 0) {
    return -1;
  }
  return static_cast<int64_t>(resident_pages) *
         static_cast<int64_t>(page_size);
}

}  // namespace obs
}  // namespace distinct
