// Benchmark regression gate: diffs BENCH_<name>.json artifacts against
// committed baselines with per-metric relative thresholds.
//
// The benches emit machine-readable BENCH_<name>.json files
// (bench/bench_util.h) but until now nothing *consumed* them — a PR could
// halve the fused-kernel speedup and CI would stay green. The gate closes
// that loop: a rules file names the metrics that must not regress, the
// tools/bench_gate binary loads the baseline and current artifacts and
// exits non-zero on any violation. Because absolute wall-clock numbers are
// machine-dependent, the committed rules gate *relative* metrics (speedup
// ratios, exactness flags) with generous thresholds; absolute metrics can
// still be gated in controlled environments.
//
// Rules file (bench/baselines/gate_rules.txt), one rule per line:
//
//   # bench    metric            direction  threshold
//   pair_kernel fused_speedup    higher     0.5
//   pair_kernel fused_exact      equal      0
//   propagation memo_speedup_vs_levelwise higher 0.6
//
// direction: higher (current >= baseline*(1-threshold)), lower
// (current <= baseline*(1+threshold)), equal (relative deviation at most
// threshold; 0 = exact). A metric or artifact missing on either side
// fails the gate — silence must never pass.

#ifndef DISTINCT_OBS_BENCH_COMPARE_H_
#define DISTINCT_OBS_BENCH_COMPARE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace distinct {
namespace obs {

/// One parsed BENCH_<name>.json: numeric metrics split from string
/// annotations (run provenance — hostname, build type, git SHA).
struct BenchArtifact {
  std::string name;  // the "bench" field
  std::map<std::string, double> metrics;
  std::map<std::string, std::string> info;
};

/// Parses the flat one-object JSON a BenchJson::Write emitted.
StatusOr<BenchArtifact> ParseBenchArtifact(const std::string& json_text);

/// Reads and parses `path`. NotFound when the file does not exist.
StatusOr<BenchArtifact> LoadBenchArtifact(const std::string& path);

/// One gating rule.
struct GateRule {
  enum class Direction { kHigherIsBetter, kLowerIsBetter, kEqual };

  std::string bench;   // artifact name ("pair_kernel")
  std::string metric;  // key inside the artifact
  Direction direction = Direction::kHigherIsBetter;
  /// Maximum tolerated relative regression (0.5 = current may be up to
  /// 50% worse than baseline). For kEqual: maximum relative deviation in
  /// either direction (0 = bit-exact).
  double threshold = 0.0;
};

const char* GateDirectionName(GateRule::Direction direction);

/// Parses a rules file: `bench metric direction threshold` per line,
/// '#' comments and blank lines ignored. InvalidArgument on malformed
/// lines (with the line number).
StatusOr<std::vector<GateRule>> ParseGateRules(const std::string& text);

/// Outcome of one rule.
struct GateCheck {
  GateRule rule;
  bool ok = false;
  double baseline = 0.0;
  double current = 0.0;
  /// Signed (current - baseline) / |baseline|; 0 when baseline is 0.
  double relative_change = 0.0;
  /// Failure (or skip) explanation: "missing baseline artifact", ...
  std::string detail;
};

struct GateReport {
  std::vector<GateCheck> checks;  // one per rule, in rule order
  int64_t failures = 0;

  bool ok() const { return failures == 0; }
};

/// Evaluates every rule against the artifact maps (keyed by bench name).
/// A bench or metric absent on either side fails that rule.
GateReport EvaluateGate(
    const std::vector<GateRule>& rules,
    const std::map<std::string, BenchArtifact>& baselines,
    const std::map<std::string, BenchArtifact>& currents);

/// Renders the report as a text table (one row per check) plus, for each
/// bench with provenance on either side, a baseline-vs-current annotation
/// line.
std::string GateReportToText(
    const GateReport& report,
    const std::map<std::string, BenchArtifact>& baselines,
    const std::map<std::string, BenchArtifact>& currents);

}  // namespace obs
}  // namespace distinct

#endif  // DISTINCT_OBS_BENCH_COMPARE_H_
