#include "obs/heartbeat.h"

#include <algorithm>
#include <cstdio>

#include "common/io_util.h"
#include "common/logging.h"
#include "obs/json_writer.h"
#include "obs/memory.h"

namespace distinct {
namespace obs {

std::string HeartbeatJson(const std::string& label,
                          const HeartbeatSample& sample) {
  JsonWriter json;
  json.BeginObject();
  json.Key("distinct_heartbeat").Value(kHeartbeatSchemaVersion);
  json.Key("label").Value(label);
  json.Key("sequence").Value(sample.sequence);
  json.Key("elapsed_s").Value(sample.elapsed_seconds);
  json.Key("shards_done").Value(sample.shards_done);
  json.Key("shards_total").Value(sample.shards_total);
  json.Key("groups_done").Value(sample.groups_done);
  json.Key("groups_total").Value(sample.groups_total);
  json.Key("refs_done").Value(sample.refs_done);
  json.Key("refs_total").Value(sample.refs_total);
  json.Key("refs_per_sec").Value(sample.refs_per_sec);
  json.Key("eta_s").Value(sample.eta_seconds);
  json.Key("rss_bytes").Value(sample.rss_bytes);
  json.Key("final").Value(sample.final);
  if (sample.final) {
    json.Key("status").Value(sample.status);
  }
  json.EndObject();
  std::string out = json.str();
  out += '\n';
  return out;
}

HeartbeatReporter::HeartbeatReporter(Options options,
                                     const ProgressState* progress)
    : options_(std::move(options)),
      progress_(progress),
      start_(std::chrono::steady_clock::now()) {
  options_.interval_seconds = std::max(options_.interval_seconds, 0.01);
  thread_ = std::thread([this] { Run(); });
}

HeartbeatReporter::~HeartbeatReporter() { Stop(); }

void HeartbeatReporter::Stop() { StopWithStatus("ok"); }

void HeartbeatReporter::StopWithStatus(const std::string& status) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  // Terminal beat: the file always ends marked final with the run's
  // outcome, so a poller never mistakes a finished (or failed) run for a
  // live one.
  Emit(/*final=*/true, status);
}

HeartbeatSample HeartbeatReporter::Sample() {
  HeartbeatSample sample;
  sample.sequence = beats_.load(std::memory_order_relaxed) + 1;
  sample.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  if (progress_ != nullptr) {
    sample.shards_total =
        progress_->shards_total.load(std::memory_order_relaxed);
    sample.shards_done =
        progress_->shards_done.load(std::memory_order_relaxed);
    sample.groups_total =
        progress_->groups_total.load(std::memory_order_relaxed);
    sample.groups_done =
        progress_->groups_done.load(std::memory_order_relaxed);
    sample.refs_total = progress_->refs_total.load(std::memory_order_relaxed);
    sample.refs_done = progress_->refs_done.load(std::memory_order_relaxed);
  }
  if (sample.elapsed_seconds > 0 && sample.refs_done > 0) {
    sample.refs_per_sec =
        static_cast<double>(sample.refs_done) / sample.elapsed_seconds;
    const int64_t remaining =
        std::max<int64_t>(sample.refs_total - sample.refs_done, 0);
    sample.eta_seconds =
        static_cast<double>(remaining) / sample.refs_per_sec;
  }
  sample.rss_bytes = MemoryTracker::Global().SampleRss();
  return sample;
}

void HeartbeatReporter::Emit(bool final, const std::string& status) {
  HeartbeatSample sample = Sample();
  sample.final = final;
  sample.status = status;
  beats_.store(sample.sequence, std::memory_order_relaxed);
  if (!options_.file_path.empty()) {
    // tmp + rename so a poller never reads a torn beat; no fsync — a lost
    // beat is harmless, the next one overwrites it.
    const std::string tmp = options_.file_path + ".tmp";
    const std::string json = HeartbeatJson(options_.label, sample);
    if (WriteStringToFile(tmp, json, "heartbeat").ok()) {
      if (std::rename(tmp.c_str(), options_.file_path.c_str()) != 0) {
        std::remove(tmp.c_str());
      }
    } else {
      std::remove(tmp.c_str());
    }
  }
  if (options_.print_progress) {
    std::fprintf(
        stderr,
        "[%s] %.1fs: shard %lld/%lld, %lld/%lld groups, %lld/%lld refs "
        "(%.0f refs/s, eta %.0fs, rss %.1f MiB)\n",
        options_.label.c_str(), sample.elapsed_seconds,
        static_cast<long long>(sample.shards_done),
        static_cast<long long>(sample.shards_total),
        static_cast<long long>(sample.groups_done),
        static_cast<long long>(sample.groups_total),
        static_cast<long long>(sample.refs_done),
        static_cast<long long>(sample.refs_total), sample.refs_per_sec,
        sample.eta_seconds,
        sample.rss_bytes < 0
            ? 0.0
            : static_cast<double>(sample.rss_bytes) / (1024.0 * 1024.0));
  }
}

void HeartbeatReporter::Run() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_seconds);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) {
      break;  // Stop() emits the terminal beat after the join
    }
    lock.unlock();
    Emit(/*final=*/false, "");
    lock.lock();
  }
}

}  // namespace obs
}  // namespace distinct
