// Scoped-span tracing: a hierarchical span tree per pipeline run.
//
//   DISTINCT_TRACE_SPAN("train");   // RAII: closes when the scope exits
//
// Each span records its name, wall-clock start offset and duration, its
// parent (the innermost span open on the same thread), and the thread it
// ran on. Spans opened on the calling thread nest via a thread-local stack;
// parallel workers record metrics instead of spans (see DESIGN.md §8 span
// naming conventions), which keeps the tree identical at every thread
// count for a fixed workload.
//
// When observability is off, DISTINCT_TRACE_SPAN costs one relaxed load.
// Open/close of an active span takes the tracer mutex — spans mark stage
// boundaries (dozens to a few thousand per run), never per-pair work.

#ifndef DISTINCT_OBS_TRACE_H_
#define DISTINCT_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"  // obs::Enabled

namespace distinct {
namespace obs {

/// One finished (or still open, duration < 0) span.
struct SpanRecord {
  std::string name;
  int64_t start_nanos = 0;     // offset from the tracer's epoch (Reset)
  int64_t duration_nanos = -1;  // -1 while open
  int parent = -1;              // index into the span list; -1 = root
  int thread = 0;               // tracer-assigned thread index (0 = first)
};

/// Collects spans process-wide. Reset() starts a new run (clears spans and
/// restarts the epoch clock).
class Tracer {
 public:
  static Tracer& Global();

  /// Clears recorded spans and restarts the epoch. Call between runs; any
  /// span still open when Reset runs is dropped on close.
  void Reset();

  /// Copies the recorded spans in creation order.
  std::vector<SpanRecord> Snapshot() const;

  /// Spans refused by OpenSpan since the last Reset() because the tracer
  /// was at capacity. Non-zero means the exported trace is truncated.
  int64_t DroppedSpans() const;

  // Internal API used by ScopedSpan. Returns the span index, or -1 when
  // the tracer is at capacity.
  int OpenSpan(const char* name);
  void CloseSpan(int index);

 private:
  /// Runaway guard: a span tree past this size is a bug, not a report.
  static constexpr size_t kMaxSpans = 1 << 20;

  Tracer();

  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  int64_t spans_dropped_ = 0;  // guarded by mutex_
  std::chrono::steady_clock::time_point epoch_;
  uint64_t generation_ = 0;  // bumped by Reset; invalidates stale stacks
  int next_thread_index_ = 0;
};

/// RAII span handle behind DISTINCT_TRACE_SPAN. No-op when observability
/// is off at open time.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Enabled()) {
      index_ = Tracer::Global().OpenSpan(name);
    }
  }
  ~ScopedSpan() {
    if (index_ >= 0) {
      Tracer::Global().CloseSpan(index_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  int index_ = -1;
};

}  // namespace obs
}  // namespace distinct

#define DISTINCT_TRACE_CONCAT_INNER(a, b) a##b
#define DISTINCT_TRACE_CONCAT(a, b) DISTINCT_TRACE_CONCAT_INNER(a, b)

/// Opens a span named `name` until the end of the enclosing scope.
#define DISTINCT_TRACE_SPAN(name)                                  \
  ::distinct::obs::ScopedSpan DISTINCT_TRACE_CONCAT(               \
      distinct_obs_span_, __LINE__)(name)

#endif  // DISTINCT_OBS_TRACE_H_
