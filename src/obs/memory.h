// Real memory accounting: per-subsystem byte gauges with peak watermarks,
// plus an RSS probe.
//
// The scan's memory budget (DistinctConfig::scan_memory_mb) used to reason
// about *estimated* bytes only; this tracker records what the big
// allocators actually hold. Each tracked component (profile arenas, the
// subtree memo, pair matrices, checkpoint serialization buffers) registers
// the bytes it owns through a TrackedBytes member or explicit Add() calls;
// the tracker keeps a current total and a high-water mark per component.
// CollectRunReport folds the snapshot into the run report as
// `mem.<component>_bytes` / `mem.<component>_peak_bytes` gauges, and the
// sharded scan's admission control consults the measured numbers.
//
// Accounting is always on (unlike metrics/tracing): the budget check needs
// real numbers even when no report was requested. The cost is one relaxed
// fetch_add (plus a rarely-taken CAS loop for a new peak) per *container
// resize*, never per element, so hot loops are untouched.
//
// Tolerance: tracked bytes are the payload capacity of the owning
// containers (vector capacity × element size, map payloads). Allocator
// headers, map node overhead, and code/stack are not counted — RSS will
// read higher. Copies register their own size; moves transfer it.

#ifndef DISTINCT_OBS_MEMORY_H_
#define DISTINCT_OBS_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace distinct {
namespace obs {

/// Process-wide byte gauges, one slot per tracked subsystem.
class MemoryTracker {
 public:
  /// Fixed component set: hot paths index an array instead of hashing a
  /// name. Extend here (and in ComponentName) when a new subsystem learns
  /// to account for itself.
  enum Component {
    kProfileArena = 0,  // sim/profile_arena.h CSR slabs
    kSubtreeCache,      // prop/workspace.h memo payload
    kPairMatrix,        // cluster/pair_matrix.h cells
    kCheckpoint,        // core/checkpoint.cc serialization buffers
    kIngestDictionary,  // catalog/writer.cc intern tables
    kCatalogSegment,    // catalog/writer.cc open-segment column buffers
    kRss,               // OS-reported resident set (sampled, not summed)
    kNumComponents,
  };

  static MemoryTracker& Global();

  static const char* ComponentName(Component component);

  /// Adjusts a component's current bytes by `delta` (negative to release)
  /// and advances its peak watermark.
  void Add(Component component, int64_t delta);

  /// Overwrites a sampled gauge (kRss) rather than accumulating.
  void Set(Component component, int64_t bytes);

  int64_t CurrentBytes(Component component) const;
  int64_t PeakBytes(Component component) const;

  /// Sum of current bytes over the allocation-tracked components (kRss is
  /// excluded — it already contains the others).
  int64_t TrackedTotalBytes() const;

  /// Reads /proc/self/statm and records resident bytes under kRss.
  /// Returns the sampled value, or -1 when the proc interface is
  /// unavailable (non-Linux); the gauge is left untouched then.
  int64_t SampleRss();

  /// Zeroes every current value and peak (start of a fresh run / test).
  void Reset();

  struct ComponentSnapshot {
    std::string name;      // "profile_arena", "subtree_cache", ...
    int64_t current_bytes = 0;
    int64_t peak_bytes = 0;
  };
  /// Point-in-time copy, in Component order; components that never
  /// recorded a byte are included with zeros.
  std::vector<ComponentSnapshot> Snapshot() const;

 private:
  struct Slot {
    std::atomic<int64_t> current{0};
    std::atomic<int64_t> peak{0};
  };
  Slot slots_[kNumComponents];
};

/// Resident-set size of this process in bytes, or -1 when unavailable.
int64_t ReadRssBytes();

/// RAII byte registration: holds `bytes` against one component for its
/// lifetime. Copying registers the copy's own bytes (a copied container
/// really does duplicate its payload); moving transfers the registration.
/// Embed as a member next to the owning container and call Set() whenever
/// the container's footprint changes.
class TrackedBytes {
 public:
  TrackedBytes() = default;
  explicit TrackedBytes(MemoryTracker::Component component)
      : component_(static_cast<int8_t>(component)) {}

  TrackedBytes(const TrackedBytes& other)
      : component_(other.component_) {
    Set(other.bytes_);
  }
  TrackedBytes(TrackedBytes&& other) noexcept
      : component_(other.component_), bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  TrackedBytes& operator=(const TrackedBytes& other) {
    if (this != &other) {
      Set(0);
      component_ = other.component_;
      Set(other.bytes_);
    }
    return *this;
  }
  TrackedBytes& operator=(TrackedBytes&& other) noexcept {
    if (this != &other) {
      Set(0);
      component_ = other.component_;
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }
  ~TrackedBytes() { Set(0); }

  /// Re-registers this holder at `bytes` (the delta goes to the tracker).
  void Set(int64_t bytes) {
    if (bytes != bytes_ && component_ >= 0) {
      MemoryTracker::Global().Add(
          static_cast<MemoryTracker::Component>(component_), bytes - bytes_);
      bytes_ = bytes;
    } else {
      bytes_ = bytes;
    }
  }

  int64_t bytes() const { return bytes_; }

 private:
  int8_t component_ = -1;  // -1 = untracked (default-constructed)
  int64_t bytes_ = 0;
};

}  // namespace obs
}  // namespace distinct

#endif  // DISTINCT_OBS_MEMORY_H_
