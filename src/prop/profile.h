// Neighbor profiles: the result of probability propagation.
//
// A profile for reference `r` and join path `P` is the sparse map
// t -> (Prob_P(r -> t), Prob_P(t -> r)) over the neighbor tuples NB_P(r)
// (paper §2.2, Fig. 3). Entries are sorted by tuple id so similarity
// computations are linear merges.

#ifndef DISTINCT_PROP_PROFILE_H_
#define DISTINCT_PROP_PROFILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace distinct {

/// One neighbor tuple with both connection strengths.
struct ProfileEntry {
  int32_t tuple = -1;
  double forward = 0.0;  // Prob_P(r -> tuple)
  double reverse = 0.0;  // Prob_P(tuple -> r)
};

/// Sparse, tuple-sorted neighbor profile.
class NeighborProfile {
 public:
  NeighborProfile() = default;

  /// Takes entries in any order; sorts them. Duplicate tuples are not
  /// allowed (propagation accumulates before constructing).
  explicit NeighborProfile(std::vector<ProfileEntry> entries);

  const std::vector<ProfileEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// Sum of forward probabilities; 1.0 when no probability was lost to NULL
  /// foreign keys or truncation.
  double ForwardSum() const;

  /// Forward probability of `tuple`, 0 when absent. Binary search.
  double ForwardOf(int32_t tuple) const;

  /// True when propagation hit the instance cap and the profile is partial.
  bool truncated() const { return truncated_; }
  void set_truncated(bool truncated) { truncated_ = truncated; }

 private:
  std::vector<ProfileEntry> entries_;
  bool truncated_ = false;
};

}  // namespace distinct

#endif  // DISTINCT_PROP_PROFILE_H_
