#include "prop/workspace.h"

#include "common/logging.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "prop/propagation.h"

namespace {

/// Resident-payload delta of the memo, into the kSubtreeCache gauge.
void TrackCacheBytes(int64_t delta) {
  distinct::obs::MemoryTracker::Global().Add(
      distinct::obs::MemoryTracker::kSubtreeCache, delta);
}

}  // namespace

namespace distinct {

PropagationWorkspace::Slab& PropagationWorkspace::Acquire(int node_id) {
  if (static_cast<size_t>(node_id) >= slabs_.size()) {
    slabs_.resize(static_cast<size_t>(node_id) + 1);
  }
  auto& pool = slabs_[static_cast<size_t>(node_id)];
  for (auto& slab : pool) {
    if (!slab->in_use_) {
      slab->in_use_ = true;
      slab->Begin();
      return *slab;
    }
  }
  auto slab = std::make_unique<Slab>();
  const auto universe =
      static_cast<size_t>(link_->NumTuples(node_id));
  slab->forward_.resize(universe);
  slab->reverse_.resize(universe);
  slab->count_.resize(universe);
  slab->stamp_.assign(universe, 0u);
  slab->in_use_ = true;
  slab->Begin();
  pool.push_back(std::move(slab));
  return *pool.back();
}

SubtreeCache::SubtreeCache(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      shard_capacity_(capacity_bytes / kNumShards) {}

SubtreeCache::~SubtreeCache() {
  for (const Shard& shard : shards_) {
    TrackCacheBytes(-static_cast<int64_t>(shard.bytes));
  }
}

std::shared_ptr<const SubtreeDistribution> SubtreeCache::Find(
    int path_id, int32_t tuple) {
  if (capacity_bytes_ == 0) {
    DISTINCT_COUNTER_ADD("prop.memo_misses", 1);
    return nullptr;
  }
  const uint64_t key = Key(path_id, tuple);
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    DISTINCT_COUNTER_ADD("prop.memo_misses", 1);
    return nullptr;
  }
  ++shard.hits;
  DISTINCT_COUNTER_ADD("prop.memo_hits", 1);
  return it->second;
}

std::shared_ptr<const SubtreeDistribution> SubtreeCache::Insert(
    int path_id, int32_t tuple, SubtreeDistribution dist) {
  dist.entries.shrink_to_fit();
  auto resident = std::make_shared<const SubtreeDistribution>(std::move(dist));
  if (capacity_bytes_ == 0) {
    return resident;
  }
  const size_t size = resident->ByteSize();
  const uint64_t key = Key(path_id, tuple);
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (auto it = shard.map.find(key); it != shard.map.end()) {
    return it->second;  // another thread computed the identical value first
  }
  if (size > shard_capacity_) {
    ++shard.evictions;  // would never fit; dropped immediately
    DISTINCT_COUNTER_ADD("prop.memo_evictions", 1);
    return resident;
  }
  while (shard.bytes + size > shard_capacity_ && !shard.fifo.empty()) {
    const uint64_t victim = shard.fifo.front();
    shard.fifo.pop_front();
    auto victim_it = shard.map.find(victim);
    if (victim_it != shard.map.end()) {
      shard.bytes -= victim_it->second->ByteSize();
      TrackCacheBytes(-static_cast<int64_t>(victim_it->second->ByteSize()));
      shard.map.erase(victim_it);
      ++shard.evictions;
      DISTINCT_COUNTER_ADD("prop.memo_evictions", 1);
    }
  }
  shard.map.emplace(key, resident);
  shard.fifo.push_back(key);
  shard.bytes += size;
  TrackCacheBytes(static_cast<int64_t>(size));
  return resident;
}

int64_t SubtreeCache::Erase(int path_id,
                            const std::vector<int32_t>& tuples) {
  if (capacity_bytes_ == 0) {
    return 0;
  }
  int64_t erased = 0;
  for (const int32_t tuple : tuples) {
    const uint64_t key = Key(path_id, tuple);
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      continue;  // never cached, already evicted, or a stale FIFO-only key
    }
    shard.bytes -= it->second->ByteSize();
    TrackCacheBytes(-static_cast<int64_t>(it->second->ByteSize()));
    shard.map.erase(it);
    ++erased;
  }
  return erased;
}

SubtreeCacheStats SubtreeCache::stats() const {
  SubtreeCacheStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.entries += static_cast<int64_t>(shard.map.size());
    stats.bytes += static_cast<int64_t>(shard.bytes);
  }
  return stats;
}

size_t ApproxWorkspaceBytes(const LinkGraph& link) {
  // Per tuple: forward/reverse/count doubles, the uint32 epoch stamp, and
  // one touched-list slot (the touched vector grows to the node universe in
  // the worst case).
  constexpr size_t kBytesPerTuple =
      3 * sizeof(double) + sizeof(uint32_t) + sizeof(int32_t);
  size_t total = sizeof(PropagationWorkspace);
  for (int node = 0; node < link.schema().num_nodes(); ++node) {
    total += static_cast<size_t>(link.NumTuples(node)) * kBytesPerTuple;
  }
  return total;
}

size_t SubtreeJunctionLevel(const JoinPath& path,
                            const std::vector<int>& node_at,
                            bool exclude_start_tuple) {
  const size_t k = path.steps.size();
  size_t junction = 1;
  if (exclude_start_tuple) {
    for (size_t level = 1; level <= k; ++level) {
      if (node_at[level] == node_at[0]) {
        junction = level;
      }
    }
  }
  return std::min(junction, k);
}

namespace {

using Slab = PropagationWorkspace::Slab;

/// One forward sweep step: frontier at `cur` (sorted) through `step` into
/// `next`, optionally pruning walks into the origin tuple.
void SweepStep(const LinkGraph& link, const JoinStep& step, const Slab& cur,
               Slab& next, bool exclude, int32_t start_tuple) {
  for (const int32_t t : cur.touched()) {
    const std::span<const int32_t> targets = link.Neighbors(step, t);
    if (targets.empty()) {
      continue;  // NULL FK or no referencing rows: this mass is lost
    }
    const double share =
        cur.forward(t) / static_cast<double>(targets.size());
    const double reverse = cur.reverse(t);
    const double count = cur.count(t);
    for (const int32_t target : targets) {
      if (exclude && target == start_tuple) {
        continue;  // walks through the origin carry no identity signal
      }
      const auto back =
          static_cast<double>(link.ReverseFanout(step, target));
      next.Add(target, share, reverse / back, count);
    }
  }
}

/// Distribution of the suffix below `junction` from junction tuple
/// `tuple`: suffix-forward/reverse products per end tuple plus the number
/// of complete suffix walks. Reference-independent by construction (the
/// suffix contains no start-node level), hence memoizable.
SubtreeDistribution ComputeSubtree(const LinkGraph& link,
                                   const JoinPath& path,
                                   const std::vector<int>& node_at,
                                   size_t junction, int32_t tuple,
                                   PropagationWorkspace& workspace) {
  const size_t k = path.steps.size();
  Slab* cur = &workspace.Acquire(node_at[junction + 1]);
  {
    const JoinStep& step = path.steps[junction];
    const std::span<const int32_t> targets = link.Neighbors(step, tuple);
    const double share =
        targets.empty() ? 0.0 : 1.0 / static_cast<double>(targets.size());
    for (const int32_t target : targets) {
      const auto back =
          static_cast<double>(link.ReverseFanout(step, target));
      cur->Add(target, share, 1.0 / back, 1.0);
    }
  }
  for (size_t i = junction + 1; i < k; ++i) {
    Slab* next = &workspace.Acquire(node_at[i + 1]);
    cur->SortTouched();
    SweepStep(link, path.steps[i], *cur, *next, /*exclude=*/false,
              /*start_tuple=*/-1);
    workspace.Release(*cur);
    cur = next;
  }
  cur->SortTouched();
  SubtreeDistribution dist;
  dist.entries.reserve(cur->touched().size());
  for (const int32_t e : cur->touched()) {
    dist.entries.push_back(
        SubtreeEntry{e, cur->forward(e), cur->reverse(e)});
    dist.instances += cur->count(e);
  }
  workspace.Release(*cur);
  return dist;
}

}  // namespace

std::optional<NeighborProfile> PropagateDense(
    const LinkGraph& link, const JoinPath& path, int32_t start_tuple,
    const PropagationOptions& options, const std::vector<int>& node_at,
    PropagationWorkspace& workspace, SubtreeCache* cache,
    int cache_path_id) {
  DISTINCT_DCHECK(&workspace.link() == &link);
  const size_t k = path.steps.size();
  const size_t junction =
      SubtreeJunctionLevel(path, node_at, options.exclude_start_tuple);

  // Reference-dependent prefix: levels 0..junction with origin exclusion,
  // accumulating forward mass, reverse mass, and instance counts together.
  Slab* cur = &workspace.Acquire(node_at[0]);
  cur->Add(start_tuple, 1.0, 1.0, 1.0);
  for (size_t i = 0; i < junction; ++i) {
    Slab* next = &workspace.Acquire(node_at[i + 1]);
    const bool exclude = options.exclude_start_tuple &&
                         node_at[i + 1] == node_at[0];
    cur->SortTouched();
    SweepStep(link, path.steps[i], *cur, *next, exclude, start_tuple);
    workspace.Release(*cur);
    cur = next;
  }
  cur->SortTouched();

  double total_instances = 0.0;
  std::vector<ProfileEntry> entries;
  if (junction == k) {
    entries.reserve(cur->touched().size());
    for (const int32_t t : cur->touched()) {
      entries.push_back(
          ProfileEntry{t, cur->forward(t), cur->reverse(t)});
      total_instances += cur->count(t);
    }
    workspace.Release(*cur);
  } else {
    // Shared suffix: merge each junction tuple's memoized distribution in
    // ascending tuple order. A miss computes exactly what a hit returns,
    // so the result is independent of the hit/miss pattern.
    Slab* out = &workspace.Acquire(node_at[k]);
    for (const int32_t t : cur->touched()) {
      std::shared_ptr<const SubtreeDistribution> memo =
          cache != nullptr ? cache->Find(cache_path_id, t) : nullptr;
      SubtreeDistribution local;
      const SubtreeDistribution* dist;
      if (memo != nullptr) {
        dist = memo.get();
      } else {
        local = ComputeSubtree(link, path, node_at, junction, t, workspace);
        if (cache != nullptr) {
          memo = cache->Insert(cache_path_id, t, std::move(local));
          dist = memo.get();
        } else {
          dist = &local;
        }
      }
      const double forward = cur->forward(t);
      const double reverse = cur->reverse(t);
      for (const SubtreeEntry& entry : dist->entries) {
        out->Add(entry.tuple, forward * entry.forward,
                 reverse * entry.reverse, 0.0);
      }
      total_instances += cur->count(t) * dist->instances;
    }
    workspace.Release(*cur);
    out->SortTouched();
    entries.reserve(out->touched().size());
    for (const int32_t e : out->touched()) {
      entries.push_back(
          ProfileEntry{e, out->forward(e), out->reverse(e)});
    }
    workspace.Release(*out);
  }

  if (total_instances > static_cast<double>(options.max_instances)) {
    return std::nullopt;  // over budget: caller reruns depth-first
  }
  NeighborProfile profile{std::move(entries)};
  profile.set_truncated(false);
  return profile;
}

}  // namespace distinct
