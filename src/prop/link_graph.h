// Tuple-level adjacency derived from a schema graph.
//
// For every schema edge this materializes both traversal directions:
// forward (FK cell -> referenced tuple, or promoted cell -> value tuple) and
// reverse (referenced tuple -> referencing rows, as CSR). Probability
// propagation walks these adjacencies; fanouts are span sizes.
//
// Tuples are addressed per node: row index for table nodes, dense value id
// for attribute nodes.

#ifndef DISTINCT_PROP_LINK_GRAPH_H_
#define DISTINCT_PROP_LINK_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/join_path.h"
#include "relational/schema_graph.h"

namespace distinct {

/// Tuple-level adjacency, immutable between builds. Borrows the SchemaGraph
/// (and through it the Database); both must outlive the LinkGraph. The only
/// mutation is ApplyAppend(), which extends the adjacency in place after
/// rows were appended to the database.
class LinkGraph {
 public:
  /// Materializes adjacency for every edge of `graph`. Fails on dangling
  /// foreign keys.
  static StatusOr<LinkGraph> Build(const SchemaGraph& graph);

  /// Extends the adjacency in place to cover rows appended to the database
  /// since Build()/the last ApplyAppend(). Existing tuple ids are stable:
  /// table tuples are row indices (append-only), and attribute value ids
  /// are assigned in first-seen row order, so replaying the assignment
  /// over the grown columns reproduces every old id and appends new values
  /// after them. The rebuilt reverse CSRs use the same ascending-row
  /// counting sort as Build(), so the result is bit-identical to a fresh
  /// Build() over the appended database. Returns FailedPrecondition on a
  /// dangling FK among the new rows — validate appended rows first; after
  /// an error the graph must be rebuilt.
  Status ApplyAppend();

  const SchemaGraph& schema() const { return *schema_; }

  /// Number of tuples in `node_id`'s universe (rows, or distinct values).
  int64_t NumTuples(int node_id) const;

  /// Tuples reached from `tuple` walking `edge_id` forward
  /// (from_node -> to_node). Zero or one element for FK/attribute edges.
  std::span<const int32_t> Forward(int edge_id, int32_t tuple) const;

  /// Tuples reached walking `edge_id` in reverse (to_node -> from_node).
  std::span<const int32_t> Reverse(int edge_id, int32_t tuple) const;

  /// Neighbors of `tuple` at `at_node` along `step`.
  std::span<const int32_t> Neighbors(const JoinStep& step,
                                     int32_t tuple) const {
    return step.forward ? Forward(step.edge_id, tuple)
                        : Reverse(step.edge_id, tuple);
  }

  /// Fanout in the direction opposite to `step`, evaluated at the tuple the
  /// step arrived at; this is the denominator of the reverse probability.
  int64_t ReverseFanout(const JoinStep& step, int32_t arrived_tuple) const {
    return step.forward ? Reverse(step.edge_id, arrived_tuple).size()
                        : Forward(step.edge_id, arrived_tuple).size();
  }

  /// Human-readable label for a tuple: primary cells for table rows, the
  /// value for attribute tuples. For diagnostics and visualization.
  std::string TupleLabel(int node_id, int32_t tuple) const;

 private:
  struct EdgeAdjacency {
    // forward_target[row] = target tuple or -1 for NULL.
    std::vector<int32_t> forward_target;
    // Reverse CSR over the to-node universe.
    std::vector<int64_t> reverse_offsets;
    std::vector<int32_t> reverse_items;
  };

  explicit LinkGraph(const SchemaGraph& graph) : schema_(&graph) {}

  const SchemaGraph* schema_;
  std::vector<EdgeAdjacency> edges_;
  /// Attribute-node universes: for node id n (attribute), the raw cell value
  /// of each dense value id, parallel to the universe.
  std::vector<std::vector<int64_t>> attribute_values_;  // indexed by node id
  std::vector<int64_t> num_tuples_;                     // indexed by node id
};

}  // namespace distinct

#endif  // DISTINCT_PROP_LINK_GRAPH_H_
