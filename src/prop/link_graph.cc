#include "prop/link_graph.h"

#include <unordered_map>

#include "common/string_util.h"

namespace distinct {

StatusOr<LinkGraph> LinkGraph::Build(const SchemaGraph& graph) {
  LinkGraph link(graph);
  const Database& db = graph.db();

  link.num_tuples_.assign(static_cast<size_t>(graph.num_nodes()), 0);
  link.attribute_values_.resize(static_cast<size_t>(graph.num_nodes()));
  for (int n = 0; n < graph.num_nodes(); ++n) {
    const SchemaNode& node = graph.node(n);
    if (!node.is_attribute) {
      link.num_tuples_[static_cast<size_t>(n)] =
          db.table(node.table_id).num_rows();
    }
  }

  // Dense value-id assignment for each attribute node, in first-seen order.
  std::vector<std::unordered_map<int64_t, int32_t>> value_ids(
      static_cast<size_t>(graph.num_nodes()));
  for (int n = 0; n < graph.num_nodes(); ++n) {
    const SchemaNode& node = graph.node(n);
    if (!node.is_attribute) {
      continue;
    }
    const Table& table = db.table(node.table_id);
    auto& ids = value_ids[static_cast<size_t>(n)];
    auto& values = link.attribute_values_[static_cast<size_t>(n)];
    for (int64_t row = 0; row < table.num_rows(); ++row) {
      const int64_t cell = table.raw(row, node.column);
      if (cell == kNullCell) {
        continue;
      }
      if (ids.emplace(cell, static_cast<int32_t>(values.size())).second) {
        values.push_back(cell);
      }
    }
    link.num_tuples_[static_cast<size_t>(n)] =
        static_cast<int64_t>(values.size());
  }

  link.edges_.resize(static_cast<size_t>(graph.num_edges()));
  for (int e = 0; e < graph.num_edges(); ++e) {
    const SchemaEdge& edge = graph.edge(e);
    const Table& from_table = db.table(edge.table_id);
    EdgeAdjacency& adjacency = link.edges_[static_cast<size_t>(e)];
    const int64_t from_rows = from_table.num_rows();
    const int64_t to_tuples =
        link.num_tuples_[static_cast<size_t>(edge.to_node)];

    adjacency.forward_target.assign(static_cast<size_t>(from_rows), -1);
    std::vector<int64_t> reverse_counts(static_cast<size_t>(to_tuples), 0);

    for (int64_t row = 0; row < from_rows; ++row) {
      const int64_t cell = from_table.raw(row, edge.column);
      if (cell == kNullCell) {
        continue;
      }
      int32_t target = -1;
      if (edge.is_attribute_edge) {
        target = value_ids[static_cast<size_t>(edge.to_node)].at(cell);
      } else {
        const Table& to_table = db.table(graph.node(edge.to_node).table_id);
        auto to_row = to_table.RowForPrimaryKey(cell);
        if (!to_row.ok()) {
          return FailedPreconditionError(StrFormat(
              "dangling FK: %s row %lld -> %lld",
              graph.edge(e).name.c_str(), static_cast<long long>(row),
              static_cast<long long>(cell)));
        }
        target = static_cast<int32_t>(*to_row);
      }
      adjacency.forward_target[static_cast<size_t>(row)] = target;
      ++reverse_counts[static_cast<size_t>(target)];
    }

    adjacency.reverse_offsets.assign(static_cast<size_t>(to_tuples) + 1, 0);
    for (int64_t t = 0; t < to_tuples; ++t) {
      adjacency.reverse_offsets[static_cast<size_t>(t) + 1] =
          adjacency.reverse_offsets[static_cast<size_t>(t)] +
          reverse_counts[static_cast<size_t>(t)];
    }
    adjacency.reverse_items.resize(
        static_cast<size_t>(adjacency.reverse_offsets.back()));
    std::vector<int64_t> cursor(adjacency.reverse_offsets.begin(),
                                adjacency.reverse_offsets.end() - 1);
    for (int64_t row = 0; row < from_rows; ++row) {
      const int32_t target =
          adjacency.forward_target[static_cast<size_t>(row)];
      if (target < 0) {
        continue;
      }
      adjacency.reverse_items[static_cast<size_t>(
          cursor[static_cast<size_t>(target)]++)] =
          static_cast<int32_t>(row);
    }
  }
  return link;
}

Status LinkGraph::ApplyAppend() {
  const SchemaGraph& graph = *schema_;
  const Database& db = graph.db();

  for (int n = 0; n < graph.num_nodes(); ++n) {
    const SchemaNode& node = graph.node(n);
    if (!node.is_attribute) {
      num_tuples_[static_cast<size_t>(n)] =
          db.table(node.table_id).num_rows();
    }
  }

  // Replay the first-seen value-id assignment over each full attribute
  // column. The map is seeded from attribute_values_ (which preserves id
  // order), so every old cell re-finds its old id and only values first
  // seen in appended rows extend the universe — exactly the ids a fresh
  // Build() would assign.
  std::vector<std::unordered_map<int64_t, int32_t>> value_ids(
      static_cast<size_t>(graph.num_nodes()));
  for (int n = 0; n < graph.num_nodes(); ++n) {
    const SchemaNode& node = graph.node(n);
    if (!node.is_attribute) {
      continue;
    }
    const Table& table = db.table(node.table_id);
    auto& ids = value_ids[static_cast<size_t>(n)];
    auto& values = attribute_values_[static_cast<size_t>(n)];
    ids.reserve(values.size());
    for (size_t v = 0; v < values.size(); ++v) {
      ids.emplace(values[v], static_cast<int32_t>(v));
    }
    for (int64_t row = 0; row < table.num_rows(); ++row) {
      const int64_t cell = table.raw(row, node.column);
      if (cell == kNullCell) {
        continue;
      }
      if (ids.emplace(cell, static_cast<int32_t>(values.size())).second) {
        values.push_back(cell);
      }
    }
    num_tuples_[static_cast<size_t>(n)] = static_cast<int64_t>(values.size());
  }

  for (int e = 0; e < graph.num_edges(); ++e) {
    const SchemaEdge& edge = graph.edge(e);
    const Table& from_table = db.table(edge.table_id);
    EdgeAdjacency& adjacency = edges_[static_cast<size_t>(e)];
    const int64_t old_rows =
        static_cast<int64_t>(adjacency.forward_target.size());
    const int64_t from_rows = from_table.num_rows();
    const int64_t to_tuples = num_tuples_[static_cast<size_t>(edge.to_node)];

    // Old forward targets are immutable (cells never change, primary keys
    // and value ids are stable); only new rows need resolving.
    adjacency.forward_target.resize(static_cast<size_t>(from_rows), -1);
    for (int64_t row = old_rows; row < from_rows; ++row) {
      const int64_t cell = from_table.raw(row, edge.column);
      if (cell == kNullCell) {
        continue;
      }
      int32_t target = -1;
      if (edge.is_attribute_edge) {
        target = value_ids[static_cast<size_t>(edge.to_node)].at(cell);
      } else {
        const Table& to_table = db.table(graph.node(edge.to_node).table_id);
        auto to_row = to_table.RowForPrimaryKey(cell);
        if (!to_row.ok()) {
          return FailedPreconditionError(StrFormat(
              "dangling FK: %s row %lld -> %lld",
              graph.edge(e).name.c_str(), static_cast<long long>(row),
              static_cast<long long>(cell)));
        }
        target = static_cast<int32_t>(*to_row);
      }
      adjacency.forward_target[static_cast<size_t>(row)] = target;
    }

    // The reverse CSR is rebuilt whole with the same ascending-row counting
    // sort as Build(): appended rows shift offsets everywhere, and the
    // identical fill order keeps the items bit-identical to a fresh build.
    std::vector<int64_t> reverse_counts(static_cast<size_t>(to_tuples), 0);
    for (int64_t row = 0; row < from_rows; ++row) {
      const int32_t target =
          adjacency.forward_target[static_cast<size_t>(row)];
      if (target >= 0) {
        ++reverse_counts[static_cast<size_t>(target)];
      }
    }
    adjacency.reverse_offsets.assign(static_cast<size_t>(to_tuples) + 1, 0);
    for (int64_t t = 0; t < to_tuples; ++t) {
      adjacency.reverse_offsets[static_cast<size_t>(t) + 1] =
          adjacency.reverse_offsets[static_cast<size_t>(t)] +
          reverse_counts[static_cast<size_t>(t)];
    }
    adjacency.reverse_items.assign(
        static_cast<size_t>(adjacency.reverse_offsets.back()), 0);
    std::vector<int64_t> cursor(adjacency.reverse_offsets.begin(),
                                adjacency.reverse_offsets.end() - 1);
    for (int64_t row = 0; row < from_rows; ++row) {
      const int32_t target =
          adjacency.forward_target[static_cast<size_t>(row)];
      if (target < 0) {
        continue;
      }
      adjacency.reverse_items[static_cast<size_t>(
          cursor[static_cast<size_t>(target)]++)] =
          static_cast<int32_t>(row);
    }
  }
  return Status::Ok();
}

int64_t LinkGraph::NumTuples(int node_id) const {
  DISTINCT_CHECK(node_id >= 0 && node_id < schema_->num_nodes());
  return num_tuples_[static_cast<size_t>(node_id)];
}

std::span<const int32_t> LinkGraph::Forward(int edge_id,
                                            int32_t tuple) const {
  const EdgeAdjacency& adjacency = edges_[static_cast<size_t>(edge_id)];
  DISTINCT_DCHECK(tuple >= 0 && static_cast<size_t>(tuple) <
                                    adjacency.forward_target.size());
  const int32_t* slot = &adjacency.forward_target[static_cast<size_t>(tuple)];
  if (*slot < 0) {
    return {};
  }
  return {slot, 1};
}

std::span<const int32_t> LinkGraph::Reverse(int edge_id,
                                            int32_t tuple) const {
  const EdgeAdjacency& adjacency = edges_[static_cast<size_t>(edge_id)];
  DISTINCT_DCHECK(tuple >= 0 &&
                  static_cast<size_t>(tuple) + 1 <
                      adjacency.reverse_offsets.size());
  const int64_t begin =
      adjacency.reverse_offsets[static_cast<size_t>(tuple)];
  const int64_t end =
      adjacency.reverse_offsets[static_cast<size_t>(tuple) + 1];
  return {adjacency.reverse_items.data() + begin,
          static_cast<size_t>(end - begin)};
}

std::string LinkGraph::TupleLabel(int node_id, int32_t tuple) const {
  const SchemaNode& node = schema_->node(node_id);
  const Table& table = schema_->db().table(node.table_id);
  if (node.is_attribute) {
    const int64_t cell =
        attribute_values_[static_cast<size_t>(node_id)][static_cast<size_t>(
            tuple)];
    if (table.column(node.column).type == ColumnType::kString) {
      return table.dictionary(node.column).Lookup(cell);
    }
    return StrFormat("%lld", static_cast<long long>(cell));
  }
  // Table row: render "Table#row(v1, v2, ...)" with up to three cells.
  std::string out =
      StrFormat("%s#%d(", node.name.c_str(), static_cast<int>(tuple));
  const int cells = std::min(table.num_columns(), 3);
  for (int c = 0; c < cells; ++c) {
    if (c > 0) out += ", ";
    out += table.GetValue(tuple, c).DebugString();
  }
  out += ")";
  return out;
}

}  // namespace distinct
