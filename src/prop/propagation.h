// Probability propagation along join paths (paper §2.2).
//
// Starting at a reference's tuple with probability 1, each step splits the
// mass uniformly over the tuples joinable along the next path step. The
// same depth-first traversal accumulates both Prob_P(r -> t) (forward) and
// Prob_P(t -> r) (reverse): for a path instance r = t0, t1, ..., tk,
//   forward = Π_i 1 / fanout(t_{i-1} along step i)
//   reverse = Π_i 1 / fanout(t_i against step i)
// and multiple instances ending at the same tuple sum.

#ifndef DISTINCT_PROP_PROPAGATION_H_
#define DISTINCT_PROP_PROPAGATION_H_

#include <cstdint>

#include "prop/link_graph.h"
#include "prop/profile.h"
#include "relational/join_path.h"

namespace distinct {

/// How profiles are computed. All three produce the same probabilities (up
/// to floating-point summation order; kWorkspace and kLevelWise sum in the
/// same deterministic tuple-id order).
enum class PropagationAlgorithm {
  /// Depth-first enumeration of path instances (the paper's Fig. 3
  /// procedure). Cost grows with the number of instances.
  kDepthFirst,
  /// Level-wise dynamic programming: one forward and one backward sweep
  /// over the distinct tuples of each path level. Cost grows with the
  /// number of distinct (level, tuple) pairs — much cheaper on paths that
  /// fan out and reconverge (e.g. Publish -> Publications -> Publish ->
  /// Authors -> Publish).
  kLevelWise,
  /// Level-wise sweeps over epoch-stamped dense scratch arrays (no
  /// per-tuple hashing or allocation) with per-path-suffix memoization
  /// shared across references — see prop/workspace.h. The default.
  kWorkspace,
};

/// Limits for one propagation.
struct PropagationOptions {
  PropagationAlgorithm algorithm = PropagationAlgorithm::kWorkspace;

  /// Cap on visited path instances. kDepthFirst truncates the traversal
  /// beyond it and flags the profile; kLevelWise and kWorkspace are
  /// budget-free, so they count complete instances and rerun the profile
  /// depth-first when the count exceeds the cap — truncation semantics are
  /// identical across algorithms. Guards against pathological fanouts.
  int64_t max_instances = 5'000'000;

  /// Byte budget of the shared subtree memo (kWorkspace only; see
  /// SubtreeCache). 0 disables memo storage without changing results.
  size_t cache_bytes = 64ull << 20;

  /// Prune walks that revisit the origin tuple. Without this, every path of
  /// the form Publish -> Publications -> Publish(origin) -> Authors reaches
  /// the reference's own name tuple — a neighbor that *all* identically
  /// named references share by construction, which is pure noise for
  /// disambiguation yet looks like a perfect signal on the rare-name
  /// training set.
  bool exclude_start_tuple = true;
};

class PropagationWorkspace;
class SubtreeCache;

/// Computes neighbor profiles. Borrows the link graph, which must outlive
/// the engine. Stateless and safe to share across threads.
class PropagationEngine {
 public:
  explicit PropagationEngine(const LinkGraph& link) : link_(&link) {}

  const LinkGraph& link() const { return *link_; }

  /// Profile of `start_tuple` (a row of `path.start_node`'s table) along
  /// `path`. With kWorkspace this allocates a transient workspace; hot
  /// callers should use the overload below.
  NeighborProfile Compute(const JoinPath& path, int32_t start_tuple,
                          const PropagationOptions& options = {}) const;

  /// Same, reusing caller-owned dense scratch (kWorkspace only; other
  /// algorithms ignore it). `workspace` must wrap this engine's link graph
  /// and be used by one thread at a time. `cache`, when non-null, memoizes
  /// path suffixes under `cache_path_id` (the caller's stable index of
  /// `path`) and may be shared across threads and workspaces.
  NeighborProfile Compute(const JoinPath& path, int32_t start_tuple,
                          const PropagationOptions& options,
                          PropagationWorkspace& workspace,
                          SubtreeCache* cache = nullptr,
                          int cache_path_id = 0) const;

 private:
  const LinkGraph* link_;
};

}  // namespace distinct

#endif  // DISTINCT_PROP_PROPAGATION_H_
