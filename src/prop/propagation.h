// Probability propagation along join paths (paper §2.2).
//
// Starting at a reference's tuple with probability 1, each step splits the
// mass uniformly over the tuples joinable along the next path step. The
// same depth-first traversal accumulates both Prob_P(r -> t) (forward) and
// Prob_P(t -> r) (reverse): for a path instance r = t0, t1, ..., tk,
//   forward = Π_i 1 / fanout(t_{i-1} along step i)
//   reverse = Π_i 1 / fanout(t_i against step i)
// and multiple instances ending at the same tuple sum.

#ifndef DISTINCT_PROP_PROPAGATION_H_
#define DISTINCT_PROP_PROPAGATION_H_

#include <cstdint>

#include "prop/link_graph.h"
#include "prop/profile.h"
#include "relational/join_path.h"

namespace distinct {

/// How profiles are computed. Both produce the same probabilities (up to
/// floating-point summation order).
enum class PropagationAlgorithm {
  /// Depth-first enumeration of path instances (the paper's Fig. 3
  /// procedure). Cost grows with the number of instances.
  kDepthFirst,
  /// Level-wise dynamic programming: one forward and one backward sweep
  /// over the distinct tuples of each path level. Cost grows with the
  /// number of distinct (level, tuple) pairs — much cheaper on paths that
  /// fan out and reconverge (e.g. Publish -> Publications -> Publish ->
  /// Authors -> Publish).
  kLevelWise,
};

/// Limits for one propagation.
struct PropagationOptions {
  PropagationAlgorithm algorithm = PropagationAlgorithm::kDepthFirst;

  /// Cap on visited path instances (kDepthFirst only); propagation
  /// truncates beyond it and the resulting profile is flagged. Guards
  /// against pathological fanouts.
  int64_t max_instances = 5'000'000;

  /// Prune walks that revisit the origin tuple. Without this, every path of
  /// the form Publish -> Publications -> Publish(origin) -> Authors reaches
  /// the reference's own name tuple — a neighbor that *all* identically
  /// named references share by construction, which is pure noise for
  /// disambiguation yet looks like a perfect signal on the rare-name
  /// training set.
  bool exclude_start_tuple = true;
};

/// Computes neighbor profiles. Borrows the link graph, which must outlive
/// the engine. Stateless and safe to share across threads.
class PropagationEngine {
 public:
  explicit PropagationEngine(const LinkGraph& link) : link_(&link) {}

  /// Profile of `start_tuple` (a row of `path.start_node`'s table) along
  /// `path`.
  NeighborProfile Compute(const JoinPath& path, int32_t start_tuple,
                          const PropagationOptions& options = {}) const;

 private:
  const LinkGraph* link_;
};

}  // namespace distinct

#endif  // DISTINCT_PROP_PROPAGATION_H_
