// Dense scratch-space propagation with shared subtree memoization — the
// PropagationAlgorithm::kWorkspace engine.
//
// The DFS and level-wise engines in propagation.cc push every tuple through
// per-level unordered_maps and re-walk identical subtrees for every
// reference (all co-authors of one paper traverse the same
// Paper -> Conference subtree once per reference). This layer removes both
// costs:
//
//  * PropagationWorkspace owns reusable dense slabs — per schema node,
//    forward/reverse/instance-count arrays sized by LinkGraph::NumTuples
//    with an epoch stamp per slot. "Clearing" a slab for the next level or
//    the next reference is a single epoch bump, so the steady-state inner
//    loops are index arithmetic over CSR spans with zero allocation or
//    hashing. A workspace belongs to one thread at a time and is recycled
//    across references.
//
//  * SubtreeCache memoizes, per join path, the distribution emanating from
//    a junction tuple down the path's suffix. The suffix below the junction
//    level (see SubtreeJunctionLevel) contains no level whose schema node
//    is the start node, so origin exclusion cannot prune inside it and the
//    distribution is independent of the reference being propagated — it is
//    computed once per name-resolution run and shared across references
//    and worker threads. The cache is size-bounded with per-shard FIFO
//    eviction and safe for concurrent use.
//
// Determinism: every sweep iterates frontiers in ascending tuple id and
// merges memoized suffixes in ascending junction-tuple order, and a cache
// hit returns exactly the value a miss would recompute, so profiles are
// bit-identical regardless of cache capacity, hit/miss pattern, or thread
// count.

#ifndef DISTINCT_PROP_WORKSPACE_H_
#define DISTINCT_PROP_WORKSPACE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "prop/link_graph.h"
#include "prop/profile.h"
#include "relational/join_path.h"

namespace distinct {

struct PropagationOptions;

/// Per-thread dense scratch space for one LinkGraph. Not thread-safe; hand
/// each worker its own (ProfileStore::Build keeps a free-list).
class PropagationWorkspace {
 public:
  /// One epoch-stamped dense distribution over a node's tuple universe:
  /// forward mass, reverse mass, and path-instance count per tuple.
  class Slab {
   public:
    /// Accumulates into `tuple`'s slot, zero-initializing it on first touch
    /// in the current epoch.
    void Add(int32_t tuple, double forward, double reverse, double count) {
      const auto t = static_cast<size_t>(tuple);
      if (stamp_[t] != epoch_) {
        stamp_[t] = epoch_;
        forward_[t] = 0.0;
        reverse_[t] = 0.0;
        count_[t] = 0.0;
        touched_.push_back(tuple);
      }
      forward_[t] += forward;
      reverse_[t] += reverse;
      count_[t] += count;
    }

    double forward(int32_t tuple) const {
      return forward_[static_cast<size_t>(tuple)];
    }
    double reverse(int32_t tuple) const {
      return reverse_[static_cast<size_t>(tuple)];
    }
    double count(int32_t tuple) const {
      return count_[static_cast<size_t>(tuple)];
    }

    /// Tuples touched this epoch, in ascending id after SortTouched().
    const std::vector<int32_t>& touched() const { return touched_; }

    /// Orders the frontier by tuple id — every sweep sorts before iterating
    /// so floating-point accumulation order is reproducible.
    void SortTouched() { std::sort(touched_.begin(), touched_.end()); }

   private:
    friend class PropagationWorkspace;

    void Begin() {
      touched_.clear();
      if (++epoch_ == 0) {  // stamp wrap: old stamps could alias epoch 0
        std::fill(stamp_.begin(), stamp_.end(), 0u);
        epoch_ = 1;
      }
    }

    std::vector<double> forward_;
    std::vector<double> reverse_;
    std::vector<double> count_;
    std::vector<uint32_t> stamp_;
    uint32_t epoch_ = 0;
    std::vector<int32_t> touched_;
    bool in_use_ = false;
  };

  explicit PropagationWorkspace(const LinkGraph& link) : link_(&link) {}

  PropagationWorkspace(PropagationWorkspace&&) = default;
  PropagationWorkspace& operator=(PropagationWorkspace&&) = default;
  PropagationWorkspace(const PropagationWorkspace&) = delete;
  PropagationWorkspace& operator=(const PropagationWorkspace&) = delete;

  const LinkGraph& link() const { return *link_; }

  /// A fresh (epoch-bumped) slab over `node_id`'s universe. Several slabs
  /// of the same node can be live at once (adjacent levels of a self-loop
  /// path); allocation happens only the first time a node needs an extra
  /// slab, after which slabs are recycled.
  Slab& Acquire(int node_id);

  /// Returns a slab to the free pool. Its contents stay readable until the
  /// next Acquire of the same slab.
  void Release(Slab& slab) { slab.in_use_ = false; }

 private:
  const LinkGraph* link_;
  /// slabs_[node] = every slab ever needed for that node (usually one).
  std::vector<std::vector<std::unique_ptr<Slab>>> slabs_;
};

/// One neighbor of a memoized subtree: suffix-forward and suffix-reverse
/// mass reaching `tuple` from the junction tuple.
struct SubtreeEntry {
  int32_t tuple = -1;
  double forward = 0.0;
  double reverse = 0.0;
};

/// Distribution of one path suffix from one junction tuple.
struct SubtreeDistribution {
  std::vector<SubtreeEntry> entries;  // ascending tuple id
  /// Complete suffix walks (for the instance budget); exact below 2^53.
  double instances = 0.0;

  size_t ByteSize() const {
    return sizeof(SubtreeDistribution) +
           entries.capacity() * sizeof(SubtreeEntry);
  }
};

/// Counters of one SubtreeCache (cumulative since construction).
struct SubtreeCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;  // evicted or rejected-at-insert entries
  int64_t entries = 0;    // currently resident
  int64_t bytes = 0;      // currently resident
};

/// Size-bounded concurrent memo of subtree distributions, keyed by
/// (path id, junction tuple). Sharded: lookups touch one mutex; values are
/// shared_ptrs so an entry being merged from stays alive across eviction.
/// Also feeds the prop.memo_* counters of the global MetricsRegistry.
class SubtreeCache {
 public:
  /// `capacity_bytes` bounds resident entry payload; 0 disables storage
  /// entirely (every lookup misses, inserts are dropped) while keeping
  /// results bit-identical.
  explicit SubtreeCache(size_t capacity_bytes);

  /// Releases the resident payload from the kSubtreeCache byte gauge.
  ~SubtreeCache();

  size_t capacity_bytes() const { return capacity_bytes_; }

  /// The memoized distribution, or nullptr on miss.
  std::shared_ptr<const SubtreeDistribution> Find(int path_id, int32_t tuple);

  /// Stores `dist` (evicting FIFO-oldest entries of the shard to fit) and
  /// returns the resident copy — the previously inserted one when another
  /// thread won the race (values are identical by construction).
  std::shared_ptr<const SubtreeDistribution> Insert(int path_id,
                                                    int32_t tuple,
                                                    SubtreeDistribution dist);

  /// Drops the entries of `path_id` keyed by `tuples` (the delta path's
  /// targeted invalidation: only suffixes touching changed tuples go).
  /// Returns how many entries were resident and removed. Stale FIFO keys
  /// are left behind; Insert's eviction loop tolerates missing victims.
  int64_t Erase(int path_id, const std::vector<int32_t>& tuples);

  SubtreeCacheStats stats() const;

 private:
  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<uint64_t, std::shared_ptr<const SubtreeDistribution>>
        map;
    std::deque<uint64_t> fifo;  // insertion order, for eviction
    size_t bytes = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  static uint64_t Key(int path_id, int32_t tuple) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(path_id)) << 32) |
           static_cast<uint32_t>(tuple);
  }
  Shard& ShardOf(uint64_t key) {
    // Mix so consecutive tuple ids spread across shards.
    uint64_t h = key * 0x9e3779b97f4a7c15ull;
    return shards_[(h >> 60) & (kNumShards - 1)];
  }

  size_t capacity_bytes_;
  size_t shard_capacity_;
  std::array<Shard, kNumShards> shards_;
};

/// Approximate resident footprint of one fully warmed PropagationWorkspace
/// over `link`: one dense slab per schema node (forward/reverse/count
/// doubles, an epoch stamp, and a touched-list slot per tuple). Paths that
/// revisit a node need an extra slab for it, so treat this as a lower-bound
/// estimate — the sharded scan uses it to decide how many concurrent
/// workspaces a memory budget affords.
size_t ApproxWorkspaceBytes(const LinkGraph& link);

/// Level where `path`'s reference-dependent prefix ends. With origin
/// exclusion, walks can be pruned at every level whose schema node is the
/// start node, so the junction is the deepest such level (the suffix below
/// it is reference-independent); without one — and always when exclusion is
/// off — it is level 1, maximizing suffix sharing. Equal to path length
/// when the path ends at a start-node level (no memoizable suffix).
size_t SubtreeJunctionLevel(const JoinPath& path,
                            const std::vector<int>& node_at,
                            bool exclude_start_tuple);

/// Dense-scratch propagation (the kWorkspace engine). `node_at` holds the
/// schema node of every level (size path.steps.size() + 1). Memoizes path
/// suffixes through `cache` when non-null, keyed by `cache_path_id` (the
/// caller's stable index of `path`; pass 0 when cache is null). Returns
/// nullopt when the number of complete path instances exceeds
/// options.max_instances — the caller falls back to the depth-first engine
/// so truncation semantics stay identical across algorithms.
std::optional<NeighborProfile> PropagateDense(
    const LinkGraph& link, const JoinPath& path, int32_t start_tuple,
    const PropagationOptions& options, const std::vector<int>& node_at,
    PropagationWorkspace& workspace, SubtreeCache* cache, int cache_path_id);

}  // namespace distinct

#endif  // DISTINCT_PROP_WORKSPACE_H_
