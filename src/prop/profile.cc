#include "prop/profile.h"

#include <algorithm>

#include "common/logging.h"

namespace distinct {

NeighborProfile::NeighborProfile(std::vector<ProfileEntry> entries)
    : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.tuple < b.tuple;
            });
  for (size_t i = 1; i < entries_.size(); ++i) {
    DISTINCT_DCHECK(entries_[i - 1].tuple != entries_[i].tuple);
  }
}

double NeighborProfile::ForwardSum() const {
  double sum = 0.0;
  for (const ProfileEntry& entry : entries_) {
    sum += entry.forward;
  }
  return sum;
}

double NeighborProfile::ForwardOf(int32_t tuple) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), tuple,
      [](const ProfileEntry& entry, int32_t t) { return entry.tuple < t; });
  if (it == entries_.end() || it->tuple != tuple) {
    return 0.0;
  }
  return it->forward;
}

}  // namespace distinct
