#include "prop/propagation.h"

#include <unordered_map>
#include <vector>

namespace distinct {
namespace {

/// Recursive DFS state shared across the traversal.
struct DfsContext {
  const LinkGraph* link = nullptr;
  const JoinPath* path = nullptr;
  int64_t remaining_instances = 0;
  bool truncated = false;
  /// Node id at each depth (node_at[0] == path->start_node).
  std::vector<int> node_at;
  int32_t start_tuple = -1;
  bool exclude_start_tuple = false;
  std::unordered_map<int32_t, std::pair<double, double>> accumulator;
};

void Dfs(DfsContext& ctx, size_t depth, int32_t tuple, double forward,
         double reverse) {
  if (depth == ctx.path->steps.size()) {
    if (ctx.remaining_instances <= 0) {
      ctx.truncated = true;
      return;
    }
    --ctx.remaining_instances;
    auto& slot = ctx.accumulator[tuple];
    slot.first += forward;
    slot.second += reverse;
    return;
  }
  if (ctx.truncated && ctx.remaining_instances <= 0) {
    return;
  }
  const JoinStep& step = ctx.path->steps[depth];
  const std::span<const int32_t> targets = ctx.link->Neighbors(step, tuple);
  if (targets.empty()) {
    return;  // NULL FK or no referencing rows: this mass is lost.
  }
  const double share = forward / static_cast<double>(targets.size());
  const bool check_origin =
      ctx.exclude_start_tuple &&
      ctx.node_at[depth + 1] == ctx.node_at[0];
  for (const int32_t target : targets) {
    if (check_origin && target == ctx.start_tuple) {
      continue;  // walks through the origin carry no identity signal
    }
    const int64_t back = ctx.link->ReverseFanout(step, target);
    // `tuple` itself is reachable from `target` against the step, so the
    // reverse fanout is at least 1.
    Dfs(ctx, depth + 1, target, share,
        reverse / static_cast<double>(back));
  }
}

/// Level-wise computation. Forward: F_0 = {origin: 1}; F_{i+1}(t) =
/// Σ_s F_i(s) / fanout_i(s) over s's step-i neighbors t. Backward:
/// B_0 = {origin: 1}; B_{i+1}(t) = Σ_{s ∈ step-(i+1) neighbors of t,
/// walked backwards} B_i(s) / reverse_fanout_{i+1}(t). The profile pairs
/// F_k with B_k. Origin exclusion zeroes the origin's mass at every
/// intermediate level whose node is the start node.
NeighborProfile ComputeLevelWise(const LinkGraph& link, const JoinPath& path,
                                 int32_t start_tuple,
                                 const PropagationOptions& options,
                                 const std::vector<int>& node_at) {
  const size_t k = path.steps.size();
  using Dist = std::unordered_map<int32_t, double>;

  // Forward sweep.
  std::vector<Dist> forward(k + 1);
  forward[0][start_tuple] = 1.0;
  for (size_t i = 0; i < k; ++i) {
    const JoinStep& step = path.steps[i];
    const bool exclude_target = options.exclude_start_tuple &&
                                node_at[i + 1] == node_at[0];
    for (const auto& [tuple, mass] : forward[i]) {
      const std::span<const int32_t> targets = link.Neighbors(step, tuple);
      if (targets.empty()) {
        continue;
      }
      const double share = mass / static_cast<double>(targets.size());
      for (const int32_t target : targets) {
        if (exclude_target && target == start_tuple) {
          continue;
        }
        forward[i + 1][target] += share;
      }
    }
  }

  // Backward sweep: B_i lives on level i's universe; the recurrence walks
  // step i in reverse, from level i-1 values.
  Dist backward_prev;
  backward_prev[start_tuple] = 1.0;
  for (size_t i = 0; i < k; ++i) {
    const JoinStep& step = path.steps[i];
    Dist backward;
    const bool exclude_here = options.exclude_start_tuple && i + 1 < k &&
                              node_at[i + 1] == node_at[0];
    // Only tuples actually reachable forward matter for the profile.
    for (const auto& [tuple, unused] : forward[i + 1]) {
      if (exclude_here && tuple == start_tuple) {
        continue;
      }
      const std::span<const int32_t> sources =
          step.forward ? link.Reverse(step.edge_id, tuple)
                       : link.Forward(step.edge_id, tuple);
      if (sources.empty()) {
        continue;
      }
      double mass = 0.0;
      for (const int32_t source : sources) {
        auto it = backward_prev.find(source);
        if (it != backward_prev.end()) {
          mass += it->second;
        }
      }
      if (mass > 0.0) {
        backward[tuple] = mass / static_cast<double>(sources.size());
      }
    }
    backward_prev = std::move(backward);
  }

  std::vector<ProfileEntry> entries;
  entries.reserve(forward[k].size());
  for (const auto& [tuple, fwd] : forward[k]) {
    auto it = backward_prev.find(tuple);
    const double rev = it == backward_prev.end() ? 0.0 : it->second;
    entries.push_back(ProfileEntry{tuple, fwd, rev});
  }
  return NeighborProfile(std::move(entries));
}

}  // namespace

NeighborProfile PropagationEngine::Compute(
    const JoinPath& path, int32_t start_tuple,
    const PropagationOptions& options) const {
  DISTINCT_CHECK(path.start_node >= 0);
  DISTINCT_CHECK(!path.steps.empty());
  DISTINCT_DCHECK(start_tuple >= 0 &&
                  start_tuple < link_->NumTuples(path.start_node));

  std::vector<int> node_at;
  node_at.reserve(path.steps.size() + 1);
  node_at.push_back(path.start_node);
  {
    const SchemaGraph& schema = link_->schema();
    int node = path.start_node;
    for (const JoinStep& step : path.steps) {
      node = schema.Traverse(node, IncidentEdge{step.edge_id, step.forward});
      node_at.push_back(node);
    }
  }

  if (options.algorithm == PropagationAlgorithm::kLevelWise) {
    return ComputeLevelWise(*link_, path, start_tuple, options, node_at);
  }

  DfsContext ctx;
  ctx.link = link_;
  ctx.path = &path;
  ctx.remaining_instances = options.max_instances;
  ctx.start_tuple = start_tuple;
  ctx.exclude_start_tuple = options.exclude_start_tuple;
  ctx.node_at = std::move(node_at);

  Dfs(ctx, 0, start_tuple, 1.0, 1.0);

  std::vector<ProfileEntry> entries;
  entries.reserve(ctx.accumulator.size());
  for (const auto& [tuple, probs] : ctx.accumulator) {
    entries.push_back(ProfileEntry{tuple, probs.first, probs.second});
  }
  NeighborProfile profile(std::move(entries));
  profile.set_truncated(ctx.truncated);
  return profile;
}

}  // namespace distinct
