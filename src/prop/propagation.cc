#include "prop/propagation.h"

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "prop/workspace.h"

namespace distinct {
namespace {

/// Recursive DFS state shared across the traversal.
struct DfsContext {
  const LinkGraph* link = nullptr;
  const JoinPath* path = nullptr;
  int64_t remaining_instances = 0;
  bool truncated = false;
  /// Node id at each depth (node_at[0] == path->start_node).
  std::vector<int> node_at;
  int32_t start_tuple = -1;
  bool exclude_start_tuple = false;
  std::unordered_map<int32_t, std::pair<double, double>> accumulator;
};

void Dfs(DfsContext& ctx, size_t depth, int32_t tuple, double forward,
         double reverse) {
  if (depth == ctx.path->steps.size()) {
    if (ctx.remaining_instances <= 0) {
      ctx.truncated = true;
      return;
    }
    --ctx.remaining_instances;
    auto& slot = ctx.accumulator[tuple];
    slot.first += forward;
    slot.second += reverse;
    return;
  }
  if (ctx.truncated && ctx.remaining_instances <= 0) {
    return;
  }
  const JoinStep& step = ctx.path->steps[depth];
  const std::span<const int32_t> targets = ctx.link->Neighbors(step, tuple);
  if (targets.empty()) {
    return;  // NULL FK or no referencing rows: this mass is lost.
  }
  const double share = forward / static_cast<double>(targets.size());
  const bool check_origin =
      ctx.exclude_start_tuple &&
      ctx.node_at[depth + 1] == ctx.node_at[0];
  for (const int32_t target : targets) {
    if (check_origin && target == ctx.start_tuple) {
      continue;  // walks through the origin carry no identity signal
    }
    const int64_t back = ctx.link->ReverseFanout(step, target);
    // `tuple` itself is reachable from `target` against the step, so the
    // reverse fanout is at least 1.
    Dfs(ctx, depth + 1, target, share,
        reverse / static_cast<double>(back));
  }
}

/// Level-wise computation. Forward: F_0 = {origin: 1}; F_{i+1}(t) =
/// Σ_s F_i(s) / fanout_i(s) over s's step-i neighbors t. Backward:
/// B_0 = {origin: 1}; B_{i+1}(t) = Σ_{s ∈ step-(i+1) neighbors of t,
/// walked backwards} B_i(s) / reverse_fanout_{i+1}(t). The profile pairs
/// F_k with B_k. Origin exclusion zeroes the origin's mass at every
/// intermediate level whose node is the start node.
///
/// The sweep itself is budget-free; complete path instances are counted
/// alongside the mass (doubles are exact below 2^53, far past any real
/// instance count), and nullopt is returned when the count exceeds
/// options.max_instances so the caller can rerun depth-first with the DFS
/// engine's exact truncation semantics.
std::optional<NeighborProfile> ComputeLevelWise(
    const LinkGraph& link, const JoinPath& path, int32_t start_tuple,
    const PropagationOptions& options, const std::vector<int>& node_at) {
  const size_t k = path.steps.size();
  // Per tuple: (forward mass, number of walks arriving here).
  using Dist = std::unordered_map<int32_t, std::pair<double, double>>;

  // Forward sweep.
  std::vector<Dist> forward(k + 1);
  forward[0][start_tuple] = {1.0, 1.0};
  for (size_t i = 0; i < k; ++i) {
    const JoinStep& step = path.steps[i];
    const bool exclude_target = options.exclude_start_tuple &&
                                node_at[i + 1] == node_at[0];
    for (const auto& [tuple, slot] : forward[i]) {
      const std::span<const int32_t> targets = link.Neighbors(step, tuple);
      if (targets.empty()) {
        continue;
      }
      const double share =
          slot.first / static_cast<double>(targets.size());
      for (const int32_t target : targets) {
        if (exclude_target && target == start_tuple) {
          continue;
        }
        auto& next = forward[i + 1][target];
        next.first += share;
        next.second += slot.second;
      }
    }
  }

  double total_instances = 0.0;
  for (const auto& [tuple, slot] : forward[k]) {
    total_instances += slot.second;
  }
  if (total_instances > static_cast<double>(options.max_instances)) {
    return std::nullopt;
  }

  // Backward sweep: B_i lives on level i's universe; the recurrence walks
  // step i in reverse, from level i-1 values.
  std::unordered_map<int32_t, double> backward_prev;
  backward_prev[start_tuple] = 1.0;
  for (size_t i = 0; i < k; ++i) {
    const JoinStep& step = path.steps[i];
    std::unordered_map<int32_t, double> backward;
    const bool exclude_here = options.exclude_start_tuple && i + 1 < k &&
                              node_at[i + 1] == node_at[0];
    // Only tuples actually reachable forward matter for the profile.
    for (const auto& [tuple, unused] : forward[i + 1]) {
      if (exclude_here && tuple == start_tuple) {
        continue;
      }
      const std::span<const int32_t> sources =
          step.forward ? link.Reverse(step.edge_id, tuple)
                       : link.Forward(step.edge_id, tuple);
      if (sources.empty()) {
        continue;
      }
      double mass = 0.0;
      for (const int32_t source : sources) {
        auto it = backward_prev.find(source);
        if (it != backward_prev.end()) {
          mass += it->second;
        }
      }
      if (mass > 0.0) {
        backward[tuple] = mass / static_cast<double>(sources.size());
      }
    }
    backward_prev = std::move(backward);
  }

  std::vector<ProfileEntry> entries;
  entries.reserve(forward[k].size());
  for (const auto& [tuple, slot] : forward[k]) {
    auto it = backward_prev.find(tuple);
    const double rev = it == backward_prev.end() ? 0.0 : it->second;
    entries.push_back(ProfileEntry{tuple, slot.first, rev});
  }
  NeighborProfile profile(std::move(entries));
  profile.set_truncated(false);
  return profile;
}

/// Depth-first computation with the instance budget (the only engine with
/// mid-traversal truncation; the sweep engines fall back to it when their
/// exact instance count exceeds the budget).
NeighborProfile ComputeDepthFirst(const LinkGraph& link, const JoinPath& path,
                                  int32_t start_tuple,
                                  const PropagationOptions& options,
                                  std::vector<int> node_at) {
  DfsContext ctx;
  ctx.link = &link;
  ctx.path = &path;
  ctx.remaining_instances = options.max_instances;
  ctx.start_tuple = start_tuple;
  ctx.exclude_start_tuple = options.exclude_start_tuple;
  ctx.node_at = std::move(node_at);

  Dfs(ctx, 0, start_tuple, 1.0, 1.0);

  std::vector<ProfileEntry> entries;
  entries.reserve(ctx.accumulator.size());
  for (const auto& [tuple, probs] : ctx.accumulator) {
    entries.push_back(ProfileEntry{tuple, probs.first, probs.second});
  }
  NeighborProfile profile(std::move(entries));
  profile.set_truncated(ctx.truncated);
  return profile;
}

/// Schema node at every path level (node_at[0] == path.start_node).
std::vector<int> NodeAtLevels(const LinkGraph& link, const JoinPath& path) {
  std::vector<int> node_at;
  node_at.reserve(path.steps.size() + 1);
  node_at.push_back(path.start_node);
  const SchemaGraph& schema = link.schema();
  int node = path.start_node;
  for (const JoinStep& step : path.steps) {
    node = schema.Traverse(node, IncidentEdge{step.edge_id, step.forward});
    node_at.push_back(node);
  }
  return node_at;
}

}  // namespace

NeighborProfile PropagationEngine::Compute(
    const JoinPath& path, int32_t start_tuple,
    const PropagationOptions& options) const {
  if (options.algorithm == PropagationAlgorithm::kWorkspace) {
    PropagationWorkspace workspace(*link_);
    return Compute(path, start_tuple, options, workspace);
  }
  DISTINCT_CHECK(path.start_node >= 0);
  DISTINCT_CHECK(!path.steps.empty());
  DISTINCT_DCHECK(start_tuple >= 0 &&
                  start_tuple < link_->NumTuples(path.start_node));

  std::vector<int> node_at = NodeAtLevels(*link_, path);

  if (options.algorithm == PropagationAlgorithm::kLevelWise) {
    std::optional<NeighborProfile> profile =
        ComputeLevelWise(*link_, path, start_tuple, options, node_at);
    if (profile.has_value()) {
      return *std::move(profile);
    }
  }

  return ComputeDepthFirst(*link_, path, start_tuple, options,
                           std::move(node_at));
}

NeighborProfile PropagationEngine::Compute(const JoinPath& path,
                                           int32_t start_tuple,
                                           const PropagationOptions& options,
                                           PropagationWorkspace& workspace,
                                           SubtreeCache* cache,
                                           int cache_path_id) const {
  if (options.algorithm != PropagationAlgorithm::kWorkspace) {
    return Compute(path, start_tuple, options);
  }
  DISTINCT_CHECK(path.start_node >= 0);
  DISTINCT_CHECK(!path.steps.empty());
  DISTINCT_DCHECK(start_tuple >= 0 &&
                  start_tuple < link_->NumTuples(path.start_node));

  std::vector<int> node_at = NodeAtLevels(*link_, path);
  std::optional<NeighborProfile> profile =
      PropagateDense(*link_, path, start_tuple, options, node_at, workspace,
                     cache, cache_path_id);
  if (profile.has_value()) {
    return *std::move(profile);
  }
  return ComputeDepthFirst(*link_, path, start_tuple, options,
                           std::move(node_at));
}

}  // namespace distinct
