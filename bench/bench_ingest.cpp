// Streaming ingest throughput: synthetic dblp.xml -> columnar catalog ->
// mmap reopen, at DBLP scale (default one million Publish references).
//
// Reports generation, ingest (MB/s and rows/s), catalog open (the CRC
// sweep — a whole-corpus scan of every mapped byte), and materialization
// back into the relational schema, with RSS sampled around each phase.
// The differential flag `ingest_identical` proves the materialized
// database is bit-identical to the in-memory XML loader over the same
// bytes; `budget_admitted` proves the whole ingest ran with the
// dictionary+segment working set admitted against --scan-memory-mb (the
// writer fails with ResourceExhausted otherwise, and the harness exits
// non-zero). Only those two flags are gated — absolute throughput varies
// by host and is reported, not gated.

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "catalog/ingest.h"
#include "catalog/reader.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/text_table.h"
#include "dblp/xml_corpus.h"
#include "dblp/xml_loader.h"
#include "obs/memory.h"

namespace {

using namespace distinct;

/// Cell-by-cell bit-identity: same schema, same raw payloads (dictionary
/// ids included), same decoded strings. No dump strings — at a million
/// rows the comparison must stream.
bool DatabasesBitIdentical(const Database& a, const Database& b) {
  if (a.num_tables() != b.num_tables()) return false;
  for (int t = 0; t < a.num_tables(); ++t) {
    const Table& ta = a.table(t);
    const Table& tb = b.table(t);
    if (ta.name() != tb.name() || ta.num_columns() != tb.num_columns() ||
        ta.num_rows() != tb.num_rows()) {
      return false;
    }
    for (int c = 0; c < ta.num_columns(); ++c) {
      if (ta.column(c).name != tb.column(c).name ||
          ta.column(c).type != tb.column(c).type) {
        return false;
      }
    }
    for (int64_t row = 0; row < ta.num_rows(); ++row) {
      for (int c = 0; c < ta.num_columns(); ++c) {
        if (ta.raw(row, c) != tb.raw(row, c)) return false;
        if (ta.column(c).type == ColumnType::kString &&
            !ta.IsNull(row, c) &&
            ta.GetString(row, c) != tb.GetString(row, c)) {
          return false;
        }
      }
    }
  }
  return true;
}

double Mb(int64_t bytes) { return static_cast<double>(bytes) / (1 << 20); }

}  // namespace

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("rows", 1000000,
                 "target Publish references in the synthetic corpus");
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "corpus seed");
  flags.AddInt64("segment-papers", 1 << 16, "papers per column segment");
  flags.AddInt64("scan-memory-mb", 512,
                 "ingest working-set budget (dictionaries + open segment)");
  flags.AddBool("verify", true,
                "differential-check against the in-memory loader");
  flags.AddString("work-dir", "bench_ingest_work",
                  "scratch directory (removed afterwards)");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_ingest",
              "streaming DBLP-scale ingest into the mmap catalog "
              "(implementation, not a paper figure)");

  const std::string work_dir = flags.GetString("work-dir");
  const std::string xml_path = work_dir + "/corpus.xml";
  const std::string catalog_dir = work_dir + "/catalog";
  std::filesystem::remove_all(work_dir);
  std::filesystem::create_directories(work_dir);

  const int64_t target_refs = MustInt64InRange(flags, "rows", 1, 1LL << 40);
  const int64_t budget_mb =
      MustInt64InRange(flags, "scan-memory-mb", 1, 1 << 20);

  XmlCorpusConfig corpus;
  corpus.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  corpus.target_refs = target_refs;
  Stopwatch generate_watch;
  auto corpus_stats = WriteSyntheticDblpXml(xml_path, corpus);
  if (!corpus_stats.ok()) {
    std::fprintf(stderr, "%s\n", corpus_stats.status().ToString().c_str());
    return 1;
  }
  const double generate_s = generate_watch.Seconds();
  std::printf("corpus: %lld papers, %lld refs, %.1f MiB (%.2fs)\n",
              static_cast<long long>(corpus_stats->papers),
              static_cast<long long>(corpus_stats->refs),
              Mb(corpus_stats->bytes), generate_s);

  const int64_t rss_before = obs::ReadRssBytes();
  catalog::IngestOptions ingest_options;
  ingest_options.segment_papers = flags.GetInt64("segment-papers");
  ingest_options.memory_budget_mb = budget_mb;
  Stopwatch ingest_watch;
  auto ingest = catalog::IngestDblpXml(xml_path, catalog_dir,
                                       ingest_options);
  const double ingest_s = ingest_watch.Seconds();
  if (!ingest.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 ingest.status().ToString().c_str());
    return 1;
  }
  const int64_t rss_after_ingest = obs::ReadRssBytes();
  const double ingest_mb_per_s =
      ingest_s > 0 ? Mb(ingest->bytes_read) / ingest_s : 0.0;
  const double ingest_rows_per_s =
      ingest_s > 0 ? static_cast<double>(ingest->summary.num_refs) /
                         ingest_s
                   : 0.0;

  // Whole-corpus scan: Open CRC-sweeps every mapped byte of every segment
  // and dictionary; Materialize then decodes every column back into rows.
  Stopwatch open_watch;
  auto reader = catalog::CatalogReader::Open(catalog_dir);
  const double open_s = open_watch.Seconds();
  if (!reader.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  Stopwatch materialize_watch;
  auto materialized = (*reader)->MaterializeDatabase();
  const double materialize_s = materialize_watch.Seconds();
  if (!materialized.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n",
                 materialized.status().ToString().c_str());
    return 1;
  }
  const int64_t rss_after_scan = obs::ReadRssBytes();

  int identical = -1;  // -1: not checked (reported as absent)
  double loader_s = 0.0;
  if (flags.GetBool("verify")) {
    Stopwatch loader_watch;
    auto loaded = LoadDblpXmlFile(xml_path);
    loader_s = loader_watch.Seconds();
    if (!loaded.ok()) {
      std::fprintf(stderr, "loader failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    identical =
        DatabasesBitIdentical(materialized->db, loaded->db) &&
                materialized->records_loaded == loaded->records_loaded &&
                materialized->records_skipped == loaded->records_skipped
            ? 1
            : 0;
  }

  TextTable table({"phase", "time (s)", "MB/s", "rows/s"});
  for (size_t c = 1; c <= 3; ++c) table.SetRightAlign(c);
  table.AddRow({"generate corpus", StrFormat("%.3f", generate_s),
                StrFormat("%.1f", generate_s > 0
                                      ? Mb(corpus_stats->bytes) / generate_s
                                      : 0.0),
                "-"});
  table.AddRow({"ingest", StrFormat("%.3f", ingest_s),
                StrFormat("%.1f", ingest_mb_per_s),
                StrFormat("%.0f", ingest_rows_per_s)});
  table.AddRow({"open (CRC sweep)", StrFormat("%.3f", open_s),
                StrFormat("%.1f",
                          open_s > 0 ? Mb((*reader)->mapped_bytes()) / open_s
                                     : 0.0),
                "-"});
  table.AddRow({"materialize", StrFormat("%.3f", materialize_s), "-",
                StrFormat("%.0f", materialize_s > 0
                                      ? static_cast<double>(
                                            (*reader)->num_refs()) /
                                            materialize_s
                                      : 0.0)});
  if (identical >= 0) {
    table.AddRow({"in-memory loader (reference)",
                  StrFormat("%.3f", loader_s), "-", "-"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\ncatalog: %lld segments, %.1f MiB mapped; dictionaries "
      "%lld authors / %lld venues / %lld titles\n"
      "rss: %.1f MiB before ingest, %.1f after ingest, %.1f after scan "
      "(budget %lld MiB on the ingest working set)\n",
      static_cast<long long>(ingest->summary.num_segments),
      Mb((*reader)->mapped_bytes()),
      static_cast<long long>(ingest->summary.num_authors),
      static_cast<long long>(ingest->summary.num_venues),
      static_cast<long long>(ingest->summary.num_titles),
      Mb(rss_before), Mb(rss_after_ingest), Mb(rss_after_scan),
      static_cast<long long>(budget_mb));
  if (identical >= 0) {
    std::printf("differential vs in-memory loader: %s\n",
                identical == 1 ? "bit-identical" : "DIVERGED");
  }

  BenchJson json("ingest");
  json.Add("seed", flags.GetInt64("seed"));
  json.Add("target_refs", target_refs);
  json.Add("papers", corpus_stats->papers);
  json.Add("refs", ingest->summary.num_refs);
  json.Add("xml_mb", Mb(corpus_stats->bytes));
  json.Add("segments", ingest->summary.num_segments);
  json.Add("generate_s", generate_s);
  json.Add("ingest_s", ingest_s);
  json.Add("ingest_mb_per_s", ingest_mb_per_s);
  json.Add("ingest_rows_per_s", ingest_rows_per_s);
  json.Add("open_s", open_s);
  json.Add("materialize_s", materialize_s);
  json.Add("corpus_scan_s", open_s + materialize_s);
  json.Add("mapped_mb", Mb((*reader)->mapped_bytes()));
  json.Add("rss_before_mb", Mb(rss_before));
  json.Add("rss_after_ingest_mb", Mb(rss_after_ingest));
  json.Add("rss_after_scan_mb", Mb(rss_after_scan));
  json.Add("budget_mb", budget_mb);
  // The ingest succeeded with admission on: every Add held the tracked
  // dictionary+segment working set under the budget.
  json.Add("budget_admitted", static_cast<int64_t>(1));
  if (identical >= 0) {
    json.Add("loader_s", loader_s);
    json.Add("ingest_identical", static_cast<int64_t>(identical));
  }
  json.Write();

  std::filesystem::remove_all(work_dir);
  if (identical == 0) {
    std::fprintf(stderr,
                 "error: materialized catalog diverged from the in-memory "
                 "loader\n");
    return 1;
  }
  return 0;
}
