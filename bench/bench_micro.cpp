// E9 — google-benchmark microbenchmarks of the kernels: probability
// propagation, set resemblance, random-walk merge, SVM training, and the
// agglomerative clusterer.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cluster/agglomerative.h"
#include "common/rng.h"
#include "dblp/schema.h"
#include "prop/propagation.h"
#include "prop/workspace.h"
#include "sim/resemblance.h"
#include "sim/walk_probability.h"
#include "svm/linear_svm.h"

namespace {

using namespace distinct;
using namespace distinct::bench;

/// Shared fixture: one generated dataset with graphs, built once.
struct Fixture {
  DblpDataset dataset;
  std::unique_ptr<SchemaGraph> schema;
  std::unique_ptr<LinkGraph> link;
  std::unique_ptr<PropagationEngine> engine;
  std::vector<JoinPath> paths;
  std::vector<int32_t> refs;  // the Wei Wang references

  Fixture() : dataset(MustGenerate(StandardGeneratorConfig(kDefaultSeed))) {
    auto graph = SchemaGraph::Build(dataset.db);
    schema = std::make_unique<SchemaGraph>(*std::move(graph));
    for (const auto& [table, column] : DblpDefaultPromotions()) {
      Status s = schema->PromoteAttribute(table, column);
      (void)s;
    }
    auto link_or = LinkGraph::Build(*schema);
    link = std::make_unique<LinkGraph>(*std::move(link_or));
    engine = std::make_unique<PropagationEngine>(*link);

    auto resolved =
        ResolveReferenceSpec(dataset.db, DblpReferenceSpec());
    PathEnumerationOptions options;
    options.max_length = 4;
    paths = EnumerateJoinPaths(*schema, resolved->reference_table_id,
                               options);
    for (const AmbiguousCase& c : dataset.cases) {
      if (c.name == "Wei Wang") {
        refs = c.publish_rows;
      }
    }
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_Propagation(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  const JoinPath& path = fixture.paths[static_cast<size_t>(state.range(0))];
  // Pinned to the depth-first reference engine; the default algorithm is
  // benchmarked separately below.
  PropagationOptions options;
  options.algorithm = PropagationAlgorithm::kDepthFirst;
  size_t i = 0;
  for (auto _ : state) {
    const int32_t ref = fixture.refs[i++ % fixture.refs.size()];
    benchmark::DoNotOptimize(fixture.engine->Compute(path, ref, options));
  }
  state.SetLabel(path.Describe(*fixture.schema));
}
BENCHMARK(BM_Propagation)->Arg(0)->Arg(2)->Arg(6)->Arg(17);

void BM_PropagationWorkspace(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  const JoinPath& path = fixture.paths[static_cast<size_t>(state.range(0))];
  PropagationOptions options;
  options.algorithm = PropagationAlgorithm::kWorkspace;
  PropagationWorkspace workspace(fixture.engine->link());
  SubtreeCache cache(options.cache_bytes);
  size_t i = 0;
  for (auto _ : state) {
    const int32_t ref = fixture.refs[i++ % fixture.refs.size()];
    benchmark::DoNotOptimize(fixture.engine->Compute(
        path, ref, options, workspace, &cache, /*cache_path_id=*/0));
  }
  state.SetLabel(path.Describe(*fixture.schema));
}
BENCHMARK(BM_PropagationWorkspace)->Arg(0)->Arg(2)->Arg(6)->Arg(17);

void BM_PropagationLevelWise(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  const JoinPath& path = fixture.paths[static_cast<size_t>(state.range(0))];
  PropagationOptions options;
  options.algorithm = PropagationAlgorithm::kLevelWise;
  size_t i = 0;
  for (auto _ : state) {
    const int32_t ref = fixture.refs[i++ % fixture.refs.size()];
    benchmark::DoNotOptimize(fixture.engine->Compute(path, ref, options));
  }
  state.SetLabel(path.Describe(*fixture.schema));
}
BENCHMARK(BM_PropagationLevelWise)->Arg(0)->Arg(2)->Arg(6)->Arg(17);

void BM_SetResemblance(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  // Longest path = richest profiles.
  const JoinPath& path = fixture.paths.back();
  const NeighborProfile a = fixture.engine->Compute(path, fixture.refs[0]);
  const NeighborProfile b = fixture.engine->Compute(path, fixture.refs[1]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetResemblance(a, b));
  }
  state.counters["profile_a"] = static_cast<double>(a.size());
  state.counters["profile_b"] = static_cast<double>(b.size());
}
BENCHMARK(BM_SetResemblance);

void BM_WalkProbability(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  const JoinPath& path = fixture.paths.back();
  const NeighborProfile a = fixture.engine->Compute(path, fixture.refs[0]);
  const NeighborProfile b = fixture.engine->Compute(path, fixture.refs[1]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymmetricWalkProbability(a, b));
  }
}
BENCHMARK(BM_WalkProbability);

void BM_SvmTrain(benchmark::State& state) {
  // Synthetic separable-with-noise problem, paper-sized (2000 x 18).
  const size_t n = 2000;
  const size_t dim = 18;
  Rng rng(7);
  SvmProblem problem;
  for (size_t i = 0; i < n; ++i) {
    const int label = (i % 2 == 0) ? 1 : -1;
    std::vector<double> x(dim);
    for (size_t f = 0; f < dim; ++f) {
      x[f] = rng.UniformDouble() * 0.2 +
             (label > 0 && f < 4 ? 0.5 : 0.0);
    }
    problem.x.push_back(std::move(x));
    problem.y.push_back(label);
  }
  SvmParams params;
  params.max_epochs = 200;
  for (auto _ : state) {
    auto model = TrainLinearSvm(problem, params);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_SvmTrain);

void BM_Clustering(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(11);
  PairMatrix resem(n);
  PairMatrix walk(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      const bool same = (i % 8) == (j % 8);
      resem.set(i, j, same ? 0.4 : 0.02 * rng.UniformDouble());
      walk.set(i, j, same ? 1e-3 : 2e-5 * rng.UniformDouble());
    }
  }
  AgglomerativeOptions options;
  options.min_sim = 1e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClusterReferences(resem, walk, options));
  }
}
BENCHMARK(BM_Clustering)->Arg(50)->Arg(150)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
