// E8 — min-sim sensitivity sweep.
//
// The paper fixes one min-sim for DISTINCT and tunes each baseline's
// min-sim for best average accuracy (§5). This harness sweeps min-sim for
// the full DISTINCT configuration and reports average precision / recall /
// F1 at each point, which is how kDefaultMinSim in bench_util.h was chosen.

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/text_table.h"

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_minsim_sweep", "the min-sim setting of Section 5");

  DblpDataset dataset = MustGenerate(StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed"))));
  Distinct engine = MustCreate(dataset.db, StandardDistinctConfig());

  auto matrices = ComputeCaseMatrices(engine, dataset.cases);
  if (!matrices.ok()) {
    std::fprintf(stderr, "%s\n", matrices.status().ToString().c_str());
    return 1;
  }

  TextTable table({"min-sim", "precision", "recall", "f1", "clusters"});
  for (size_t c = 0; c < 5; ++c) {
    table.SetRightAlign(c);
  }
  AgglomerativeOptions options = engine.cluster_options();
  double best_f1 = -1.0;
  double best_min_sim = 0.0;
  for (const double min_sim : DefaultMinSimGrid()) {
    options.min_sim = min_sim;
    const auto evaluations = EvaluateWithOptions(*matrices, options);
    const AggregateScores aggregate = Aggregate(evaluations);
    int total_clusters = 0;
    for (const CaseEvaluation& evaluation : evaluations) {
      total_clusters += evaluation.clustering.num_clusters;
    }
    table.AddRow({StrFormat("%.1e", min_sim), Fmt3(aggregate.precision),
                  Fmt3(aggregate.recall), Fmt3(aggregate.f1),
                  StrFormat("%d", total_clusters)});
    if (aggregate.f1 > best_f1) {
      best_f1 = aggregate.f1;
      best_min_sim = min_sim;
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nbest min-sim %.0e (avg f1 %.3f); harness default %.0e\n",
              best_min_sim, best_f1, kDefaultMinSim);
  return 0;
}
