// Incremental catalog maintenance vs full rebuild: appends a tail of the
// Publish table as a DatabaseDelta at several append fractions and
// measures catalog.Apply() (delta ingest + re-resolving only the dirtied
// names) against rebuilding the engine and re-resolving every name from
// scratch. The differential check is hard: any divergence between the
// incremental catalog and the batch rebuild fails the harness.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/text_table.h"
#include "core/delta.h"
#include "core/distinct.h"
#include "core/scan.h"
#include "dblp/schema.h"

namespace {

using namespace distinct;

bool ResolutionsEqual(const std::vector<BulkResolution>& a,
                      const std::vector<BulkResolution>& b) {
  if (a.size() != b.size()) return false;
  for (size_t g = 0; g < a.size(); ++g) {
    if (a[g].name != b[g].name || a[g].num_refs != b[g].num_refs ||
        a[g].clustering.assignment != b[g].clustering.assignment ||
        a[g].clustering.merges.size() != b[g].clustering.merges.size()) {
      return false;
    }
    for (size_t m = 0; m < a[g].clustering.merges.size(); ++m) {
      if (a[g].clustering.merges[m].into != b[g].clustering.merges[m].into ||
          a[g].clustering.merges[m].from != b[g].clustering.merges[m].from ||
          a[g].clustering.merges[m].similarity !=
              b[g].clustering.merges[m].similarity) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  flags.AddInt64("threads", 4, "worker threads of each engine");
  flags.AddInt64("min-refs", 4, "scan filter: minimum references per name");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_incremental",
              "delta ingest vs full rebuild (implementation, not a paper "
              "figure)");

  const GeneratorConfig generator = StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed")));
  const DblpDataset dataset = MustGenerate(generator);
  const int64_t publish_rows =
      (**dataset.db.FindTable(kPublishTable)).num_rows();

  // Unsupervised: path-weight training is not what is being measured, and
  // uniform weights make the incremental and rebuilt engines trivially
  // share the same model.
  DistinctConfig config;
  config.supervised = false;
  config.promotions = DblpDefaultPromotions();
  config.num_threads = MustIntInRange(flags, "threads", 1, 4096);

  ScanOptions scan;
  scan.min_refs = flags.GetInt64("min-refs");

  std::printf("%lld Publish rows (references), %d threads, %u hardware "
              "threads\n\n",
              static_cast<long long>(publish_rows), config.num_threads,
              std::thread::hardware_concurrency());

  TextTable table({"append", "rows", "dirty", "reused", "apply (s)",
                   "rebuild (s)", "speedup", "exact"});
  for (size_t c = 1; c <= 7; ++c) table.SetRightAlign(c);

  BenchJson json("incremental");
  json.Add("seed", flags.GetInt64("seed"));
  json.Add("threads", static_cast<int64_t>(config.num_threads));
  json.Add("publish_rows", publish_rows);

  const double fractions[] = {0.002, 0.01, 0.05};
  for (const double fraction : fractions) {
    const int64_t tail = std::max<int64_t>(
        1, static_cast<int64_t>(fraction * static_cast<double>(publish_rows)));
    auto split = MakeTailDelta(dataset.db, kPublishTable, tail);
    if (!split.ok()) {
      std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
      return 1;
    }
    Database db = std::move(split->first);

    // Warm start: an engine + resident catalog over the base corpus. Not
    // timed — it models the state a serving system already holds when the
    // delta arrives.
    auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return 1;
    }
    IncrementalCatalog catalog(*engine, scan);
    if (Status s = catalog.Build(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }

    Stopwatch apply_watch;
    auto report = catalog.Apply(db, split->second);
    const double apply_s = apply_watch.Seconds();
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }

    // The contender: rebuild everything over the (now appended) database.
    Stopwatch rebuild_watch;
    auto rebuilt_engine = Distinct::Create(db, DblpReferenceSpec(), config);
    if (!rebuilt_engine.ok()) {
      std::fprintf(stderr, "%s\n",
                   rebuilt_engine.status().ToString().c_str());
      return 1;
    }
    IncrementalCatalog rebuilt(*rebuilt_engine, scan);
    if (Status s = rebuilt.Build(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    const double rebuild_s = rebuild_watch.Seconds();

    const bool exact =
        ResolutionsEqual(catalog.resolutions(), rebuilt.resolutions());
    const double speedup = apply_s > 0 ? rebuild_s / apply_s : 0.0;
    const std::string label = StrFormat("%.1f%%", fraction * 100.0);
    table.AddRow({label, StrFormat("%lld", static_cast<long long>(tail)),
                  StrFormat("%zu", report->dirty_names.size()),
                  StrFormat("%lld", static_cast<long long>(report->names_reused)),
                  StrFormat("%.3f", apply_s), StrFormat("%.3f", rebuild_s),
                  StrFormat("%.1fx", speedup), exact ? "yes" : "NO"});

    const std::string prefix =
        StrFormat("append_%lldpm_", static_cast<long long>(fraction * 1000));
    json.Add(prefix + "rows", tail);
    json.Add(prefix + "dirty_names",
             static_cast<int64_t>(report->dirty_names.size()));
    json.Add(prefix + "names_reused", report->names_reused);
    json.Add(prefix + "names_reresolved", report->names_reresolved);
    json.Add(prefix + "cache_entries_erased", report->cache_entries_erased);
    json.Add(prefix + "apply_s", apply_s);
    json.Add(prefix + "rebuild_s", rebuild_s);
    json.Add(prefix + "speedup", speedup);
    json.Add(prefix + "exact", static_cast<int64_t>(exact ? 1 : 0));

    if (!exact) {
      std::fprintf(stderr,
                   "error: incremental catalog diverged from the batch "
                   "rebuild at %s append\n",
                   label.c_str());
      return 1;
    }
  }

  std::printf("%s", table.Render().c_str());
  json.Write();
  std::printf(
      "\n'apply' is catalog.Apply(): delta validation, in-place link-graph "
      "extension, targeted memo invalidation, and re-resolving only the "
      "dirtied names; 'rebuild' recreates the engine and resolves every "
      "name. 'exact' confirms both catalogs are bit-identical.\n");
  return 0;
}
