#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include <unistd.h>

#include "common/string_util.h"
#include "dblp/schema.h"
#include "obs/json_writer.h"
#include "sim/intersect.h"

namespace distinct {
namespace bench {

GeneratorConfig StandardGeneratorConfig(uint64_t seed) {
  GeneratorConfig config;
  config.seed = seed;
  return config;  // defaults already match DESIGN.md §5
}

DistinctConfig StandardDistinctConfig() {
  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  config.min_sim = kDefaultMinSim;
  return config;
}

DblpDataset MustGenerate(const GeneratorConfig& config) {
  auto dataset = GenerateDblpDataset(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 dataset.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(dataset);
}

Distinct MustCreate(const Database& db, const DistinctConfig& config) {
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine creation failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(engine);
}

int64_t MustInt64InRange(const FlagParser& flags, const char* name,
                         int64_t min_value, int64_t max_value) {
  const int64_t value = flags.GetInt64(name);
  if (value < min_value || value > max_value) {
    std::fprintf(stderr, "--%s=%lld is out of range [%lld, %lld]\n", name,
                 static_cast<long long>(value),
                 static_cast<long long>(min_value),
                 static_cast<long long>(max_value));
    std::exit(1);
  }
  return value;
}

int MustIntInRange(const FlagParser& flags, const char* name, int min_value,
                   int max_value) {
  return static_cast<int>(MustInt64InRange(flags, name, min_value,
                                           max_value));
}

std::string Fmt3(double value) { return StrFormat("%.3f", value); }

void BenchJson::Add(const std::string& key, int64_t value) {
  Entry entry;
  entry.kind = Entry::Kind::kInt;
  entry.key = key;
  entry.int_value = value;
  entries_.push_back(std::move(entry));
}

void BenchJson::Add(const std::string& key, double value) {
  Entry entry;
  entry.kind = Entry::Kind::kDouble;
  entry.key = key;
  entry.double_value = value;
  entries_.push_back(std::move(entry));
}

void BenchJson::Add(const std::string& key, const std::string& value) {
  Entry entry;
  entry.kind = Entry::Kind::kString;
  entry.key = key;
  entry.string_value = value;
  entries_.push_back(std::move(entry));
}

namespace {

/// Run provenance stamped into every BENCH_*.json so the regression gate
/// (tools/bench_gate) can annotate which machine/build/commit produced each
/// side of a comparison.
void WriteProvenance(obs::JsonWriter& json) {
  char host[256] = {};
  if (::gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    json.Key("run_host");
    json.Value(std::string(host));
  }
  json.Key("run_threads");
  json.Value(static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.Key("run_build");
#ifdef NDEBUG
  json.Value("release");
#else
  json.Value("debug");
#endif
  // What kAuto dispatches to on this host/build — kernel numbers from two
  // files only compare when this matches.
  json.Key("kernel_isa");
  json.Value(std::string(KernelIsaName(ResolveKernelIsa(KernelIsa::kAuto))));
  // CI exports GITHUB_SHA; local builds can set DISTINCT_GIT_SHA.
  const char* sha = std::getenv("DISTINCT_GIT_SHA");
  if (sha == nullptr || *sha == '\0') {
    sha = std::getenv("GITHUB_SHA");
  }
  if (sha != nullptr && *sha != '\0') {
    json.Key("run_git_sha");
    json.Value(std::string(sha));
  }
}

}  // namespace

std::string BenchJson::Write() const {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.Value(name_);
  WriteProvenance(json);
  for (const Entry& entry : entries_) {
    json.Key(entry.key);
    switch (entry.kind) {
      case Entry::Kind::kInt:
        json.Value(entry.int_value);
        break;
      case Entry::Kind::kDouble:
        json.Value(entry.double_value);
        break;
      case Entry::Kind::kString:
        json.Value(entry.string_value);
        break;
    }
  }
  json.EndObject();

  const char* dir = std::getenv("DISTINCT_BENCH_JSON_DIR");
  std::string path = dir != nullptr && *dir != '\0'
                         ? std::string(dir) + "/"
                         : std::string();
  path += "BENCH_" + name_ + ".json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  std::fputs(json.str().c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return path;
}

void PrintBanner(const char* experiment, const char* paper_artifact) {
  std::printf("==============================================================\n");
  std::printf("%s  —  reproduces %s of Yin/Han/Yu, ICDE 2007\n", experiment,
              paper_artifact);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace distinct
