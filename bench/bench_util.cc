#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "dblp/schema.h"

namespace distinct {
namespace bench {

GeneratorConfig StandardGeneratorConfig(uint64_t seed) {
  GeneratorConfig config;
  config.seed = seed;
  return config;  // defaults already match DESIGN.md §5
}

DistinctConfig StandardDistinctConfig() {
  DistinctConfig config;
  config.promotions = DblpDefaultPromotions();
  config.min_sim = kDefaultMinSim;
  return config;
}

DblpDataset MustGenerate(const GeneratorConfig& config) {
  auto dataset = GenerateDblpDataset(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 dataset.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(dataset);
}

Distinct MustCreate(const Database& db, const DistinctConfig& config) {
  auto engine = Distinct::Create(db, DblpReferenceSpec(), config);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine creation failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(engine);
}

std::string Fmt3(double value) { return StrFormat("%.3f", value); }

void PrintBanner(const char* experiment, const char* paper_artifact) {
  std::printf("==============================================================\n");
  std::printf("%s  —  reproduces %s of Yin/Han/Yu, ICDE 2007\n", experiment,
              paper_artifact);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace distinct
