// Parallel similarity-kernel speedup: profile building + tiled pair-matrix
// fill for one synthetic mega-name (n >= 500 references) at 1/2/4/8 worker
// threads, verifying that every configuration reproduces the serial
// matrices bit-for-bit. Speedup is only observable on multicore hardware;
// the harness prints the cores actually available so single-core CI output
// is self-explaining.

#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/text_table.h"
#include "common/thread_pool.h"
#include "dblp/schema.h"
#include "sim/parallel_kernel.h"
#include "sim/profile_store.h"

namespace {

using namespace distinct;

bool MatricesEqual(const std::pair<PairMatrix, PairMatrix>& a,
                   const std::pair<PairMatrix, PairMatrix>& b) {
  if (a.first.size() != b.first.size()) return false;
  for (size_t i = 0; i < a.first.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (a.first.at(i, j) != b.first.at(i, j)) return false;
      if (a.second.at(i, j) != b.second.at(i, j)) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  flags.AddInt64("refs", 600, "references on the synthetic mega-name");
  flags.AddInt64("repeat", 3, "timed repetitions per configuration");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_parallel_kernel",
              "kernel parallelization (implementation, not a paper figure)");

  const int refs_target = MustIntInRange(flags, "refs", 1, 1 << 20);
  GeneratorConfig generator = StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed")));
  generator.ambiguous = {{"Wei Wang", 8, refs_target}};
  DblpDataset dataset = MustGenerate(generator);

  // Unsupervised: path-weight training is not what is being measured.
  DistinctConfig config;
  config.supervised = false;
  config.promotions = DblpDefaultPromotions();
  Distinct engine = MustCreate(dataset.db, config);

  auto refs = engine.RefsForName("Wei Wang");
  if (!refs.ok()) {
    std::fprintf(stderr, "%s\n", refs.status().ToString().c_str());
    return 1;
  }
  std::printf("mega-name 'Wei Wang': %zu references, %zu join paths, "
              "%u hardware threads\n\n",
              refs->size(), engine.paths().size(),
              std::thread::hardware_concurrency());

  const int repeat = MustIntInRange(flags, "repeat", 1, 1 << 20);
  const auto& prop_engine = engine.propagation_engine();
  const auto& paths = engine.paths();
  const auto& options = engine.config().propagation;

  // Serial baseline: no pool anywhere.
  double serial_profiles = 0.0;
  double serial_matrix = 0.0;
  std::pair<PairMatrix, PairMatrix> baseline(PairMatrix(0), PairMatrix(0));
  for (int r = 0; r < repeat; ++r) {
    Stopwatch profiles_watch;
    const ProfileStore store =
        ProfileStore::Build(prop_engine, paths, options, *refs);
    serial_profiles += profiles_watch.Seconds();
    Stopwatch matrix_watch;
    auto matrices = ComputePairMatrices(store, engine.model());
    serial_matrix += matrix_watch.Seconds();
    baseline = std::move(matrices);
  }
  serial_profiles /= repeat;
  serial_matrix /= repeat;
  const double serial_total = serial_profiles + serial_matrix;

  TextTable table({"threads", "profiles (s)", "matrix (s)", "total (s)",
                   "speedup", "exact"});
  for (size_t c = 0; c <= 5; ++c) table.SetRightAlign(c);
  table.AddRow({"serial", StrFormat("%.3f", serial_profiles),
                StrFormat("%.3f", serial_matrix),
                StrFormat("%.3f", serial_total), "1.00", "-"});

  BenchJson json("parallel_kernel");
  json.Add("seed", flags.GetInt64("seed"));
  json.Add("refs", static_cast<int64_t>(refs->size()));
  json.Add("join_paths", static_cast<int64_t>(engine.paths().size()));
  json.Add("repeat", flags.GetInt64("repeat"));
  json.Add("hardware_threads",
           static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.Add("serial_profiles_s", serial_profiles);
  json.Add("serial_matrix_s", serial_matrix);
  json.Add("serial_total_s", serial_total);

  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    double pool_profiles = 0.0;
    double pool_matrix = 0.0;
    bool exact = true;
    for (int r = 0; r < repeat; ++r) {
      Stopwatch profiles_watch;
      const ProfileStore store =
          ProfileStore::Build(prop_engine, paths, options, *refs, &pool);
      pool_profiles += profiles_watch.Seconds();
      Stopwatch matrix_watch;
      const auto matrices = ComputePairMatrices(store, engine.model(), &pool);
      pool_matrix += matrix_watch.Seconds();
      exact = exact && MatricesEqual(matrices, baseline);
    }
    pool_profiles /= repeat;
    pool_matrix /= repeat;
    const double total = pool_profiles + pool_matrix;
    table.AddRow({StrFormat("%d", threads),
                  StrFormat("%.3f", pool_profiles),
                  StrFormat("%.3f", pool_matrix), StrFormat("%.3f", total),
                  StrFormat("%.2f", total > 0 ? serial_total / total : 0.0),
                  exact ? "yes" : "NO"});
    const std::string prefix = StrFormat("t%d_", threads);
    json.Add(prefix + "total_s", total);
    json.Add(prefix + "speedup", total > 0 ? serial_total / total : 0.0);
    json.Add(prefix + "exact", static_cast<int64_t>(exact ? 1 : 0));
    if (!exact) {
      std::fprintf(stderr,
                   "error: %d-thread kernel diverged from the serial "
                   "matrices\n",
                   threads);
      return 1;
    }
  }
  std::printf("%s", table.Render().c_str());
  json.Write();
  std::printf(
      "\nboth phases fan out over one shared pool (per-reference "
      "propagation, then tiled lower-triangle fill); results are "
      "bit-identical at every thread count, so speedup tracks available "
      "cores.\n");
  return 0;
}
