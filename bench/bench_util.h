// Shared setup for the benchmark harnesses: one standard dataset, one
// standard engine configuration, formatting helpers.

#ifndef DISTINCT_BENCH_BENCH_UTIL_H_
#define DISTINCT_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>

#include "common/string_util.h"
#include "core/distinct.h"
#include "core/evaluation.h"
#include "dblp/generator.h"

namespace distinct {
namespace bench {

/// Seed every harness uses unless overridden on the command line, so the
/// numbers in EXPERIMENTS.md are reproducible with a bare invocation.
inline constexpr uint64_t kDefaultSeed = 42;

/// The DISTINCT min-sim used for the headline results (analog of the
/// paper's fixed min-sim; calibrated once on the default dataset — see
/// bench_minsim_sweep).
inline constexpr double kDefaultMinSim = 3e-2;

/// Generator config of the standard benchmark dataset.
GeneratorConfig StandardGeneratorConfig(uint64_t seed);

/// Engine config used for the headline DISTINCT results.
DistinctConfig StandardDistinctConfig();

/// Generates the dataset or aborts with a message (harness context).
DblpDataset MustGenerate(const GeneratorConfig& config);

/// Creates a trained engine or aborts with a message.
Distinct MustCreate(const Database& db, const DistinctConfig& config);

/// Formats a double with 3 decimals ("0.927").
std::string Fmt3(double value);

/// Prints the standard harness banner.
void PrintBanner(const char* experiment, const char* paper_artifact);

}  // namespace bench
}  // namespace distinct

#endif  // DISTINCT_BENCH_BENCH_UTIL_H_
