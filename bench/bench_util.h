// Shared setup for the benchmark harnesses: one standard dataset, one
// standard engine configuration, formatting helpers.

#ifndef DISTINCT_BENCH_BENCH_UTIL_H_
#define DISTINCT_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "core/distinct.h"
#include "core/evaluation.h"
#include "dblp/generator.h"

namespace distinct {
namespace bench {

/// Seed every harness uses unless overridden on the command line, so the
/// numbers in EXPERIMENTS.md are reproducible with a bare invocation.
inline constexpr uint64_t kDefaultSeed = 42;

/// The DISTINCT min-sim used for the headline results (analog of the
/// paper's fixed min-sim; calibrated once on the default dataset — see
/// bench_minsim_sweep).
inline constexpr double kDefaultMinSim = 3e-2;

/// Generator config of the standard benchmark dataset.
GeneratorConfig StandardGeneratorConfig(uint64_t seed);

/// Engine config used for the headline DISTINCT results.
DistinctConfig StandardDistinctConfig();

/// Generates the dataset or aborts with a message (harness context).
DblpDataset MustGenerate(const GeneratorConfig& config);

/// Creates a trained engine or aborts with a message.
Distinct MustCreate(const Database& db, const DistinctConfig& config);

/// Range-validated flag access for harnesses: aborts with a clear message
/// when the value is outside [min, max]. FlagParser::Parse already rejects
/// malformed numbers and trailing junk; this closes the remaining hole —
/// call sites used to narrow GetInt64 with an unchecked static_cast<int>,
/// so --threads=5000000000 silently wrapped instead of failing.
int64_t MustInt64InRange(const FlagParser& flags, const char* name,
                         int64_t min_value, int64_t max_value);

/// Same, returning int: bounds are checked before the narrowing cast.
int MustIntInRange(const FlagParser& flags, const char* name, int min_value,
                   int max_value);

/// Formats a double with 3 decimals ("0.927").
std::string Fmt3(double value);

/// Prints the standard harness banner.
void PrintBanner(const char* experiment, const char* paper_artifact);

/// Machine-readable companion to the human tables: collects flat key/value
/// results and writes them as `BENCH_<name>.json` so CI and tooling can
/// diff benchmark runs without scraping stdout.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& key, int64_t value);
  void Add(const std::string& key, double value);
  void Add(const std::string& key, const std::string& value);

  /// Writes `BENCH_<name>.json` into $DISTINCT_BENCH_JSON_DIR (when set)
  /// or the working directory. Returns the path, or "" on I/O failure
  /// (benchmarks should keep going — the tables already printed).
  std::string Write() const;

 private:
  struct Entry {
    enum class Kind { kInt, kDouble, kString } kind;
    std::string key;
    int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };
  std::string name_;
  std::vector<Entry> entries_;
};

}  // namespace bench
}  // namespace distinct

#endif  // DISTINCT_BENCH_BENCH_UTIL_H_
