# Benchmark harnesses. Included from the top-level CMakeLists with
# include(), not add_subdirectory(), so that ${CMAKE_BINARY_DIR}/bench
# contains ONLY the benchmark executables: `for b in build/bench/*; do $b;
# done` then runs exactly the harnesses.

set(DISTINCT_BENCH_DIR ${CMAKE_CURRENT_SOURCE_DIR}/bench)

function(distinct_add_bench name)
  add_executable(${name} ${DISTINCT_BENCH_DIR}/${name}.cpp
                 ${DISTINCT_BENCH_DIR}/bench_util.cc)
  target_link_libraries(${name} PRIVATE distinct::distinct)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

# One harness per paper table/figure (DESIGN.md §4).
distinct_add_bench(bench_table1_dataset)
distinct_add_bench(bench_table2_accuracy)
distinct_add_bench(bench_fig4_comparison)
distinct_add_bench(bench_fig5_weiwang)
distinct_add_bench(bench_training_micro)

# Ablations and sensitivity.
distinct_add_bench(bench_ablation_combine)
distinct_add_bench(bench_ablation_incremental)
distinct_add_bench(bench_incremental)
distinct_add_bench(bench_ablation_stopping)
distinct_add_bench(bench_minsim_sweep)
distinct_add_bench(bench_pair_kernel)
distinct_add_bench(bench_parallel_kernel)
distinct_add_bench(bench_propagation)
distinct_add_bench(bench_scale)
distinct_add_bench(bench_seed_robustness)
distinct_add_bench(bench_serve)
# The serving stress driver talks to the socket/service layer directly.
target_link_libraries(bench_serve PRIVATE distinct_serve)
distinct_add_bench(bench_sharded_scan)
distinct_add_bench(bench_ingest)

# google-benchmark microbenchmarks.
add_executable(bench_micro ${DISTINCT_BENCH_DIR}/bench_micro.cpp
               ${DISTINCT_BENCH_DIR}/bench_util.cc)
target_link_libraries(bench_micro PRIVATE distinct::distinct
                      benchmark::benchmark)
set_target_properties(bench_micro PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
