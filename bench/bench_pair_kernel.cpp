// Pair-kernel comparison on a sparse-overlap workload: one synthetic
// mega-name whose references spread over many distinct entities (and
// therefore many communities), so most reference pairs share no neighbor
// tuples. Rows: the three-pass reference kernel; the fused arena kernel
// once per merge-join ISA (scalar, gallop, avx2 — every row must
// reproduce the reference matrices bit-for-bit, hard failure otherwise);
// the fused kernel with bitset candidate generation forced on; the fused
// kernel at its defaults (auto ISA); and the fused kernel with the
// mass-bound prune (must leave the clustering at the prune floor
// unchanged). The serial fill is measured so the row ratio is the kernel
// speedup itself, not a parallelization artifact.

#include <cstdio>

#include "bench_util.h"
#include "cluster/agglomerative.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/text_table.h"
#include "dblp/schema.h"
#include "sim/fused_kernel.h"
#include "sim/parallel_kernel.h"
#include "sim/profile_arena.h"
#include "sim/profile_store.h"

namespace {

using namespace distinct;

bool MatricesEqual(const std::pair<PairMatrix, PairMatrix>& a,
                   const std::pair<PairMatrix, PairMatrix>& b) {
  if (a.first.size() != b.first.size()) return false;
  for (size_t i = 0; i < a.first.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (a.first.at(i, j) != b.first.at(i, j)) return false;
      if (a.second.at(i, j) != b.second.at(i, j)) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  flags.AddInt64("refs", 600, "references on the synthetic mega-name");
  flags.AddInt64("entities", 32,
                 "distinct people behind the mega-name; more entities -> "
                 "sparser pair overlap");
  flags.AddInt64("repeat", 3, "timed repetitions per row");
  flags.AddDouble("prune-min-sim", 0.25,
                  "merge floor of the fused+prune row (sits inside the "
                  "mass-bound range on this workload so the prune visibly "
                  "fires; the paper's 3e-2 floor is below every bound here)");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_pair_kernel",
              "fused vs reference pair kernel (implementation, not a paper "
              "figure)");

  GeneratorConfig generator = StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed")));
  generator.ambiguous = {{"Wei Wang",
                          MustIntInRange(flags, "entities", 1, 1 << 16),
                          MustIntInRange(flags, "refs", 1, 1 << 20)}};
  DblpDataset dataset = MustGenerate(generator);

  // Unsupervised: path-weight training is not what is being measured.
  DistinctConfig config;
  config.supervised = false;
  config.promotions = DblpDefaultPromotions();
  Distinct engine = MustCreate(dataset.db, config);

  auto refs = engine.RefsForName("Wei Wang");
  if (!refs.ok()) {
    std::fprintf(stderr, "%s\n", refs.status().ToString().c_str());
    return 1;
  }
  const size_t n = refs->size();
  const int64_t total_pairs = static_cast<int64_t>(n) * (n - 1) / 2;

  const ProfileStore store =
      ProfileStore::Build(engine.propagation_engine(), engine.paths(),
                          engine.config().propagation, *refs);
  const ProfileArena arena = ProfileArena::FromStore(store);
  const CandidateSet candidates = CandidateSet::Build(arena);
  std::printf("mega-name 'Wei Wang': %zu references over %lld entities, "
              "%zu join paths\n",
              n, static_cast<long long>(flags.GetInt64("entities")),
              engine.paths().size());
  std::printf("candidate pairs: %lld of %lld (%.1f%%)\n\n",
              static_cast<long long>(candidates.count()),
              static_cast<long long>(total_pairs),
              total_pairs > 0
                  ? 100.0 * static_cast<double>(candidates.count()) /
                        static_cast<double>(total_pairs)
                  : 0.0);

  const int repeat = MustIntInRange(flags, "repeat", 1, 1 << 20);
  const double prune_min_sim = flags.GetDouble("prune-min-sim");

  auto time_fill = [&](const PairKernelOptions& options,
                       std::pair<PairMatrix, PairMatrix>* out) {
    double seconds = 0.0;
    for (int r = 0; r < repeat; ++r) {
      Stopwatch watch;
      auto matrices =
          ComputePairMatrices(store, engine.model(), nullptr, options);
      seconds += watch.Seconds();
      *out = std::move(matrices);
    }
    return seconds / repeat;
  };

  PairKernelOptions reference_options;
  reference_options.kernel = PairKernelType::kReference;
  std::pair<PairMatrix, PairMatrix> reference(PairMatrix(0), PairMatrix(0));
  const double reference_s = time_fill(reference_options, &reference);

  // One row per merge-join ISA, candidate generation pinned to the sparse
  // grouped path so the rows differ only in the join itself.
  struct VariantRow {
    const char* name;
    KernelIsa isa;
    double seconds = 0.0;
    bool exact = false;
  };
  VariantRow variants[] = {{"fused[scalar]", KernelIsa::kScalar},
                           {"fused[gallop]", KernelIsa::kGallop},
                           {"fused[avx2]", KernelIsa::kAvx2}};
  for (VariantRow& row : variants) {
    PairKernelOptions options;
    options.kernel = PairKernelType::kFused;
    options.isa = row.isa;
    options.candidates.bitset_min_refs = 1 << 30;  // force the sparse path
    std::pair<PairMatrix, PairMatrix> out(PairMatrix(0), PairMatrix(0));
    row.seconds = time_fill(options, &out);
    row.exact = MatricesEqual(out, reference);
  }

  // Bitset candidate generation forced on (auto ISA): same bits, built
  // word-parallel.
  PairKernelOptions bitset_options;
  bitset_options.kernel = PairKernelType::kFused;
  bitset_options.candidates.bitset_min_refs = 0;
  bitset_options.candidates.bitset_cost_factor = 0.0;
  std::pair<PairMatrix, PairMatrix> bitset(PairMatrix(0), PairMatrix(0));
  const double bitset_s = time_fill(bitset_options, &bitset);
  const bool bitset_exact = MatricesEqual(bitset, reference);

  PairKernelOptions fused_options;
  fused_options.kernel = PairKernelType::kFused;
  std::pair<PairMatrix, PairMatrix> fused(PairMatrix(0), PairMatrix(0));
  const double fused_s = time_fill(fused_options, &fused);
  const bool fused_exact = MatricesEqual(fused, reference);

  PairKernelOptions prune_options = fused_options;
  prune_options.pruning = true;
  prune_options.prune_min_sim = prune_min_sim;
  std::pair<PairMatrix, PairMatrix> pruned(PairMatrix(0), PairMatrix(0));
  const double prune_s = time_fill(prune_options, &pruned);

  // The prune contract: dropped cells read 0.0, and clustering at the
  // prune floor is unchanged.
  int64_t pairs_pruned = 0;
  bool prune_cells_ok = true;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (pruned.first.at(i, j) == reference.first.at(i, j) &&
          pruned.second.at(i, j) == reference.second.at(i, j)) {
        continue;
      }
      ++pairs_pruned;
      prune_cells_ok = prune_cells_ok && pruned.first.at(i, j) == 0.0 &&
                       pruned.second.at(i, j) == 0.0;
    }
  }
  AgglomerativeOptions cluster_options;
  cluster_options.min_sim = prune_min_sim;
  const ClusteringResult exact_clusters =
      ClusterReferences(reference.first, reference.second, cluster_options);
  const ClusteringResult pruned_clusters =
      ClusterReferences(pruned.first, pruned.second, cluster_options);
  const bool prune_clusters_ok =
      exact_clusters.assignment == pruned_clusters.assignment;

  TextTable table({"kernel", "matrix (s)", "speedup", "exact", "pruned"});
  for (size_t c = 1; c <= 4; ++c) table.SetRightAlign(c);
  table.AddRow({"reference", Fmt3(reference_s), "1.00", "-", "-"});
  for (const VariantRow& row : variants) {
    table.AddRow(
        {row.name, Fmt3(row.seconds),
         StrFormat("%.2f",
                   row.seconds > 0 ? reference_s / row.seconds : 0.0),
         row.exact ? "yes" : "NO", "0"});
  }
  table.AddRow(
      {"fused[bitset-cand]", Fmt3(bitset_s),
       StrFormat("%.2f", bitset_s > 0 ? reference_s / bitset_s : 0.0),
       bitset_exact ? "yes" : "NO", "0"});
  table.AddRow({StrFormat("fused[auto=%s]",
                          KernelIsaName(ResolveKernelIsa(KernelIsa::kAuto))),
                Fmt3(fused_s),
                StrFormat("%.2f", fused_s > 0 ? reference_s / fused_s : 0.0),
                fused_exact ? "yes" : "NO", "0"});
  table.AddRow({StrFormat("fused+prune@%.2f", prune_min_sim), Fmt3(prune_s),
                StrFormat("%.2f", prune_s > 0 ? reference_s / prune_s : 0.0),
                prune_cells_ok && prune_clusters_ok ? "clusters" : "NO",
                StrFormat("%lld", static_cast<long long>(pairs_pruned))});
  std::printf("%s", table.Render().c_str());

  BenchJson json("pair_kernel");
  json.Add("seed", flags.GetInt64("seed"));
  json.Add("refs", static_cast<int64_t>(n));
  json.Add("entities", flags.GetInt64("entities"));
  json.Add("join_paths", static_cast<int64_t>(engine.paths().size()));
  json.Add("repeat", flags.GetInt64("repeat"));
  json.Add("total_pairs", total_pairs);
  json.Add("candidate_pairs", candidates.count());
  json.Add("reference_matrix_s", reference_s);
  // fused_* is the defaults row (auto ISA); the per-variant keys pin one
  // merge-join ISA (sparse candidates) or force bitset candidates.
  json.Add("fused_matrix_s", fused_s);
  json.Add("fused_speedup", fused_s > 0 ? reference_s / fused_s : 0.0);
  json.Add("fused_exact", static_cast<int64_t>(fused_exact ? 1 : 0));
  const char* variant_keys[] = {"scalar", "gallop", "simd"};
  for (size_t v = 0; v < 3; ++v) {
    const VariantRow& row = variants[v];
    json.Add(std::string(variant_keys[v]) + "_matrix_s", row.seconds);
    json.Add(std::string(variant_keys[v]) + "_speedup",
             row.seconds > 0 ? reference_s / row.seconds : 0.0);
    json.Add(std::string(variant_keys[v]) + "_exact",
             static_cast<int64_t>(row.exact ? 1 : 0));
  }
  json.Add("bitset_matrix_s", bitset_s);
  json.Add("bitset_speedup", bitset_s > 0 ? reference_s / bitset_s : 0.0);
  json.Add("bitset_exact", static_cast<int64_t>(bitset_exact ? 1 : 0));
  json.Add("prune_min_sim", prune_min_sim);
  json.Add("prune_matrix_s", prune_s);
  json.Add("prune_speedup", prune_s > 0 ? reference_s / prune_s : 0.0);
  json.Add("pairs_pruned", pairs_pruned);
  json.Add("prune_clustering_identical",
           static_cast<int64_t>(prune_clusters_ok ? 1 : 0));
  json.Write();

  std::printf(
      "\nevery fused row must reproduce the reference matrices bit-for-bit; "
      "the prune row must leave the clustering at its floor unchanged.\n");
  for (const VariantRow& row : variants) {
    if (!row.exact) {
      std::fprintf(stderr,
                   "error: %s diverged from the reference matrices\n",
                   row.name);
      return 1;
    }
  }
  if (!bitset_exact) {
    std::fprintf(stderr,
                 "error: bitset candidate generation diverged from the "
                 "reference matrices\n");
    return 1;
  }
  if (!fused_exact) {
    std::fprintf(stderr,
                 "error: fused kernel (pruning off) diverged from the "
                 "reference matrices\n");
    return 1;
  }
  if (!prune_cells_ok || !prune_clusters_ok) {
    std::fprintf(stderr,
                 "error: mass-bound prune violated its contract (%s)\n",
                 !prune_cells_ok ? "non-zero pruned cell"
                                 : "clustering changed at the prune floor");
    return 1;
  }
  return 0;
}
