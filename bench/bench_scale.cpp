// E10 — scalability: offline-phase and whole-database resolution cost as
// the database grows. The paper reports a single 62.1 s offline figure on
// full DBLP; this shows how the phases scale with database size so that
// figure can be extrapolated.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/text_table.h"
#include "core/scan.h"
#include "dblp/schema.h"
#include "dblp/stats.h"

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_scale",
              "the Section 5 cost figures (scaling behaviour)");

  TextTable table({"communities", "refs", "offline (s)",
                   "names>=4 refs", "bulk resolve (s)", "refs/s"});
  for (size_t c = 0; c <= 5; ++c) {
    table.SetRightAlign(c);
  }

  BenchJson json("scale");
  json.Add("seed", flags.GetInt64("seed"));

  for (const int communities : {10, 20, 40, 80}) {
    GeneratorConfig generator = StandardGeneratorConfig(
        static_cast<uint64_t>(flags.GetInt64("seed")));
    generator.num_communities = communities;
    DblpDataset dataset = MustGenerate(generator);
    auto stats = ComputeDblpStats(dataset.db);

    // Scale the training-set size with the database (the small worlds
    // cannot supply the paper's 1000+1000 pairs).
    DistinctConfig config = StandardDistinctConfig();
    config.training.num_positive =
        std::min(1000, communities * 20);
    config.training.num_negative = config.training.num_positive;

    Stopwatch offline;
    Distinct engine = MustCreate(dataset.db, config);
    const double seconds_offline = offline.Seconds();

    ScanOptions scan;
    scan.min_refs = 4;
    scan.max_refs = 200;
    auto groups = ScanNameGroups(dataset.db, DblpReferenceSpec(), scan);
    if (!groups.ok()) {
      std::fprintf(stderr, "%s\n", groups.status().ToString().c_str());
      return 1;
    }

    Stopwatch bulk;
    auto bulk_stats = ResolveAllNames(engine, *groups);
    if (!bulk_stats.ok()) {
      std::fprintf(stderr, "%s\n", bulk_stats.status().ToString().c_str());
      return 1;
    }
    const double seconds_bulk = bulk.Seconds();

    table.AddRow(
        {StrFormat("%d", communities),
         StrFormat("%lld", static_cast<long long>(stats->num_references)),
         StrFormat("%.2f", seconds_offline),
         StrFormat("%lld", static_cast<long long>(bulk_stats->names_resolved)),
         StrFormat("%.2f", seconds_bulk),
         StrFormat("%.0f", seconds_bulk > 0
                               ? static_cast<double>(bulk_stats->total_refs) /
                                     seconds_bulk
                               : 0.0)});
    const std::string prefix = StrFormat("c%d_", communities);
    json.Add(prefix + "refs", static_cast<int64_t>(stats->num_references));
    json.Add(prefix + "offline_s", seconds_offline);
    json.Add(prefix + "names_resolved",
             static_cast<int64_t>(bulk_stats->names_resolved));
    json.Add(prefix + "bulk_s", seconds_bulk);
    json.Add(prefix + "refs_per_s",
             seconds_bulk > 0
                 ? static_cast<double>(bulk_stats->total_refs) / seconds_bulk
                 : 0.0);
  }
  std::printf("%s", table.Render().c_str());
  json.Write();
  std::printf(
      "\npaper context: 62.1 s offline on ~1.29M references (2005-era "
      "hardware); the offline phase here scales roughly linearly in "
      "database size.\n");
  return 0;
}
