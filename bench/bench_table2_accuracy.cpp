// E2 — Table 2: DISTINCT's precision / recall / f-measure per ambiguous
// name, plus the averages.
//
// Paper reference points (its DBLP snapshot): no false positives in 7 of 10
// cases, average recall 83.6%, average f-measure ≈ 0.90.

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/text_table.h"

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  flags.AddDouble("min-sim", kDefaultMinSim, "merge threshold");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_table2_accuracy", "Table 2");

  DblpDataset dataset = MustGenerate(StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed"))));
  DistinctConfig config = StandardDistinctConfig();
  config.min_sim = flags.GetDouble("min-sim");
  Distinct engine = MustCreate(dataset.db, config);

  auto evaluations = EvaluateCases(engine, dataset.cases);
  if (!evaluations.ok()) {
    std::fprintf(stderr, "%s\n", evaluations.status().ToString().c_str());
    return 1;
  }

  TextTable table({"name", "#authors", "#refs", "#found", "precision",
                   "recall", "f-measure"});
  for (size_t c = 1; c <= 6; ++c) {
    table.SetRightAlign(c);
  }
  int perfect_precision_cases = 0;
  for (const CaseEvaluation& evaluation : *evaluations) {
    if (evaluation.scores.false_positives == 0) {
      ++perfect_precision_cases;
    }
    table.AddRow({evaluation.name, StrFormat("%d", evaluation.num_entities),
                  StrFormat("%zu", evaluation.num_refs),
                  StrFormat("%d", evaluation.clustering.num_clusters),
                  Fmt3(evaluation.scores.precision),
                  Fmt3(evaluation.scores.recall),
                  Fmt3(evaluation.scores.f1)});
  }
  const AggregateScores aggregate = Aggregate(*evaluations);
  table.AddRow({"average", "", "", "", Fmt3(aggregate.precision),
                Fmt3(aggregate.recall), Fmt3(aggregate.f1)});
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\ncases with zero false positives: %d / %zu (paper: 7 / 10)\n"
      "average recall %.3f (paper: 0.836), average f-measure %.3f "
      "(paper: ~0.90)\n",
      perfect_precision_cases, evaluations->size(), aggregate.recall,
      aggregate.f1);
  return 0;
}
