// E4 — Fig. 5: the Wei Wang case study. Shows how DISTINCT's clusters line
// up with the fourteen real Wei Wangs (the paper draws each author as a box
// with arrows marking the mistakes; this harness renders the same content
// as text).

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "eval/confusion.h"
#include "eval/visualize.h"

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  flags.AddString("name", "Wei Wang", "case to visualize");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_fig5_weiwang", "Figure 5");

  DblpDataset dataset = MustGenerate(StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed"))));
  Distinct engine = MustCreate(dataset.db, StandardDistinctConfig());

  const std::string name = flags.GetString("name");
  const AmbiguousCase* ambiguous_case = nullptr;
  for (const AmbiguousCase& c : dataset.cases) {
    if (c.name == name) {
      ambiguous_case = &c;
    }
  }
  if (ambiguous_case == nullptr) {
    std::fprintf(stderr, "no planted case named '%s'\n", name.c_str());
    return 1;
  }

  auto evaluation = EvaluateCase(engine, *ambiguous_case);
  if (!evaluation.ok()) {
    std::fprintf(stderr, "%s\n", evaluation.status().ToString().c_str());
    return 1;
  }

  std::vector<ReferenceDisplay> refs(ambiguous_case->publish_rows.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    refs[i].label = StrFormat("Publish row %d",
                              ambiguous_case->publish_rows[i]);
    refs[i].truth = ambiguous_case->truth[i];
    refs[i].predicted = evaluation->clustering.assignment[i];
  }
  std::printf("%s\n",
              RenderClusterDiagram(refs, ambiguous_case->entity_names)
                  .c_str());
  std::printf("scores: %s\n\n", evaluation->scores.DebugString().c_str());
  std::printf("%s",
              AnalyzeConfusion(ambiguous_case->truth,
                               evaluation->clustering.assignment)
                  .Render(ambiguous_case->entity_names, /*max_rows=*/5)
                  .c_str());
  return 0;
}
