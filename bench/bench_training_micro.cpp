// E5 — the offline phase cost (paper §5: building the 1000+1000 training
// set and fitting the SVM took 62.1 s on the full DBLP snapshot; this
// dataset is ~20x smaller, so absolute numbers differ — the breakdown and
// scaling are the interesting part).

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/text_table.h"
#include "train/rare_names.h"
#include "dblp/schema.h"

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_training_micro", "Section 5's training-cost report");

  Stopwatch generate_watch;
  DblpDataset dataset = MustGenerate(StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed"))));
  const double seconds_generate = generate_watch.Seconds();

  Stopwatch rare_watch;
  auto rare = RareNameIndex::Build(dataset.db, DblpReferenceSpec());
  const double seconds_rare = rare_watch.Seconds();
  if (!rare.ok()) {
    std::fprintf(stderr, "%s\n", rare.status().ToString().c_str());
    return 1;
  }

  Stopwatch create_watch;
  Distinct engine = MustCreate(dataset.db, StandardDistinctConfig());
  const double seconds_create = create_watch.Seconds();
  const TrainingReport& report = engine.report();

  TextTable table({"stage", "seconds"});
  table.SetRightAlign(1);
  table.AddRow({"generate synthetic DBLP", Fmt3(seconds_generate)});
  table.AddRow({"rare-name scan", Fmt3(seconds_rare)});
  table.AddRow({"training features (propagation)",
                Fmt3(report.seconds_features)});
  table.AddRow({"SVM fit (2 models)", Fmt3(report.seconds_svm)});
  table.AddRow({"total offline phase (graphs+train)",
                Fmt3(seconds_create)});
  std::printf("%s", table.Render().c_str());

  std::printf(
      "\nlikely-unique authors found: %zu (of %lld names scanned)\n"
      "training pairs: %zu over %zu distinct references, %d join paths\n"
      "SVM training accuracy: resemblance model %.3f, walk model %.3f\n"
      "paper: whole process 62.1 s on the ~20x larger DBLP snapshot\n",
      rare->unique_authors().size(),
      static_cast<long long>(rare->names_scanned()),
      report.num_training_pairs, report.num_unique_refs, report.num_paths,
      report.train_accuracy_resem, report.train_accuracy_walk);
  return 0;
}
