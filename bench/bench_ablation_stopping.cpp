// E12 — extension ablation: the paper fixes one min-sim for DISTINCT and
// tunes each baseline's threshold per method. The largest-gap stopping
// rule removes the calibration entirely — it cuts the merge sequence at
// the biggest relative similarity drop. This harness quantifies what that
// convenience costs.

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/text_table.h"

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_ablation_stopping",
              "the min-sim calibration burden (extension)");

  DblpDataset dataset = MustGenerate(StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed"))));
  Distinct engine = MustCreate(dataset.db, StandardDistinctConfig());
  const double auto_min_sim = engine.report().suggested_min_sim;
  auto matrices = ComputeCaseMatrices(engine, dataset.cases);
  if (!matrices.ok()) {
    std::fprintf(stderr, "%s\n", matrices.status().ToString().c_str());
    return 1;
  }

  struct Arm {
    const char* label;
    StoppingRule stopping;
    double min_sim;
  };
  AgglomerativeOptions base = engine.cluster_options();
  const double tuned = BestMinSim(*matrices, base, DefaultMinSimGrid());
  const Arm arms[] = {
      {"fixed threshold, tuned per dataset", StoppingRule::kFixedThreshold,
       tuned},
      {"fixed threshold, calibrated default", StoppingRule::kFixedThreshold,
       kDefaultMinSim},
      {"fixed threshold, naive guess (1e-4)", StoppingRule::kFixedThreshold,
       1e-4},
      {"largest gap, no calibration", StoppingRule::kLargestGap, 1e-4},
      {"fixed threshold, auto-calibrated from training pairs",
       StoppingRule::kFixedThreshold, auto_min_sim},
  };

  TextTable table({"stopping rule", "min-sim", "precision", "recall",
                   "f-measure"});
  for (size_t c = 1; c <= 4; ++c) {
    table.SetRightAlign(c);
  }
  for (const Arm& arm : arms) {
    AgglomerativeOptions options = base;
    options.stopping = arm.stopping;
    options.min_sim = arm.min_sim;
    const AggregateScores aggregate =
        Aggregate(EvaluateWithOptions(*matrices, options));
    table.AddRow({arm.label, StrFormat("%.1e", arm.min_sim),
                  Fmt3(aggregate.precision), Fmt3(aggregate.recall),
                  Fmt3(aggregate.f1)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nthe naive-guess row shows what a wrong fixed threshold costs; the "
      "auto-calibrated row derives its threshold from the automatic "
      "training pairs alone (precision-constrained cut), with no ground "
      "truth and no sweep.\n");
  return 0;
}
