// E11 — robustness of the headline Table 2 numbers across generator seeds.
// The paper evaluates one (real) dataset; a synthetic substitute must show
// its conclusions are not an artifact of one random world.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/text_table.h"

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seeds", 5, "number of generator seeds to evaluate");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_seed_robustness",
              "Table 2's averages, across generator seeds");

  TextTable table({"seed", "precision", "recall", "f-measure",
                   "perfect-precision cases"});
  for (size_t c = 0; c <= 4; ++c) {
    table.SetRightAlign(c);
  }

  std::vector<double> f1s;
  std::vector<double> recalls;
  std::vector<double> precisions;
  const int num_seeds = MustIntInRange(flags, "seeds", 1, 1 << 16);
  for (int s = 0; s < num_seeds; ++s) {
    const uint64_t seed = kDefaultSeed + static_cast<uint64_t>(s);
    DblpDataset dataset = MustGenerate(StandardGeneratorConfig(seed));
    Distinct engine = MustCreate(dataset.db, StandardDistinctConfig());
    auto evaluations = EvaluateCases(engine, dataset.cases);
    if (!evaluations.ok()) {
      std::fprintf(stderr, "%s\n",
                   evaluations.status().ToString().c_str());
      return 1;
    }
    int perfect = 0;
    for (const CaseEvaluation& evaluation : *evaluations) {
      if (evaluation.scores.false_positives == 0) {
        ++perfect;
      }
    }
    const AggregateScores aggregate = Aggregate(*evaluations);
    f1s.push_back(aggregate.f1);
    recalls.push_back(aggregate.recall);
    precisions.push_back(aggregate.precision);
    table.AddRow({StrFormat("%llu", static_cast<unsigned long long>(seed)),
                  Fmt3(aggregate.precision), Fmt3(aggregate.recall),
                  Fmt3(aggregate.f1),
                  StrFormat("%d/%zu", perfect, evaluations->size())});
  }

  auto mean_std = [](const std::vector<double>& values) {
    double mean = 0.0;
    for (const double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    double variance = 0.0;
    for (const double v : values) variance += (v - mean) * (v - mean);
    variance /= static_cast<double>(values.size());
    return std::make_pair(mean, std::sqrt(variance));
  };
  std::printf("%s", table.Render().c_str());
  const auto [f1_mean, f1_std] = mean_std(f1s);
  const auto [recall_mean, recall_std] = mean_std(recalls);
  const auto [precision_mean, precision_std] = mean_std(precisions);
  std::printf(
      "\nacross %d seeds: precision %.3f±%.3f, recall %.3f±%.3f, "
      "f-measure %.3f±%.3f (paper: precision ~1.0 in 7/10 cases, recall "
      "0.836, f ~0.90)\n",
      num_seeds, precision_mean, precision_std, recall_mean, recall_std,
      f1_mean, f1_std);
  return 0;
}
