// E1 — Table 1: the ambiguous names, their true author counts, and their
// reference counts, plus the global shape of the database.
//
// The paper reports these for the 2006 DBLP snapshot; here the synthetic
// generator plants the same names with the same counts (DESIGN.md §5), so
// this harness doubles as a check that the generated data matches the spec.

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/text_table.h"
#include "dblp/schema.h"
#include "dblp/stats.h"

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_table1_dataset", "Table 1");

  const GeneratorConfig config = StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed")));
  DblpDataset dataset = MustGenerate(config);

  auto stats = ComputeDblpStats(dataset.db);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %s\n\n", stats->DebugString().c_str());

  TextTable table(
      {"name", "#authors (paper)", "#authors (gen)", "#refs (paper)",
       "#refs (gen)"});
  for (size_t c = 1; c <= 4; ++c) {
    table.SetRightAlign(c);
  }
  const std::vector<AmbiguousNameSpec> specs = PaperTable1Specs();
  bool all_match = true;
  for (const AmbiguousNameSpec& spec : specs) {
    int generated_entities = 0;
    size_t generated_refs = 0;
    for (const AmbiguousCase& c : dataset.cases) {
      if (c.name == spec.name) {
        generated_entities = c.num_entities;
        generated_refs = c.publish_rows.size();
      }
    }
    auto direct = CountReferencesForName(dataset.db, DblpReferenceSpec(),
                                         spec.name);
    if (!direct.ok() ||
        *direct != static_cast<int64_t>(generated_refs) ||
        generated_entities != spec.num_entities ||
        generated_refs != static_cast<size_t>(spec.num_refs)) {
      all_match = false;
    }
    table.AddRow({spec.name, StrFormat("%d", spec.num_entities),
                  StrFormat("%d", generated_entities),
                  StrFormat("%d", spec.num_refs),
                  StrFormat("%zu", generated_refs)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nall names match the paper's Table 1 counts: %s\n",
              all_match ? "yes" : "NO");
  return all_match ? 0 : 1;
}
