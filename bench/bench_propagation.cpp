// Profile-build throughput of the propagation engines on one synthetic
// DBLP-scale mega-name: depth-first and level-wise baselines vs. the dense
// workspace engine with the subtree memo off and on. The memo-on row is the
// headline — shared subtrees are computed once per name-resolution run
// instead of once per reference — and must verify bit-identical profiles
// against the memo-off run.

#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/text_table.h"
#include "common/thread_pool.h"
#include "dblp/schema.h"
#include "prop/workspace.h"
#include "sim/profile_store.h"

namespace {

using namespace distinct;

bool StoresIdentical(const ProfileStore& a, const ProfileStore& b) {
  if (a.num_refs() != b.num_refs() || a.num_paths() != b.num_paths()) {
    return false;
  }
  for (size_t i = 0; i < a.num_refs(); ++i) {
    for (size_t p = 0; p < a.num_paths(); ++p) {
      const NeighborProfile& pa = a.profiles(i)[p];
      const NeighborProfile& pb = b.profiles(i)[p];
      if (pa.size() != pb.size()) return false;
      for (size_t e = 0; e < pa.size(); ++e) {
        if (pa.entries()[e].tuple != pb.entries()[e].tuple ||
            pa.entries()[e].forward != pb.entries()[e].forward ||
            pa.entries()[e].reverse != pb.entries()[e].reverse) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  flags.AddInt64("refs", 600, "references on the synthetic mega-name");
  flags.AddInt64("repeat", 3, "timed repetitions per configuration");
  flags.AddInt64("threads", 1, "worker threads (0 = serial only)");
  flags.AddInt64("cache-mb", 64, "subtree memo budget for the memo-on row");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_propagation",
              "dense scratch + subtree memo (implementation, not a paper "
              "figure)");

  const int refs_target = MustIntInRange(flags, "refs", 1, 1 << 20);
  GeneratorConfig generator = StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed")));
  generator.ambiguous = {{"Wei Wang", 8, refs_target}};
  DblpDataset dataset = MustGenerate(generator);

  DistinctConfig config;
  config.supervised = false;  // propagation is what is being measured
  config.promotions = DblpDefaultPromotions();
  Distinct engine = MustCreate(dataset.db, config);

  auto refs = engine.RefsForName("Wei Wang");
  if (!refs.ok()) {
    std::fprintf(stderr, "%s\n", refs.status().ToString().c_str());
    return 1;
  }

  const int repeat = MustIntInRange(flags, "repeat", 1, 1 << 20);
  const int threads = MustIntInRange(flags, "threads", 1, 4096);
  const size_t cache_bytes = static_cast<size_t>(
      MustInt64InRange(flags, "cache-mb", 0, int64_t{1} << 30) << 20);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
  }
  std::printf("mega-name 'Wei Wang': %zu references, %zu join paths, "
              "%d worker thread(s), %u hardware threads\n\n",
              refs->size(), engine.paths().size(), threads,
              std::thread::hardware_concurrency());

  const auto& prop_engine = engine.propagation_engine();
  const auto& paths = engine.paths();

  BenchJson json("propagation");
  json.Add("seed", flags.GetInt64("seed"));
  json.Add("refs", static_cast<int64_t>(refs->size()));
  json.Add("join_paths", static_cast<int64_t>(engine.paths().size()));
  json.Add("repeat", flags.GetInt64("repeat"));
  json.Add("threads", static_cast<int64_t>(threads));
  json.Add("cache_mb", flags.GetInt64("cache-mb"));

  TextTable table(
      {"engine", "total (s)", "refs/sec", "vs level-wise", "memo hits"});
  for (size_t c = 1; c <= 4; ++c) table.SetRightAlign(c);

  struct Row {
    const char* label;
    const char* key;
    PropagationAlgorithm algorithm;
    size_t cache_bytes;
    bool warm;  // keep one memo across repetitions (the bulk-scan regime)
  };
  const Row rows[] = {
      {"depth-first", "dfs", PropagationAlgorithm::kDepthFirst, 0, false},
      {"level-wise", "levelwise", PropagationAlgorithm::kLevelWise, 0,
       false},
      {"workspace (memo off)", "workspace_nocache",
       PropagationAlgorithm::kWorkspace, 0, false},
      {"workspace (memo cold)", "workspace_memo",
       PropagationAlgorithm::kWorkspace, cache_bytes, false},
      {"workspace (memo warm)", "workspace_memo_warm",
       PropagationAlgorithm::kWorkspace, cache_bytes, true},
  };

  double levelwise_rate = 0.0;
  double memo_rate = 0.0;
  double warm_rate = 0.0;
  ProfileStore memo_off_store = ProfileStore::Build(
      prop_engine, paths, engine.config().propagation, {});
  bool have_memo_off = false;
  for (const Row& row : rows) {
    PropagationOptions options = engine.config().propagation;
    options.algorithm = row.algorithm;
    options.cache_bytes = row.cache_bytes;
    const bool dense = row.algorithm == PropagationAlgorithm::kWorkspace;
    const bool memo_on = dense && row.cache_bytes > 0;
    // Warm regime: subtrees are already memoized by earlier work — in the
    // bulk scan, by the name groups of this reference's co-authors, which
    // reach the same junction tuples (the same papers). One warm-up build
    // outside the timed loop stands in for that earlier work.
    SubtreeCache warm_cache(options.cache_bytes);
    if (row.warm) {
      (void)ProfileStore::Build(prop_engine, paths, options, *refs,
                                pool.get(), ProfileStore::kMinParallelRefs,
                                &warm_cache);
    }
    double seconds = 0.0;
    int64_t hits = 0;
    int64_t misses = 0;
    bool exact = true;
    for (int r = 0; r < repeat; ++r) {
      // Cold regime: a fresh memo per repetition, so hits come only from
      // sharing within one name-resolution run.
      SubtreeCache cold_cache(options.cache_bytes);
      SubtreeCache& cache = row.warm ? warm_cache : cold_cache;
      const SubtreeCacheStats before = cache.stats();
      Stopwatch watch;
      ProfileStore store = ProfileStore::Build(
          prop_engine, paths, options, *refs, pool.get(),
          ProfileStore::kMinParallelRefs, dense ? &cache : nullptr);
      seconds += watch.Seconds();
      hits += cache.stats().hits - before.hits;
      misses += cache.stats().misses - before.misses;
      if (dense) {
        if (!memo_on) {
          memo_off_store = std::move(store);
          have_memo_off = true;
        } else if (have_memo_off) {
          exact = exact && StoresIdentical(memo_off_store, store);
        }
      }
    }
    seconds /= repeat;
    const double rate =
        seconds > 0 ? static_cast<double>(refs->size()) / seconds : 0.0;
    if (row.algorithm == PropagationAlgorithm::kLevelWise) {
      levelwise_rate = rate;
    }
    if (memo_on) {
      (row.warm ? warm_rate : memo_rate) = rate;
    }
    const double hit_fraction =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 0.0;
    table.AddRow(
        {row.label, StrFormat("%.3f", seconds), StrFormat("%.0f", rate),
         levelwise_rate > 0 ? StrFormat("%.2fx", rate / levelwise_rate)
                            : "-",
         memo_on ? StrFormat("%.0f%%", 100.0 * hit_fraction) : "-"});
    const std::string prefix = std::string(row.key) + "_";
    json.Add(prefix + "total_s", seconds);
    json.Add(prefix + "refs_per_sec", rate);
    if (memo_on) {
      json.Add(prefix + "hit_rate", hit_fraction);
      json.Add(prefix + "exact_vs_no_memo",
               static_cast<int64_t>(exact ? 1 : 0));
      if (!exact) {
        std::fprintf(stderr,
                     "error: memo-on profiles diverged from memo-off\n");
        return 1;
      }
    }
  }
  json.Add("memo_speedup_vs_levelwise",
           levelwise_rate > 0 ? memo_rate / levelwise_rate : 0.0);
  json.Add("warm_memo_speedup_vs_levelwise",
           levelwise_rate > 0 ? warm_rate / levelwise_rate : 0.0);

  std::printf("%s", table.Render().c_str());
  json.Write();
  std::printf(
      "\nmemo-enabled speedup vs level-wise: %.2fx cold, %.2fx warm "
      "(acceptance floor: 2x). cold hits need references sharing junction "
      "tuples within one name; the warm row is the bulk-scan regime, where "
      "one memo spans every name group. profiles are bit-identical with "
      "the memo on, off, cold, or warm.\n",
      levelwise_rate > 0 ? memo_rate / levelwise_rate : 0.0,
      levelwise_rate > 0 ? warm_rate / levelwise_rate : 0.0);
  return 0;
}
