// E7 — ablation of §4.2's incremental cluster-similarity maintenance.
//
// DISTINCT folds pairwise sums on every merge (O(active clusters) per
// merge); the strawman recomputes each cluster-pair sum from the base
// matrices (O(|C1|·|C2|) per consulted pair). This harness times both on
// planted-structure similarity matrices of growing size; the outputs are
// identical, only the cost differs.

#include <cstdio>

#include "bench_util.h"
#include "cluster/agglomerative.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/text_table.h"

namespace {

using namespace distinct;

/// Random matrices with `clusters` planted blocks: in-block similarity
/// ~U[0.3,0.6], cross-block ~U[0,0.05].
void MakePlantedMatrices(size_t n, int clusters, uint64_t seed,
                         PairMatrix& resem, PairMatrix& walk) {
  Rng rng(seed);
  std::vector<int> block(n);
  for (size_t i = 0; i < n; ++i) {
    block[i] = static_cast<int>(rng.UniformInt(0, clusters - 1));
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      const bool same = block[i] == block[j];
      const double r = same ? 0.3 + 0.3 * rng.UniformDouble()
                            : 0.05 * rng.UniformDouble();
      const double w = same ? 1e-3 * (0.5 + rng.UniformDouble())
                            : 5e-5 * rng.UniformDouble();
      resem.set(i, j, r);
      walk.set(i, j, w);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed), "matrix seed");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_ablation_incremental",
              "the Section 4.2 incremental-merge optimization");

  TextTable table({"#refs", "incremental (ms)", "brute force (ms)",
                   "speedup", "same result"});
  for (size_t c = 0; c <= 4; ++c) {
    table.SetRightAlign(c);
  }
  for (const size_t n : {50u, 100u, 200u, 400u, 800u}) {
    PairMatrix resem(n);
    PairMatrix walk(n);
    MakePlantedMatrices(n, /*clusters=*/8,
                        static_cast<uint64_t>(flags.GetInt64("seed")),
                        resem, walk);

    AgglomerativeOptions options;
    options.min_sim = 1e-3;

    options.incremental = true;
    Stopwatch incremental_watch;
    const ClusteringResult incremental =
        ClusterReferences(resem, walk, options);
    const double ms_incremental = incremental_watch.Millis();

    options.incremental = false;
    Stopwatch brute_watch;
    const ClusteringResult brute = ClusterReferences(resem, walk, options);
    const double ms_brute = brute_watch.Millis();

    table.AddRow({StrFormat("%zu", n), StrFormat("%.1f", ms_incremental),
                  StrFormat("%.1f", ms_brute),
                  StrFormat("%.1fx", ms_brute / std::max(ms_incremental,
                                                         1e-3)),
                  incremental.assignment == brute.assignment ? "yes"
                                                             : "NO"});
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}
