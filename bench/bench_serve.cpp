// bench_serve — closed-loop stress of the resident disambiguation service
// (serve/service.h + serve/server.h), and the serving-path regression
// gate's data source.
//
// Phases (in-process mode, the default):
//   A. Latency/identity: an in-process ServeServer on an ephemeral
//      loopback port, driven by --clients concurrent socket clients each
//      issuing --queries resolve_name requests (plus periodic health
//      probes). Every resolve response is compared byte-for-byte against
//      the batch engine's answer serialized through the same protocol
//      encoder — any divergence is a hard failure, not a metric.
//   B. Admission: a second service over the same engine with a tiny
//      --budget-mb admission budget. The dataset carries a mega-name
//      whose matrix estimate is guaranteed to exceed the budget, so
//      rejection is deterministic; small names stay admissible. The phase
//      asserts rejections happened, answers still flowed, and the
//      admission peak (tracked + reserved bytes at admit time) never
//      exceeded the budget — the "provably bounded" claim the gate pins.
//   C. Deadline: a query with an already-expired deadline must come back
//      deadline_exceeded without touching the kernel (deterministic, no
//      timing dependence).
//
// With --connect=HOST:PORT the harness instead drives an external server
// (CI's smoke step): phase A load without the bit-identity comparison —
// the external server's model need not match — failing only on transport
// or internal errors.
//
// Writes BENCH_serve.json; gated metrics: serve_identical,
// admission_bounded, deadline_path_ok (bench/baselines/gate_rules.txt).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_util.h"
#include "common/flags.h"
#include "common/io_util.h"
#include "core/scan_shard.h"
#include "dblp/schema.h"
#include "obs/json_writer.h"
#include "obs/memory.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"

namespace {

using namespace distinct;
using namespace distinct::bench;

/// The guaranteed-too-big name of phase B: estimate = n*(n-1)*8 bytes, so
/// 1200 references price at ~11 MiB against a 1 MiB budget.
constexpr char kMegaName[] = "Wei Wang";
constexpr int kMegaEntities = 8;
constexpr int kMegaRefs = 1200;

std::string ResolveRequestJson(int64_t id, const std::string& name) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("id").Value(id);
  json.Key("method").Value("resolve_name");
  json.Key("name").Value(name);
  json.EndObject();
  return json.str();
}

std::string SimpleRequestJson(int64_t id, const char* method) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("id").Value(id);
  json.Key("method").Value(method);
  json.EndObject();
  return json.str();
}

int ConnectTo(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

struct FdCloser {
  int fd;
  ~FdCloser() { ::close(fd); }
};

struct ClientResult {
  std::vector<double> resolve_ms;
  std::vector<double> aux_ms;  // health probes
  int64_t mismatches = 0;
  int64_t errors = 0;
  std::string first_problem;
};

/// One closed-loop client: sequential request/response over one
/// connection. `expected` is null in external mode (no identity check).
void RunClient(const std::string& host, uint16_t port, int client_id,
               int queries, const std::vector<std::string>& names,
               const std::vector<serve::ResolveAnswer>* expected,
               ClientResult* out) {
  const int fd = ConnectTo(host, port);
  if (fd < 0) {
    out->errors = queries;
    out->first_problem = "cannot connect";
    return;
  }
  FdCloser closer{fd};
  FdLineReader reader(fd, serve::kMaxRequestBytes, "bench_serve");
  std::string line;
  for (int i = 0; i < queries; ++i) {
    const size_t idx =
        (static_cast<size_t>(client_id) + static_cast<size_t>(i) * 7) %
        names.size();
    const int64_t id = static_cast<int64_t>(client_id) * 1'000'000 + i;
    const std::string request = ResolveRequestJson(id, names[idx]) + "\n";
    const auto start = std::chrono::steady_clock::now();
    if (!WriteFdAll(fd, request, "bench_serve").ok()) {
      ++out->errors;
      out->first_problem = "write failed";
      return;
    }
    bool eof = false;
    if (!reader.ReadLine(&line, &eof).ok() || eof) {
      ++out->errors;
      out->first_problem = "read failed";
      return;
    }
    out->resolve_ms.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (expected != nullptr) {
      const std::string want = serve::AnswerResponseJson(
          id, serve::Method::kResolveName, names[idx], (*expected)[idx]);
      if (line != want) {
        ++out->mismatches;
        if (out->first_problem.empty()) {
          out->first_problem = "mismatch for '" + names[idx] +
                               "': got " + line.substr(0, 160);
        }
      }
    } else if (line.find("\"ok\":true") == std::string::npos) {
      // External server: tolerate not_found (its catalog may differ),
      // fail on transport/internal trouble.
      if (line.find("\"not_found\"") == std::string::npos) {
        ++out->errors;
        out->first_problem = "error response: " + line.substr(0, 160);
      }
    }
    if (i % 10 == 9) {
      const std::string probe = SimpleRequestJson(id, "health") + "\n";
      const auto probe_start = std::chrono::steady_clock::now();
      bool probe_eof = false;
      if (!WriteFdAll(fd, probe, "bench_serve").ok() ||
          !reader.ReadLine(&line, &probe_eof).ok() || probe_eof ||
          line.find("\"ok\":true") == std::string::npos) {
        ++out->errors;
        out->first_problem = "health probe failed";
        return;
      }
      out->aux_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - probe_start)
              .count());
    }
  }
}

double PercentileMs(std::vector<double>* samples, double p) {
  if (samples->empty()) {
    return 0.0;
  }
  std::sort(samples->begin(), samples->end());
  const double rank = p * static_cast<double>(samples->size() - 1);
  return (*samples)[static_cast<size_t>(rank + 0.5)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "dataset generator seed");
  flags.AddInt64("clients", 8, "concurrent closed-loop clients");
  flags.AddInt64("queries", 40, "resolve queries per client");
  flags.AddInt64("threads", 2, "service kernel threads");
  flags.AddInt64("names", 32,
                 "latency-pool size (names with refs in [min-refs, 300])");
  flags.AddInt64("min-refs", 6, "smallest name admitted to the pool");
  flags.AddInt64("budget-mb", 0,
                 "phase-B admission budget in MiB; 0 = auto (standing "
                 "tracked bytes + 2 MiB: small names admit, the "
                 "mega-name's ~11 MiB estimate cannot)");
  flags.AddString("connect", "",
                  "HOST:PORT of an external server to drive instead of "
                  "the in-process one (skips identity/admission phases)");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  const int clients = MustIntInRange(flags, "clients", 1, 1024);
  const int queries = MustIntInRange(flags, "queries", 1, 1 << 20);
  const int threads = MustIntInRange(flags, "threads", 1, 4096);
  const int name_pool = MustIntInRange(flags, "names", 1, 1 << 16);
  const int64_t min_refs = MustInt64InRange(flags, "min-refs", 2, 1 << 20);
  int64_t budget_mb =
      MustInt64InRange(flags, "budget-mb", 0, int64_t{1} << 30);
  const std::string connect = flags.GetString("connect");

  PrintBanner("bench_serve",
              "resident serving: batching, deadlines, admission "
              "(implementation, not a paper figure)");

  BenchJson json("serve");
  json.Add("seed", flags.GetInt64("seed"));
  json.Add("clients", static_cast<int64_t>(clients));
  json.Add("queries_per_client", static_cast<int64_t>(queries));

  // ---- External mode: smoke-drive a running server and exit. ----------
  if (!connect.empty()) {
    const size_t colon = connect.rfind(':');
    const int64_t port_value =
        colon == std::string::npos
            ? -1
            : ParseInt64(connect.substr(colon + 1)).value_or(-1);
    if (port_value <= 0 || port_value > 65535) {
      std::fprintf(stderr, "--connect wants HOST:PORT, got '%s'\n",
                   connect.c_str());
      return 1;
    }
    const std::string host = connect.substr(0, colon);
    // The CLI's generated dataset contains the default resolve target.
    std::vector<std::string> names = {kMegaName};
    std::vector<ClientResult> results(static_cast<size_t>(clients));
    std::vector<std::thread> workers;
    const auto wall_start = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back(RunClient, host,
                           static_cast<uint16_t>(port_value), c, queries,
                           std::cref(names), nullptr,
                           &results[static_cast<size_t>(c)]);
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    std::vector<double> latencies;
    int64_t errors = 0;
    for (const ClientResult& result : results) {
      latencies.insert(latencies.end(), result.resolve_ms.begin(),
                       result.resolve_ms.end());
      errors += result.errors;
      if (result.errors > 0) {
        std::fprintf(stderr, "client problem: %s\n",
                     result.first_problem.c_str());
      }
    }
    const double p50 = PercentileMs(&latencies, 0.50);
    const double p99 = PercentileMs(&latencies, 0.99);
    std::printf("external %s: %zu responses, %lld errors, p50 %.3f ms, "
                "p99 %.3f ms, %.0f qps\n",
                connect.c_str(), latencies.size(),
                static_cast<long long>(errors), p50, p99,
                static_cast<double>(latencies.size()) / wall_s);
    json.Add("external", connect);
    json.Add("resolve_p50_ms", p50);
    json.Add("resolve_p99_ms", p99);
    json.Add("errors", errors);
    json.Write();
    return errors == 0 ? 0 : 1;
  }

  // ---- Shared fixture: dataset with a guaranteed-oversized name. ------
  GeneratorConfig generator = StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed")));
  generator.ambiguous = {{kMegaName, kMegaEntities, kMegaRefs}};
  DblpDataset dataset = MustGenerate(generator);

  DistinctConfig config;
  config.supervised = false;  // serving, not training, is measured
  config.promotions = DblpDefaultPromotions();
  config.min_sim = kDefaultMinSim;
  Distinct engine = MustCreate(dataset.db, config);

  // Latency pool: moderate names only — the mega-name is phase B's.
  std::vector<std::string> names;
  for (const auto& group : engine.name_groups()) {
    const auto size = static_cast<int64_t>(group.second.size());
    if (size >= min_refs && size <= 300 &&
        static_cast<int>(names.size()) < name_pool) {
      names.push_back(group.first);
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "no name groups in [%lld, 300] refs\n",
                 static_cast<long long>(min_refs));
    return 1;
  }

  // Batch truth, serialized through the same encoder the server uses.
  std::vector<serve::ResolveAnswer> expected;
  expected.reserve(names.size());
  for (const std::string& name : names) {
    auto result = engine.ResolveName(name);
    if (!result.ok()) {
      std::fprintf(stderr, "batch resolve '%s' failed: %s\n", name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    serve::ResolveAnswer answer;
    answer.refs = std::move(result->refs);
    answer.clustering = std::move(result->clustering);
    expected.push_back(std::move(answer));
  }
  std::printf("%zu-name pool, %d clients x %d queries, %d kernel "
              "thread(s)\n\n",
              names.size(), clients, queries, threads);

  // ---- Phase A: concurrent latency + bit-identity. --------------------
  serve::ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.result_cache_entries = 0;  // measure computes, not hits
  serve::ServeService service(engine, service_options);
  serve::ServeServer server(&service, serve::ServerOptions{});
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::vector<ClientResult> results(static_cast<size_t>(clients));
  std::vector<std::thread> workers;
  const auto wall_start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back(RunClient, std::string("127.0.0.1"),
                         server.port(), c, queries, std::cref(names),
                         &expected, &results[static_cast<size_t>(c)]);
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  server.Shutdown();
  const bool drained = server.connections() == 0;

  std::vector<double> resolve_ms;
  std::vector<double> health_ms;
  int64_t mismatches = 0;
  int64_t errors = 0;
  for (const ClientResult& result : results) {
    resolve_ms.insert(resolve_ms.end(), result.resolve_ms.begin(),
                      result.resolve_ms.end());
    health_ms.insert(health_ms.end(), result.aux_ms.begin(),
                     result.aux_ms.end());
    mismatches += result.mismatches;
    errors += result.errors;
    if (!result.first_problem.empty()) {
      std::fprintf(stderr, "client problem: %s\n",
                   result.first_problem.c_str());
    }
  }
  const serve::ServiceStats load_stats = service.stats();
  const double p50 = PercentileMs(&resolve_ms, 0.50);
  const double p99 = PercentileMs(&resolve_ms, 0.99);
  const double qps = wall_s > 0
                         ? static_cast<double>(resolve_ms.size()) / wall_s
                         : 0.0;
  std::printf("phase A: %zu resolves in %.2fs (%.0f qps)\n",
              resolve_ms.size(), wall_s, qps);
  std::printf("  p50 %.3f ms, p99 %.3f ms; %lld coalesced onto flights\n",
              p50, p99, static_cast<long long>(load_stats.batched));
  std::printf("  identity: %lld mismatches, %lld errors, drain %s\n\n",
              static_cast<long long>(mismatches),
              static_cast<long long>(errors), drained ? "clean" : "DIRTY");

  // ---- Phase B: admission under a deliberately tiny budget. -----------
  // The engine (and phase A's warm memo) hold tracked standing bytes that
  // admission counts, so an absolute 1 MiB budget would reject everything;
  // auto mode leaves ~2 MiB of genuine headroom above whatever stands.
  if (budget_mb == 0) {
    budget_mb =
        (obs::MemoryTracker::Global().TrackedTotalBytes() >> 20) + 2;
  }
  serve::ServiceOptions tiny_options;
  tiny_options.num_threads = threads;
  tiny_options.memory_budget_mb = budget_mb;
  tiny_options.result_cache_entries = 0;
  serve::ServeService tiny(engine, tiny_options);
  const int64_t budget_bytes = budget_mb << 20;
  const int64_t mega_estimate =
      EstimatedGroupMatrixBytes(static_cast<int64_t>(kMegaRefs));
  if (mega_estimate <= budget_bytes) {
    std::fprintf(stderr,
                 "mega-name estimate %lld <= budget %lld — phase B "
                 "cannot prove rejection\n",
                 static_cast<long long>(mega_estimate),
                 static_cast<long long>(budget_bytes));
    return 1;
  }
  {
    std::vector<std::thread> admission_workers;
    for (int c = 0; c < clients; ++c) {
      admission_workers.emplace_back([&tiny, &names, c] {
        for (int i = 0; i < 8; ++i) {
          const std::string& name =
              i % 2 == 0 ? std::string(kMegaName)
                         : names[(static_cast<size_t>(c) + i) %
                                 names.size()];
          tiny.HandleLine(ResolveRequestJson(c * 100 + i, name));
        }
      });
    }
    for (std::thread& worker : admission_workers) {
      worker.join();
    }
  }
  const serve::ServiceStats tiny_stats = tiny.stats();
  const bool admission_bounded =
      tiny_stats.admission_peak_bytes <= budget_bytes;
  std::printf("phase B (budget %lld MiB): %lld rejected over memory, "
              "%lld answered, peak %lld of %lld bytes %s\n\n",
              static_cast<long long>(budget_mb),
              static_cast<long long>(tiny_stats.rejected_memory),
              static_cast<long long>(tiny_stats.answered),
              static_cast<long long>(tiny_stats.admission_peak_bytes),
              static_cast<long long>(budget_bytes),
              admission_bounded ? "(bounded)" : "(EXCEEDED)");

  // ---- Phase C: expired deadline is rejected deterministically. -------
  const auto expired = std::chrono::steady_clock::time_point::min();
  auto late = service.ResolveNameAt(names[0], expired);
  const bool deadline_ok =
      !late.ok() && late.status().code() == StatusCode::kDeadlineExceeded;
  std::printf("phase C: expired deadline -> %s\n\n",
              late.ok() ? "ANSWERED (wrong)"
                        : late.status().ToString().c_str());

  json.Add("threads", static_cast<int64_t>(threads));
  json.Add("name_pool", static_cast<int64_t>(names.size()));
  json.Add("qps", qps);
  json.Add("resolve_p50_ms", p50);
  json.Add("resolve_p99_ms", p99);
  json.Add("health_p50_ms", PercentileMs(&health_ms, 0.50));
  json.Add("batched", load_stats.batched);
  json.Add("answered", load_stats.answered);
  json.Add("mismatches", mismatches);
  json.Add("errors", errors);
  json.Add("serve_identical",
           static_cast<int64_t>(mismatches == 0 && errors == 0 ? 1 : 0));
  json.Add("drain_clean", static_cast<int64_t>(drained ? 1 : 0));
  json.Add("budget_bytes", budget_bytes);
  json.Add("rejected_memory", tiny_stats.rejected_memory);
  json.Add("admission_answered", tiny_stats.answered);
  json.Add("admission_peak_bytes", tiny_stats.admission_peak_bytes);
  json.Add("admission_bounded",
           static_cast<int64_t>(
               admission_bounded && tiny_stats.rejected_memory > 0 &&
                       tiny_stats.answered > 0
                   ? 1
                   : 0));
  json.Add("deadline_path_ok", static_cast<int64_t>(deadline_ok ? 1 : 0));
  json.Write();

  const bool ok = mismatches == 0 && errors == 0 && drained &&
                  admission_bounded && tiny_stats.rejected_memory > 0 &&
                  tiny_stats.answered > 0 && deadline_ok;
  if (!ok) {
    std::fprintf(stderr, "bench_serve FAILED hard invariants\n");
    return 1;
  }
  std::printf("all serving invariants held\n");
  return 0;
}
