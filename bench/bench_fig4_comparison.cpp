// E3 — Fig. 4: average accuracy and f-measure of the six method variants:
// DISTINCT, unsupervised combined, supervised/unsupervised set resemblance,
// supervised/unsupervised random walk.
//
// As in the paper, every variant except DISTINCT gets the min-sim that
// maximizes its own average accuracy (grid search); DISTINCT uses the fixed
// default. Paper reference shape: DISTINCT leads the single-measure
// unsupervised baselines by ~15 points of f-measure; supervision is worth
// ~10 points; combining the two measures ~3 points.

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/text_table.h"
#include "core/variants.h"

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_fig4_comparison", "Figure 4");

  DblpDataset dataset = MustGenerate(StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed"))));

  // Two engines (supervised / unsupervised model); measure and min-sim are
  // clustering-time choices evaluated on each engine's precomputed
  // matrices.
  DistinctConfig supervised_config = StandardDistinctConfig();
  DistinctConfig unsupervised_config = StandardDistinctConfig();
  unsupervised_config.supervised = false;

  Distinct supervised = MustCreate(dataset.db, supervised_config);
  Distinct unsupervised = MustCreate(dataset.db, unsupervised_config);

  auto supervised_matrices = ComputeCaseMatrices(supervised, dataset.cases);
  auto unsupervised_matrices =
      ComputeCaseMatrices(unsupervised, dataset.cases);
  if (!supervised_matrices.ok() || !unsupervised_matrices.ok()) {
    std::fprintf(stderr, "matrix computation failed\n");
    return 1;
  }

  TextTable table({"variant", "min-sim", "accuracy", "f-measure"});
  for (size_t c = 1; c <= 3; ++c) {
    table.SetRightAlign(c);
  }

  double distinct_f1 = 0.0;
  double best_single_unsup_f1 = 0.0;
  for (const MethodVariant variant : AllMethodVariants()) {
    const DistinctConfig config =
        ApplyVariant(StandardDistinctConfig(), variant);
    const auto& matrices =
        config.supervised ? *supervised_matrices : *unsupervised_matrices;

    AgglomerativeOptions options;
    options.measure = config.measure;
    options.combine = config.combine;
    if (variant == MethodVariant::kDistinct) {
      options.min_sim = config.min_sim;  // fixed, like the paper
    } else {
      options.min_sim =
          BestMinSim(matrices, options, DefaultMinSimGrid());
    }
    const AggregateScores aggregate =
        Aggregate(EvaluateWithOptions(matrices, options));
    table.AddRow({MethodVariantName(variant),
                  StrFormat("%.1e", options.min_sim),
                  Fmt3(aggregate.accuracy), Fmt3(aggregate.f1)});

    if (variant == MethodVariant::kDistinct) {
      distinct_f1 = aggregate.f1;
    }
    if (variant == MethodVariant::kUnsupervisedResem ||
        variant == MethodVariant::kUnsupervisedWalk) {
      best_single_unsup_f1 = std::max(best_single_unsup_f1, aggregate.f1);
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nDISTINCT leads the best unsupervised single-measure baseline by "
      "%.1f f-measure points (paper: ~15)\n",
      (distinct_f1 - best_single_unsup_f1) * 100.0);
  return 0;
}
