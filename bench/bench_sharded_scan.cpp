// Sharded bulk-scan overhead: the full filtered-scan workload resolved by
// ResolveAllNamesParallel (the unsharded baseline), then by RunShardedScan
// at several shard counts and under a per-shard memory budget, verifying
// byte-identical output every time. Shards run sequentially, so sharding
// buys memory-boundedness and checkpointability, not speed — the harness
// measures what that costs.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/text_table.h"
#include "core/scan.h"
#include "core/scan_shard.h"
#include "dblp/schema.h"

namespace {

using namespace distinct;

bool ResolutionsEqual(const std::vector<BulkResolution>& a,
                      const std::vector<BulkResolution>& b) {
  if (a.size() != b.size()) return false;
  for (size_t g = 0; g < a.size(); ++g) {
    if (a[g].name != b[g].name || a[g].num_refs != b[g].num_refs ||
        a[g].clustering.assignment != b[g].clustering.assignment ||
        a[g].clustering.merges.size() != b[g].clustering.merges.size()) {
      return false;
    }
    for (size_t m = 0; m < a[g].clustering.merges.size(); ++m) {
      if (a[g].clustering.merges[m].into != b[g].clustering.merges[m].into ||
          a[g].clustering.merges[m].from != b[g].clustering.merges[m].from ||
          a[g].clustering.merges[m].similarity !=
              b[g].clustering.merges[m].similarity) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  flags.AddInt64("threads", 4, "worker threads per shard");
  flags.AddInt64("min-refs", 4, "scan filter: minimum references per name");
  flags.AddInt64("budget-mb", 64, "memory budget for the budgeted run");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_sharded_scan",
              "sharded scan overhead (implementation, not a paper figure)");

  GeneratorConfig generator = StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed")));
  DblpDataset dataset = MustGenerate(generator);

  // Unsupervised: path-weight training is not what is being measured.
  DistinctConfig config;
  config.supervised = false;
  config.promotions = DblpDefaultPromotions();
  Distinct engine = MustCreate(dataset.db, config);

  ScanOptions scan;
  scan.min_refs = flags.GetInt64("min-refs");
  auto groups = ScanNameGroups(engine, scan);
  if (!groups.ok()) {
    std::fprintf(stderr, "%s\n", groups.status().ToString().c_str());
    return 1;
  }
  const int threads = MustIntInRange(flags, "threads", 1, 4096);
  std::printf("%zu name groups, %d threads/shard, %u hardware threads\n\n",
              groups->size(), threads,
              std::thread::hardware_concurrency());

  // Unsharded baseline.
  Stopwatch baseline_watch;
  std::vector<BulkResolution> baseline;
  auto baseline_stats =
      ResolveAllNamesParallel(engine, *groups, threads, &baseline);
  if (!baseline_stats.ok()) {
    std::fprintf(stderr, "%s\n",
                 baseline_stats.status().ToString().c_str());
    return 1;
  }
  const double baseline_s = baseline_watch.Seconds();

  TextTable table({"configuration", "shards", "time (s)", "overhead",
                   "exact"});
  for (size_t c = 1; c <= 4; ++c) table.SetRightAlign(c);
  table.AddRow({"unsharded", "-", StrFormat("%.3f", baseline_s), "1.00",
                "-"});

  BenchJson json("sharded_scan");
  json.Add("seed", flags.GetInt64("seed"));
  json.Add("groups", static_cast<int64_t>(groups->size()));
  json.Add("refs", baseline_stats->total_refs);
  json.Add("threads", static_cast<int64_t>(threads));
  json.Add("unsharded_s", baseline_s);

  const int64_t budget_mb = flags.GetInt64("budget-mb");
  struct Run {
    const char* label;
    int shards;
    int64_t budget;
  };
  const Run runs[] = {
      {"sharded", 1, 0},          {"sharded", 2, 0},
      {"sharded", 4, 0},          {"sharded", 8, 0},
      {"budgeted", 4, budget_mb},
  };
  for (const Run& run : runs) {
    ShardedScanOptions options;
    options.num_shards = run.shards;
    options.num_threads = threads;
    options.memory_budget_mb = run.budget;
    Stopwatch watch;
    auto result = RunShardedScan(engine, *groups, options);
    const double seconds = watch.Seconds();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const bool exact = ResolutionsEqual(result->results, baseline);
    const std::string label =
        run.budget > 0
            ? StrFormat("%s (%lld MiB)", run.label,
                        static_cast<long long>(run.budget))
            : std::string(run.label);
    table.AddRow({label, StrFormat("%d", run.shards),
                  StrFormat("%.3f", seconds),
                  StrFormat("%.2f",
                            baseline_s > 0 ? seconds / baseline_s : 0.0),
                  exact ? "yes" : "NO"});
    const std::string prefix =
        run.budget > 0 ? StrFormat("budget%lld_s%d_",
                                   static_cast<long long>(run.budget),
                                   run.shards)
                       : StrFormat("s%d_", run.shards);
    json.Add(prefix + "time_s", seconds);
    json.Add(prefix + "overhead", baseline_s > 0 ? seconds / baseline_s : 0.0);
    json.Add(prefix + "exact", static_cast<int64_t>(exact ? 1 : 0));
    if (!exact) {
      std::fprintf(stderr,
                   "error: %d-shard scan diverged from the unsharded "
                   "baseline\n",
                   run.shards);
      return 1;
    }
  }
  std::printf("%s", table.Render().c_str());
  json.Write();
  std::printf(
      "\nshards run sequentially through the same parallel kernel; the "
      "overhead column is the price of per-shard caches and planning, and "
      "'exact' confirms the merged output is byte-identical to the "
      "unsharded scan.\n");
  return 0;
}
