// E6 — ablation of the cluster-similarity design choices in §4.1:
//   1. composite (both measures) vs either measure alone, and
//   2. geometric vs arithmetic combination of the two measures.
// The paper argues the geometric mean is necessary because the two measures
// live on different scales (an arithmetic mean lets average resemblance
// drown the walk probability).

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/text_table.h"

int main(int argc, char** argv) {
  using namespace distinct;
  using namespace distinct::bench;

  FlagParser flags;
  flags.AddInt64("seed", static_cast<int64_t>(kDefaultSeed),
                 "generator seed");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }

  PrintBanner("bench_ablation_combine",
              "the Section 4.1 similarity-combination design choices");

  DblpDataset dataset = MustGenerate(StandardGeneratorConfig(
      static_cast<uint64_t>(flags.GetInt64("seed"))));
  Distinct engine = MustCreate(dataset.db, StandardDistinctConfig());
  auto matrices = ComputeCaseMatrices(engine, dataset.cases);
  if (!matrices.ok()) {
    std::fprintf(stderr, "%s\n", matrices.status().ToString().c_str());
    return 1;
  }

  struct Config {
    const char* label;
    ClusterMeasure measure;
    CombineRule combine;
  };
  const Config configs[] = {
      {"composite, geometric mean (DISTINCT)", ClusterMeasure::kComposite,
       CombineRule::kGeometricMean},
      {"composite, arithmetic mean", ClusterMeasure::kComposite,
       CombineRule::kArithmeticMean},
      {"average-link resemblance only", ClusterMeasure::kResemblanceOnly,
       CombineRule::kGeometricMean},
      {"collective random walk only", ClusterMeasure::kWalkOnly,
       CombineRule::kGeometricMean},
  };

  TextTable table({"cluster similarity", "best min-sim", "precision",
                   "recall", "f-measure"});
  for (size_t c = 1; c <= 4; ++c) {
    table.SetRightAlign(c);
  }
  for (const Config& config : configs) {
    AgglomerativeOptions options;
    options.measure = config.measure;
    options.combine = config.combine;
    // Every arm gets its best min-sim so the comparison isolates the
    // combination rule rather than threshold calibration.
    options.min_sim = BestMinSim(*matrices, options, DefaultMinSimGrid());
    const AggregateScores aggregate =
        Aggregate(EvaluateWithOptions(*matrices, options));
    table.AddRow({config.label, StrFormat("%.1e", options.min_sim),
                  Fmt3(aggregate.precision), Fmt3(aggregate.recall),
                  Fmt3(aggregate.f1)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\npaper: the combined measure adds ~3 f-measure points over either "
      "single measure\n");
  return 0;
}
