// bench_gate: fail CI when a benchmark metric regresses past its threshold.
//
//   bench_gate --baselines=bench/baselines --current=build/bench-json
//              [--rules=bench/baselines/gate_rules.txt]
//
// Loads every BENCH_<name>.json named by the rules file from the baseline
// and current directories, evaluates the rules (obs/bench_compare.h), and
// prints one row per check. Exit code 0 when every check passes, 1 on any
// regression or missing metric, 2 on usage/setup errors.

#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/bench_compare.h"

namespace {

using distinct::StatusCode;
using distinct::obs::BenchArtifact;
using distinct::obs::EvaluateGate;
using distinct::obs::GateReport;
using distinct::obs::GateReportToText;
using distinct::obs::GateRule;
using distinct::obs::LoadBenchArtifact;
using distinct::obs::ParseGateRules;

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baselines=DIR [--current=DIR] [--rules=FILE]\n"
               "  --baselines=DIR  committed BENCH_*.json baselines\n"
               "  --current=DIR    freshly produced BENCH_*.json (default .)\n"
               "  --rules=FILE     gate rules (default DIR/gate_rules.txt)\n",
               argv0);
}

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return false;
  }
  char buffer[1 << 14];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->append(buffer, n);
  }
  std::fclose(file);
  return true;
}

// Loads the artifact for each bench a rule names. Missing files are left
// out of the map — EvaluateGate reports them as failing checks, which keeps
// "bench binary crashed before writing JSON" a visible failure.
std::map<std::string, BenchArtifact> LoadArtifacts(
    const std::vector<GateRule>& rules, const std::string& dir,
    const char* side, bool* corrupt) {
  std::set<std::string> names;
  for (const GateRule& rule : rules) {
    names.insert(rule.bench);
  }
  std::map<std::string, BenchArtifact> artifacts;
  for (const std::string& name : names) {
    const std::string path = dir + "/BENCH_" + name + ".json";
    auto artifact = LoadBenchArtifact(path);
    if (artifact.ok()) {
      artifacts[name] = *std::move(artifact);
    } else if (artifact.status().code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "bench_gate: %s: %s\n", side,
                   artifact.status().ToString().c_str());
      *corrupt = true;
    }
  }
  return artifacts;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baselines_dir;
  std::string current_dir = ".";
  std::string rules_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--baselines=", 12) == 0) {
      baselines_dir = arg + 12;
    } else if (std::strncmp(arg, "--current=", 10) == 0) {
      current_dir = arg + 10;
    } else if (std::strncmp(arg, "--rules=", 8) == 0) {
      rules_path = arg + 8;
    } else {
      std::fprintf(stderr, "bench_gate: unknown argument '%s'\n", arg);
      Usage(argv[0]);
      return 2;
    }
  }
  if (baselines_dir.empty()) {
    Usage(argv[0]);
    return 2;
  }
  if (rules_path.empty()) {
    rules_path = baselines_dir + "/gate_rules.txt";
  }

  std::string rules_text;
  if (!ReadFile(rules_path, &rules_text)) {
    std::fprintf(stderr, "bench_gate: cannot read rules '%s'\n",
                 rules_path.c_str());
    return 2;
  }
  auto rules = ParseGateRules(rules_text);
  if (!rules.ok()) {
    std::fprintf(stderr, "bench_gate: %s\n",
                 rules.status().ToString().c_str());
    return 2;
  }
  if (rules->empty()) {
    std::fprintf(stderr, "bench_gate: '%s' defines no rules\n",
                 rules_path.c_str());
    return 2;
  }

  bool corrupt = false;
  const auto baselines =
      LoadArtifacts(*rules, baselines_dir, "baseline", &corrupt);
  const auto currents = LoadArtifacts(*rules, current_dir, "current", &corrupt);
  if (corrupt) {
    return 2;
  }

  const GateReport report = EvaluateGate(*rules, baselines, currents);
  std::fputs(GateReportToText(report, baselines, currents).c_str(), stdout);
  if (!report.ok()) {
    std::fprintf(stderr, "bench_gate: %lld check(s) FAILED\n",
                 static_cast<long long>(report.failures));
    return 1;
  }
  return 0;
}
