#include "obs/trace_export.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json_reader.h"
#include "obs/trace.h"

namespace distinct {
namespace obs {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory under the test temp root.
std::string MakeFragmentDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

SpanRecord MakeSpan(const std::string& name, int64_t start_ns,
                    int64_t duration_ns, int parent, int thread = 0) {
  SpanRecord span;
  span.name = name;
  span.start_nanos = start_ns;
  span.duration_nanos = duration_ns;
  span.parent = parent;
  span.thread = thread;
  return span;
}

/// Golden test: the exact Chrome Trace Event JSON for a fixed span list.
/// Pinning the bytes guards the contract with chrome://tracing / Perfetto
/// (metadata-first ordering, "ph":"X" events, microsecond doubles,
/// incomplete-span convention). Timestamps here are fixed inputs, so the
/// output is fully deterministic.
TEST(TraceExportTest, GoldenChromeTraceJson) {
  TraceProcess driver;
  driver.pid = 0;
  driver.name = "driver";
  driver.spans = {
      MakeSpan("scan", 1000, 500000, -1),
      MakeSpan("plan", 2000, 3000, 0),
      MakeSpan("open", 250500, -1, 0),  // still open at snapshot time
  };
  TraceProcess shard;
  shard.pid = 1;
  shard.name = "shard 0";
  shard.spans = {MakeSpan("scan_shard", 0, 400000, -1, 1)};

  const std::string json = ChromeTraceJson({driver, shard});
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"driver\"}},"
      "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"sort_index\":0}},"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"shard 0\"}},"
      "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"sort_index\":1}},"
      "{\"name\":\"scan\",\"cat\":\"distinct\",\"ph\":\"X\",\"ts\":1,"
      "\"dur\":500,\"pid\":0,\"tid\":0},"
      "{\"name\":\"plan\",\"cat\":\"distinct\",\"ph\":\"X\",\"ts\":2,"
      "\"dur\":3,\"pid\":0,\"tid\":0},"
      "{\"name\":\"open\",\"cat\":\"distinct\",\"ph\":\"X\",\"ts\":250.5,"
      "\"dur\":0,\"pid\":0,\"tid\":0,\"args\":{\"incomplete\":true}},"
      "{\"name\":\"scan_shard\",\"cat\":\"distinct\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":400,\"pid\":1,\"tid\":1}"
      "]}";
  EXPECT_EQ(json, expected);
}

/// The export must stay parseable JSON whatever the span names contain.
TEST(TraceExportTest, ExportedJsonParsesAndEscapes) {
  TraceProcess process;
  process.pid = 0;
  process.name = "driver";
  process.spans = {MakeSpan("evil \"name\"\n", 10, 20, -1)};
  auto root = JsonReader(ChromeTraceJson({process})).Parse();
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  const JsonValue* events = root->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 3u);  // 2 metadata + 1 span
  const JsonValue* name = events->items[2].Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string_value, "evil \"name\"\n");
}

TEST(TraceExportTest, FragmentRoundTrips) {
  const std::string dir = MakeFragmentDir("trace_roundtrip");
  const std::vector<SpanRecord> spans = {
      MakeSpan("scan_shard", 0, 900, -1),
      MakeSpan("resolve \"x\"", 100, 200, 0, 1),
      MakeSpan("open", 400, -1, 0),
  };
  const std::string path = TraceFragmentPath(dir, 3);
  EXPECT_EQ(path, dir + "/trace-shard-3.json");
  ASSERT_TRUE(WriteTraceFragment(path, spans).ok());

  auto loaded = ReadTraceFragment(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ((*loaded)[i].name, spans[i].name) << i;
    EXPECT_EQ((*loaded)[i].start_nanos, spans[i].start_nanos) << i;
    EXPECT_EQ((*loaded)[i].duration_nanos, spans[i].duration_nanos) << i;
    EXPECT_EQ((*loaded)[i].parent, spans[i].parent) << i;
    EXPECT_EQ((*loaded)[i].thread, spans[i].thread) << i;
  }
}

TEST(TraceExportTest, MissingFragmentIsNotFound) {
  const std::string dir = MakeFragmentDir("trace_missing");
  auto loaded = ReadTraceFragment(TraceFragmentPath(dir, 0));
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(TraceExportTest, CorruptFragmentIsRejected) {
  const std::string dir = MakeFragmentDir("trace_corrupt");
  // Not JSON at all.
  WriteFile(TraceFragmentPath(dir, 0), "not json");
  EXPECT_EQ(ReadTraceFragment(TraceFragmentPath(dir, 0)).status().code(),
            StatusCode::kDataLoss);
  // Valid JSON, wrong schema version.
  WriteFile(TraceFragmentPath(dir, 1),
            "{\"distinct_trace_fragment\":99,\"spans\":[]}");
  EXPECT_EQ(ReadTraceFragment(TraceFragmentPath(dir, 1)).status().code(),
            StatusCode::kFailedPrecondition);
  // A span whose parent points forward (not yet defined) is corrupt: the
  // tracer only ever records parents earlier in the list.
  WriteFile(TraceFragmentPath(dir, 2),
            "{\"distinct_trace_fragment\":1,\"spans\":["
            "{\"name\":\"a\",\"start_ns\":0,\"duration_ns\":1,"
            "\"parent\":5,\"thread\":0}]}");
  EXPECT_EQ(ReadTraceFragment(TraceFragmentPath(dir, 2)).status().code(),
            StatusCode::kDataLoss);
}

/// Merge semantics: driver is pid 0; present fragments become "shard <id>"
/// processes at pid id+1; missing fragments are skipped (a failed shard
/// must not fail the merge); corrupt fragments do fail it.
TEST(TraceExportTest, CollectShardedTraceSkipsMissingShards) {
  const std::string dir = MakeFragmentDir("trace_merge");
  ASSERT_TRUE(WriteTraceFragment(TraceFragmentPath(dir, 0),
                                 {MakeSpan("scan_shard", 0, 10, -1)})
                  .ok());
  // Shard 1 has no fragment (failed / pre-tracing).
  ASSERT_TRUE(WriteTraceFragment(TraceFragmentPath(dir, 2),
                                 {MakeSpan("scan_shard", 0, 30, -1)})
                  .ok());

  const std::vector<SpanRecord> driver = {MakeSpan("scan", 0, 100, -1)};
  auto merged = CollectShardedTrace(driver, dir, 3);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged->size(), 3u);
  EXPECT_EQ((*merged)[0].pid, 0);
  EXPECT_EQ((*merged)[0].name, "driver");
  ASSERT_EQ((*merged)[0].spans.size(), 1u);
  EXPECT_EQ((*merged)[0].spans[0].name, "scan");
  EXPECT_EQ((*merged)[1].pid, 1);
  EXPECT_EQ((*merged)[1].name, "shard 0");
  EXPECT_EQ((*merged)[2].pid, 3);
  EXPECT_EQ((*merged)[2].name, "shard 2");
}

TEST(TraceExportTest, CollectShardedTraceFailsOnCorruptFragment) {
  const std::string dir = MakeFragmentDir("trace_merge_corrupt");
  WriteFile(TraceFragmentPath(dir, 0), "{broken");
  auto merged = CollectShardedTrace({}, dir, 1);
  EXPECT_EQ(merged.status().code(), StatusCode::kDataLoss);
}

/// Structural determinism of the merged export: same fragments and driver
/// spans in, byte-identical JSON out (timestamps are part of the inputs
/// here, so even ts/dur repeat).
TEST(TraceExportTest, MergedExportDeterministicForFixedInputs) {
  const std::string dir = MakeFragmentDir("trace_deterministic");
  ASSERT_TRUE(WriteTraceFragment(TraceFragmentPath(dir, 0),
                                 {MakeSpan("scan_shard", 5, 10, -1),
                                  MakeSpan("group", 6, 2, 0)})
                  .ok());
  const std::vector<SpanRecord> driver = {MakeSpan("scan", 0, 100, -1)};

  auto first = CollectShardedTrace(driver, dir, 1);
  auto second = CollectShardedTrace(driver, dir, 1);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(ChromeTraceJson(*first), ChromeTraceJson(*second));
}

TEST(TraceExportTest, WriteChromeTraceCreatesLoadableFile) {
  const std::string dir = MakeFragmentDir("trace_write");
  TraceProcess process;
  process.pid = 0;
  process.name = "driver";
  process.spans = {MakeSpan("scan", 0, 42, -1)};
  const std::string path = dir + "/trace.json";
  ASSERT_TRUE(WriteChromeTrace(path, {process}).ok());

  std::ifstream in(path, std::ios::binary);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  auto root = JsonReader(text).Parse();
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  const JsonValue* unit = root->Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string_value, "ms");
  ASSERT_NE(root->Find("traceEvents"), nullptr);
}

}  // namespace
}  // namespace obs
}  // namespace distinct
