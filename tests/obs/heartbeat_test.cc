#include "obs/heartbeat.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "obs/json_reader.h"

namespace distinct {
namespace obs {
namespace {

namespace fs = std::filesystem;

std::string HeartbeatPath(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  return path.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

int64_t IntField(const JsonValue& root, const char* key) {
  auto value = RequireInt(root, key, "heartbeat");
  EXPECT_TRUE(value.ok()) << key << ": " << value.status().ToString();
  return value.ok() ? *value : -999;
}

/// Schema test against the pure serializer: every documented key present,
/// with the sample's values.
TEST(HeartbeatJsonTest, EmitsDocumentedSchema) {
  HeartbeatSample sample;
  sample.sequence = 7;
  sample.elapsed_seconds = 12.5;
  sample.shards_total = 4;
  sample.shards_done = 2;
  sample.groups_total = 100;
  sample.groups_done = 40;
  sample.refs_total = 5000;
  sample.refs_done = 2000;
  sample.refs_per_sec = 160.0;
  sample.eta_seconds = 18.75;
  sample.rss_bytes = 123456789;

  const std::string json = HeartbeatJson("scan", sample);
  EXPECT_EQ(json.back(), '\n');
  auto root = JsonReader(json, "heartbeat").Parse();
  ASSERT_TRUE(root.ok()) << root.status().ToString();

  EXPECT_EQ(IntField(*root, "distinct_heartbeat"), kHeartbeatSchemaVersion);
  const JsonValue* label = root->Find("label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->string_value, "scan");
  EXPECT_EQ(IntField(*root, "sequence"), 7);
  EXPECT_EQ(IntField(*root, "shards_done"), 2);
  EXPECT_EQ(IntField(*root, "shards_total"), 4);
  EXPECT_EQ(IntField(*root, "groups_done"), 40);
  EXPECT_EQ(IntField(*root, "groups_total"), 100);
  EXPECT_EQ(IntField(*root, "refs_done"), 2000);
  EXPECT_EQ(IntField(*root, "refs_total"), 5000);
  EXPECT_EQ(IntField(*root, "rss_bytes"), 123456789);
  const JsonValue* elapsed = root->Find("elapsed_s");
  ASSERT_NE(elapsed, nullptr);
  EXPECT_DOUBLE_EQ(elapsed->AsDouble(), 12.5);
  const JsonValue* rate = root->Find("refs_per_sec");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->AsDouble(), 160.0);
  const JsonValue* eta = root->Find("eta_s");
  ASSERT_NE(eta, nullptr);
  EXPECT_DOUBLE_EQ(eta->AsDouble(), 18.75);
}

/// End-to-end: the background thread beats, the file appears, and the
/// terminal beat on Stop() reflects the final counters.
TEST(HeartbeatReporterTest, WritesFileAndTerminalBeat) {
  const std::string path = HeartbeatPath("heartbeat.json");
  ProgressState progress;
  progress.shards_total.store(2);
  progress.groups_total.store(10);
  progress.refs_total.store(100);

  HeartbeatReporter::Options options;
  options.file_path = path;
  options.interval_seconds = 0.01;
  options.label = "scan";
  {
    HeartbeatReporter reporter(options, &progress);
    // Poll instead of sleeping blind: wait for at least two periodic beats.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (reporter.beats() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(reporter.beats(), 2);

    // Advance progress, then stop: the terminal beat must see these.
    progress.shards_done.store(2);
    progress.groups_done.store(10);
    progress.refs_done.store(100);
    reporter.Stop();
    const int64_t beats_after_stop = reporter.beats();
    reporter.Stop();  // idempotent
    EXPECT_EQ(reporter.beats(), beats_after_stop);
  }

  auto root = JsonReader(ReadFile(path), "heartbeat").Parse();
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(IntField(*root, "distinct_heartbeat"), kHeartbeatSchemaVersion);
  EXPECT_EQ(IntField(*root, "shards_done"), 2);
  EXPECT_EQ(IntField(*root, "shards_total"), 2);
  EXPECT_EQ(IntField(*root, "groups_done"), 10);
  EXPECT_EQ(IntField(*root, "refs_done"), 100);
  EXPECT_GE(IntField(*root, "sequence"), 3);  // >= 2 periodic + terminal
  // No torn-write leftovers.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(HeartbeatReporterTest, NullProgressReportsZerosButStaysAlive) {
  const std::string path = HeartbeatPath("heartbeat_null.json");
  HeartbeatReporter::Options options;
  options.file_path = path;
  options.interval_seconds = 0.01;
  options.label = "idle";
  {
    HeartbeatReporter reporter(options, nullptr);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (reporter.beats() < 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(reporter.beats(), 1);
  }
  auto root = JsonReader(ReadFile(path), "heartbeat").Parse();
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(IntField(*root, "shards_total"), 0);
  EXPECT_EQ(IntField(*root, "refs_done"), 0);
}

TEST(HeartbeatJsonTest, TerminalBeatCarriesFinalAndStatus) {
  HeartbeatSample periodic;
  const std::string periodic_json = HeartbeatJson("scan", periodic);
  EXPECT_NE(periodic_json.find("\"final\":false"), std::string::npos)
      << periodic_json;
  // A periodic beat has no outcome yet, so no status key at all: pollers
  // must not mistake it for a finished run.
  EXPECT_EQ(periodic_json.find("\"status\""), std::string::npos)
      << periodic_json;

  HeartbeatSample terminal;
  terminal.final = true;
  terminal.status = "error";
  const std::string terminal_json = HeartbeatJson("scan", terminal);
  EXPECT_NE(terminal_json.find("\"final\":true"), std::string::npos)
      << terminal_json;
  EXPECT_NE(terminal_json.find("\"status\":\"error\""), std::string::npos)
      << terminal_json;
}

/// An error-path StopWithStatus must win over the later destructor/Stop
/// (which would report "ok"): the file keeps the first caller's outcome.
TEST(HeartbeatReporterTest, StopWithStatusErrorSurvivesLaterStop) {
  const std::string path = HeartbeatPath("heartbeat_error.json");
  HeartbeatReporter::Options options;
  options.file_path = path;
  options.interval_seconds = 60.0;  // only the terminal beat matters
  options.label = "scan";
  ProgressState progress;
  {
    HeartbeatReporter reporter(options, &progress);
    reporter.StopWithStatus("error");
    reporter.Stop();  // would write "ok" if it re-emitted
  }
  const std::string content = ReadFile(path);
  EXPECT_NE(content.find("\"final\":true"), std::string::npos) << content;
  EXPECT_NE(content.find("\"status\":\"error\""), std::string::npos)
      << content;
  EXPECT_EQ(content.find("\"status\":\"ok\""), std::string::npos) << content;
}

TEST(HeartbeatReporterTest, StopWithoutFileEmitsNoFile) {
  const std::string path = HeartbeatPath("heartbeat_none.json");
  HeartbeatReporter::Options options;  // file_path empty
  options.interval_seconds = 0.01;
  options.label = "scan";
  ProgressState progress;
  HeartbeatReporter reporter(options, &progress);
  reporter.Stop();
  EXPECT_GE(reporter.beats(), 1);  // the terminal beat still counts
  EXPECT_FALSE(fs::exists(path));
}

}  // namespace
}  // namespace obs
}  // namespace distinct
