#include "obs/memory.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace distinct {
namespace obs {
namespace {

/// The tracker is process-global; every test starts from zeroed gauges.
class MemoryTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override { MemoryTracker::Global().Reset(); }
  void TearDown() override { MemoryTracker::Global().Reset(); }
};

TEST_F(MemoryTrackerTest, AddAccumulatesAndPeakIsWatermark) {
  auto& tracker = MemoryTracker::Global();
  tracker.Add(MemoryTracker::kPairMatrix, 1000);
  tracker.Add(MemoryTracker::kPairMatrix, 500);
  EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kPairMatrix), 1500);
  EXPECT_EQ(tracker.PeakBytes(MemoryTracker::kPairMatrix), 1500);

  // Release: current drops, the watermark stays at the high point.
  tracker.Add(MemoryTracker::kPairMatrix, -1200);
  EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kPairMatrix), 300);
  EXPECT_EQ(tracker.PeakBytes(MemoryTracker::kPairMatrix), 1500);

  // A later, lower hill must not move the watermark.
  tracker.Add(MemoryTracker::kPairMatrix, 600);
  EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kPairMatrix), 900);
  EXPECT_EQ(tracker.PeakBytes(MemoryTracker::kPairMatrix), 1500);
}

TEST_F(MemoryTrackerTest, ComponentsAreIndependent) {
  auto& tracker = MemoryTracker::Global();
  tracker.Add(MemoryTracker::kProfileArena, 10);
  tracker.Add(MemoryTracker::kSubtreeCache, 20);
  EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kProfileArena), 10);
  EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kSubtreeCache), 20);
  EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kPairMatrix), 0);
}

TEST_F(MemoryTrackerTest, TrackedTotalExcludesRss) {
  auto& tracker = MemoryTracker::Global();
  tracker.Add(MemoryTracker::kProfileArena, 100);
  tracker.Add(MemoryTracker::kCheckpoint, 50);
  tracker.Set(MemoryTracker::kRss, 1 << 30);  // would swamp the sum
  EXPECT_EQ(tracker.TrackedTotalBytes(), 150);
}

TEST_F(MemoryTrackerTest, SampleRssReadsProcSelf) {
  auto& tracker = MemoryTracker::Global();
  const int64_t rss = tracker.SampleRss();
  // Linux CI: the probe must work and a live process is at least a MiB.
  ASSERT_GT(rss, 0);
  EXPECT_GT(rss, 1 << 20);
  EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kRss), rss);
  EXPECT_GT(ReadRssBytes(), 0);
}

TEST_F(MemoryTrackerTest, SnapshotCoversEveryComponentInOrder) {
  auto& tracker = MemoryTracker::Global();
  tracker.Add(MemoryTracker::kSubtreeCache, 77);
  const std::vector<MemoryTracker::ComponentSnapshot> snapshot =
      tracker.Snapshot();
  ASSERT_EQ(snapshot.size(),
            static_cast<size_t>(MemoryTracker::kNumComponents));
  EXPECT_EQ(snapshot[MemoryTracker::kProfileArena].name, "profile_arena");
  EXPECT_EQ(snapshot[MemoryTracker::kSubtreeCache].name, "subtree_cache");
  EXPECT_EQ(snapshot[MemoryTracker::kSubtreeCache].current_bytes, 77);
  EXPECT_EQ(snapshot[MemoryTracker::kSubtreeCache].peak_bytes, 77);
  EXPECT_EQ(snapshot[MemoryTracker::kPairMatrix].current_bytes, 0);
}

TEST_F(MemoryTrackerTest, ResetZeroesCurrentAndPeak) {
  auto& tracker = MemoryTracker::Global();
  tracker.Add(MemoryTracker::kPairMatrix, 42);
  tracker.Reset();
  EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kPairMatrix), 0);
  EXPECT_EQ(tracker.PeakBytes(MemoryTracker::kPairMatrix), 0);
}

TEST_F(MemoryTrackerTest, TrackedBytesRegistersForItsLifetime) {
  auto& tracker = MemoryTracker::Global();
  {
    TrackedBytes held(MemoryTracker::kCheckpoint);
    held.Set(4096);
    EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kCheckpoint), 4096);
    held.Set(1024);  // shrink applies the delta, not another full add
    EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kCheckpoint), 1024);
  }
  EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kCheckpoint), 0);
  EXPECT_EQ(tracker.PeakBytes(MemoryTracker::kCheckpoint), 4096);
}

TEST_F(MemoryTrackerTest, TrackedBytesCopyRegistersItsOwnBytes) {
  auto& tracker = MemoryTracker::Global();
  TrackedBytes original(MemoryTracker::kProfileArena);
  original.Set(100);
  {
    TrackedBytes copy(original);  // a copied container duplicates payload
    EXPECT_EQ(copy.bytes(), 100);
    EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kProfileArena), 200);
  }
  EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kProfileArena), 100);
}

TEST_F(MemoryTrackerTest, TrackedBytesMoveTransfersRegistration) {
  auto& tracker = MemoryTracker::Global();
  TrackedBytes original(MemoryTracker::kProfileArena);
  original.Set(100);
  TrackedBytes moved(std::move(original));
  EXPECT_EQ(moved.bytes(), 100);
  EXPECT_EQ(original.bytes(), 0);  // NOLINT(bugprone-use-after-move)
  // A move hands over the registration — the total never doubles.
  EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kProfileArena), 100);
  moved.Set(0);
  EXPECT_EQ(tracker.CurrentBytes(MemoryTracker::kProfileArena), 0);
}

TEST_F(MemoryTrackerTest, DefaultConstructedTrackedBytesIsInert) {
  auto& tracker = MemoryTracker::Global();
  TrackedBytes untracked;
  untracked.Set(1 << 20);
  for (int c = 0; c < MemoryTracker::kNumComponents; ++c) {
    EXPECT_EQ(
        tracker.CurrentBytes(static_cast<MemoryTracker::Component>(c)), 0)
        << c;
  }
}

}  // namespace
}  // namespace obs
}  // namespace distinct
